//! Fig. 23: read replication — Trans-FW with replication vs the
//! replication baseline (plus the Fig. 24 read/write evidence).

use mgpu::SystemConfig;
use uvm::MigrationPolicy;

use crate::runner::{average_cycles, parallel_map};
use crate::{Report, RunOpts};

/// Trans-FW speedup when both systems use read replication.
pub fn run(opts: &RunOpts) -> Report {
    let base = SystemConfig::builder()
        .policy(MigrationPolicy::ReadReplication)
        .build();
    let tfw = SystemConfig {
        transfw: Some(mgpu::TransFwKnobs::full()),
        ..base.clone()
    };
    let rows = parallel_map(opts.apps(), |app| {
        let (b, _) = average_cycles(&base, &app, opts);
        let (t, _) = average_cycles(&tfw, &app, opts);
        (app.name.clone(), vec![b / t])
    });
    let mut report = Report::new(
        "Fig. 23: Trans-FW speedup under read replication",
        &["speedup"],
    );
    for (name, v) in rows {
        report.push(&name, v);
    }
    report.push_mean();
    report
}
