//! Fig. 7: page sharing among GPUs — the fraction of page accesses going
//! to pages shared by 1, 2, 3 or 4 GPUs.

use mgpu::SystemConfig;

use crate::runner::{average_cycles, parallel_map};
use crate::{Report, RunOpts};

/// Access-weighted sharing-degree distribution per application.
pub fn run(opts: &RunOpts) -> Report {
    let cfg = SystemConfig::baseline();
    let rows = parallel_map(opts.apps(), |app| {
        let (_, m) = average_cycles(&cfg, &app, opts);
        (app.name.clone(), m.sharing.access_fraction_by_degree(4))
    });
    let mut report = Report::new(
        "Fig. 7: page sharing among GPUs (fraction of accesses)",
        &["1 GPU", "2 GPUs", "3 GPUs", "4 GPUs"],
    );
    for (name, v) in rows {
        report.push(&name, v);
    }
    report.push_mean();
    report
}
