//! Fig. 14: replicated PT-walks — requests that executed both a host walk
//! and a borrowed remote walk, as a fraction of all host PT-walks.

use mgpu::SystemConfig;

use crate::runner::{average_cycles, parallel_map};
use crate::{Report, RunOpts};

/// Replicated-walk percentage per application under Trans-FW.
pub fn run(opts: &RunOpts) -> Report {
    let cfg = SystemConfig::with_transfw();
    let rows = parallel_map(opts.apps(), |app| {
        let (_, m) = average_cycles(&cfg, &app, opts);
        (
            app.name.clone(),
            vec![sim_core::stats::ratio(
                m.transfw.replicated_walks,
                m.host_walks,
            )],
        )
    });
    let mut report = Report::new(
        "Fig. 14: replicated PT-walks / all host PT-walks (Trans-FW)",
        &["replicated"],
    );
    for (name, v) in rows {
        report.push(&name, v);
    }
    report.push_mean();
    report
}
