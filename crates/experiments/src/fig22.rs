//! Fig. 22: the Split Translation Cache — Trans-FW with STC vs the STC
//! baseline.

use mgpu::{PwcKind, SystemConfig};

use crate::runner::{average_cycles, parallel_map};
use crate::{Report, RunOpts};

/// Trans-FW speedup when both systems use the STC organisation.
pub fn run(opts: &RunOpts) -> Report {
    let base = SystemConfig::builder().pwc_kind(PwcKind::Stc).build();
    let tfw = SystemConfig {
        transfw: Some(mgpu::TransFwKnobs::full()),
        ..base.clone()
    };
    let rows = parallel_map(opts.apps(), |app| {
        let (b, _) = average_cycles(&base, &app, opts);
        let (t, _) = average_cycles(&tfw, &app, opts);
        (app.name.clone(), vec![b / t])
    });
    let mut report = Report::new("Fig. 22: Trans-FW speedup with STC PW-caches", &["speedup"]);
    for (name, v) in rows {
        report.push(&name, v);
    }
    report.push_mean();
    report
}
