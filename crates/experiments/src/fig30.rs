//! Fig. 30: real machine-learning models — VGG16 and ResNet18 in
//! data-parallel training.

use mgpu::SystemConfig;

use crate::runner::{average_cycles, parallel_map};
use crate::{Report, RunOpts};

/// Trans-FW speedup on the ML models.
pub fn run(opts: &RunOpts) -> Report {
    let base = SystemConfig::baseline();
    let tfw = SystemConfig::with_transfw();
    let models = vec![
        workloads::vgg16().scaled(opts.scale),
        workloads::resnet18().scaled(opts.scale),
    ];
    let rows = parallel_map(models, |m| {
        let (b, _) = average_cycles(&base, &m, opts);
        let (t, _) = average_cycles(&tfw, &m, opts);
        (m.name.clone(), vec![b / t])
    });
    let mut report = Report::new("Fig. 30: Trans-FW speedup on ML training", &["speedup"]);
    for (name, v) in rows {
        report.push(&name, v);
    }
    report.push_mean();
    report
}
