//! Shared simulation-run machinery: seed averaging and app-parallel sweeps.

use mgpu::workload::Workload;
use mgpu::{RunMetrics, System, SystemConfig};
use workloads::AppSpec;

/// How an experiment is executed.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOpts {
    /// Work scale factor applied to every application (1.0 = full scale;
    /// tests use small values).
    pub scale: f64,
    /// Seeds to average execution time over (simulations are noisy at the
    /// ±few-percent level; the paper's bars are averages too).
    pub seeds: Vec<u64>,
}

impl Default for RunOpts {
    fn default() -> Self {
        Self {
            scale: 1.0,
            seeds: vec![1, 2],
        }
    }
}

impl RunOpts {
    /// Fast options for unit/integration tests.
    pub fn test() -> Self {
        Self {
            scale: 0.12,
            seeds: vec![1],
        }
    }

    /// The ten Table III applications at this scale.
    pub fn apps(&self) -> Vec<AppSpec> {
        workloads::all_apps()
            .iter()
            .map(|a| a.scaled(self.scale))
            .collect()
    }
}

/// Runs one workload once with the given configuration and seed.
pub fn run_one(mut cfg: SystemConfig, workload: &dyn Workload, seed: u64) -> RunMetrics {
    cfg.seed = seed;
    System::new(cfg)
        .run(workload)
        .expect("experiment run failed a liveness or invariant check")
}

/// Mean end-to-end cycles over the option's seeds, plus the metrics of the
/// first run (for the non-timing statistics, which are seed-stable).
pub fn average_cycles(
    cfg: &SystemConfig,
    workload: &dyn Workload,
    opts: &RunOpts,
) -> (f64, RunMetrics) {
    assert!(!opts.seeds.is_empty(), "need at least one seed");
    let mut cycles = 0.0;
    let mut first: Option<RunMetrics> = None;
    for &seed in &opts.seeds {
        let m = run_one(cfg.clone(), workload, seed);
        cycles += m.total_cycles as f64;
        if first.is_none() {
            first = Some(m);
        }
    }
    (cycles / opts.seeds.len() as f64, first.expect("ran"))
}

/// Serializes one run's complete metrics as a JSON object (hand-rolled:
/// the workspace deliberately has no serialization dependency). This is
/// what the bench harness embeds in `BENCH_*.json`: the timing numbers,
/// translation counters, Trans-FW datapath and placement-policy counters,
/// and the robustness trajectory (watchdog activity, component-failure
/// recovery counters, overload control and oversubscription/eviction
/// counters) are captured next to each other, not printed and lost.
///
/// Every field of [`RunMetrics`] and its nested statistics structs is
/// destructured exhaustively (no `..`), so adding a counter without
/// serializing it here is a compile error rather than a silently thinner
/// JSON file.
///
/// # Examples
///
/// ```
/// use mgpu::RunMetrics;
///
/// let m = RunMetrics { app: "MT".into(), total_cycles: 42, ..Default::default() };
/// let json = experiments::run_json(&m, 7);
/// assert!(json.contains("\"app\":\"MT\""));
/// assert!(json.contains("\"remote_timeouts\":0"));
/// assert!(json.contains("\"prefetched_pages\":0"));
/// ```
pub fn run_json(m: &RunMetrics, seed: u64) -> String {
    let RunMetrics {
        app,
        total_cycles,
        mem_instructions,
        l1_hits,
        l1_misses,
        l2_hits,
        l2_misses,
        translation_requests,
        local_faults,
        host_tlb_hits,
        host_tlb_misses,
        host_walks,
        gmmu_walk_accesses,
        host_walk_accesses,
        breakdown,
        gmmu_pwc,
        host_pwc,
        sharing,
        transfw,
        remote_probe,
        directory,
        placement,
        driver_batches,
        host_queue_peak,
        resilience,
        recovery,
        overload,
        oversub,
    } = m;
    let mgpu::LatencyBreakdown {
        gmmu_queue,
        gmmu_walk,
        host_queue,
        host_walk,
        migration,
        network,
    } = breakdown;
    let mgpu::metrics::TransFwStats {
        gmmu_bypassed,
        prt_false_positives,
        forwarded,
        remote_supplied,
        remote_failed,
        cancelled_host_walks,
        replicated_walks,
    } = transfw;
    let mgpu::metrics::RemoteProbeStats {
        faults: probe_faults,
        hits: probe_hits,
        lower_hits: probe_lower_hits,
    } = remote_probe;
    let uvm::DirectoryStats {
        migrations,
        replications,
        write_invalidations,
        remote_maps,
        promotions,
        prefetches,
    } = directory;
    let mgpu::PlacementStats {
        transactions,
        prefetched_pages,
        prefetch_skipped_pending,
        collapses,
        migration_latency,
    } = placement;
    let mgpu::ResilienceStats {
        remote_timeouts,
        retries,
        fallback_walks,
        duplicates_suppressed,
        requests_retired,
        faults_injected,
    } = resilience;
    let sim_core::InjectStats {
        messages_dropped,
        messages_delayed,
        messages_duplicated,
        walker_stalls,
        table_updates_dropped,
        host_burst_walks,
    } = faults_injected;
    let mgpu::RecoveryStats {
        gpu_offline_events,
        gpu_rejoins,
        link_partition_events,
        host_failover_events,
        ft_invalidations,
        prt_rebuilds,
        ownership_migrations,
        reissued_walks,
        deferred_events,
        deferred_evictions,
        rerouted_messages,
        checkpoints_taken,
        restores_performed,
    } = recovery;
    let mgpu::OverloadStats {
        prefetch_shed,
        migration_shed,
        remote_walks_shed,
        demand_deferred,
        demand_rejected,
        retries_budgeted,
        retry_tokens_denied,
        backoff_delay_total,
        breaker_opens,
        breaker_half_opens,
        breaker_closes,
        breaker_probes,
        breaker_short_circuits,
        probe_drains,
        forward_skipped_congested,
        demand_lat,
    } = overload;
    let mgpu::OversubStats {
        evictions,
        refaults,
        thrash_trips,
        pinned_skips,
        no_victim,
        direct_fallbacks,
        background_shed,
    } = oversub;
    // SharingProfile and PwCacheStats keep private/derived state; their
    // published summaries go in instead of raw internals.
    let (shared_reads, shared_writes) = sharing.shared_rw();
    let pwc_json = |p: &ptw::PwCacheStats| {
        let hits: Vec<String> = p.hits_at.iter().map(u64::to_string).collect();
        format!(
            "{{\"hits_at\":[{}],\"misses\":{},\"lookups\":{}}}",
            hits.join(","),
            p.misses,
            p.lookups
        )
    };
    format!(
        concat!(
            "{{\"app\":\"{}\",\"seed\":{},\"total_cycles\":{},",
            "\"mem_instructions\":{},\"l1_hits\":{},\"l1_misses\":{},",
            "\"l2_hits\":{},\"l2_misses\":{},\"translation_requests\":{},",
            "\"local_faults\":{},\"host_tlb_hits\":{},\"host_tlb_misses\":{},",
            "\"host_walks\":{},\"gmmu_walk_accesses\":{},\"host_walk_accesses\":{},",
            "\"breakdown\":{{\"gmmu_queue\":{},\"gmmu_walk\":{},\"host_queue\":{},",
            "\"host_walk\":{},\"migration\":{},\"network\":{}}},",
            "\"gmmu_pwc\":{},\"host_pwc\":{},",
            "\"sharing\":{{\"pages\":{},\"shared_reads\":{},\"shared_writes\":{}}},",
            "\"transfw\":{{\"gmmu_bypassed\":{},\"prt_false_positives\":{},",
            "\"forwarded\":{},\"remote_supplied\":{},\"remote_failed\":{},",
            "\"cancelled_host_walks\":{},\"replicated_walks\":{}}},",
            "\"remote_probe\":{{\"faults\":{},\"hits\":{},\"lower_hits\":{}}},",
            "\"directory\":{{\"migrations\":{},\"replications\":{},",
            "\"write_invalidations\":{},\"remote_maps\":{},\"promotions\":{},",
            "\"prefetches\":{}}},",
            "\"placement\":{{\"transactions\":{},\"prefetched_pages\":{},",
            "\"prefetch_skipped_pending\":{},\"collapses\":{},",
            "\"migration_latency\":{{\"count\":{},\"total\":{},\"max\":{},",
            "\"mean\":{:.3}}}}},",
            "\"driver_batches\":{},\"host_queue_peak\":{},",
            "\"resilience\":{{\"remote_timeouts\":{},\"retries\":{},",
            "\"fallback_walks\":{},\"duplicates_suppressed\":{},",
            "\"requests_retired\":{},",
            "\"faults_injected\":{{\"messages_dropped\":{},\"messages_delayed\":{},",
            "\"messages_duplicated\":{},\"walker_stalls\":{},",
            "\"table_updates_dropped\":{},\"host_burst_walks\":{}}}}},",
            "\"recovery\":{{\"gpu_offline_events\":{},\"gpu_rejoins\":{},",
            "\"link_partition_events\":{},\"host_failover_events\":{},",
            "\"ft_invalidations\":{},\"prt_rebuilds\":{},",
            "\"ownership_migrations\":{},\"reissued_walks\":{},",
            "\"deferred_events\":{},\"deferred_evictions\":{},",
            "\"rerouted_messages\":{},",
            "\"checkpoints_taken\":{},\"restores_performed\":{}}},",
            "\"overload\":{{\"prefetch_shed\":{},\"migration_shed\":{},",
            "\"remote_walks_shed\":{},\"demand_deferred\":{},",
            "\"demand_rejected\":{},\"retries_budgeted\":{},",
            "\"retry_tokens_denied\":{},\"backoff_delay_total\":{},",
            "\"breaker_opens\":{},\"breaker_half_opens\":{},",
            "\"breaker_closes\":{},\"breaker_probes\":{},",
            "\"breaker_short_circuits\":{},\"probe_drains\":{},",
            "\"forward_skipped_congested\":{},",
            "\"demand_lat\":{{\"count\":{},\"mean\":{:.3},\"p99_bound\":{}}}}},",
            "\"oversub\":{{\"evictions\":{},\"refaults\":{},",
            "\"thrash_trips\":{},\"pinned_skips\":{},\"no_victim\":{},",
            "\"direct_fallbacks\":{},\"background_shed\":{}}}}}"
        ),
        json_escape(app),
        seed,
        total_cycles,
        mem_instructions,
        l1_hits,
        l1_misses,
        l2_hits,
        l2_misses,
        translation_requests,
        local_faults,
        host_tlb_hits,
        host_tlb_misses,
        host_walks,
        gmmu_walk_accesses,
        host_walk_accesses,
        gmmu_queue,
        gmmu_walk,
        host_queue,
        host_walk,
        migration,
        network,
        pwc_json(gmmu_pwc),
        pwc_json(host_pwc),
        sharing.page_count(),
        shared_reads,
        shared_writes,
        gmmu_bypassed,
        prt_false_positives,
        forwarded,
        remote_supplied,
        remote_failed,
        cancelled_host_walks,
        replicated_walks,
        probe_faults,
        probe_hits,
        probe_lower_hits,
        migrations,
        replications,
        write_invalidations,
        remote_maps,
        promotions,
        prefetches,
        transactions,
        prefetched_pages,
        prefetch_skipped_pending,
        collapses,
        migration_latency.count(),
        migration_latency.total(),
        migration_latency.max(),
        migration_latency.mean(),
        driver_batches,
        host_queue_peak,
        remote_timeouts,
        retries,
        fallback_walks,
        duplicates_suppressed,
        requests_retired,
        messages_dropped,
        messages_delayed,
        messages_duplicated,
        walker_stalls,
        table_updates_dropped,
        host_burst_walks,
        gpu_offline_events,
        gpu_rejoins,
        link_partition_events,
        host_failover_events,
        ft_invalidations,
        prt_rebuilds,
        ownership_migrations,
        reissued_walks,
        deferred_events,
        deferred_evictions,
        rerouted_messages,
        checkpoints_taken,
        restores_performed,
        prefetch_shed,
        migration_shed,
        remote_walks_shed,
        demand_deferred,
        demand_rejected,
        retries_budgeted,
        retry_tokens_denied,
        backoff_delay_total,
        breaker_opens,
        breaker_half_opens,
        breaker_closes,
        breaker_probes,
        breaker_short_circuits,
        probe_drains,
        forward_skipped_congested,
        demand_lat.count(),
        demand_lat.mean(),
        demand_lat.percentile_bound(0.99),
        evictions,
        refaults,
        thrash_trips,
        pinned_skips,
        no_victim,
        direct_fallbacks,
        background_shed,
    )
}

/// Serializes a batch of `(seed, metrics)` runs as a JSON array, one
/// [`run_json`] object per element.
pub fn runs_json(runs: &[(u64, RunMetrics)]) -> String {
    let body: Vec<String> = runs.iter().map(|(seed, m)| run_json(m, *seed)).collect();
    format!("[{}]", body.join(","))
}

/// Minimal JSON string escaping for app names (quotes, backslashes and
/// control characters; names are ASCII in practice).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Maps `f` over `items` with one OS thread per item (simulation runs are
/// independent and CPU-bound).
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .into_iter()
            .map(|item| scope.spawn(|| f(item)))
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker")).collect()
    })
}

/// Convenience: for each app, compute the speedup of `opt_cfg` over
/// `base_cfg` (mean cycles over seeds), returning `(app, speedup)` rows.
pub fn speedups(
    base_cfg: &SystemConfig,
    opt_cfg: &SystemConfig,
    opts: &RunOpts,
) -> Vec<(String, f64)> {
    parallel_map(opts.apps(), |app| {
        let (base, _) = average_cycles(base_cfg, &app, opts);
        let (opt, _) = average_cycles(opt_cfg, &app, opts);
        (app.name.clone(), base / opt)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..16).collect::<Vec<i32>>(), |x| x * 2);
        assert_eq!(out, (0..16).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn run_opts_apps_scale() {
        let full = RunOpts::default().apps();
        let small = RunOpts::test().apps();
        assert_eq!(full.len(), 10);
        assert_eq!(small.len(), 10);
        assert!(small[0].ctas < full[0].ctas);
    }

    #[test]
    fn average_cycles_is_deterministic_per_seed() {
        let opts = RunOpts {
            scale: 0.05,
            seeds: vec![7],
        };
        let app = workloads::app("FIR").unwrap().scaled(opts.scale);
        let cfg = SystemConfig::baseline();
        let (a, _) = average_cycles(&cfg, &app, &opts);
        let (b, _) = average_cycles(&cfg, &app, &opts);
        assert_eq!(a, b);
    }

    #[test]
    fn run_json_includes_every_robustness_counter() {
        let app = workloads::app("KM").unwrap().scaled(0.05);
        let m = run_one(SystemConfig::with_transfw(), &app, 3);
        let json = run_json(&m, 3);
        for key in [
            "remote_timeouts",
            "retries",
            "fallback_walks",
            "duplicates_suppressed",
            "requests_retired",
            "gpu_offline_events",
            "ft_invalidations",
            "prt_rebuilds",
            "ownership_migrations",
            "reissued_walks",
            "checkpoints_taken",
            "restores_performed",
            "prefetch_shed",
            "retries_budgeted",
            "breaker_opens",
            "demand_lat",
            "deferred_evictions",
            "evictions",
            "refaults",
            "thrash_trips",
            "direct_fallbacks",
        ] {
            assert!(json.contains(&format!("\"{key}\":")), "missing {key}: {json}");
        }
        assert!(json.starts_with('{') && json.ends_with('}'));
        // Balanced braces: a cheap well-formedness check without a parser.
        let open = json.matches('{').count();
        assert_eq!(open, json.matches('}').count());
    }

    /// Satellite guard: every scalar counter reachable from `RunMetrics`
    /// must appear as a key in `run_json`'s output. The destructuring in
    /// `run_json` already makes a *forgotten struct field* a compile error;
    /// this test additionally catches a field that was destructured but
    /// never formatted (bound then dropped), which the compiler only
    /// reports as an unused-variable lint.
    #[test]
    fn run_json_serializes_every_metrics_field() {
        let m = RunMetrics {
            app: "guard".into(),
            ..Default::default()
        };
        let json = run_json(&m, 1);
        for key in [
            // top level
            "app",
            "seed",
            "total_cycles",
            "mem_instructions",
            "l1_hits",
            "l1_misses",
            "l2_hits",
            "l2_misses",
            "translation_requests",
            "local_faults",
            "host_tlb_hits",
            "host_tlb_misses",
            "host_walks",
            "gmmu_walk_accesses",
            "host_walk_accesses",
            "driver_batches",
            "host_queue_peak",
            // breakdown
            "gmmu_queue",
            "gmmu_walk",
            "host_queue",
            "host_walk",
            "migration",
            "network",
            // pw-caches and sharing summary
            "gmmu_pwc",
            "host_pwc",
            "hits_at",
            "lookups",
            "pages",
            "shared_reads",
            "shared_writes",
            // transfw
            "gmmu_bypassed",
            "prt_false_positives",
            "forwarded",
            "remote_supplied",
            "remote_failed",
            "cancelled_host_walks",
            "replicated_walks",
            // remote probe
            "lower_hits",
            // directory
            "migrations",
            "replications",
            "write_invalidations",
            "remote_maps",
            "promotions",
            "prefetches",
            // placement
            "transactions",
            "prefetched_pages",
            "prefetch_skipped_pending",
            "collapses",
            "migration_latency",
            // resilience + injected faults
            "remote_timeouts",
            "retries",
            "fallback_walks",
            "duplicates_suppressed",
            "requests_retired",
            "messages_dropped",
            "messages_delayed",
            "messages_duplicated",
            "walker_stalls",
            "table_updates_dropped",
            "host_burst_walks",
            // recovery
            "gpu_offline_events",
            "gpu_rejoins",
            "link_partition_events",
            "host_failover_events",
            "ft_invalidations",
            "prt_rebuilds",
            "ownership_migrations",
            "reissued_walks",
            "deferred_events",
            "deferred_evictions",
            "rerouted_messages",
            "checkpoints_taken",
            "restores_performed",
            // overload control
            "prefetch_shed",
            "migration_shed",
            "remote_walks_shed",
            "demand_deferred",
            "demand_rejected",
            "retries_budgeted",
            "retry_tokens_denied",
            "backoff_delay_total",
            "breaker_opens",
            "breaker_half_opens",
            "breaker_closes",
            "breaker_probes",
            "breaker_short_circuits",
            "probe_drains",
            "forward_skipped_congested",
            "demand_lat",
            "p99_bound",
            // oversubscription / eviction
            "oversub",
            "evictions",
            "refaults",
            "thrash_trips",
            "pinned_skips",
            "no_victim",
            "direct_fallbacks",
            "background_shed",
        ] {
            assert!(json.contains(&format!("\"{key}\"")), "missing {key}: {json}");
        }
        let open = json.matches('{').count();
        assert_eq!(open, json.matches('}').count(), "unbalanced braces");
        assert_eq!(
            json.matches('[').count(),
            json.matches(']').count(),
            "unbalanced brackets"
        );
    }

    #[test]
    fn runs_json_is_an_array() {
        let app = workloads::app("FIR").unwrap().scaled(0.05);
        let m = run_one(SystemConfig::baseline(), &app, 1);
        let arr = runs_json(&[(1, m.clone()), (2, m)]);
        assert!(arr.starts_with('[') && arr.ends_with(']'));
        assert_eq!(arr.matches("\"app\"").count(), 2);
    }

    #[test]
    fn json_escape_handles_quotes_and_controls() {
        assert_eq!(super::json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\u000ad");
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn empty_seeds_panics() {
        let opts = RunOpts {
            scale: 0.05,
            seeds: vec![],
        };
        let app = workloads::app("FIR").unwrap();
        average_cycles(&SystemConfig::baseline(), &app, &opts);
    }
}
