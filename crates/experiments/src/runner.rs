//! Shared simulation-run machinery: seed averaging and app-parallel sweeps.

use mgpu::workload::Workload;
use mgpu::{RunMetrics, System, SystemConfig};
use workloads::AppSpec;

/// How an experiment is executed.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOpts {
    /// Work scale factor applied to every application (1.0 = full scale;
    /// tests use small values).
    pub scale: f64,
    /// Seeds to average execution time over (simulations are noisy at the
    /// ±few-percent level; the paper's bars are averages too).
    pub seeds: Vec<u64>,
}

impl Default for RunOpts {
    fn default() -> Self {
        Self {
            scale: 1.0,
            seeds: vec![1, 2],
        }
    }
}

impl RunOpts {
    /// Fast options for unit/integration tests.
    pub fn test() -> Self {
        Self {
            scale: 0.12,
            seeds: vec![1],
        }
    }

    /// The ten Table III applications at this scale.
    pub fn apps(&self) -> Vec<AppSpec> {
        workloads::all_apps()
            .iter()
            .map(|a| a.scaled(self.scale))
            .collect()
    }
}

/// Runs one workload once with the given configuration and seed.
pub fn run_one(mut cfg: SystemConfig, workload: &dyn Workload, seed: u64) -> RunMetrics {
    cfg.seed = seed;
    System::new(cfg)
        .run(workload)
        .expect("experiment run failed a liveness or invariant check")
}

/// Mean end-to-end cycles over the option's seeds, plus the metrics of the
/// first run (for the non-timing statistics, which are seed-stable).
pub fn average_cycles(
    cfg: &SystemConfig,
    workload: &dyn Workload,
    opts: &RunOpts,
) -> (f64, RunMetrics) {
    assert!(!opts.seeds.is_empty(), "need at least one seed");
    let mut cycles = 0.0;
    let mut first: Option<RunMetrics> = None;
    for &seed in &opts.seeds {
        let m = run_one(cfg.clone(), workload, seed);
        cycles += m.total_cycles as f64;
        if first.is_none() {
            first = Some(m);
        }
    }
    (cycles / opts.seeds.len() as f64, first.expect("ran"))
}

/// Maps `f` over `items` with one OS thread per item (simulation runs are
/// independent and CPU-bound).
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .into_iter()
            .map(|item| scope.spawn(|| f(item)))
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker")).collect()
    })
}

/// Convenience: for each app, compute the speedup of `opt_cfg` over
/// `base_cfg` (mean cycles over seeds), returning `(app, speedup)` rows.
pub fn speedups(
    base_cfg: &SystemConfig,
    opt_cfg: &SystemConfig,
    opts: &RunOpts,
) -> Vec<(String, f64)> {
    parallel_map(opts.apps(), |app| {
        let (base, _) = average_cycles(base_cfg, &app, opts);
        let (opt, _) = average_cycles(opt_cfg, &app, opts);
        (app.name.clone(), base / opt)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..16).collect::<Vec<i32>>(), |x| x * 2);
        assert_eq!(out, (0..16).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn run_opts_apps_scale() {
        let full = RunOpts::default().apps();
        let small = RunOpts::test().apps();
        assert_eq!(full.len(), 10);
        assert_eq!(small.len(), 10);
        assert!(small[0].ctas < full[0].ctas);
    }

    #[test]
    fn average_cycles_is_deterministic_per_seed() {
        let opts = RunOpts {
            scale: 0.05,
            seeds: vec![7],
        };
        let app = workloads::app("FIR").unwrap().scaled(opts.scale);
        let cfg = SystemConfig::baseline();
        let (a, _) = average_cycles(&cfg, &app, &opts);
        let (b, _) = average_cycles(&cfg, &app, &opts);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn empty_seeds_panics() {
        let opts = RunOpts {
            scale: 0.05,
            seeds: vec![],
        };
        let app = workloads::app("FIR").unwrap();
        average_cycles(&SystemConfig::baseline(), &app, &opts);
    }
}
