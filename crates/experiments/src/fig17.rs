//! Fig. 17: scalability — Trans-FW at 8 and 16 GPUs, each normalized to
//! the baseline with the same GPU count.

use mgpu::SystemConfig;

use crate::runner::{average_cycles, parallel_map};
use crate::{Report, RunOpts};

/// Trans-FW speedup at 8 and 16 GPUs.
pub fn run(opts: &RunOpts) -> Report {
    let gpu_counts = [8u16, 16];
    let rows = parallel_map(opts.apps(), |app| {
        let v = gpu_counts
            .iter()
            .map(|&g| {
                let base = SystemConfig::builder().gpus(g).build();
                let tfw = SystemConfig {
                    transfw: Some(mgpu::TransFwKnobs::full()),
                    ..base.clone()
                };
                let (b, _) = average_cycles(&base, &app, opts);
                let (t, _) = average_cycles(&tfw, &app, opts);
                b / t
            })
            .collect();
        (app.name.clone(), v)
    });
    let mut report = Report::new(
        "Fig. 17: Trans-FW speedup with 8 and 16 GPUs",
        &["8 GPUs", "16 GPUs"],
    );
    for (name, v) in rows {
        report.push(&name, v);
    }
    report.push_mean();
    report
}
