//! Fig. 18: sensitivity to the number of PT-walk threads — (GMMU, host)
//! pairs from (4, 8) up to (64, 128); everything normalized to the baseline
//! with (4, 8).

use mgpu::SystemConfig;

use crate::runner::{average_cycles, parallel_map};
use crate::{Report, RunOpts};

const PAIRS: [(usize, usize); 5] = [(4, 8), (8, 16), (16, 32), (32, 64), (64, 128)];

fn cfg(gmmu: usize, host: usize, transfw: bool) -> SystemConfig {
    let mut c = SystemConfig::builder()
        .gmmu_walkers(gmmu)
        .host_walkers(host)
        .build();
    if transfw {
        c.transfw = Some(mgpu::TransFwKnobs::full());
    }
    c
}

/// Mean speedup over the (4, 8) baseline for each walker pair, baseline and
/// Trans-FW. Rows are the walker pairs.
pub fn run(opts: &RunOpts) -> Report {
    let reference = cfg(4, 8, false);
    let per_app = parallel_map(opts.apps(), |app| {
        let (r, _) = average_cycles(&reference, &app, opts);
        let mut v = Vec::new();
        for (g, h) in PAIRS {
            v.push(r / average_cycles(&cfg(g, h, false), &app, opts).0);
            v.push(r / average_cycles(&cfg(g, h, true), &app, opts).0);
        }
        v
    });
    // Average the apps.
    let n = per_app.len() as f64;
    let cols = per_app[0].len();
    let means: Vec<f64> = (0..cols)
        .map(|c| per_app.iter().map(|v| v[c]).sum::<f64>() / n)
        .collect();
    let mut report = Report::new(
        "Fig. 18: speedup vs PT-walk threads, normalized to baseline (4,8)",
        &["baseline", "Trans-FW"],
    );
    for (i, (g, h)) in PAIRS.iter().enumerate() {
        report.push(&format!("({g},{h})"), vec![means[2 * i], means[2 * i + 1]]);
    }
    report
}
