//! Fig. 19: 4-level page table — Trans-FW vs the 4-level baseline.

use mgpu::SystemConfig;

use crate::runner::{average_cycles, parallel_map};
use crate::{Report, RunOpts};

/// Trans-FW speedup when both systems use a 4-level page table.
pub fn run(opts: &RunOpts) -> Report {
    let base = SystemConfig::builder().page_table_levels(4).build();
    let tfw = SystemConfig {
        transfw: Some(mgpu::TransFwKnobs::full()),
        ..base.clone()
    };
    let rows = parallel_map(opts.apps(), |app| {
        let (b, _) = average_cycles(&base, &app, opts);
        let (t, _) = average_cycles(&tfw, &app, opts);
        (app.name.clone(), vec![b / t])
    });
    let mut report = Report::new(
        "Fig. 19: Trans-FW speedup with a 4-level page table",
        &["speedup"],
    );
    for (name, v) in rows {
        report.push(&name, v);
    }
    report.push_mean();
    report
}
