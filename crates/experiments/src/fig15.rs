//! Fig. 15: sensitivity to the forwarding threshold (0, 0.5, 1, 2 x the
//! host PT-walk thread count).

use mgpu::{SystemConfig, TransFwKnobs};
use transfw::TransFwConfig;

use crate::runner::{average_cycles, parallel_map};
use crate::{Report, RunOpts};

fn cfg_with_threshold(threshold: f64) -> SystemConfig {
    SystemConfig {
        transfw: Some(TransFwKnobs {
            config: TransFwConfig {
                forward_threshold: threshold,
                ..TransFwConfig::default()
            },
            gmmu_short_circuit: true,
            host_forwarding: true,
        }),
        ..SystemConfig::baseline()
    }
}

/// Speedup over the baseline for each forwarding threshold.
pub fn run(opts: &RunOpts) -> Report {
    let base = SystemConfig::baseline();
    let thresholds = [0.0, 0.5, 1.0, 2.0];
    let cfgs: Vec<SystemConfig> = thresholds.iter().map(|&t| cfg_with_threshold(t)).collect();
    let rows = parallel_map(opts.apps(), |app| {
        let (b, _) = average_cycles(&base, &app, opts);
        let v = cfgs
            .iter()
            .map(|c| b / average_cycles(c, &app, opts).0)
            .collect();
        (app.name.clone(), v)
    });
    let mut report = Report::new(
        "Fig. 15: Trans-FW speedup vs forwarding threshold",
        &["t=0", "t=0.5", "t=1", "t=2"],
    );
    for (name, v) in rows {
        report.push(&name, v);
    }
    report.push_mean();
    report
}
