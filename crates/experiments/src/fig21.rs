//! Fig. 21: sensitivity to the remote (GPU-GPU) access latency, swept as
//! multiples of the GPU local memory latency.

use mgpu::SystemConfig;

use crate::runner::{average_cycles, parallel_map};
use crate::{Report, RunOpts};

/// Mean Trans-FW speedup for peer-link latencies of 150 cycles (default)
/// and 1x to 16x the DRAM latency.
pub fn run(opts: &RunOpts) -> Report {
    let dram = SystemConfig::baseline().dram_latency;
    let sweeps: Vec<(String, u64)> = [("150cy".to_string(), 150)]
        .into_iter()
        .chain([1u64, 2, 4, 8, 16].map(|m| (format!("{m}x dram"), m * dram)))
        .collect();
    let mut report = Report::new(
        "Fig. 21: mean Trans-FW speedup vs remote access latency",
        &["speedup"],
    );
    for (label, lat) in sweeps {
        let base = SystemConfig::builder().peer_link_latency(lat).build();
        let tfw = SystemConfig {
            transfw: Some(mgpu::TransFwKnobs::full()),
            ..base.clone()
        };
        let speedups = parallel_map(opts.apps(), |app| {
            let (b, _) = average_cycles(&base, &app, opts);
            let (t, _) = average_cycles(&tfw, &app, opts);
            b / t
        });
        report.push(&label, vec![sim_core::stats::mean(&speedups)]);
    }
    report
}
