//! Experiment definitions reproducing every table and figure of the
//! Trans-FW paper's evaluation.
//!
//! Each `figNN` module reproduces one figure: it builds the configurations,
//! runs the simulator over the Table III applications (in parallel, averaged
//! over seeds) and returns a [`Report`] whose rows mirror the figure's
//! series. The `cargo bench` targets in the `transfw-bench` crate print
//! these reports; EXPERIMENTS.md records paper-vs-measured values.
//!
//! # Examples
//!
//! ```no_run
//! use experiments::{fig11, RunOpts};
//!
//! // Full-scale headline experiment (Fig. 11).
//! let report = fig11::run(&RunOpts::default());
//! println!("{report}");
//! ```

pub mod fig02;
pub mod fig03;
pub mod fig04;
pub mod fig05_06;
pub mod fig07;
pub mod fig08;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig19;
pub mod fig20;
pub mod fig21;
pub mod fig22;
pub mod fig23;
pub mod fig24;
pub mod fig25;
pub mod fig26;
pub mod fig27;
pub mod fig28;
pub mod fig29;
pub mod fig30;
pub mod report;
pub mod runner;
pub mod spec;
pub mod table3;

pub use report::Report;
pub use runner::{average_cycles, parallel_map, run_json, run_one, runs_json, RunOpts};
pub use spec::{load_scenario, scenario_specs, soak_fault_plans, soak_tables, RunSpec};
