//! Fig. 13: PW-cache hit rates at the lower levels (L2/L3) under Trans-FW.

use mgpu::SystemConfig;

use crate::runner::{average_cycles, parallel_map};
use crate::{Report, RunOpts};

/// L2+L3 hit rates of the GMMU and host PW-caches with Trans-FW enabled
/// (compare against the baseline values in Figs. 5/6).
pub fn run(opts: &RunOpts) -> Report {
    let cfg = SystemConfig::with_transfw();
    let rows = parallel_map(opts.apps(), |app| {
        let (_, m) = average_cycles(&cfg, &app, opts);
        let g = m.gmmu_pwc.hit_rate_at(2) + m.gmmu_pwc.hit_rate_at(3);
        let h = m.host_pwc.hit_rate_at(2) + m.host_pwc.hit_rate_at(3);
        (app.name.clone(), vec![g, h])
    });
    let mut report = Report::new(
        "Fig. 13: lower-level (L2+L3) PW-cache hit rates under Trans-FW",
        &["GMMU", "host MMU"],
    );
    for (name, v) in rows {
        report.push(&name, v);
    }
    report.push_mean();
    report
}
