//! Figs. 5 and 6: PW-cache hit levels in the GMMU (Fig. 5) and the host
//! MMU (Fig. 6) under the baseline.

use mgpu::SystemConfig;

use crate::runner::{average_cycles, parallel_map};
use crate::{Report, RunOpts};

fn pwc_report(title: &str, host: bool, opts: &RunOpts) -> Report {
    let cfg = SystemConfig::baseline();
    let rows = parallel_map(opts.apps(), |app| {
        let (_, m) = average_cycles(&cfg, &app, opts);
        let s = if host { &m.host_pwc } else { &m.gmmu_pwc };
        // Lower levels (L2/L3): translation within 1-2 memory accesses.
        let lower = s.hit_rate_at(2) + s.hit_rate_at(3);
        let upper = s.hit_rate() - lower;
        (
            app.name.clone(),
            vec![lower, upper, 1.0 - s.hit_rate()],
        )
    });
    let mut report = Report::new(title, &["L2+L3 hit", "L4+L5 hit", "miss"]);
    for (name, v) in rows {
        report.push(&name, v);
    }
    report.push_mean();
    report
}

/// Fig. 5: GMMU PW-cache hit levels.
pub fn run_gmmu(opts: &RunOpts) -> Report {
    pwc_report("Fig. 5: GMMU PW-cache hit levels (baseline)", false, opts)
}

/// Fig. 6: host MMU PW-cache hit levels.
pub fn run_host(opts: &RunOpts) -> Report {
    pwc_report("Fig. 6: host MMU PW-cache hit levels (baseline)", true, opts)
}

/// Both figures.
pub fn run(opts: &RunOpts) -> Vec<Report> {
    vec![run_gmmu(opts), run_host(opts)]
}
