//! Fig. 11: the headline result — overall speedup of Trans-FW over the
//! baseline, plus ablation columns for the two mechanisms in isolation.

use mgpu::{SystemConfig, TransFwKnobs};
use transfw::TransFwConfig;

use crate::runner::{average_cycles, parallel_map};
use crate::{Report, RunOpts};

fn knobs(gmmu: bool, host: bool) -> Option<TransFwKnobs> {
    Some(TransFwKnobs {
        config: TransFwConfig::default(),
        gmmu_short_circuit: gmmu,
        host_forwarding: host,
    })
}

/// Trans-FW speedup per application, with PRT-only and FT-only ablations.
pub fn run(opts: &RunOpts) -> Report {
    let base = SystemConfig::baseline();
    let full = SystemConfig {
        transfw: knobs(true, true),
        ..base.clone()
    };
    let prt_only = SystemConfig {
        transfw: knobs(true, false),
        ..base.clone()
    };
    let ft_only = SystemConfig {
        transfw: knobs(false, true),
        ..base.clone()
    };
    let rows = parallel_map(opts.apps(), |app| {
        let (b, _) = average_cycles(&base, &app, opts);
        let v = [&full, &prt_only, &ft_only]
            .iter()
            .map(|c| b / average_cycles(c, &app, opts).0)
            .collect();
        (app.name.clone(), v)
    });
    let mut report = Report::new(
        "Fig. 11: Trans-FW speedup over baseline (with ablations)",
        &["Trans-FW", "PRT only", "FT only"],
    );
    for (name, v) in rows {
        report.push(&name, v);
    }
    report.push_mean();
    report
}
