//! Fig. 26: Trans-FW on software (UVM-driver) far-fault handling, with the
//! Forwarding Table held in CPU memory and consulted by the driver.

use mgpu::{FarFaultMode, SystemConfig};

use crate::runner::{average_cycles, parallel_map};
use crate::{Report, RunOpts};

/// Trans-FW speedup over the driver-handled baseline.
pub fn run(opts: &RunOpts) -> Report {
    let base = SystemConfig::builder()
        .fault_mode(FarFaultMode::UvmDriver)
        .build();
    let tfw = SystemConfig {
        transfw: Some(mgpu::TransFwKnobs::full()),
        ..base.clone()
    };
    let rows = parallel_map(opts.apps(), |app| {
        let (b, _) = average_cycles(&base, &app, opts);
        let (t, _) = average_cycles(&tfw, &app, opts);
        (app.name.clone(), vec![b / t])
    });
    let mut report = Report::new(
        "Fig. 26: Trans-FW speedup on UVM-driver handled far faults",
        &["speedup"],
    );
    for (name, v) in rows {
        report.push(&name, v);
    }
    report.push_mean();
    report
}
