//! Fig. 29: combination with least-TLB — Trans-FW + least-TLB normalized
//! to least-TLB alone.

use mgpu::SystemConfig;

use crate::runner::{average_cycles, parallel_map};
use crate::{Report, RunOpts};

/// Speedup of Trans-FW + least-TLB over least-TLB alone.
pub fn run(opts: &RunOpts) -> Report {
    let least = SystemConfig::builder().least_tlb(true).build();
    let both = SystemConfig {
        transfw: Some(mgpu::TransFwKnobs::full()),
        ..least.clone()
    };
    let rows = parallel_map(opts.apps(), |app| {
        let (l, _) = average_cycles(&least, &app, opts);
        let (b, _) = average_cycles(&both, &app, opts);
        (app.name.clone(), vec![l / b])
    });
    let mut report = Report::new(
        "Fig. 29: Trans-FW + least-TLB speedup over least-TLB",
        &["speedup"],
    );
    for (name, v) in rows {
        report.push(&name, v);
    }
    report.push_mean();
    report
}
