//! Fig. 3: breakdown of the L2 TLB miss latency in the baseline.

use mgpu::SystemConfig;

use crate::runner::{average_cycles, parallel_map};
use crate::{Report, RunOpts};

/// Per-application latency fractions: GMMU queue, GMMU walk (PW-cache miss
/// penalty), host queue, host walk, migration, interconnect/replay.
pub fn run(opts: &RunOpts) -> Report {
    let cfg = SystemConfig::baseline();
    let rows = parallel_map(opts.apps(), |app| {
        let (_, m) = average_cycles(&cfg, &app, opts);
        (app.name.clone(), m.breakdown.fractions().to_vec())
    });
    let mut report = Report::new(
        "Fig. 3: L2 TLB miss latency breakdown (baseline)",
        &[
            "gmmu-queue",
            "gmmu-walk",
            "host-queue",
            "host-walk",
            "migration",
            "net+replay",
        ],
    );
    for (name, v) in rows {
        report.push(&name, v);
    }
    report.push_mean();
    report
}
