//! Fig. 20: host MMU configuration sensitivity — (a) a 4096-entry host
//! TLB, (b) a 256-entry and (c) a 512-entry host PW-cache, each pair
//! normalized to its own baseline.

use mgpu::SystemConfig;

use crate::runner::{average_cycles, parallel_map};
use crate::{Report, RunOpts};

fn speedup_with(base: SystemConfig, opts: &RunOpts) -> Vec<(String, f64)> {
    let tfw = SystemConfig {
        transfw: Some(mgpu::TransFwKnobs::full()),
        ..base.clone()
    };
    parallel_map(opts.apps(), |app| {
        let (b, _) = average_cycles(&base, &app, opts);
        let (t, _) = average_cycles(&tfw, &app, opts);
        (app.name.clone(), b / t)
    })
}

/// Trans-FW speedup under each host MMU variant.
pub fn run(opts: &RunOpts) -> Report {
    let tlb4096 = SystemConfig::builder().host_tlb_entries(4096).build();
    let pwc256 = SystemConfig::builder().host_pwc_entries(256).build();
    let pwc512 = SystemConfig::builder().host_pwc_entries(512).build();
    let a = speedup_with(tlb4096, opts);
    let b = speedup_with(pwc256, opts);
    let c = speedup_with(pwc512, opts);
    let mut report = Report::new(
        "Fig. 20: Trans-FW speedup under host MMU variants",
        &["TLB 4096", "PWC 256", "PWC 512"],
    );
    for i in 0..a.len() {
        report.push(&a[i].0.clone(), vec![a[i].1, b[i].1, c[i].1]);
    }
    report.push_mean();
    report
}
