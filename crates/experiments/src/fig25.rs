//! Fig. 25: remote mapping with access-counter-driven migration —
//! Trans-FW vs the remote-mapping baseline.

use mgpu::SystemConfig;
use uvm::MigrationPolicy;

use crate::runner::{average_cycles, parallel_map};
use crate::{Report, RunOpts};

/// Trans-FW speedup when both systems use remote mapping (NVIDIA-style
/// access counters with a threshold of 8).
pub fn run(opts: &RunOpts) -> Report {
    let base = SystemConfig::builder()
        .policy(MigrationPolicy::RemoteMapping {
            migrate_threshold: 8,
        })
        .build();
    let tfw = SystemConfig {
        transfw: Some(mgpu::TransFwKnobs::full()),
        ..base.clone()
    };
    let rows = parallel_map(opts.apps(), |app| {
        let (b, _) = average_cycles(&base, &app, opts);
        let (t, _) = average_cycles(&tfw, &app, opts);
        (app.name.clone(), vec![b / t])
    });
    let mut report = Report::new(
        "Fig. 25: Trans-FW speedup under remote mapping",
        &["speedup"],
    );
    for (name, v) in rows {
        report.push(&name, v);
    }
    report.push_mean();
    report
}
