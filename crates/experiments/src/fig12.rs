//! Fig. 12: reduction of each latency component under Trans-FW.

use mgpu::SystemConfig;

use crate::runner::{average_cycles, parallel_map};
use crate::{Report, RunOpts};

/// Per-application fraction by which Trans-FW shrinks each Fig. 3 latency
/// component (1.0 = eliminated).
pub fn run(opts: &RunOpts) -> Report {
    let base = SystemConfig::baseline();
    let tfw = SystemConfig::with_transfw();
    let rows = parallel_map(opts.apps(), |app| {
        let (_, mb) = average_cycles(&base, &app, opts);
        let (_, mt) = average_cycles(&tfw, &app, opts);
        (
            app.name.clone(),
            mt.breakdown.reduction_vs(&mb.breakdown).to_vec(),
        )
    });
    let mut report = Report::new(
        "Fig. 12: latency component reduction by Trans-FW",
        &[
            "gmmu-queue",
            "gmmu-walk",
            "host-queue",
            "host-walk",
            "migration",
            "net+replay",
        ],
    );
    for (name, v) in rows {
        report.push(&name, v);
    }
    report.push_mean();
    report
}
