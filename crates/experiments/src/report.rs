//! Text-table reports that mirror the paper's figure series.

use std::fmt;

/// A labelled table of floating-point series: one row per application (or
/// sweep point), one column per configuration — the same layout the paper's
/// bar charts use.
///
/// # Examples
///
/// ```
/// use experiments::Report;
///
/// let mut r = Report::new("Fig. X: demo", &["speedup"]);
/// r.push("MT", vec![2.05]);
/// r.push_mean();
/// assert!(r.to_string().contains("MT"));
/// assert!(r.to_string().contains("mean"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Report title (figure number and caption).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// `(row label, one value per column)`.
    pub rows: Vec<(String, Vec<f64>)>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            headers: headers.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the value count does not match the header count.
    pub fn push(&mut self, label: &str, values: Vec<f64>) {
        assert_eq!(
            values.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push((label.to_string(), values));
    }

    /// Appends a `mean` row averaging each column over the existing rows.
    pub fn push_mean(&mut self) {
        if self.rows.is_empty() {
            return;
        }
        let cols = self.headers.len();
        let n = self.rows.len() as f64;
        let means: Vec<f64> = (0..cols)
            .map(|c| self.rows.iter().map(|(_, v)| v[c]).sum::<f64>() / n)
            .collect();
        self.rows.push(("mean".to_string(), means));
    }

    /// Value at `(row_label, column)` if present.
    pub fn value(&self, row_label: &str, column: usize) -> Option<f64> {
        self.rows
            .iter()
            .find(|(l, _)| l == row_label)
            .map(|(_, v)| v[column])
    }

    /// The mean-row value of `column`, if a mean row exists.
    pub fn mean(&self, column: usize) -> Option<f64> {
        self.value("mean", column)
    }

    /// Renders the report as CSV (header row, then one line per row) for
    /// plotting scripts.
    ///
    /// ```
    /// use experiments::Report;
    ///
    /// let mut r = Report::new("t", &["speedup"]);
    /// r.push("MT", vec![2.0]);
    /// assert_eq!(r.to_csv(), "label,speedup\nMT,2\n");
    /// ```
    pub fn to_csv(&self) -> String {
        let mut out = String::from("label");
        for h in &self.headers {
            out.push(',');
            out.push_str(&h.replace(',', ";"));
        }
        out.push('\n');
        for (label, values) in &self.rows {
            out.push_str(&label.replace(',', ";"));
            for v in values {
                out.push(',');
                out.push_str(&format!("{v}"));
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        let label_w = self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .chain([4])
            .max()
            .unwrap_or(4);
        let col_w: Vec<usize> = self.headers.iter().map(|h| h.len().max(8)).collect();
        write!(f, "{:label_w$}", "")?;
        for (h, w) in self.headers.iter().zip(&col_w) {
            write!(f, "  {h:>w$}")?;
        }
        writeln!(f)?;
        for (label, values) in &self.rows {
            write!(f, "{label:label_w$}")?;
            for (v, w) in values.iter().zip(&col_w) {
                write!(f, "  {v:>w$.3}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_lookup() {
        let mut r = Report::new("t", &["a", "b"]);
        r.push("x", vec![1.0, 2.0]);
        assert_eq!(r.value("x", 1), Some(2.0));
        assert_eq!(r.value("y", 0), None);
    }

    #[test]
    fn mean_row() {
        let mut r = Report::new("t", &["a"]);
        r.push("x", vec![1.0]);
        r.push("y", vec![3.0]);
        r.push_mean();
        assert_eq!(r.mean(0), Some(2.0));
    }

    #[test]
    fn mean_of_empty_is_noop() {
        let mut r = Report::new("t", &["a"]);
        r.push_mean();
        assert!(r.rows.is_empty());
    }

    #[test]
    fn display_contains_everything() {
        let mut r = Report::new("Fig. 42", &["speedup"]);
        r.push("MT", vec![2.055]);
        let text = r.to_string();
        assert!(text.contains("Fig. 42"));
        assert!(text.contains("speedup"));
        assert!(text.contains("2.055"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        Report::new("t", &["a", "b"]).push("x", vec![1.0]);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut r = Report::new("t", &["a,b"]);
        r.push("x,y", vec![1.5]);
        assert_eq!(r.to_csv(), "label,a;b\nx;y,1.5\n");
    }
}
