//! The shared run-specification builder: one path from a declarative spec
//! to a running [`System`].
//!
//! Historically every experiment bin hand-assembled its own
//! [`SystemConfig`] + workload pair; the four soak drivers had four private
//! copies of the same construction (plus duplicated PRT/FT soak sizing and
//! fault-plan matrices). A [`RunSpec`] is that construction, extracted: the
//! bins build `RunSpec`s, the `.scn` scenario compiler lowers scenario
//! cells into `RunSpec`s, and the `scnd` experiment server executes them —
//! all through [`RunSpec::run`], which is the *only* spec-to-`System` path.
//!
//! # Examples
//!
//! ```
//! use experiments::spec::RunSpec;
//! use mgpu::SystemConfig;
//! use workloads::WorkloadSpec;
//!
//! let spec = RunSpec::new(
//!     SystemConfig::with_transfw(),
//!     WorkloadSpec::app("FIR", 0.05).unwrap(),
//! )
//! .with_seed(7);
//! let m = spec.run().expect("clean run");
//! assert!(m.total_cycles > 0);
//! ```

use mgpu::{RunMetrics, System, SystemConfig, TransFwKnobs};
use sim_core::{FaultPlan, SimError};
use workloads::WorkloadSpec;

/// One fully resolved simulation run: the complete system configuration
/// (seed included) plus the workload to execute on it.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// Complete system configuration, including the seed, fault plan,
    /// placement policy and every subsystem knob.
    pub cfg: SystemConfig,
    /// The workload to run.
    pub workload: WorkloadSpec,
    /// Cell label for reports (defaults to the workload label).
    pub label: String,
}

impl RunSpec {
    /// Builds a spec from a configuration and workload.
    pub fn new(cfg: SystemConfig, workload: WorkloadSpec) -> Self {
        let label = workload.label();
        Self {
            cfg,
            workload,
            label,
        }
    }

    /// The same spec with a different cell label.
    pub fn labeled(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// The same spec with the simulation seed replaced.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// The same spec with the workload's work-scale factor replaced (the
    /// CLI override every soak bin exposes).
    pub fn with_scale(mut self, scale: f64) -> Self {
        self.workload = self.workload.with_scale(scale);
        self
    }

    /// The placement policy the run will use (for report labels).
    pub fn placement_kind(&self) -> uvm::PolicyKind {
        self.cfg.placement_kind()
    }

    /// Executes the run. This is the single spec-to-`System` path: every
    /// bin, scenario cell and server job funnels through here.
    ///
    /// # Errors
    ///
    /// Returns the simulator's error when the run fails a liveness or
    /// invariant check.
    pub fn run(&self) -> Result<RunMetrics, SimError> {
        System::new(self.cfg.clone()).run(self.workload.build().as_ref())
    }

    /// Executes the run, panicking with `context` on failure (the soak-bin
    /// idiom: any cell failure should abort the whole sweep loudly).
    ///
    /// # Panics
    ///
    /// Panics when the run fails a liveness or invariant check.
    pub fn run_or_panic(&self, context: &str) -> RunMetrics {
        self.run()
            .unwrap_or_else(|e| panic!("{context}: {} failed: {e}", self.label))
    }
}

/// Expands a compiled `.scn` scenario into the full run matrix: every
/// sweep cell ([`scn::Scenario::cells`], placement → workload → fault
/// order) at every seed, seeds innermost — the same nesting the hard-coded
/// experiment bins used, so a converted bin visits cells in its historical
/// order. Each [`RunSpec`] carries the cell's complete configuration with
/// the seed applied; running it through [`RunSpec::run`] keeps the
/// scenario path and the hard-coded path bit-identical (the golden
/// equivalence test pins this).
pub fn scenario_specs(sc: &scn::Scenario) -> Vec<RunSpec> {
    let mut specs = Vec::new();
    for cell in sc.cells() {
        for &seed in &sc.seeds {
            specs.push(
                RunSpec::new(cell.cfg.clone(), cell.workload.clone())
                    .labeled(cell.label.clone())
                    .with_seed(seed),
            );
        }
    }
    specs
}

/// Loads and compiles one named scenario from the repository's committed
/// `scenarios/` directory (`<name>.scn`, located via
/// [`scn::find_scenarios_dir`]).
///
/// # Errors
///
/// Returns a message naming the file on I/O or compile errors.
pub fn load_scenario(name: &str) -> Result<scn::Scenario, String> {
    let dir = scn::find_scenarios_dir()
        .ok_or_else(|| "no scenarios/ directory found above the working directory".to_string())?;
    let path = dir.join(format!("{name}.scn"));
    let src = std::fs::read_to_string(&path)
        .map_err(|e| format!("{}: {e}", path.display()))?;
    scn::compile_one(&src).map_err(|e| format!("{}:{e}", path.display()))
}

/// PRT/FT sized up for soak-scale migration churn: the paper-sized
/// 500-entry tables accumulate enough fingerprint-collision deletes at
/// soak scale to trip the post-run PRT audit, independent of the subsystem
/// under test. Shared by the overload and oversubscription soaks and the
/// committed soak scenarios.
pub fn soak_tables() -> TransFwKnobs {
    let mut k = TransFwKnobs::full();
    k.config.prt_fingerprints = 2_000;
    k.config.prt_fp_bits = 16;
    k.config.ft_fingerprints = 4_000;
    k.config.ft_fp_bits = 14;
    k
}

/// The soak drivers' shared fault-plan matrix: clean, 2% message loss, and
/// 2% drop/delay/duplicate chaos, with injector seeds derived from the run
/// seed so different seeds exercise different fault interleavings.
pub fn soak_fault_plans(seed: u64) -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("clean", FaultPlan::none()),
        ("loss", FaultPlan::message_loss(seed.wrapping_mul(31) + 7, 0.02)),
        (
            "chaos",
            FaultPlan::message_chaos(seed.wrapping_mul(37) + 11, 0.02, 200),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_one;

    #[test]
    fn run_spec_is_the_same_path_as_run_one() {
        let cfg = SystemConfig::with_transfw();
        let spec = RunSpec::new(cfg.clone(), WorkloadSpec::app("FIR", 0.05).unwrap())
            .with_seed(3);
        let direct = run_one(cfg, &*spec.workload.build(), 3);
        let via_spec = spec.run().expect("clean run");
        assert_eq!(direct, via_spec, "two paths to System must not exist");
    }

    #[test]
    fn with_seed_and_scale_round_trip() {
        let spec = RunSpec::new(
            SystemConfig::baseline(),
            WorkloadSpec::Burst { scale: 1.0, load: 2 },
        )
        .with_seed(9)
        .with_scale(0.05);
        assert_eq!(spec.cfg.seed, 9);
        assert_eq!(spec.workload.scale(), 0.05);
        assert_eq!(spec.label, "burst@2x");
    }

    #[test]
    fn soak_tables_upsizes_both_filters() {
        let k = soak_tables();
        assert!(k.config.prt_fingerprints > TransFwKnobs::full().config.prt_fingerprints);
        assert!(k.config.ft_fingerprints > TransFwKnobs::full().config.ft_fingerprints);
        assert!(k.gmmu_short_circuit && k.host_forwarding);
    }

    #[test]
    fn soak_fault_plans_are_seed_dependent() {
        let a = soak_fault_plans(1);
        let b = soak_fault_plans(2);
        assert_eq!(a.len(), 3);
        assert_eq!(a[0].1, FaultPlan::none());
        assert_ne!(a[1].1.seed, b[1].1.seed);
        assert_eq!(a[1].1.message_drop_prob, 0.02);
    }
}
