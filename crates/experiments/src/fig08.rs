//! Fig. 8: remote PW-cache hits — on a local page fault, could another
//! GPU's PW-cache have supplied (part of) the translation?

use mgpu::SystemConfig;

use crate::runner::{average_cycles, parallel_map};
use crate::{Report, RunOpts};

/// Remote hit rate (any level) and lower-level (L2/L3) hit rate per app.
pub fn run(opts: &RunOpts) -> Report {
    let cfg = SystemConfig::baseline();
    let rows = parallel_map(opts.apps(), |app| {
        let (_, m) = average_cycles(&cfg, &app, opts);
        (
            app.name.clone(),
            vec![m.remote_probe.hit_rate(), m.remote_probe.lower_hit_rate()],
        )
    });
    let mut report = Report::new(
        "Fig. 8: remote PW-cache hit rate of local page faults (baseline)",
        &["any level", "L2+L3"],
    );
    for (name, v) in rows {
        report.push(&name, v);
    }
    report.push_mean();
    report
}
