//! Fig. 28: comparison with ASAP PW-cache prefetching — Trans-FW and
//! Trans-FW+ASAP, both normalized to the ASAP baseline.

use mgpu::SystemConfig;
use ptw::Asap;

use crate::runner::{average_cycles, parallel_map};
use crate::{Report, RunOpts};

/// Speedups of Trans-FW and Trans-FW+ASAP over ASAP alone.
pub fn run(opts: &RunOpts) -> Report {
    let asap = SystemConfig::builder()
        .asap(Some(Asap::DEFAULT_ACCURACY))
        .build();
    let tfw = SystemConfig::with_transfw();
    let both = SystemConfig {
        asap: Some(Asap::DEFAULT_ACCURACY),
        ..SystemConfig::with_transfw()
    };
    let rows = parallel_map(opts.apps(), |app| {
        let (a, _) = average_cycles(&asap, &app, opts);
        let (t, _) = average_cycles(&tfw, &app, opts);
        let (b, _) = average_cycles(&both, &app, opts);
        (app.name.clone(), vec![a / t, a / b])
    });
    let mut report = Report::new(
        "Fig. 28: speedup over ASAP prefetching",
        &["Trans-FW", "Trans-FW+ASAP"],
    );
    for (name, v) in rows {
        report.push(&name, v);
    }
    report.push_mean();
    report
}
