//! Fig. 2: software (UVM-driver) versus hardware (host MMU) far-fault
//! handling — (a) scaling from 4 to 32 GPUs, (b) per-application speedup of
//! hardware over software at 4 GPUs.

use mgpu::{FarFaultMode, SystemConfig};

use crate::runner::{average_cycles, parallel_map};
use crate::{Report, RunOpts};

fn cfg(gpus: u16, mode: FarFaultMode) -> SystemConfig {
    SystemConfig::builder().gpus(gpus).fault_mode(mode).build()
}

/// Fig. 2(a): mean execution time of both modes at 4/8/16/32 GPUs,
/// normalized to the hardware approach with 4 GPUs (lower is better).
pub fn run_scaling(opts: &RunOpts) -> Report {
    let gpu_counts = [4u16, 8, 16, 32];
    let mut rows: Vec<(String, Vec<f64>)> = Vec::new();
    let mut hw4 = 0.0;
    for &g in &gpu_counts {
        let per_mode: Vec<f64> = [FarFaultMode::HostMmu, FarFaultMode::UvmDriver]
            .into_iter()
            .map(|mode| {
                let c = cfg(g, mode);
                let times = parallel_map(opts.apps(), |app| average_cycles(&c, &app, opts).0);
                sim_core::stats::mean(&times)
            })
            .collect();
        if g == 4 {
            hw4 = per_mode[0];
        }
        rows.push((format!("{g} GPUs"), per_mode));
    }
    let mut report = Report::new(
        "Fig. 2(a): SW vs HW far-fault handling, normalized to HW @ 4 GPUs",
        &["hardware", "software"],
    );
    for (label, v) in rows {
        report.push(&label, v.iter().map(|t| t / hw4).collect());
    }
    report
}

/// Fig. 2(b): hardware speedup over software per application at 4 GPUs.
pub fn run_per_app(opts: &RunOpts) -> Report {
    let hw = cfg(4, FarFaultMode::HostMmu);
    let sw = cfg(4, FarFaultMode::UvmDriver);
    let rows = parallel_map(opts.apps(), |app| {
        let (h, _) = average_cycles(&hw, &app, opts);
        let (s, _) = average_cycles(&sw, &app, opts);
        (app.name.clone(), s / h)
    });
    let mut report = Report::new(
        "Fig. 2(b): hardware speedup over software, 4 GPUs",
        &["hw/sw speedup"],
    );
    for (name, v) in rows {
        report.push(&name, vec![v]);
    }
    report.push_mean();
    report
}

/// Both panels.
pub fn run(opts: &RunOpts) -> Vec<Report> {
    vec![run_scaling(opts), run_per_app(opts)]
}
