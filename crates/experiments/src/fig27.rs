//! Fig. 27: 2 MB pages — Trans-FW vs the large-page baseline.

use mgpu::SystemConfig;

use crate::runner::{average_cycles, parallel_map};
use crate::{Report, RunOpts};

/// Trans-FW speedup when both systems use 2 MB pages.
pub fn run(opts: &RunOpts) -> Report {
    let base = SystemConfig::builder().page_size_bits(21).build();
    let tfw = SystemConfig {
        transfw: Some(mgpu::TransFwKnobs::full()),
        ..base.clone()
    };
    let rows = parallel_map(opts.apps(), |app| {
        let (b, _) = average_cycles(&base, &app, opts);
        let (t, _) = average_cycles(&tfw, &app, opts);
        (app.name.clone(), vec![b / t])
    });
    let mut report = Report::new("Fig. 27: Trans-FW speedup with 2 MB pages", &["speedup"]);
    for (name, v) in rows {
        report.push(&name, v);
    }
    report.push_mean();
    report
}
