//! Fig. 16: sensitivity to PRT/FT sizes — (250, 1000), (500, 2000) and
//! (1000, 4000) fingerprints.

use mgpu::{SystemConfig, TransFwKnobs};
use transfw::TransFwConfig;

use crate::runner::{average_cycles, parallel_map};
use crate::{Report, RunOpts};

fn cfg_with_tables(config: TransFwConfig) -> SystemConfig {
    SystemConfig {
        transfw: Some(TransFwKnobs {
            config,
            gmmu_short_circuit: true,
            host_forwarding: true,
        }),
        ..SystemConfig::baseline()
    }
}

/// Speedup over the baseline for each (PRT, FT) sizing.
pub fn run(opts: &RunOpts) -> Report {
    let base = SystemConfig::baseline();
    let cfgs = [
        cfg_with_tables(TransFwConfig::small()),
        cfg_with_tables(TransFwConfig::default()),
        cfg_with_tables(TransFwConfig::large()),
    ];
    let rows = parallel_map(opts.apps(), |app| {
        let (b, _) = average_cycles(&base, &app, opts);
        let v = cfgs
            .iter()
            .map(|c| b / average_cycles(c, &app, opts).0)
            .collect();
        (app.name.clone(), v)
    });
    let mut report = Report::new(
        "Fig. 16: Trans-FW speedup vs (PRT, FT) fingerprint counts",
        &["(250,1k)", "(500,2k)", "(1k,4k)"],
    );
    for (name, v) in rows {
        report.push(&name, v);
    }
    report.push_mean();
    report
}
