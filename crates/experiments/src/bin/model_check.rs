//! Model-checking certificate: exhaustively verifies the standard
//! small-scope configurations (all four placement policies plus the
//! component-failure dimension) and writes the per-config state-space
//! numbers to `BENCH_MODEL_CHECK.json`.
//!
//! Exits non-zero if any configuration fails to verify, printing the
//! minimized counterexample — this is the CI gate behind the forwarding
//! protocol's safety claims.
//!
//! ```sh
//! cargo run --release -p experiments --bin model_check [BUDGET]
//! ```

use mgpu::protocol::model::{ModelConfig, ProtocolState};
use simcheck::{check, CheckConfig, CheckOutcome};
use uvm::PolicyKind;

fn configs() -> Vec<(&'static str, ModelConfig)> {
    vec![
        (
            "first-touch-2g3v2r",
            ModelConfig::small(2, 3, 2, PolicyKind::FirstTouch),
        ),
        (
            "delayed-migration-2g3v2r",
            ModelConfig::small(2, 3, 2, PolicyKind::DelayedMigration { threshold: 2 }),
        ),
        (
            "read-duplicate-2g3v2r",
            ModelConfig::small(2, 3, 2, PolicyKind::ReadDuplicate),
        ),
        (
            "prefetch-2g3v2r",
            ModelConfig::small(2, 3, 2, PolicyKind::PrefetchNeighborhood { radius: 1 }),
        ),
        (
            "first-touch-failure-2g3v1r",
            ModelConfig::small(2, 3, 1, PolicyKind::FirstTouch).with_failure(0),
        ),
    ]
}

fn main() {
    let budget: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(CheckConfig::default().max_states);
    let check_cfg = CheckConfig {
        max_states: budget,
        ..CheckConfig::default()
    };

    let mut rows = Vec::new();
    let mut all_verified = true;
    for (label, cfg) in configs() {
        // simlint::allow(det-wallclock): harness timing, reported not simulated
        let start = std::time::Instant::now();
        let outcome = check(&ProtocolState::new(&cfg), &check_cfg);
        let ms = start.elapsed().as_millis();
        let s = outcome.stats();
        let verdict = match &outcome {
            CheckOutcome::Verified(_) => "verified",
            CheckOutcome::Violation {
                invariant,
                counterexample,
                ..
            } => {
                eprintln!("[model-check] {label}: VIOLATION {invariant}");
                for step in &counterexample.steps {
                    eprintln!("    {step}");
                }
                all_verified = false;
                "violation"
            }
            CheckOutcome::BudgetExhausted(_) => {
                eprintln!("[model-check] {label}: budget of {budget} states exhausted");
                all_verified = false;
                "budget-exhausted"
            }
        };
        eprintln!(
            "[model-check] {label:>26}: {verdict} — {} states ({} terminal, {} deduped, \
             {} POR-skipped), depth {}, {ms} ms",
            s.states_explored, s.terminal_states, s.states_deduped, s.por_skipped, s.max_depth
        );
        rows.push(format!(
            "  {{\"config\": \"{label}\", \"verdict\": \"{verdict}\", \
             \"states_explored\": {}, \"states_deduped\": {}, \"terminal_states\": {}, \
             \"por_skipped\": {}, \"max_depth\": {}, \"wall_ms\": {ms}}}",
            s.states_explored, s.states_deduped, s.terminal_states, s.por_skipped, s.max_depth
        ));
    }

    let json = format!("[\n{}\n]\n", rows.join(",\n"));
    std::fs::write("BENCH_MODEL_CHECK.json", &json).expect("write BENCH_MODEL_CHECK.json");
    eprintln!("[model-check] wrote BENCH_MODEL_CHECK.json");
    if !all_verified {
        std::process::exit(1);
    }
}
