//! Full reproduction driver: regenerates every table and figure and writes
//! the collected reports to a file (or stdout).
//!
//! ```sh
//! cargo run --release -p experiments --bin repro -- [--scale S] [--seeds N] [--out FILE] [--only figNN]
//! ```

use std::fmt::Write as _;

use experiments::{Report, RunOpts};

struct Args {
    scale: f64,
    seeds: u64,
    out: Option<String>,
    only: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 1.0,
        seeds: 2,
        out: None,
        only: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match flag.as_str() {
            "--scale" => args.scale = value("--scale").parse().expect("scale"),
            "--seeds" => args.seeds = value("--seeds").parse().expect("seeds"),
            "--out" => args.out = Some(value("--out")),
            "--only" => args.only = Some(value("--only")),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let opts = RunOpts {
        scale: args.scale,
        seeds: (1..=args.seeds.max(1)).collect(),
    };

    type Runner = fn(&RunOpts) -> Vec<Report>;
    type BoxedRunner = Box<dyn Fn(&RunOpts) -> Vec<Report>>;
    let single = |f: fn(&RunOpts) -> Report| move |o: &RunOpts| vec![f(o)];
    let experiments_list: Vec<(&str, BoxedRunner)> = vec![
        ("table3", Box::new(single(experiments::table3::run))),
        ("fig02", Box::new(experiments::fig02::run as Runner)),
        ("fig03", Box::new(single(experiments::fig03::run))),
        ("fig04", Box::new(single(experiments::fig04::run))),
        ("fig05_06", Box::new(experiments::fig05_06::run as Runner)),
        ("fig07", Box::new(single(experiments::fig07::run))),
        ("fig08", Box::new(single(experiments::fig08::run))),
        ("fig11", Box::new(single(experiments::fig11::run))),
        ("fig12", Box::new(single(experiments::fig12::run))),
        ("fig13", Box::new(single(experiments::fig13::run))),
        ("fig14", Box::new(single(experiments::fig14::run))),
        ("fig15", Box::new(single(experiments::fig15::run))),
        ("fig16", Box::new(single(experiments::fig16::run))),
        ("fig17", Box::new(single(experiments::fig17::run))),
        ("fig18", Box::new(single(experiments::fig18::run))),
        ("fig19", Box::new(single(experiments::fig19::run))),
        ("fig20", Box::new(single(experiments::fig20::run))),
        ("fig21", Box::new(single(experiments::fig21::run))),
        ("fig22", Box::new(single(experiments::fig22::run))),
        ("fig23", Box::new(single(experiments::fig23::run))),
        ("fig24", Box::new(single(experiments::fig24::run))),
        ("fig25", Box::new(single(experiments::fig25::run))),
        ("fig26", Box::new(single(experiments::fig26::run))),
        ("fig27", Box::new(single(experiments::fig27::run))),
        ("fig28", Box::new(single(experiments::fig28::run))),
        ("fig29", Box::new(single(experiments::fig29::run))),
        ("fig30", Box::new(single(experiments::fig30::run))),
    ];

    let mut doc = String::new();
    let _ = writeln!(
        doc,
        "# Trans-FW reproduction run (scale {}, {} seed(s))\n",
        opts.scale,
        opts.seeds.len()
    );
    for (name, runner) in &experiments_list {
        if let Some(only) = &args.only {
            if !name.starts_with(only.as_str()) {
                continue;
            }
        }
        eprintln!("running {name}…");
        // simlint::allow(det-wallclock): harness progress timing, never fed into the sim
        let t0 = std::time::Instant::now();
        for report in runner(&opts) {
            let _ = writeln!(doc, "```\n{report}```\n");
        }
        eprintln!("  {name} done in {:.1?}", t0.elapsed());
    }

    match args.out {
        Some(path) => {
            std::fs::write(&path, &doc).expect("write output file");
            eprintln!("wrote {path}");
        }
        None => print!("{doc}"),
    }
}
