//! Quick-look CLI: characterisation and headline numbers for every
//! application on one page.
//!
//! ```sh
//! cargo run --release -p experiments --bin overview [SCALE] [SEEDS]
//! ```

use experiments::runner::{average_cycles, parallel_map};
use experiments::RunOpts;
use mgpu::SystemConfig;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1.0);
    let seeds: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1);
    let opts = RunOpts {
        scale,
        seeds: (1..=seeds.max(1)).collect(),
    };

    let base = SystemConfig::baseline();
    let tfw = SystemConfig::with_transfw();

    println!(
        "{:7} {:>8} {:>7} {:>7} | {:>5} {:>5} {:>5} {:>5} {:>5} {:>5} | {:>7} {:>6} {:>6} | {:>7}",
        "app", "PFPKI", "l2hit", "deg4", "gq", "gw", "hq", "hw", "mig", "net", "fwd", "sup%", "probe", "speedup"
    );
    let rows = parallel_map(opts.apps(), |app| {
        let (bc, m) = average_cycles(&base, &app, &opts);
        let (tc, t) = average_cycles(&tfw, &app, &opts);
        (app.name.clone(), bc, m, tc, t)
    });
    let mut speedups = Vec::new();
    for (name, bc, m, tc, t) in rows {
        let f = m.breakdown.fractions();
        let deg = m.sharing.access_fraction_by_degree(4);
        let sup_rate = sim_core::stats::ratio(
            t.transfw.remote_supplied,
            t.transfw.remote_supplied + t.transfw.remote_failed,
        );
        let speedup = bc / tc;
        speedups.push(speedup);
        println!(
            "{:7} {:>8.2} {:>7.3} {:>7.2} | {:>5.2} {:>5.2} {:>5.2} {:>5.2} {:>5.2} {:>5.2} | {:>7} {:>6.2} {:>6.2} | {:>7.3}",
            name,
            m.pfpki(),
            m.l2_hit_rate(),
            deg[3],
            f[0], f[1], f[2], f[3], f[4], f[5],
            t.transfw.forwarded,
            sup_rate,
            m.remote_probe.hit_rate(),
            speedup,
        );
    }
    println!("mean speedup: {:.3}", sim_core::stats::mean(&speedups));
}
