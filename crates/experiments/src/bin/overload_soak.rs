//! Overload-soak driver: a seeded matrix of offered load (1x..8x on the
//! bursty open-loop workload) crossed with fault plans, with the full
//! overload-control subsystem enabled — admission watermarks, retry
//! budgets with deterministic backoff, and per-peer circuit breakers.
//!
//! Every cell runs under the invariant auditor inside `System::run`; this
//! driver additionally enforces the graceful-degradation contract:
//!
//! * demand walks are never rejected (only deferred), at any load;
//! * at the 8x points, shed traffic is ≥90% background class
//!   (prefetch/migration/remote-walk) whenever anything was shed at all;
//! * the demand-latency p99 bound stays under the run length.
//!
//! The per-run counters (including the `overload` block) are written to
//! `BENCH_OVERLOAD.json` (see `experiments::run_json`). The same matrix is
//! committed declaratively as `scenarios/overload_soak.scn` for the `scnd`
//! experiment server.
//!
//! ```sh
//! cargo run --release -p experiments --bin overload_soak [SCALE] [SEEDS]
//! ```

use experiments::runner::{parallel_map, runs_json};
use experiments::{soak_fault_plans, soak_tables, RunSpec};
use mgpu::{OverloadConfig, RunMetrics, SystemConfig};
use workloads::WorkloadSpec;

/// Watermarks tuned for soak-scale queues (the shipped defaults are sized
/// for full-scale runs and would never engage at a CI-sized scale).
fn soak_overload() -> OverloadConfig {
    OverloadConfig {
        host_queue_high: 10,
        host_queue_low: 3,
        gpu_queue_high: 6,
        gpu_queue_low: 2,
        mshr_high: 24,
        mshr_low: 8,
        backoff_base: 200,
        backoff_cap: 3_200,
        ..OverloadConfig::enabled()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(0.1);
    let seeds: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2);
    // simlint::allow(det-wallclock): harness progress timing, never fed into the sim
    let t0 = std::time::Instant::now();

    let mut cells = Vec::new();
    for seed in 1..=seeds.max(1) {
        for (plan_name, plan) in soak_fault_plans(seed) {
            for load in [1u64, 2, 4, 8] {
                cells.push((plan_name, plan.clone(), load, seed));
            }
        }
    }
    let total = cells.len();

    let runs: Vec<(u64, RunMetrics)> = parallel_map(cells, |(plan_name, plan, load, seed)| {
        let cfg = SystemConfig::builder()
            .gpus(4)
            .cus_per_gpu(4)
            .host_walkers(1)
            .seed(seed)
            .transfw(Some(soak_tables()))
            .placement(Some(uvm::PolicyKind::PrefetchNeighborhood { radius: 3 }))
            .overload(soak_overload())
            .faults(plan)
            .build();
        let spec = RunSpec::new(cfg, WorkloadSpec::Burst { scale, load })
            .labeled(format!("{plan_name}/{load}x seed {seed}"));
        let m = spec.run_or_panic("overload soak");
        assert_eq!(
            m.resilience.requests_retired, m.translation_requests,
            "{}: must retire every request exactly once",
            spec.label
        );
        let ov = &m.overload;
        assert_eq!(
            ov.demand_rejected, 0,
            "{}: demand must be deferred, never rejected: {ov:?}",
            spec.label
        );
        if load == 8 && ov.total_shed() > 0 {
            assert!(
                ov.background_shed() * 10 >= ov.total_shed() * 9,
                "{}: shed traffic must be ≥90% background: {ov:?}",
                spec.label
            );
        }
        let p99 = ov.demand_lat.percentile_bound(0.99);
        assert!(
            p99 < m.total_cycles,
            "{}: demand p99 bound {p99} exceeds run length {}",
            spec.label,
            m.total_cycles
        );
        eprintln!(
            "[overload-soak] {plan_name:>5}/{load}x seed {seed}: {} cycles, \
             shed={} (bg={}) deferred={} retries={} breaker_opens={} p99<={p99}",
            m.total_cycles,
            ov.total_shed(),
            ov.background_shed(),
            ov.demand_deferred,
            ov.retries_budgeted,
            ov.breaker_opens,
        );
        (seed, m)
    });

    let json = runs_json(&runs);
    std::fs::write("BENCH_OVERLOAD.json", &json).expect("write BENCH_OVERLOAD.json");
    eprintln!(
        "[overload-soak] {total} cells clean in {:.1?} (scale {scale}, {seeds} seed(s)) \
         -> BENCH_OVERLOAD.json",
        t0.elapsed(),
    );
}
