//! Policy-sweep driver: the 4×4 matrix of placement policies × access
//! patterns the placement-policy engine is evaluated on.
//!
//! The matrix is no longer hard-coded here: it is compiled from the
//! committed `scenarios/policy_sweep.scn` scenario, and the golden
//! equivalence test (`crates/experiments/tests/scenario_golden.rs`) pins
//! that file to the historical configuration bit-for-bit. The CLI scale
//! and seed-count arguments override the scenario's defaults.
//!
//! Every run executes under the invariant auditor inside `System::run`, and
//! each cell additionally enforces retire-exactly-once. Per-cell migration,
//! replication and prefetch counters plus the mean translation latency are
//! written to `BENCH_POLICY_SWEEP.json`, with the full `run_json` metrics
//! object embedded per cell.
//!
//! ```sh
//! cargo run --release -p experiments --bin policy_sweep [SCALE] [SEEDS]
//! ```

use experiments::runner::{parallel_map, run_json};
use experiments::{load_scenario, scenario_specs};
use mgpu::RunMetrics;
use uvm::PolicyKind;

/// One sweep cell: the headline placement counters and latency next to the
/// full metrics object.
fn cell_json(policy: PolicyKind, seed: u64, m: &RunMetrics) -> String {
    let mean_translation_latency = if m.translation_requests == 0 {
        0.0
    } else {
        m.breakdown.total() as f64 / m.translation_requests as f64
    };
    format!(
        concat!(
            "{{\"policy\":\"{}\",\"app\":\"{}\",\"seed\":{},",
            "\"migrations\":{},\"replications\":{},\"collapses\":{},",
            "\"prefetched_pages\":{},\"remote_maps\":{},\"promotions\":{},",
            "\"mean_translation_latency\":{:.3},",
            "\"mean_migration_latency\":{:.3},",
            "\"total_cycles\":{},\"metrics\":{}}}"
        ),
        policy.name(),
        m.app,
        seed,
        m.directory.migrations,
        m.directory.replications,
        m.placement.collapses,
        m.placement.prefetched_pages,
        m.directory.remote_maps,
        m.directory.promotions,
        mean_translation_latency,
        m.placement.migration_latency.mean(),
        m.total_cycles,
        run_json(m, seed),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale: Option<f64> = args.get(1).and_then(|s| s.parse().ok());
    let seeds: Option<u64> = args.get(2).and_then(|s| s.parse().ok());
    // simlint::allow(det-wallclock): harness progress timing, never fed into the sim
    let t0 = std::time::Instant::now();

    let mut sc =
        load_scenario("policy_sweep").unwrap_or_else(|e| panic!("policy sweep: {e}"));
    if let Some(n) = seeds {
        sc.seeds = (1..=n.max(1)).collect();
    }
    let digest = sc.digest_hex();
    let mut specs = scenario_specs(&sc);
    if let Some(s) = scale {
        specs = specs.into_iter().map(|spec| spec.with_scale(s)).collect();
    }
    let total = specs.len();

    let rows: Vec<String> = parallel_map(specs, |spec| {
        let policy = spec.placement_kind();
        let seed = spec.cfg.seed;
        let m = spec.run_or_panic("policy sweep");
        assert_eq!(
            m.resilience.requests_retired, m.translation_requests,
            "{} seed {seed}: must retire every request exactly once",
            spec.label
        );
        eprintln!(
            "[policy-sweep] {:>21}/{:<10} seed {seed}: {} cycles, \
             migrations={} replications={} collapses={} prefetched={}",
            policy.name(),
            m.app,
            m.total_cycles,
            m.directory.migrations,
            m.directory.replications,
            m.placement.collapses,
            m.placement.prefetched_pages,
        );
        cell_json(policy, seed, &m)
    });

    let json = format!("[{}]", rows.join(","));
    std::fs::write("BENCH_POLICY_SWEEP.json", &json).expect("write BENCH_POLICY_SWEEP.json");
    eprintln!(
        "[policy-sweep] {total} cells clean in {:.1?} (scenario policy_sweep, digest {digest}) \
         -> BENCH_POLICY_SWEEP.json",
        t0.elapsed()
    );
}
