//! Policy-sweep driver: the 4×4 matrix of placement policies × access
//! patterns the placement-policy engine is evaluated on.
//!
//! Policies: first-touch (the legacy default), delayed migration
//! (threshold 4), read duplication, and tree prefetch (radius 3). Patterns:
//! AES (partitioned — policies should be near-inert), KM (hot shared
//! centroids), PR (random graph chasing) and PhaseShift (the hot GPU moves
//! mid-run — the adversarial input for migration).
//!
//! Every run executes under the invariant auditor inside `System::run`, and
//! each cell additionally enforces retire-exactly-once. Per-cell migration,
//! replication and prefetch counters plus the mean translation latency are
//! written to `BENCH_POLICY_SWEEP.json`, with the full `run_json` metrics
//! object embedded per cell.
//!
//! ```sh
//! cargo run --release -p experiments --bin policy_sweep [SCALE] [SEEDS]
//! ```

use experiments::runner::{parallel_map, run_json};
use mgpu::workload::Workload;
use mgpu::{RunMetrics, System, SystemConfig};
use uvm::PolicyKind;
use workloads::phase_shift;

fn policies() -> Vec<PolicyKind> {
    vec![
        PolicyKind::FirstTouch,
        PolicyKind::DelayedMigration { threshold: 4 },
        PolicyKind::ReadDuplicate,
        PolicyKind::PrefetchNeighborhood { radius: 3 },
    ]
}

fn pattern(name: &str, scale: f64) -> Box<dyn Workload> {
    if name == "PhaseShift" {
        Box::new(phase_shift().scaled(scale))
    } else {
        Box::new(
            workloads::app(name)
                .unwrap_or_else(|| panic!("unknown app {name}"))
                .scaled(scale),
        )
    }
}

/// One sweep cell: the headline placement counters and latency next to the
/// full metrics object.
fn cell_json(policy: PolicyKind, seed: u64, m: &RunMetrics) -> String {
    let mean_translation_latency = if m.translation_requests == 0 {
        0.0
    } else {
        m.breakdown.total() as f64 / m.translation_requests as f64
    };
    format!(
        concat!(
            "{{\"policy\":\"{}\",\"app\":\"{}\",\"seed\":{},",
            "\"migrations\":{},\"replications\":{},\"collapses\":{},",
            "\"prefetched_pages\":{},\"remote_maps\":{},\"promotions\":{},",
            "\"mean_translation_latency\":{:.3},",
            "\"mean_migration_latency\":{:.3},",
            "\"total_cycles\":{},\"metrics\":{}}}"
        ),
        policy.name(),
        m.app,
        seed,
        m.directory.migrations,
        m.directory.replications,
        m.placement.collapses,
        m.placement.prefetched_pages,
        m.directory.remote_maps,
        m.directory.promotions,
        mean_translation_latency,
        m.placement.migration_latency.mean(),
        m.total_cycles,
        run_json(m, seed),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(0.1);
    let seeds: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2);
    // simlint::allow(det-wallclock): harness progress timing, never fed into the sim
    let t0 = std::time::Instant::now();

    let mut cells = Vec::new();
    for policy in policies() {
        for app_name in ["AES", "KM", "PR", "PhaseShift"] {
            for seed in 1..=seeds.max(1) {
                cells.push((policy, app_name, seed));
            }
        }
    }
    let total = cells.len();

    let rows: Vec<String> = parallel_map(cells, |(policy, app_name, seed)| {
        let app = pattern(app_name, scale);
        let mut cfg = SystemConfig::with_transfw();
        cfg.seed = seed;
        cfg.placement = Some(policy);
        let m = System::new(cfg).run(app.as_ref()).unwrap_or_else(|e| {
            panic!(
                "policy sweep: {}/{app_name} seed {seed} failed: {e}",
                policy.name()
            );
        });
        assert_eq!(
            m.resilience.requests_retired, m.translation_requests,
            "{}/{app_name} seed {seed}: must retire every request exactly once",
            policy.name()
        );
        eprintln!(
            "[policy-sweep] {:>21}/{app_name:<10} seed {seed}: {} cycles, \
             migrations={} replications={} collapses={} prefetched={}",
            policy.name(),
            m.total_cycles,
            m.directory.migrations,
            m.directory.replications,
            m.placement.collapses,
            m.placement.prefetched_pages,
        );
        cell_json(policy, seed, &m)
    });

    let json = format!("[{}]", rows.join(","));
    std::fs::write("BENCH_POLICY_SWEEP.json", &json).expect("write BENCH_POLICY_SWEEP.json");
    eprintln!(
        "[policy-sweep] {total} cells clean in {:.1?} (scale {scale}, {seeds} seed(s)) -> BENCH_POLICY_SWEEP.json",
        t0.elapsed()
    );
}
