//! Chaos-soak driver: a seeded, time-boxed matrix of component failures
//! (GPU offline, link partitions, host-MMU failover, all of them at once on
//! top of message loss) over a sample of the Table III applications.
//!
//! Every run executes under the invariant auditor inside `System::run`, and
//! this driver additionally enforces retire-exactly-once and completion for
//! each cell. The per-run robustness counters are written to
//! `BENCH_CHAOS_SOAK.json` (see `experiments::run_json`). The same matrix
//! is committed declaratively as `scenarios/chaos_soak.scn` for the `scnd`
//! experiment server.
//!
//! ```sh
//! cargo run --release -p experiments --bin chaos_soak [SCALE] [SEEDS] [--sanitize]
//! ```
//!
//! `--sanitize` additionally runs every cell under the shadow sanitizer
//! (`SystemConfig::sanitize`): the model checker's safety invariants are
//! probed at every ownership commit and retire, and any finding fails the
//! run. The sanitizer is read-only, so metrics are bit-identical either
//! way.

use experiments::runner::{parallel_map, runs_json};
use experiments::RunSpec;
use mgpu::{ComponentEvent, FaultPlan, RunMetrics, SystemConfig};
use workloads::WorkloadSpec;

fn scenarios() -> Vec<(&'static str, FaultPlan)> {
    let offline = |gpu, at_cycle, duration| ComponentEvent::GpuOffline {
        gpu,
        at_cycle,
        duration,
    };
    let partition = |a, b, at_cycle, duration| ComponentEvent::LinkPartition {
        a,
        b,
        at_cycle,
        duration,
    };
    vec![
        (
            "gpu-offline",
            FaultPlan::components(vec![offline(1, 2_000, 5_000)]),
        ),
        (
            "double-offline",
            FaultPlan::components(vec![offline(0, 1_000, 3_000), offline(3, 4_000, 3_000)]),
        ),
        (
            "link-partition",
            FaultPlan::components(vec![
                partition(0, 1, 500, 10_000),
                partition(2, 3, 2_000, 10_000),
            ]),
        ),
        (
            "host-failover",
            FaultPlan::components(vec![ComponentEvent::HostMmuFailover {
                at_cycle: 1_500,
                stall: 4_000,
            }]),
        ),
        ("everything", {
            let mut plan = FaultPlan::message_loss(23, 0.01);
            plan.component_events = vec![
                offline(2, 2_000, 4_000),
                partition(0, 3, 1_000, 8_000),
                ComponentEvent::HostMmuFailover {
                    at_cycle: 5_000,
                    stall: 2_000,
                },
            ];
            plan
        }),
    ]
}

fn main() {
    let mut args: Vec<String> = std::env::args().collect();
    let sanitize = args.iter().any(|a| a == "--sanitize");
    args.retain(|a| a != "--sanitize");
    let scale: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(0.1);
    let seeds: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2);
    // simlint::allow(det-wallclock): harness progress timing, never fed into the sim
    let t0 = std::time::Instant::now();

    let mut cells = Vec::new();
    for (scenario, plan) in scenarios() {
        for app_name in ["KM", "MT", "PR", "SC"] {
            for seed in 1..=seeds.max(1) {
                cells.push((scenario, plan.clone(), app_name, seed));
            }
        }
    }
    let total = cells.len();

    let runs: Vec<(u64, RunMetrics)> = parallel_map(cells, |(scenario, plan, app_name, seed)| {
        let workload = WorkloadSpec::app(app_name, scale)
            .unwrap_or_else(|| panic!("unknown app {app_name}"));
        let expected_insns = {
            let app = workloads::app(app_name).expect("known app").scaled(scale);
            (app.ctas * app.accesses_per_cta) as u64
        };
        let mut cfg = SystemConfig::with_transfw();
        cfg.faults = plan;
        cfg.checkpoint_interval = Some(2_000);
        cfg.sanitize = sanitize;
        let spec = RunSpec::new(cfg, workload)
            .labeled(format!("{scenario}/{app_name} seed {seed}"))
            .with_seed(seed);
        let m = spec.run_or_panic("chaos soak");
        assert_eq!(
            m.resilience.requests_retired, m.translation_requests,
            "{}: must retire every request exactly once",
            spec.label
        );
        assert_eq!(
            m.mem_instructions, expected_insns,
            "{}: lost instructions",
            spec.label
        );
        eprintln!(
            "[chaos-soak] {scenario:>14}/{app_name:<3} seed {seed}: {} cycles, \
             offline={} reroutes={} migrations={} checkpoints={}",
            m.total_cycles,
            m.recovery.gpu_offline_events,
            m.recovery.rerouted_messages,
            m.recovery.ownership_migrations,
            m.recovery.checkpoints_taken,
        );
        (seed, m)
    });

    let json = runs_json(&runs);
    std::fs::write("BENCH_CHAOS_SOAK.json", &json).expect("write BENCH_CHAOS_SOAK.json");
    eprintln!(
        "[chaos-soak] {total} cells clean in {:.1?} (scale {scale}, {seeds} seed(s){}) -> BENCH_CHAOS_SOAK.json",
        t0.elapsed(),
        if sanitize { ", sanitized" } else { "" },
    );
}
