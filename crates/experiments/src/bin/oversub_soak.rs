//! Oversubscription-soak driver: a seeded matrix of oversubscription ratio
//! (1x..4x of per-GPU capacity on the working-set-shift workload) crossed
//! with both eviction policies and fault plans, with the eviction engine
//! and thrash detector enabled throughout (overload control rides along at
//! its shipped watermarks, so the two pressure subsystems are exercised
//! together).
//!
//! Every cell runs under the invariant auditor inside `System::run` —
//! which already enforces retire-exactly-once and table agreement, and the
//! eviction engine's victim selection structurally exempts pinned
//! (PRT-pending / in-flight-forwarded) pages, a discipline `simcheck`
//! verifies exhaustively at small scope. This driver additionally enforces
//! the graceful-degradation contract at soak scale:
//!
//! * every translation request retires exactly once, eviction on;
//! * demand walks are never rejected, at any oversubscription ratio;
//! * the demand-latency p99 bound stays under the run length (pressure
//!   degrades throughput, it must not thrash-collapse the run);
//! * at the 4x points capacity pressure is real: evictions happened.
//!
//! The per-run counters (including the `oversub` block) are written to
//! `BENCH_OVERSUB.json` (see `experiments::run_json`). The same matrix is
//! committed declaratively as `scenarios/oversub_soak.scn` for the `scnd`
//! experiment server.
//!
//! ```sh
//! cargo run --release -p experiments --bin oversub_soak [SCALE] [SEEDS]
//! ```

use experiments::runner::{parallel_map, runs_json};
use experiments::{soak_fault_plans, soak_tables, RunSpec};
use mgpu::workload::Workload;
use mgpu::{OverloadConfig, OversubConfig, RunMetrics, SystemConfig};
use uvm::EvictPolicy;
use workloads::WorkloadSpec;

/// Oversubscription tuned for soak-scale runs: the shipped defaults size
/// the thrash gate for full-scale refault storms and would never engage at
/// a CI-sized scale.
fn soak_oversub(capacity: usize, policy: EvictPolicy) -> OversubConfig {
    OversubConfig {
        policy,
        thrash_high: 6,
        thrash_low: 2,
        refault_window: 20_000,
        hot_protect: 16,
        ..OversubConfig::with_capacity(capacity)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(0.1);
    let seeds: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2);
    // simlint::allow(det-wallclock): harness progress timing, never fed into the sim
    let t0 = std::time::Instant::now();

    const GPUS: u16 = 4;
    let footprint = workloads::oversub_shift().footprint_pages() as usize;

    let mut cells = Vec::new();
    for seed in 1..=seeds.max(1) {
        for (plan_name, plan) in soak_fault_plans(seed) {
            for ratio in [1usize, 2, 3, 4] {
                for policy in [EvictPolicy::Lru, EvictPolicy::AccessCounter] {
                    cells.push((plan_name, plan.clone(), ratio, policy, seed));
                }
            }
        }
    }
    let total = cells.len();

    let runs: Vec<(u64, RunMetrics)> =
        parallel_map(cells, |(plan_name, plan, ratio, policy, seed)| {
            // ratio x oversubscription: the aggregate device memory holds
            // 1/ratio of the footprint, split evenly across the GPUs.
            let capacity = footprint.div_ceil(GPUS as usize * ratio);
            let cfg = SystemConfig::builder()
                .gpus(GPUS)
                .cus_per_gpu(4)
                .host_walkers(1)
                .seed(seed)
                .transfw(Some(soak_tables()))
                .placement(Some(uvm::PolicyKind::PrefetchNeighborhood { radius: 3 }))
                .overload(OverloadConfig::enabled())
                .oversub(soak_oversub(capacity, policy))
                .faults(plan)
                .build();
            let spec = RunSpec::new(cfg, WorkloadSpec::OversubShift { scale })
                .labeled(format!("{plan_name}/{ratio}x/{} seed {seed}", policy.name()));
            let m = spec.run_or_panic("oversub soak");
            assert_eq!(
                m.resilience.requests_retired, m.translation_requests,
                "{}: must retire every request exactly once with eviction on",
                spec.label
            );
            assert_eq!(
                m.overload.demand_rejected, 0,
                "{}: demand must never be rejected under memory pressure",
                spec.label
            );
            // The histogram reports power-of-two bucket bounds, so a smoke
            // run shorter than one bucket (64Ki cycles) can legitimately
            // report a bound past its own length; above that the bound must
            // stay under the run length or the GPUs spent the run faulting.
            let p99 = m.overload.demand_lat.percentile_bound(0.99);
            assert!(
                p99 < m.total_cycles.max(65_536),
                "{}: demand p99 bound {p99} exceeds run length {} (thrash collapse)",
                spec.label,
                m.total_cycles
            );
            let os = &m.oversub;
            if ratio >= 4 {
                assert!(
                    os.evictions > 0,
                    "{}: 4x oversubscription must force evictions: {os:?}",
                    spec.label
                );
            }
            eprintln!(
                "[oversub-soak] {plan_name:>5}/{ratio}x/{:>14} seed {seed}: {} cycles, \
                 evict={} refault={} trips={} pinned_skips={} fallbacks={} shed={} p99<={p99}",
                policy.name(),
                m.total_cycles,
                os.evictions,
                os.refaults,
                os.thrash_trips,
                os.pinned_skips,
                os.direct_fallbacks,
                os.background_shed,
            );
            (seed, m)
        });

    let json = runs_json(&runs);
    std::fs::write("BENCH_OVERSUB.json", &json).expect("write BENCH_OVERSUB.json");
    eprintln!(
        "[oversub-soak] {total} cells clean in {:.1?} (scale {scale}, {seeds} seed(s)) \
         -> BENCH_OVERSUB.json",
        t0.elapsed(),
    );
}
