//! Fig. 4: room for improvement — speedups from impractical idealisations
//! (infinite PW-cache, infinite walk threads, zero migration latency,
//! no local page faults) over the baseline.

use mgpu::{IdealKnobs, PwcKind, SystemConfig};

use crate::runner::{average_cycles, parallel_map};
use crate::{Report, RunOpts};

fn ideal_cfgs() -> Vec<(&'static str, SystemConfig)> {
    let base = SystemConfig::baseline();
    vec![
        (
            "inf-pwc",
            SystemConfig {
                pwc_kind: PwcKind::Infinite,
                ..base.clone()
            },
        ),
        (
            "inf-walkers",
            SystemConfig {
                ideal: IdealKnobs {
                    infinite_walkers: true,
                    ..Default::default()
                },
                ..base.clone()
            },
        ),
        (
            "no-mig-lat",
            SystemConfig {
                ideal: IdealKnobs {
                    zero_migration_latency: true,
                    ..Default::default()
                },
                ..base.clone()
            },
        ),
        (
            "no-faults",
            SystemConfig {
                ideal: IdealKnobs {
                    no_local_faults: true,
                    ..Default::default()
                },
                ..base
            },
        ),
    ]
}

/// Speedup of each idealisation over the baseline, per application.
pub fn run(opts: &RunOpts) -> Report {
    let base = SystemConfig::baseline();
    let cfgs = ideal_cfgs();
    let headers: Vec<&str> = cfgs.iter().map(|(n, _)| *n).collect();
    let rows = parallel_map(opts.apps(), |app| {
        let (b, _) = average_cycles(&base, &app, opts);
        let v: Vec<f64> = cfgs
            .iter()
            .map(|(_, c)| {
                let (t, _) = average_cycles(c, &app, opts);
                b / t
            })
            .collect();
        (app.name.clone(), v)
    });
    let mut report = Report::new(
        "Fig. 4: idealised speedups over baseline",
        &headers,
    );
    for (name, v) in rows {
        report.push(&name, v);
    }
    report.push_mean();
    report
}
