//! Table III: the application suite with measured PFPKI and access
//! patterns.

use mgpu::SystemConfig;

use crate::runner::{average_cycles, parallel_map};
use crate::{Report, RunOpts};

/// Measured PFPKI and L2 TLB hit rate per application (baseline).
pub fn run(opts: &RunOpts) -> Report {
    let cfg = SystemConfig::baseline();
    let rows = parallel_map(opts.apps(), |app| {
        let (_, m) = average_cycles(&cfg, &app, opts);
        (app.name.clone(), vec![m.pfpki(), m.l2_hit_rate()])
    });
    let mut report = Report::new(
        "Table III: measured PFPKI and L2 TLB hit rate (baseline)",
        &["PFPKI", "L2 hit"],
    );
    for (name, v) in rows {
        report.push(&name, v);
    }
    report
}
