//! Fig. 24: reads versus writes to cross-GPU shared pages — why read
//! replication cannot help write-intensive applications.

use mgpu::SystemConfig;

use crate::runner::{average_cycles, parallel_map};
use crate::{Report, RunOpts};

/// Read and write fractions of accesses to shared pages per application.
pub fn run(opts: &RunOpts) -> Report {
    let cfg = SystemConfig::baseline();
    let rows = parallel_map(opts.apps(), |app| {
        let (_, m) = average_cycles(&cfg, &app, opts);
        let (r, w) = m.sharing.shared_rw();
        let total = (r + w).max(1) as f64;
        (app.name.clone(), vec![r as f64 / total, w as f64 / total])
    });
    let mut report = Report::new(
        "Fig. 24: read/write split of shared-page accesses",
        &["reads", "writes"],
    );
    for (name, v) in rows {
        report.push(&name, v);
    }
    report.push_mean();
    report
}
