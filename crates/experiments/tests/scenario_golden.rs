//! Golden equivalence: the committed `.scn` scenarios must reproduce the
//! historical hard-coded experiment configurations bit-for-bit.
//!
//! The policy-sweep bin used to assemble its 4×4 matrix by hand
//! (`SystemConfig::with_transfw()` + seed + placement); it now compiles
//! `scenarios/policy_sweep.scn`. These tests pin the two paths together:
//! every cell's `SystemConfig` and workload must compare equal to the
//! hand-built originals, and actually *running* a sample of cells through
//! both paths must produce `RunMetrics` that compare equal — the simulator
//! is deterministic, so metric equality is bit-identity.

use experiments::{load_scenario, scenario_specs, RunSpec};
use mgpu::{System, SystemConfig};
use uvm::PolicyKind;
use workloads::WorkloadSpec;

/// The policy_sweep bin's historical matrix, reassembled by hand exactly as
/// the pre-scenario code did.
fn hand_built_policy_sweep() -> Vec<RunSpec> {
    let policies = [
        PolicyKind::FirstTouch,
        PolicyKind::DelayedMigration { threshold: 4 },
        PolicyKind::ReadDuplicate,
        PolicyKind::PrefetchNeighborhood { radius: 3 },
    ];
    let scale = 0.1;
    let seeds = 2u64;
    let mut specs = Vec::new();
    for policy in policies {
        for app_name in ["AES", "KM", "PR", "PhaseShift"] {
            for seed in 1..=seeds {
                let workload = if app_name == "PhaseShift" {
                    WorkloadSpec::PhaseShift { scale }
                } else {
                    WorkloadSpec::app(app_name, scale).expect("known app")
                };
                let mut cfg = SystemConfig::with_transfw();
                cfg.seed = seed;
                cfg.placement = Some(policy);
                specs.push(RunSpec::new(cfg, workload));
            }
        }
    }
    specs
}

#[test]
fn policy_sweep_scenario_matches_the_hard_coded_matrix() {
    let sc = load_scenario("policy_sweep").expect("committed scenario compiles");
    let compiled = scenario_specs(&sc);
    let hand = hand_built_policy_sweep();
    assert_eq!(
        compiled.len(),
        hand.len(),
        "4 policies x 4 apps x 2 seeds = 32 runs"
    );
    for (c, h) in compiled.iter().zip(&hand) {
        assert_eq!(
            c.cfg, h.cfg,
            "{}: scenario config must equal the hand-built config",
            c.label
        );
        assert_eq!(
            c.workload, h.workload,
            "{}: scenario workload must equal the hand-built workload",
            c.label
        );
    }
}

#[test]
fn policy_sweep_labels_are_stable() {
    let sc = load_scenario("policy_sweep").expect("committed scenario compiles");
    let labels: Vec<String> = sc.cells().iter().map(|c| c.label.clone()).collect();
    assert_eq!(labels.len(), 16);
    assert_eq!(labels[0], "first-touch/AES");
    assert_eq!(labels[15], "prefetch-neighborhood/PhaseShift");
}

/// Running a cell through the scenario path and through the historical
/// direct path must produce identical metrics. A sample of three cells
/// (one per interesting policy) at a reduced scale keeps this fast.
#[test]
fn scenario_runs_are_bit_identical_to_direct_runs() {
    let sc = load_scenario("policy_sweep").expect("committed scenario compiles");
    let specs = scenario_specs(&sc);
    // first-touch/AES seed 1, delayed-migration/KM seed 1,
    // prefetch-neighborhood/PhaseShift seed 2 (indices in cells x seeds
    // order: cell*2 + (seed-1)).
    for idx in [0usize, 2 * 2, 15 * 2 + 1] {
        let spec = specs[idx].clone().with_scale(0.05);
        let via_scenario = spec.run().expect("scenario path runs clean");
        let direct = System::new(spec.cfg.clone())
            .run(spec.workload.build().as_ref())
            .expect("direct path runs clean");
        assert_eq!(
            via_scenario, direct,
            "{}: the scenario path and the direct path must be bit-identical",
            spec.label
        );
    }
}

/// The digest is stable across compile-print-compile and sensitive to a
/// single-token semantic edit (the determinism-backed cache key contract).
#[test]
fn committed_scenario_digest_round_trips_and_tracks_semantics() {
    let sc = load_scenario("policy_sweep").expect("committed scenario compiles");
    let reparsed = scn::compile_one(&sc.canonical()).expect("canonical form recompiles");
    assert_eq!(sc, reparsed, "canonical print must round-trip the IR");
    assert_eq!(sc.digest(), reparsed.digest());

    let mut edited = sc.clone();
    edited.seeds = vec![1, 2, 3];
    assert_ne!(
        sc.digest(),
        edited.digest(),
        "a semantic edit must produce a new digest"
    );
}

/// Every committed scenario in the repo compiles, has at least one cell,
/// and round-trips through its canonical form.
#[test]
fn every_committed_scenario_compiles_and_round_trips() {
    let dir = scn::find_scenarios_dir().expect("scenarios/ directory exists");
    let mut paths: Vec<_> = std::fs::read_dir(&dir)
        .expect("readable scenarios dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "scn"))
        .collect();
    paths.sort();
    assert!(
        paths.len() >= 4,
        "expected the four committed experiment scenarios, found {paths:?}"
    );
    for path in paths {
        let src = std::fs::read_to_string(&path).expect("readable scenario");
        let scenarios =
            scn::compile(&src).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(!scenarios.is_empty(), "{}: no scenarios", path.display());
        for sc in scenarios {
            assert!(!sc.cells().is_empty(), "{}: scenario with no cells", sc.name);
            let reparsed = scn::compile_one(&sc.canonical())
                .unwrap_or_else(|e| panic!("{} canonical: {e}", sc.name));
            assert_eq!(sc, reparsed, "{}: canonical round-trip", sc.name);
            assert_eq!(sc.digest(), reparsed.digest());
        }
    }
}
