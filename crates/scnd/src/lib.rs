//! `scnd` — simulation-as-a-service for the Trans-FW simulator.
//!
//! The daemon accepts `.scn` scenario text (see the `scn` crate) over a
//! line-delimited JSON TCP protocol, runs each compiled scenario's full
//! cell × seed matrix through the shared `experiments::RunSpec` path, and
//! caches results keyed by the scenario's semantic digest. Because the
//! simulator is deterministic and the digest is taken over the scenario's
//! *lowered* IR (formatting never changes it), a cache hit is guaranteed to
//! equal a fresh run bit-for-bit — the cache is a pure latency
//! optimisation, never an approximation.
//!
//! Admission control reuses the simulator's own overload primitives
//! ([`sim_core::Hysteresis`] + [`sim_core::TokenBucket`]): when the bounded
//! queue fills, further submissions are shed with a deterministic error
//! instead of queuing without bound — the daemon practices the same
//! graceful degradation the paper's forwarding path does.
//!
//! # Examples
//!
//! ```
//! use scnd::{serve, request_once, DaemonConfig};
//!
//! let server = serve(&DaemonConfig::default(), 0).expect("bind");
//! let req = r#"{"op":"stats"}"#;
//! let resp = request_once(server.addr(), req).expect("round trip");
//! assert!(resp.contains("\"ok\":true"));
//! server.shutdown();
//! ```

pub mod client;
pub mod jobs;
pub mod json;
pub mod server;

pub use client::{request_once, Client};
pub use jobs::{Daemon, DaemonConfig, JobView, Stats, SubmitOutcome};
pub use json::Value;
pub use server::{handle_request, serve, Server};
