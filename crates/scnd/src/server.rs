//! The TCP front end: line-delimited JSON requests over `127.0.0.1`.
//!
//! Each connection is served by its own thread; each request line yields
//! exactly one response line. The protocol:
//!
//! | op         | request fields                      | response |
//! |------------|-------------------------------------|----------|
//! | `submit`   | `scenario` (text), `seed`?, `wait`? | id / cached result / shed |
//! | `status`   | `id`                                | lifecycle state |
//! | `result`   | `id`, `wait`?                       | runs payload or pending |
//! | `batch`    | `scenarios` (array of text), `seed`?| one submit response each |
//! | `stats`    | —                                   | counter snapshot |
//! | `shutdown` | —                                   | ack, then the daemon stops |

use crate::jobs::{Daemon, DaemonConfig, JobView, SubmitOutcome};
use crate::json::{quote, Value};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running daemon bound to a local TCP port.
pub struct Server {
    daemon: Arc<Daemon>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
}

/// Binds `127.0.0.1:port` (0 picks a free port) and starts serving.
///
/// # Errors
///
/// Returns the bind error if the port is unavailable.
pub fn serve(cfg: &DaemonConfig, port: u16) -> std::io::Result<Server> {
    let listener = TcpListener::bind(("127.0.0.1", port))?;
    let addr = listener.local_addr()?;
    let daemon = Arc::new(Daemon::start(cfg));
    let accept_daemon = Arc::clone(&daemon);
    let accept = std::thread::spawn(move || {
        for conn in listener.incoming() {
            if accept_daemon.is_shutdown() {
                break;
            }
            let Ok(stream) = conn else { continue };
            let daemon = Arc::clone(&accept_daemon);
            std::thread::spawn(move || handle_conn(&daemon, stream));
        }
    });
    Ok(Server {
        daemon,
        addr,
        accept: Some(accept),
    })
}

impl Server {
    /// The bound address (use after binding port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The daemon behind the socket (tests inspect counters directly).
    pub fn daemon(&self) -> &Daemon {
        &self.daemon
    }

    /// Blocks the calling thread until the accept loop exits (i.e. until a
    /// client sends `shutdown` or [`Server::shutdown`] is called).
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }

    /// Stops the daemon, unblocks the accept loop and joins it.
    pub fn shutdown(mut self) {
        self.daemon.shutdown();
        // The accept loop only re-checks the shutdown flag on a connection,
        // so poke it with one.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

fn handle_conn(daemon: &Arc<Daemon>, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let reader = BufReader::new(read_half);
    let mut writer = stream;
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let shutting_down = line.contains("shutdown");
        let resp = handle_request(daemon, &line);
        if writeln!(writer, "{resp}").is_err() {
            break;
        }
        if shutting_down && daemon.is_shutdown() {
            // Unblock the accept loop so it observes the flag and exits.
            if let Ok(local) = writer.local_addr() {
                let _ = TcpStream::connect(local);
            }
            break;
        }
    }
}

/// Dispatches one request line to the daemon and renders the response line.
pub fn handle_request(daemon: &Daemon, line: &str) -> String {
    let req = match Value::parse(line) {
        Ok(v) => v,
        Err(e) => return err_line(&format!("bad request: {e}")),
    };
    match req.get("op").and_then(Value::as_str) {
        Some("submit") => handle_submit(daemon, &req),
        Some("status") => {
            let Some(id) = req.get("id").and_then(Value::as_u64) else {
                return err_line("status needs a numeric id");
            };
            match daemon.status(id) {
                Some(view) => format!("{{\"ok\":true,\"id\":{id},\"state\":{}}}", state_str(&view)),
                None => err_line(&format!("unknown job {id}")),
            }
        }
        Some("result") => {
            let Some(id) = req.get("id").and_then(Value::as_u64) else {
                return err_line("result needs a numeric id");
            };
            let wait = req.get("wait").and_then(Value::as_bool).unwrap_or(false);
            match daemon.result(id, wait) {
                Some(view) => result_line(id, &view),
                None => err_line(&format!("unknown job {id}")),
            }
        }
        Some("batch") => {
            let Some(items) = req.get("scenarios").and_then(Value::as_arr) else {
                return err_line("batch needs a scenarios array");
            };
            let seed = req.get("seed").and_then(Value::as_u64);
            let results: Vec<String> = items
                .iter()
                .map(|item| match item.as_str() {
                    Some(src) => submit_line(daemon, src, seed, false),
                    None => err_line("batch scenarios must be strings"),
                })
                .collect();
            format!("{{\"ok\":true,\"results\":[{}]}}", results.join(","))
        }
        Some("stats") => {
            let s = daemon.stats();
            format!(
                concat!(
                    "{{\"ok\":true,\"submitted\":{},\"completed\":{},\"failed\":{},",
                    "\"cache_hits\":{},\"shed\":{},\"coalesced\":{},\"queued\":{}}}"
                ),
                s.submitted, s.completed, s.failed, s.cache_hits, s.shed, s.coalesced, s.queued,
            )
        }
        Some("shutdown") => {
            daemon.shutdown();
            "{\"ok\":true,\"shutdown\":true}".into()
        }
        Some(op) => err_line(&format!("unknown op \"{op}\"")),
        None => err_line("request needs an op"),
    }
}

fn handle_submit(daemon: &Daemon, req: &Value) -> String {
    let Some(src) = req.get("scenario").and_then(Value::as_str) else {
        return err_line("submit needs a scenario string");
    };
    let seed = req.get("seed").and_then(Value::as_u64);
    let wait = req.get("wait").and_then(Value::as_bool).unwrap_or(false);
    submit_line(daemon, src, seed, wait)
}

fn submit_line(daemon: &Daemon, src: &str, seed: Option<u64>, wait: bool) -> String {
    match daemon.submit(src, seed) {
        SubmitOutcome::CacheHit { digest, runs } => format!(
            "{{\"ok\":true,\"cached\":true,\"digest\":\"{digest:016x}\",\"runs\":{runs}}}"
        ),
        SubmitOutcome::Queued { id, digest } => {
            if wait {
                match daemon.result(id, true) {
                    Some(view) => result_line(id, &view),
                    None => err_line(&format!("unknown job {id}")),
                }
            } else {
                format!("{{\"ok\":true,\"id\":{id},\"digest\":\"{digest:016x}\"}}")
            }
        }
        SubmitOutcome::Coalesced { id, digest } => {
            if wait {
                match daemon.result(id, true) {
                    Some(view) => result_line(id, &view),
                    None => err_line(&format!("unknown job {id}")),
                }
            } else {
                format!(
                    "{{\"ok\":true,\"id\":{id},\"digest\":\"{digest:016x}\",\"coalesced\":true}}"
                )
            }
        }
        SubmitOutcome::Shed => err_line("shed"),
        SubmitOutcome::Invalid(msg) => err_line(&format!("compile: {msg}")),
    }
}

fn result_line(id: u64, view: &JobView) -> String {
    match view {
        JobView::Done { digest, runs } => format!(
            "{{\"ok\":true,\"id\":{id},\"state\":\"done\",\"digest\":\"{digest:016x}\",\"runs\":{runs}}}"
        ),
        JobView::Failed(msg) => format!(
            "{{\"ok\":false,\"id\":{id},\"state\":\"failed\",\"error\":{}}}",
            quote(msg)
        ),
        JobView::Queued | JobView::Running => format!(
            "{{\"ok\":false,\"id\":{id},\"state\":{},\"error\":\"pending\"}}",
            state_str(view)
        ),
    }
}

fn state_str(view: &JobView) -> &'static str {
    match view {
        JobView::Queued => "\"queued\"",
        JobView::Running => "\"running\"",
        JobView::Done { .. } => "\"done\"",
        JobView::Failed(_) => "\"failed\"",
    }
}

fn err_line(msg: &str) -> String {
    format!("{{\"ok\":false,\"error\":{}}}", quote(msg))
}
