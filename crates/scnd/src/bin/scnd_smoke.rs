//! End-to-end smoke of the experiment server over a real TCP socket:
//! submit → run → cache hit → semantic edit misses → protocol shutdown.
//! Exits non-zero (panics) on any deviation; CI runs this as the
//! `scenario-check` server step.
//!
//! ```sh
//! cargo run --release -p scnd --bin scnd_smoke [path/to/scenario.scn]
//! ```
//!
//! With a path argument the smoke submits that scenario instead of the
//! built-in tiny one (expect full simulation time for committed matrices).

use scnd::{serve, Client, DaemonConfig};

const TINY: &str = r#"
    scenario "smoke" {
        seeds = 1
        system { gpus = 2 cus_per_gpu = 1 wavefronts_per_cu = 2 }
        workload = uniform(pages = 32, ctas = 8, accesses = 16)
    }
"#;

fn main() {
    let src = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read {path}: {e}")),
        None => TINY.to_string(),
    };
    let digest = scn::compile_one(&src).expect("scenario compiles").digest_hex();

    let server = serve(&DaemonConfig::default(), 0).expect("bind a local port");
    let addr = server.addr();
    let mut c = Client::connect(addr).expect("connect");
    let submit = format!(
        "{{\"op\":\"submit\",\"scenario\":{},\"wait\":true}}",
        scnd::json::quote(&src)
    );

    let first = c.request(&submit).expect("first submit");
    assert!(
        first.contains("\"state\":\"done\"") && first.contains(&digest),
        "first run must complete with the compiled digest: {first}"
    );
    let second = c.request(&submit).expect("second submit");
    assert!(
        second.contains("\"cached\":true"),
        "identical resubmission must hit the cache: {second}"
    );

    let fresh = src.replace("seeds = 1", "seeds = [41]");
    if fresh != src {
        let submit_fresh = format!(
            "{{\"op\":\"submit\",\"scenario\":{},\"wait\":true}}",
            scnd::json::quote(&fresh)
        );
        let third = c.request(&submit_fresh).expect("edited submit");
        assert!(
            third.contains("\"state\":\"done\"") && !third.contains("\"cached\":true"),
            "a semantic edit must be a fresh run: {third}"
        );
    }

    let stats = c.request("{\"op\":\"stats\"}").expect("stats");
    assert!(stats.contains("\"cache_hits\":1"), "{stats}");
    assert!(stats.contains("\"failed\":0"), "{stats}");

    let bye = c.request("{\"op\":\"shutdown\"}").expect("shutdown ack");
    assert!(bye.contains("\"shutdown\":true"), "{bye}");
    server.join();
    eprintln!("[scnd-smoke] ok: digest {digest}, {stats}");
}
