//! The daemon core: a bounded job queue, a worker pool, digest-keyed
//! result caching, and admission control built from the simulator's own
//! overload primitives.
//!
//! Admission reuses [`sim_core::Hysteresis`] (a queue-depth watermark gate:
//! engages when the queue reaches capacity, releases only once it has
//! drained to half) and [`sim_core::TokenBucket`] (a submission budget
//! refunded by job completions). A submission that fails admission is
//! *shed* with a deterministic error — never queued, never blocked — so a
//! saturated daemon degrades exactly like the simulated system it serves.
//!
//! Caching is sound because the whole stack below it is deterministic: a
//! scenario's digest is taken over its lowered IR (see `scn::print`) and
//! the simulator replays bit-identically from a config + seed, so equal
//! digests imply equal results. Identical in-flight submissions are
//! single-flight coalesced onto the running job instead of re-queued.

use experiments::{run_json, scenario_specs};
use sim_core::{Hysteresis, TokenBucket};
use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// Daemon sizing knobs.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Worker threads executing queued jobs. Zero is legal (nothing ever
    /// runs — the deterministic queue-full test fixture).
    pub workers: usize,
    /// Bounded queue capacity; the admission gate engages at this depth.
    pub queue_cap: usize,
    /// Token-bucket submission budget (burst size; refunded per completion).
    pub bucket_capacity: u64,
    /// Milli-tokens refunded to the bucket per completed job (≤ 1000).
    pub bucket_refill_permille: u64,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_cap: 32,
            bucket_capacity: 256,
            bucket_refill_permille: 1000,
        }
    }
}

/// A job's externally visible lifecycle state.
#[derive(Debug, Clone, PartialEq)]
pub enum JobView {
    /// Admitted, waiting for a worker.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished cleanly.
    Done {
        /// The scenario digest (the cache key).
        digest: u64,
        /// The JSON array of per-run metrics payloads.
        runs: String,
    },
    /// The run failed (simulator error or panic).
    Failed(String),
}

/// What happened to a submission.
#[derive(Debug, Clone, PartialEq)]
pub enum SubmitOutcome {
    /// The digest was already cached; the result is returned inline.
    CacheHit {
        /// The scenario digest.
        digest: u64,
        /// The cached JSON runs payload.
        runs: String,
    },
    /// Admitted and queued.
    Queued {
        /// The new job's id.
        id: u64,
        /// The scenario digest.
        digest: u64,
    },
    /// An identical scenario is already queued or running; this submission
    /// was coalesced onto it.
    Coalesced {
        /// The existing job's id.
        id: u64,
        /// The scenario digest.
        digest: u64,
    },
    /// Rejected by admission control (queue full or budget exhausted).
    Shed,
    /// The scenario text did not compile.
    Invalid(String),
}

/// A point-in-time snapshot of the daemon's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Stats {
    /// Jobs admitted to the queue.
    pub submitted: u64,
    /// Jobs that finished cleanly.
    pub completed: u64,
    /// Jobs that failed.
    pub failed: u64,
    /// Submissions answered from the result cache.
    pub cache_hits: u64,
    /// Submissions rejected by admission control.
    pub shed: u64,
    /// Submissions coalesced onto an identical in-flight job.
    pub coalesced: u64,
    /// Jobs currently waiting in the queue.
    pub queued: usize,
}

struct Job {
    key: (u64, u64),
    scenario: Option<scn::Scenario>,
    view: JobView,
}

struct State {
    queue: VecDeque<u64>,
    jobs: BTreeMap<u64, Job>,
    cache: BTreeMap<(u64, u64), String>,
    inflight: BTreeMap<(u64, u64), u64>,
    next_id: u64,
    shutdown: bool,
    admit: Hysteresis,
    bucket: TokenBucket,
    stats: Stats,
}

struct Shared {
    state: Mutex<State>,
    cv: Condvar,
}

/// The daemon: owns the queue, the cache and the worker pool. Cloneable
/// handles are obtained by wrapping it in an [`Arc`] (the TCP server does).
pub struct Daemon {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Daemon {
    /// Starts the worker pool.
    ///
    /// # Panics
    ///
    /// Panics if `queue_cap` is zero or the token-bucket parameters are
    /// invalid (zero capacity or refill above 1000‰).
    pub fn start(cfg: &DaemonConfig) -> Self {
        assert!(cfg.queue_cap > 0, "daemon queue capacity must be positive");
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                jobs: BTreeMap::new(),
                cache: BTreeMap::new(),
                inflight: BTreeMap::new(),
                next_id: 1,
                shutdown: false,
                admit: Hysteresis::new(cfg.queue_cap, cfg.queue_cap / 2),
                bucket: TokenBucket::new(cfg.bucket_capacity, cfg.bucket_refill_permille),
                stats: Stats::default(),
            }),
            cv: Condvar::new(),
        });
        let workers = (0..cfg.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Self {
            shared,
            workers: Mutex::new(workers),
        }
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        self.shared.state.lock().expect("daemon state poisoned")
    }

    /// Compiles `src` (one scenario), applies the optional seed override,
    /// and either answers from the cache, coalesces onto an identical
    /// in-flight job, queues a new job, or sheds.
    pub fn submit(&self, src: &str, seed: Option<u64>) -> SubmitOutcome {
        let mut sc = match scn::compile_one(src) {
            Ok(sc) => sc,
            Err(e) => return SubmitOutcome::Invalid(e.to_string()),
        };
        if let Some(s) = seed {
            sc.seeds = vec![s];
        }
        // The digest is taken *after* the seed override, so the cache key's
        // seed component is redundant with the digest — kept anyway so the
        // key documents what it identifies.
        let digest = sc.digest();
        let key = (digest, seed.unwrap_or(0));

        let mut st = self.lock();
        if let Some(runs) = st.cache.get(&key) {
            let runs = runs.clone();
            st.stats.cache_hits = st.stats.cache_hits.saturating_add(1);
            return SubmitOutcome::CacheHit { digest, runs };
        }
        if let Some(&id) = st.inflight.get(&key) {
            st.stats.coalesced = st.stats.coalesced.saturating_add(1);
            return SubmitOutcome::Coalesced { id, digest };
        }
        let depth = st.queue.len();
        if st.admit.observe(depth) || !st.bucket.try_take() {
            st.stats.shed = st.stats.shed.saturating_add(1);
            return SubmitOutcome::Shed;
        }
        let id = st.next_id;
        st.next_id += 1;
        st.stats.submitted = st.stats.submitted.saturating_add(1);
        st.jobs.insert(
            id,
            Job {
                key,
                scenario: Some(sc),
                view: JobView::Queued,
            },
        );
        st.queue.push_back(id);
        st.inflight.insert(key, id);
        drop(st);
        self.shared.cv.notify_all();
        SubmitOutcome::Queued { id, digest }
    }

    /// The job's current state, or `None` for an unknown id.
    pub fn status(&self, id: u64) -> Option<JobView> {
        self.lock().jobs.get(&id).map(|j| j.view.clone())
    }

    /// The job's state; with `wait`, blocks until it is terminal (or the
    /// daemon shuts down, in which case the last observed state returns).
    pub fn result(&self, id: u64, wait: bool) -> Option<JobView> {
        let mut st = self.lock();
        loop {
            let view = st.jobs.get(&id).map(|j| j.view.clone())?;
            let terminal = matches!(view, JobView::Done { .. } | JobView::Failed(_));
            if terminal || !wait || st.shutdown {
                return Some(view);
            }
            st = self
                .shared
                .cv
                .wait(st)
                .expect("daemon state poisoned");
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> Stats {
        let st = self.lock();
        let mut s = st.stats;
        s.queued = st.queue.len();
        s
    }

    /// Whether [`Daemon::shutdown`] has been called.
    pub fn is_shutdown(&self) -> bool {
        self.lock().shutdown
    }

    /// Stops the worker pool: workers finish their current job and exit;
    /// queued jobs stay queued forever. Idempotent.
    pub fn shutdown(&self) {
        self.lock().shutdown = true;
        self.shared.cv.notify_all();
        let handles = std::mem::take(&mut *self.workers.lock().expect("worker list poisoned"));
        for h in handles {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let (id, sc) = {
            let mut st = shared.state.lock().expect("daemon state poisoned");
            loop {
                if st.shutdown {
                    return;
                }
                if let Some(id) = st.queue.pop_front() {
                    let job = st.jobs.get_mut(&id).expect("queued job exists");
                    job.view = JobView::Running;
                    let sc = job.scenario.take().expect("queued job has its scenario");
                    break (id, sc);
                }
                st = shared.cv.wait(st).expect("daemon state poisoned");
            }
        };

        let outcome = catch_unwind(AssertUnwindSafe(|| run_all(&sc)));

        let mut st = shared.state.lock().expect("daemon state poisoned");
        let key = st.jobs.get(&id).expect("running job exists").key;
        match outcome {
            Ok(Ok(runs)) => {
                st.cache.insert(key, runs.clone());
                st.stats.completed = st.stats.completed.saturating_add(1);
                st.jobs.get_mut(&id).expect("running job exists").view = JobView::Done {
                    digest: key.0,
                    runs,
                };
            }
            Ok(Err(msg)) => {
                st.stats.failed = st.stats.failed.saturating_add(1);
                st.jobs.get_mut(&id).expect("running job exists").view = JobView::Failed(msg);
            }
            Err(_) => {
                st.stats.failed = st.stats.failed.saturating_add(1);
                st.jobs.get_mut(&id).expect("running job exists").view =
                    JobView::Failed("run panicked".into());
            }
        }
        st.inflight.remove(&key);
        st.bucket.refill();
        drop(st);
        shared.cv.notify_all();
    }
}

/// Runs every cell × seed of the scenario, returning the JSON runs array.
fn run_all(sc: &scn::Scenario) -> Result<String, String> {
    let mut rows = Vec::new();
    for spec in scenario_specs(sc) {
        match spec.run() {
            Ok(m) => rows.push(run_json(&m, spec.cfg.seed)),
            Err(e) => return Err(format!("{}: {e}", spec.label)),
        }
    }
    Ok(format!("[{}]", rows.join(",")))
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY: &str = r#"
        scenario "tiny" {
            seeds = 1
            system { gpus = 2 cus_per_gpu = 1 wavefronts_per_cu = 2 }
            workload = uniform(pages = 16, ctas = 4, accesses = 8)
        }
    "#;

    #[test]
    fn submit_run_and_cache_round_trip() {
        let d = Daemon::start(&DaemonConfig::default());
        let SubmitOutcome::Queued { id, digest } = d.submit(TINY, None) else {
            panic!("first submission must queue");
        };
        let Some(JobView::Done { runs, .. }) = d.result(id, true) else {
            panic!("job must complete");
        };
        assert!(runs.starts_with('[') && runs.ends_with(']'));
        match d.submit(TINY, None) {
            SubmitOutcome::CacheHit {
                digest: d2,
                runs: r2,
            } => {
                assert_eq!(d2, digest);
                assert_eq!(r2, runs, "cache must return the identical payload");
            }
            other => panic!("second submission must hit the cache: {other:?}"),
        }
        assert_eq!(d.stats().cache_hits, 1);
        d.shutdown();
    }

    #[test]
    fn seed_override_changes_the_digest_and_misses_the_cache() {
        let d = Daemon::start(&DaemonConfig::default());
        let SubmitOutcome::Queued { id, digest } = d.submit(TINY, None) else {
            panic!("queue");
        };
        let _ = d.result(id, true);
        match d.submit(TINY, Some(9)) {
            SubmitOutcome::Queued { digest: d2, id } => {
                assert_ne!(d2, digest, "seed override must re-digest");
                let _ = d.result(id, true);
            }
            other => panic!("seed override must be a fresh run: {other:?}"),
        }
        assert_eq!(d.stats().cache_hits, 0);
        d.shutdown();
    }

    #[test]
    fn invalid_scenarios_are_rejected_synchronously() {
        let d = Daemon::start(&DaemonConfig {
            workers: 0,
            ..DaemonConfig::default()
        });
        match d.submit("scenario \"x\" { seeds = 0 }", None) {
            SubmitOutcome::Invalid(msg) => assert!(msg.contains(':'), "positioned: {msg}"),
            other => panic!("must reject: {other:?}"),
        }
        assert_eq!(d.stats().submitted, 0);
        d.shutdown();
    }

    #[test]
    fn queue_full_sheds_without_blocking() {
        let d = Daemon::start(&DaemonConfig {
            workers: 0,
            queue_cap: 2,
            ..DaemonConfig::default()
        });
        let a = TINY.replace("seeds = 1", "seeds = [11]");
        let b = TINY.replace("seeds = 1", "seeds = [12]");
        let c = TINY.replace("seeds = 1", "seeds = [13]");
        assert!(matches!(d.submit(&a, None), SubmitOutcome::Queued { .. }));
        assert!(matches!(d.submit(&b, None), SubmitOutcome::Queued { .. }));
        assert_eq!(d.submit(&c, None), SubmitOutcome::Shed);
        assert_eq!(d.submit(&c, None), SubmitOutcome::Shed, "gate holds");
        let s = d.stats();
        assert_eq!((s.submitted, s.shed, s.queued), (2, 2, 2));
        d.shutdown();
    }

    #[test]
    fn identical_inflight_submissions_coalesce() {
        let d = Daemon::start(&DaemonConfig {
            workers: 0,
            ..DaemonConfig::default()
        });
        let SubmitOutcome::Queued { id, .. } = d.submit(TINY, None) else {
            panic!("queue");
        };
        match d.submit(TINY, None) {
            SubmitOutcome::Coalesced { id: id2, .. } => assert_eq!(id2, id),
            other => panic!("identical submission must coalesce: {other:?}"),
        }
        assert_eq!(d.stats().coalesced, 1);
        assert_eq!(d.stats().queued, 1, "coalescing must not consume a slot");
        d.shutdown();
    }
}
