//! A minimal, dependency-free JSON reader/writer for the wire protocol.
//!
//! The daemon speaks line-delimited JSON over TCP; this module is the
//! whole codec. It is deliberately small: objects are [`BTreeMap`]s (the
//! repo-wide determinism discipline — iteration order is stable), numbers
//! are `f64` (the protocol's numbers are job ids, seeds and counters, all
//! far below the 2^53 integer ceiling), and the parser carries a recursion
//! depth cap so adversarial input cannot overflow the stack.

use std::collections::BTreeMap;
use std::fmt;

/// Maximum nesting depth the parser accepts.
const MAX_DEPTH: u32 = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, with deterministic (sorted) key order.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Parses one JSON document, rejecting trailing garbage.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on malformed input.
    pub fn parse(src: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            at: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.at != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.at));
        }
        Ok(v)
    }

    /// Object field lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Num(n) if n >= 0.0 && n.fract() == 0.0 && n <= 9.007_199_254_740_992e15 => {
                Some(n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Value::Str(s) => f.write_str(&quote(s)),
            Value::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Obj(m) => {
                f.write_str("{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{}:{v}", quote(k))?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Quotes and escapes `s` as a JSON string literal.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.at) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.at += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.at))
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.at))
        }
    }

    fn value(&mut self, depth: u32) -> Result<Value, String> {
        if depth > MAX_DEPTH {
            return Err("input too deeply nested".into());
        }
        match self.peek() {
            Some(b'n') => self.lit("null", Value::Null),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected '{}' at byte {}", b as char, self.at)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn array(&mut self, depth: u32) -> Result<Value, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.at)),
            }
        }
    }

    fn object(&mut self, depth: u32) -> Result<Value, String> {
        self.eat(b'{')?;
        let mut m = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Value::Obj(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            m.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Value::Obj(m));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.at)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.at;
            // Fast path: a run of plain UTF-8 up to the next quote/escape.
            while let Some(&b) = self.bytes.get(self.at) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.at += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.at])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.at + 1..self.at + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            // Surrogates are rejected rather than paired:
                            // the protocol never emits them.
                            let c = char::from_u32(code)
                                .ok_or_else(|| "bad \\u code point".to_string())?;
                            out.push(c);
                            self.at += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.at)),
                    }
                    self.at += 1;
                }
                Some(_) => return Err(format!("control character in string at byte {}", self.at)),
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        while let Some(&b) = self.bytes.get(self.at) {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-'
            {
                self.at += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at])
            .map_err(|_| "invalid number".to_string())?;
        let n: f64 = text
            .parse()
            .map_err(|_| format!("invalid number '{text}'"))?;
        if !n.is_finite() {
            return Err(format!("non-finite number '{text}'"));
        }
        Ok(Value::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let src = r#"{"op":"submit","seed":7,"wait":true,"xs":[1,2.5,null,"a\"b"]}"#;
        let v = Value::parse(src).unwrap();
        assert_eq!(v.get("op").and_then(Value::as_str), Some("submit"));
        assert_eq!(v.get("seed").and_then(Value::as_u64), Some(7));
        assert_eq!(v.get("wait").and_then(Value::as_bool), Some(true));
        let again = Value::parse(&v.to_string()).unwrap();
        assert_eq!(v, again);
    }

    #[test]
    fn integers_print_without_a_decimal_point() {
        assert_eq!(Value::Num(42.0).to_string(), "42");
        assert_eq!(Value::Num(2.5).to_string(), "2.5");
    }

    #[test]
    fn rejects_malformed_input_gracefully() {
        for bad in [
            "",
            "{",
            "[1,",
            "\"unterminated",
            "nul",
            "01x",
            "{\"a\" 1}",
            "1 2",
            "\"\\q\"",
            "1e999",
        ] {
            assert!(Value::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn depth_cap_rejects_deep_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Value::parse(&deep).is_err());
    }

    #[test]
    fn quote_escapes_everything_the_protocol_emits() {
        assert_eq!(quote("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(quote("\u{1}"), r#""\u0001""#);
        let v = Value::parse(&quote("line1\nline2\t\"x\"")).unwrap();
        assert_eq!(v.as_str(), Some("line1\nline2\t\"x\""));
    }
}
