//! The `scnd` binary: bind a port and serve scenarios until a client sends
//! `{"op":"shutdown"}`.
//!
//! ```sh
//! cargo run --release -p scnd -- [--port N] [--workers N] [--queue-cap N]
//! ```

use scnd::{serve, DaemonConfig};

fn arg(args: &[String], name: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let port = arg(&args, "--port").unwrap_or(7077) as u16;
    let mut cfg = DaemonConfig::default();
    if let Some(w) = arg(&args, "--workers") {
        cfg.workers = w as usize;
    }
    if let Some(q) = arg(&args, "--queue-cap") {
        cfg.queue_cap = q as usize;
    }
    let server = serve(&cfg, port).expect("bind scnd port");
    eprintln!(
        "[scnd] listening on {} ({} worker(s), queue capacity {})",
        server.addr(),
        cfg.workers,
        cfg.queue_cap
    );
    server.join();
    eprintln!("[scnd] shut down");
}
