//! A minimal blocking client for the daemon's line protocol (used by the
//! integration tests and handy for scripting).

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// One persistent connection; requests are answered in order.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a running daemon.
    ///
    /// # Errors
    ///
    /// Returns the connect error.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Self { writer, reader })
    }

    /// Sends one request line and reads the one response line.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the connection drops.
    pub fn request(&mut self, line: &str) -> std::io::Result<String> {
        writeln!(self.writer, "{line}")?;
        let mut resp = String::new();
        let n = self.reader.read_line(&mut resp)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(resp.trim_end().to_string())
    }
}

/// One-shot request over a fresh connection.
///
/// # Errors
///
/// Returns an I/O error if connecting or the exchange fails.
pub fn request_once(addr: impl ToSocketAddrs, line: &str) -> std::io::Result<String> {
    Client::connect(addr)?.request(line)
}
