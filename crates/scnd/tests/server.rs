//! End-to-end tests of the experiment server over real TCP connections:
//! determinism-backed caching, deterministic queue-full shedding, and a
//! concurrent-clients smoke.

use scnd::{request_once, Client, DaemonConfig, serve};

/// A scenario small enough to simulate in milliseconds.
const TINY: &str = r#"
    scenario "tiny" {
        seeds = 1
        system { gpus = 2 cus_per_gpu = 1 wavefronts_per_cu = 2 }
        workload = uniform(pages = 16, ctas = 4, accesses = 8)
    }
"#;

/// Renders a submit request for `src` as one JSON line.
fn submit_req(src: &str, wait: bool) -> String {
    format!(
        "{{\"op\":\"submit\",\"scenario\":{},\"wait\":{wait}}}",
        scnd::json::quote(src)
    )
}

#[test]
fn identical_scenario_hits_the_cache_and_the_counter_shows_it() {
    let server = serve(&DaemonConfig::default(), 0).expect("bind");
    let mut c = Client::connect(server.addr()).expect("connect");

    let first = c.request(&submit_req(TINY, true)).expect("submit");
    assert!(
        first.contains("\"ok\":true") && first.contains("\"state\":\"done\""),
        "first run must complete: {first}"
    );
    assert!(first.contains("\"runs\":["), "result embeds metrics: {first}");

    let second = c.request(&submit_req(TINY, true)).expect("resubmit");
    assert!(
        second.contains("\"cached\":true"),
        "identical scenario must be served from the cache: {second}"
    );
    // The cached payload is bit-identical to the fresh one: same digest,
    // same runs array (determinism makes the cache sound).
    let runs_of = |resp: &str| resp.split("\"runs\":").nth(1).map(str::to_string);
    assert_eq!(runs_of(&first), runs_of(&second));

    let stats = c.request(r#"{"op":"stats"}"#).expect("stats");
    assert!(stats.contains("\"cache_hits\":1"), "{stats}");
    assert!(stats.contains("\"completed\":1"), "{stats}");
    server.shutdown();
}

#[test]
fn one_token_edit_is_a_fresh_run_not_a_cache_hit() {
    let server = serve(&DaemonConfig::default(), 0).expect("bind");
    let mut c = Client::connect(server.addr()).expect("connect");

    let first = c.request(&submit_req(TINY, true)).expect("submit");
    assert!(first.contains("\"state\":\"done\""), "{first}");

    // One token changed: pages 16 -> 32. New digest, fresh run.
    let edited = TINY.replace("pages = 16", "pages = 32");
    let second = c.request(&submit_req(&edited, true)).expect("submit edit");
    assert!(second.contains("\"state\":\"done\""), "{second}");
    assert!(!second.contains("\"cached\":true"), "{second}");

    let digest_of = |resp: &str| {
        resp.split("\"digest\":\"")
            .nth(1)
            .and_then(|s| s.split('"').next())
            .map(str::to_string)
    };
    assert_ne!(
        digest_of(&first),
        digest_of(&second),
        "a semantic edit must produce a new digest"
    );

    let stats = c.request(r#"{"op":"stats"}"#).expect("stats");
    assert!(stats.contains("\"cache_hits\":0"), "{stats}");
    assert!(stats.contains("\"completed\":2"), "{stats}");
    server.shutdown();
}

#[test]
fn queue_full_sheds_deterministically_and_never_hangs() {
    // No workers: nothing drains, so admission outcomes are a pure
    // function of the submission sequence.
    let cfg = DaemonConfig {
        workers: 0,
        queue_cap: 2,
        ..DaemonConfig::default()
    };
    let server = serve(&cfg, 0).expect("bind");
    let mut c = Client::connect(server.addr()).expect("connect");

    for seed in [31, 32] {
        let src = TINY.replace("seeds = 1", &format!("seeds = [{seed}]"));
        let resp = c.request(&submit_req(&src, false)).expect("submit");
        assert!(resp.contains("\"ok\":true"), "{resp}");
    }
    for seed in [33, 34] {
        let src = TINY.replace("seeds = 1", &format!("seeds = [{seed}]"));
        let resp = c.request(&submit_req(&src, false)).expect("submit");
        assert_eq!(resp, "{\"ok\":false,\"error\":\"shed\"}", "full queue must shed");
    }

    let stats = c.request(r#"{"op":"stats"}"#).expect("stats");
    assert!(stats.contains("\"shed\":2"), "{stats}");
    assert!(stats.contains("\"queued\":2"), "{stats}");

    // Status of a queued job answers immediately even with no workers.
    let status = c.request(r#"{"op":"status","id":1}"#).expect("status");
    assert!(status.contains("\"state\":\"queued\""), "{status}");
    // A non-waiting result poll reports pending instead of blocking.
    let result = c.request(r#"{"op":"result","id":1}"#).expect("result");
    assert!(result.contains("\"error\":\"pending\""), "{result}");
    server.shutdown();
}

#[test]
fn concurrent_clients_all_complete() {
    let cfg = DaemonConfig {
        workers: 2,
        ..DaemonConfig::default()
    };
    let server = serve(&cfg, 0).expect("bind");
    let addr = server.addr();

    let handles: Vec<_> = (0..4u64)
        .map(|i| {
            std::thread::spawn(move || {
                let src = TINY.replace("seeds = 1", &format!("seeds = [{}]", 100 + i));
                request_once(addr, &submit_req(&src, true)).expect("round trip")
            })
        })
        .collect();
    for h in handles {
        let resp = h.join().expect("client thread");
        assert!(
            resp.contains("\"state\":\"done\"") && resp.contains("\"runs\":["),
            "every concurrent client must get a completed run: {resp}"
        );
    }

    let stats = request_once(addr, r#"{"op":"stats"}"#).expect("stats");
    assert!(stats.contains("\"completed\":4"), "{stats}");
    assert!(stats.contains("\"failed\":0"), "{stats}");
    server.shutdown();
}

#[test]
fn batch_submits_every_scenario_in_one_request() {
    let server = serve(&DaemonConfig::default(), 0).expect("bind");
    let a = TINY.replace("seeds = 1", "seeds = [201]");
    let b = TINY.replace("seeds = 1", "seeds = [202]");
    let req = format!(
        "{{\"op\":\"batch\",\"scenarios\":[{},{}]}}",
        scnd::json::quote(&a),
        scnd::json::quote(&b)
    );
    let resp = request_once(server.addr(), &req).expect("batch");
    assert!(resp.contains("\"ok\":true"), "{resp}");
    assert!(resp.contains("\"id\":1") && resp.contains("\"id\":2"), "{resp}");
    server.shutdown();
}

#[test]
fn malformed_requests_get_errors_not_disconnects() {
    let server = serve(&DaemonConfig::default(), 0).expect("bind");
    let mut c = Client::connect(server.addr()).expect("connect");
    for bad in [
        "not json",
        "{\"op\":\"nope\"}",
        "{\"no_op\":1}",
        "{\"op\":\"status\"}",
        "{\"op\":\"submit\",\"scenario\":\"scenario \\\"x\\\" {}\"}",
    ] {
        let resp = c.request(bad).expect("server must keep the connection");
        assert!(resp.contains("\"ok\":false"), "{bad} -> {resp}");
    }
    // The connection still works after every error.
    let resp = c.request(r#"{"op":"stats"}"#).expect("stats");
    assert!(resp.contains("\"ok\":true"), "{resp}");
    server.shutdown();
}
