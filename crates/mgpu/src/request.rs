//! Translation-request bookkeeping.

use ptw::{GpuId, Location};
use sim_core::Cycle;

use crate::metrics::LatencyBreakdown;

/// Index of a request in the [`ReqArena`].
pub type ReqId = usize;

/// Identifies one wavefront slot (the MSHR waiter token).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WfRef {
    /// GPU index.
    pub gpu: u16,
    /// CU index within the GPU.
    pub cu: u16,
    /// Wavefront slot within the CU.
    pub wf: u16,
}

/// One outstanding translation request (a post-coalescing L2 TLB miss).
///
/// A request is uniquely identified by `(gpu, vpn)` while in flight — the
/// per-GPU L2 MSHR guarantees at most one outstanding translation per page
/// per GPU.
#[derive(Debug, Clone)]
pub struct Req {
    /// Translation-granule virtual page number.
    pub vpn: u64,
    /// Requesting GPU.
    pub gpu: GpuId,
    /// Whether the triggering access writes.
    pub is_write: bool,
    /// Creation time (L2 TLB miss).
    pub born: Cycle,
    /// Where the final local PTE points (filled during fault resolution).
    pub resolved_loc: Option<Location>,
    /// Trans-FW: the request was forwarded to a remote GPU.
    pub forwarded: bool,
    /// The peer the live forward went to, until its outcome is recorded
    /// with the overload circuit breaker (then taken back to `None`, so
    /// each forward attempt contributes at most one breaker sample).
    pub forwarded_to: Option<GpuId>,
    /// Trans-FW: the remote GPU supplied the translation.
    pub remote_supplied: bool,
    /// The host walk (or driver batch) has started and can no longer be
    /// cancelled.
    pub host_walk_started: bool,
    /// Trans-FW: the queued host walk was cancelled by a remote success.
    pub cancelled: bool,
    /// The requester received a translation; later arrivals are discarded.
    pub completed: bool,
    /// The remote-walk outcome notification was processed at the host;
    /// later copies (injected duplicates, retried forwards) are discarded.
    pub remote_outcome: bool,
    /// The watchdog's deadline fired at least once for this request.
    pub remote_timed_out: bool,
    /// Lossy retries issued by the watchdog for this request.
    pub watchdog_retries: u32,
    /// The request degraded to the reliable fallback host-walk path; all
    /// subsequent messages for it bypass the fault injector.
    pub fallback: bool,
    /// Times the request was retired (delivered a translation to its
    /// waiters). The auditor requires exactly 1 for every request.
    pub retire_count: u32,
    /// Cycle the fault reached the host/driver (for queue accounting).
    pub host_submit_time: Cycle,
    /// Per-request latency attribution.
    pub lat: LatencyBreakdown,
}

impl Req {
    fn new(vpn: u64, gpu: GpuId, is_write: bool, born: Cycle) -> Self {
        Self {
            vpn,
            gpu,
            is_write,
            born,
            resolved_loc: None,
            forwarded: false,
            forwarded_to: None,
            remote_supplied: false,
            host_walk_started: false,
            cancelled: false,
            completed: false,
            remote_outcome: false,
            remote_timed_out: false,
            watchdog_retries: 0,
            fallback: false,
            retire_count: 0,
            host_submit_time: 0,
            lat: LatencyBreakdown::default(),
        }
    }
}

/// Append-only arena of translation requests for one run.
///
/// # Examples
///
/// ```
/// use mgpu::request::ReqArena;
///
/// let mut arena = ReqArena::new();
/// let id = arena.create(0x42, 1, false, 100);
/// assert_eq!(arena[id].vpn, 0x42);
/// arena[id].completed = true;
/// assert_eq!(arena.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ReqArena {
    reqs: Vec<Req>,
}

impl ReqArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a new request and returns its id.
    pub fn create(&mut self, vpn: u64, gpu: GpuId, is_write: bool, born: Cycle) -> ReqId {
        self.reqs.push(Req::new(vpn, gpu, is_write, born));
        self.reqs.len() - 1
    }

    /// Number of requests ever created.
    pub fn len(&self) -> usize {
        self.reqs.len()
    }

    /// Whether no requests were created.
    pub fn is_empty(&self) -> bool {
        self.reqs.is_empty()
    }

    /// The request with id `id`, or `None` for an id this arena never
    /// minted. Preferred over indexing on the event-handler paths: a stale
    /// id (a duplicated message surviving past the run) then degrades to a
    /// discarded event instead of a panic.
    pub fn get(&self, id: ReqId) -> Option<&Req> {
        self.reqs.get(id)
    }

    /// Mutable access to the request with id `id`, if it exists.
    pub fn get_mut(&mut self, id: ReqId) -> Option<&mut Req> {
        self.reqs.get_mut(id)
    }

    /// Iterates over all requests.
    pub fn iter(&self) -> impl Iterator<Item = &Req> {
        self.reqs.iter()
    }
}

impl std::ops::Index<ReqId> for ReqArena {
    type Output = Req;

    fn index(&self, id: ReqId) -> &Req {
        &self.reqs[id]
    }
}

impl std::ops::IndexMut<ReqId> for ReqArena {
    fn index_mut(&mut self, id: ReqId) -> &mut Req {
        &mut self.reqs[id]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_index() {
        let mut a = ReqArena::new();
        let r0 = a.create(1, 0, false, 10);
        let r1 = a.create(2, 3, true, 20);
        assert_eq!(a[r0].vpn, 1);
        assert_eq!(a[r1].gpu, 3);
        assert!(a[r1].is_write);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn new_requests_have_clean_state() {
        let mut a = ReqArena::new();
        let r = a.create(7, 1, false, 5);
        let req = &a[r];
        assert!(!req.forwarded);
        assert!(!req.remote_supplied);
        assert!(!req.cancelled);
        assert!(!req.completed);
        assert!(!req.fallback);
        assert!(!req.remote_timed_out);
        assert_eq!(req.retire_count, 0);
        assert_eq!(req.lat.total(), 0);
    }

    #[test]
    fn mutation_through_index() {
        let mut a = ReqArena::new();
        let r = a.create(7, 1, false, 5);
        a[r].lat.gmmu_queue += 42;
        a[r].forwarded = true;
        assert_eq!(a[r].lat.gmmu_queue, 42);
        assert!(a[r].forwarded);
    }

    #[test]
    fn iter_covers_all() {
        let mut a = ReqArena::new();
        for i in 0..5 {
            a.create(i, 0, false, 0);
        }
        assert_eq!(a.iter().count(), 5);
        assert!(!a.is_empty());
    }
}
