//! Oversubscription control: per-GPU capacity accounting, refault-driven
//! thrash detection, and graceful degradation under memory pressure.
//!
//! When a working set exceeds device memory, naive demand migration
//! thrash-collapses: every fault evicts a page the next fault brings
//! straight back. [`OversubControl`] watches for that signature — a
//! *refault* is a fault on a page evicted within the trailing
//! [`refault_window`](OversubConfig::refault_window) cycles — and feeds the
//! windowed refault count into a per-GPU [`Hysteresis`] gate. While a gate
//! is engaged the system degrades instead of collapsing:
//!
//! * the hottest [`hot_protect`](OversubConfig::hot_protect) resident pages
//!   are exempt from victim selection (the pinned working set);
//! * background traffic ([`TrafficClass::Prefetch`] and access-counter
//!   [`TrafficClass::Migration`]) is shed before any demand work;
//! * cold demand faults fall back to host-mediated direct access — the page
//!   is mapped in place, no migration, no eviction — so demand is *never*
//!   rejected.
//!
//! Victim selection itself lives in [`uvm::EvictionEngine`]; this module is
//! the policy brain that decides *when* to evict and *how hard* to push.
//! With [`OversubConfig::default`] (disabled, capacity treated as infinite)
//! every method is an inert no-op: no RNG draws, no state changes, so
//! existing runs stay bit-identical.

use ptw::GpuId;
use sim_core::checkpoint::StateDigest;
use sim_core::det::DetMap;
use sim_core::{Cycle, Hysteresis, SimRng, WindowedCount};
use uvm::{EvictPolicy, TrafficClass};

/// Seed perturbation for the subsystem's private RNG stream, distinct from
/// the main simulator stream and the overload-control stream.
const OVERSUB_SEED_SALT: u64 = 0x0E7B_05EB_5EED_FACE;

/// Tuning for the oversubscription subsystem. `Default` is **disabled**:
/// capacity is treated as infinite, nothing is ever evicted, and the
/// control plane is bit-identical to a build without it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OversubConfig {
    /// Master switch; `false` makes the whole subsystem inert.
    pub enabled: bool,
    /// Per-GPU device-memory capacity in pages; residency beyond this
    /// triggers eviction. Ignored while disabled.
    pub capacity_pages: usize,
    /// Victim-selection policy for the eviction engine.
    pub policy: EvictPolicy,
    /// Windowed refault count at which a GPU's thrash gate engages.
    pub thrash_high: usize,
    /// Windowed refault count at which the gate releases.
    pub thrash_low: usize,
    /// Cycles after an eviction during which a fault on the same page
    /// counts as a refault (the refault-distance window).
    pub refault_window: Cycle,
    /// Hottest resident pages protected from eviction while the thrash
    /// gate is engaged (the pinned working set).
    pub hot_protect: usize,
}

impl Default for OversubConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            capacity_pages: 4096,
            policy: EvictPolicy::Lru,
            thrash_high: 8,
            thrash_low: 2,
            refault_window: 50_000,
            hot_protect: 32,
        }
    }
}

impl OversubConfig {
    /// The default tuning with the master switch on.
    pub fn enabled() -> Self {
        Self {
            enabled: true,
            ..Self::default()
        }
    }

    /// The default tuning, on, with a specific per-GPU capacity.
    pub fn with_capacity(capacity_pages: usize) -> Self {
        Self {
            capacity_pages,
            ..Self::enabled()
        }
    }

    /// Checks internal consistency (watermark ordering, positive sizes).
    ///
    /// # Panics
    ///
    /// Panics on an inconsistent configuration; called from
    /// [`SystemConfig::validate`](crate::SystemConfig::validate).
    pub fn validate(&self) {
        assert!(self.capacity_pages > 0, "capacity must be positive");
        assert!(
            self.thrash_low <= self.thrash_high,
            "thrash watermarks inverted"
        );
        assert!(self.refault_window > 0, "refault window must be positive");
    }
}

/// Counters the oversubscription subsystem reports through
/// [`RunMetrics`](crate::RunMetrics).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OversubStats {
    /// Pages evicted to stay under the capacity ceiling.
    pub evictions: u64,
    /// Faults on a page evicted within the refault window.
    pub refaults: u64,
    /// Thrash-gate transitions released → engaged.
    pub thrash_trips: u64,
    /// Victim candidates skipped because they were pinned (PRT-pending or
    /// in-flight-forwarded pages).
    pub pinned_skips: u64,
    /// Capacity-enforcement passes that found no evictable victim and
    /// degraded gracefully instead.
    pub no_victim: u64,
    /// Cold demand faults served by host-mediated direct access instead of
    /// migration while thrashing.
    pub direct_fallbacks: u64,
    /// Background work (prefetch/migration) shed by the thrash gate.
    pub background_shed: u64,
}

/// The oversubscription control plane threaded through
/// [`System`](crate::System).
///
/// Owns the per-GPU thrash gates, refault windows and recently-evicted
/// tracking. When constructed from a disabled [`OversubConfig`] every
/// method is a permissive no-op that draws no randomness, so disabled runs
/// stay bit-identical.
#[derive(Debug, Clone)]
pub struct OversubControl {
    cfg: OversubConfig,
    rng: SimRng,
    gates: Vec<Hysteresis>,
    refaults: Vec<WindowedCount>,
    /// Per GPU: recently evicted VPN → eviction cycle.
    recently_evicted: Vec<DetMap<u64, Cycle>>,
    /// Counters reported through `RunMetrics::oversub`.
    pub stats: OversubStats,
}

impl OversubControl {
    /// Builds the control plane for `gpus` GPUs from `cfg`, deriving its
    /// private RNG stream from the simulation `seed`.
    pub fn new(cfg: &OversubConfig, gpus: GpuId, seed: u64) -> Self {
        let n = usize::from(gpus);
        Self {
            cfg: cfg.clone(),
            rng: SimRng::new(seed ^ OVERSUB_SEED_SALT),
            gates: vec![
                Hysteresis::new(cfg.thrash_high, cfg.thrash_low.min(cfg.thrash_high));
                n
            ],
            refaults: vec![WindowedCount::new(cfg.refault_window.max(1)); n],
            recently_evicted: vec![DetMap::new(); n],
            stats: OversubStats::default(),
        }
    }

    /// Whether the subsystem is live (anything observable may happen).
    #[inline]
    pub fn active(&self) -> bool {
        self.cfg.enabled
    }

    /// The per-GPU capacity ceiling in pages.
    pub fn capacity(&self) -> usize {
        self.cfg.capacity_pages
    }

    /// The configured victim-selection policy.
    pub fn policy(&self) -> EvictPolicy {
        self.cfg.policy
    }

    /// How many of the hottest resident pages victim selection must spare
    /// on `gpu` right now: the configured working-set protection while the
    /// thrash gate is engaged, none otherwise.
    pub fn hot_protect(&self, gpu: GpuId) -> usize {
        if self.thrashing(gpu) {
            self.cfg.hot_protect
        } else {
            0
        }
    }

    /// Whether `gpu`'s thrash gate is currently engaged.
    pub fn thrashing(&self, gpu: GpuId) -> bool {
        self.cfg.enabled
            && self
                .gates
                .get(usize::from(gpu))
                .is_some_and(Hysteresis::engaged)
    }

    /// Records a capacity eviction of `vpn` from `gpu` for refault
    /// tracking. (The eviction *count* is credited where the protocol
    /// transition commits, via `ProtocolNote::CapacityEviction`.)
    pub fn note_evicted(&mut self, gpu: GpuId, vpn: u64, now: Cycle) {
        if !self.cfg.enabled {
            return;
        }
        if let Some(m) = self.recently_evicted.get_mut(usize::from(gpu)) {
            m.insert(vpn, now);
        }
    }

    /// Classifies a demand fault on `gpu` for `vpn` at `now` and feeds the
    /// thrash gate. Returns whether it was a refault (the page was evicted
    /// within the refault window).
    pub fn note_fault(&mut self, gpu: GpuId, vpn: u64, now: Cycle) -> bool {
        if !self.cfg.enabled {
            return false;
        }
        let g = usize::from(gpu);
        let Some(m) = self.recently_evicted.get_mut(g) else {
            return false;
        };
        let refault = match m.get(&vpn) {
            Some(&evicted_at) => {
                m.remove(&vpn);
                now.saturating_sub(evicted_at) <= self.cfg.refault_window
            }
            None => false,
        };
        if refault {
            self.stats.refaults = self.stats.refaults.saturating_add(1);
            self.refaults[g].record(now);
        }
        let was_engaged = self.gates[g].engaged();
        let engaged = self.gates[g].observe(self.refaults[g].count(now));
        if engaged && !was_engaged {
            self.stats.thrash_trips = self.stats.thrash_trips.saturating_add(1);
        }
        refault
    }

    /// Whether background traffic of `class` destined for `gpu` should be
    /// shed by the thrash gate; counts the drop when it says yes.
    pub fn shed_background(&mut self, gpu: GpuId, class: TrafficClass) -> bool {
        let shed = class.is_background() && self.thrashing(gpu);
        if shed {
            self.stats.background_shed = self.stats.background_shed.saturating_add(1);
        }
        shed
    }

    /// Whether a cold demand fault on `gpu` should be served by
    /// host-mediated direct access instead of migration: the GPU is
    /// thrashing, at capacity, and the page is not part of the refaulting
    /// working set. Counts the fallback when it says yes.
    pub fn prefer_direct_access(
        &mut self,
        gpu: GpuId,
        was_refault: bool,
        at_capacity: bool,
    ) -> bool {
        let fall_back = self.thrashing(gpu) && at_capacity && !was_refault;
        if fall_back {
            self.stats.direct_fallbacks = self.stats.direct_fallbacks.saturating_add(1);
        }
        fall_back
    }

    /// Credits victim candidates skipped because they were pinned.
    pub fn note_pinned_skips(&mut self, n: u64) {
        self.stats.pinned_skips = self.stats.pinned_skips.saturating_add(n);
    }

    /// Credits a capacity-enforcement pass that found no evictable victim.
    pub fn note_no_victim(&mut self) {
        self.stats.no_victim = self.stats.no_victim.saturating_add(1);
    }

    /// `gpu` went offline: its memory is gone, so recently-evicted history
    /// and the thrash window reset with it.
    pub fn on_gpu_offline(&mut self, gpu: GpuId) {
        if !self.cfg.enabled {
            return;
        }
        let g = usize::from(gpu);
        if let Some(m) = self.recently_evicted.get_mut(g) {
            m.clear();
        }
        if let Some(w) = self.refaults.get_mut(g) {
            *w = WindowedCount::new(self.cfg.refault_window.max(1));
        }
        if let Some(gate) = self.gates.get_mut(g) {
            *gate = Hysteresis::new(
                self.cfg.thrash_high,
                self.cfg.thrash_low.min(self.cfg.thrash_high),
            );
        }
    }

    /// A 64-bit digest of the control plane's live state for epoch
    /// checkpoints. Constant across a run while disabled.
    pub fn digest(&self) -> u64 {
        let mut d = StateDigest::new();
        d.mix(u64::from(self.cfg.enabled));
        d.mix(self.rng.state_digest());
        for g in &self.gates {
            d.mix(u64::from(g.engaged()));
        }
        for w in &self.refaults {
            d.mix_all(w.iter());
            d.mix(u64::MAX);
        }
        for m in &self.recently_evicted {
            for (&vpn, &t) in m.iter() {
                d.mix(vpn + 1).mix(t);
            }
            d.mix(u64::MAX);
        }
        d.finish()
    }

    /// Moves the accumulated stats out (for end-of-run metrics merging).
    pub fn take_stats(&mut self) -> OversubStats {
        std::mem::take(&mut self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn on() -> OversubConfig {
        OversubConfig::enabled()
    }

    #[test]
    fn default_config_is_disabled_and_valid() {
        let cfg = OversubConfig::default();
        assert!(!cfg.enabled);
        cfg.validate();
        OversubConfig::enabled().validate();
        OversubConfig::with_capacity(64).validate();
    }

    #[test]
    fn disabled_control_is_inert_and_digest_constant() {
        let mut c = OversubControl::new(&OversubConfig::default(), 4, 7);
        let before = c.digest();
        c.note_evicted(1, 5, 100);
        assert!(!c.note_fault(1, 5, 150));
        assert!(!c.thrashing(1));
        assert!(!c.shed_background(1, TrafficClass::Prefetch));
        assert!(!c.prefer_direct_access(1, false, true));
        assert_eq!(c.hot_protect(1), 0);
        c.on_gpu_offline(1);
        assert_eq!(c.digest(), before, "disabled control must not mutate");
        assert_eq!(c.stats, OversubStats::default());
    }

    #[test]
    fn refault_burst_trips_the_gate_and_window_releases_it() {
        let mut cfg = on();
        cfg.thrash_high = 3;
        cfg.thrash_low = 0;
        cfg.refault_window = 100;
        let mut c = OversubControl::new(&cfg, 2, 7);
        // Faults without prior evictions are not refaults.
        assert!(!c.note_fault(0, 1, 10));
        assert_eq!(c.stats.refaults, 0);
        for vpn in [1u64, 2, 3] {
            c.note_evicted(0, vpn, 20);
            assert!(c.note_fault(0, vpn, 30), "evict-then-fault is a refault");
        }
        assert_eq!(c.stats.refaults, 3);
        assert_eq!(c.stats.thrash_trips, 1);
        assert!(c.thrashing(0));
        assert!(!c.thrashing(1), "gates are per GPU");
        assert_eq!(c.hot_protect(0), cfg.hot_protect);
        // The burst ages out of the window: the next fault releases the gate.
        assert!(!c.note_fault(0, 9, 200));
        assert!(!c.thrashing(0));
        assert_eq!(c.stats.thrash_trips, 1, "release is not a trip");
    }

    #[test]
    fn refault_window_expires_old_evictions() {
        let mut cfg = on();
        cfg.refault_window = 50;
        let mut c = OversubControl::new(&cfg, 1, 7);
        c.note_evicted(0, 8, 100);
        assert!(!c.note_fault(0, 8, 200), "past the window: a cold fault");
        assert_eq!(c.stats.refaults, 0);
        // The stale entry was consumed; a repeat fault is still cold.
        assert!(!c.note_fault(0, 8, 201));
    }

    #[test]
    fn shedding_and_direct_fallback_follow_the_gate() {
        let mut cfg = on();
        cfg.thrash_high = 1;
        cfg.thrash_low = 0;
        let mut c = OversubControl::new(&cfg, 2, 7);
        assert!(!c.shed_background(0, TrafficClass::Prefetch));
        assert!(!c.prefer_direct_access(0, false, true));
        c.note_evicted(0, 4, 10);
        assert!(c.note_fault(0, 4, 20));
        assert!(c.thrashing(0));
        assert!(c.shed_background(0, TrafficClass::Prefetch));
        assert!(c.shed_background(0, TrafficClass::Migration));
        assert!(!c.shed_background(0, TrafficClass::Demand), "demand never sheds");
        assert!(!c.shed_background(1, TrafficClass::Prefetch), "per-GPU gate");
        assert!(c.prefer_direct_access(0, false, true), "cold page at capacity");
        assert!(!c.prefer_direct_access(0, true, true), "refaults still migrate");
        assert!(!c.prefer_direct_access(0, false, false), "below capacity");
        assert_eq!(c.stats.background_shed, 2);
        assert_eq!(c.stats.direct_fallbacks, 1);
    }

    #[test]
    fn offline_resets_per_gpu_tracking() {
        let mut cfg = on();
        cfg.thrash_high = 1;
        cfg.thrash_low = 0;
        let mut c = OversubControl::new(&cfg, 2, 7);
        c.note_evicted(0, 4, 10);
        assert!(c.note_fault(0, 4, 20));
        assert!(c.thrashing(0));
        c.on_gpu_offline(0);
        assert!(!c.thrashing(0));
        c.note_evicted(0, 5, 30);
        c.on_gpu_offline(0);
        assert!(!c.note_fault(0, 5, 31), "history cleared with the GPU");
    }

    #[test]
    fn enabled_digest_tracks_state_changes() {
        let mut c = OversubControl::new(&on(), 2, 7);
        let d0 = c.digest();
        c.note_evicted(0, 4, 10);
        let d1 = c.digest();
        assert_ne!(d0, d1, "eviction history is digest-visible");
        let mut c2 = OversubControl::new(&on(), 2, 7);
        c2.note_evicted(0, 4, 10);
        assert_eq!(c2.digest(), d1, "same seed and history agree");
    }
}
