//! System configuration (Table II) and experiment knobs.

use sim_core::{Cycle, FaultPlan};
use transfw::TransFwConfig;

/// Protocol-watchdog knobs: per-request deadlines with bounded retries, a
/// final graceful degradation to the ordinary host-walk path, and an
/// event-loop liveness check. The watchdogs arm only when a fault plan is
/// active, so fault-free runs stay bit-identical to the unwatched simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Master switch for all protocol watchdogs.
    pub enabled: bool,
    /// Cycles a forwarded/remote lookup may stay outstanding before the
    /// watchdog retries it.
    pub request_timeout: Cycle,
    /// Lossy retries before degrading to a reliable direct host walk.
    pub max_retries: u32,
    /// Liveness-check period: if outstanding work makes no progress for a
    /// whole interval the run aborts with [`sim_core::SimError::Livelock`].
    pub liveness_interval: Cycle,
    /// Hard cap on simulated cycles (None = unbounded); exceeded caps abort
    /// with [`sim_core::SimError::CycleCapExceeded`].
    pub max_cycles: Option<Cycle>,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            // Generous relative to a worst-case forwarded walk: two link
            // crossings (2x150) + a full borrowed walk (5x100) + queueing.
            request_timeout: 20_000,
            max_retries: 2,
            liveness_interval: 1_000_000,
            max_cycles: None,
        }
    }
}

/// Which page-walk cache organisation to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PwcKind {
    /// Unified Translation Cache (paper default).
    Utc,
    /// Split Translation Cache (§V-C).
    Stc,
    /// Infinite cache — only cold misses (Fig. 4 ideal).
    Infinite,
}

/// How far faults are handled (§II-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FarFaultMode {
    /// Hardware host MMU / IOMMU handles faults (the paper's baseline).
    HostMmu,
    /// The software UVM driver handles faults in batches (Figs. 2 and 26).
    UvmDriver,
}

/// Trans-FW enablement, with per-mechanism ablation switches.
#[derive(Debug, Clone, PartialEq)]
pub struct TransFwKnobs {
    /// Table sizing and forwarding threshold.
    pub config: TransFwConfig,
    /// Short-circuit the GMMU walk via the PRT (§IV-B).
    pub gmmu_short_circuit: bool,
    /// Forward contended host walks to owner GPUs via the FT (§IV-C).
    pub host_forwarding: bool,
}

impl TransFwKnobs {
    /// The full mechanism with paper-default sizing.
    pub fn full() -> Self {
        Self {
            config: TransFwConfig::default(),
            gmmu_short_circuit: true,
            host_forwarding: true,
        }
    }
}

/// Impractical idealisations for the Fig. 4 "room for improvement" study.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IdealKnobs {
    /// Unlimited PT-walk threads in GMMU and host MMU.
    pub infinite_walkers: bool,
    /// Page migrations complete instantly (translation latency preserved).
    pub zero_migration_latency: bool,
    /// Pre-map every page in every GPU: no local page faults ever.
    pub no_local_faults: bool,
}

/// Full system configuration. Defaults reproduce Table II.
///
/// # Examples
///
/// ```
/// use mgpu::SystemConfig;
///
/// let cfg = SystemConfig::builder()
///     .gpus(8)
///     .host_walkers(32)
///     .build();
/// assert_eq!(cfg.gpus, 8);
/// assert_eq!(cfg.l2_tlb_entries, 512); // Table II default retained
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Number of GPUs (paper baseline: 4).
    pub gpus: u16,
    /// Compute units per GPU (Table II: 64).
    pub cus_per_gpu: u16,
    /// Wavefront slots per CU issuing independent memory instructions.
    pub wavefronts_per_cu: u16,
    /// log2 of the page size in bytes (12 for 4 KB, 21 for 2 MB).
    pub page_size_bits: u32,
    /// Page-table levels (5 default, 4 in Fig. 19).
    pub page_table_levels: u32,
    /// L1 TLB entries per CU (32, fully associative).
    pub l1_tlb_entries: usize,
    /// L1 TLB lookup latency (1 cycle).
    pub l1_tlb_latency: Cycle,
    /// Shared L2 TLB entries (512).
    pub l2_tlb_entries: usize,
    /// L2 TLB associativity (16).
    pub l2_tlb_assoc: usize,
    /// L2 TLB lookup latency (10 cycles).
    pub l2_tlb_latency: Cycle,
    /// Host MMU TLB entries (2048; 4096 in Fig. 20a).
    pub host_tlb_entries: usize,
    /// Host MMU TLB associativity (64).
    pub host_tlb_assoc: usize,
    /// GMMU PT-walk threads (8).
    pub gmmu_walkers: usize,
    /// Host MMU PT-walk threads (16).
    pub host_walkers: usize,
    /// GMMU PW-cache entries (128).
    pub gmmu_pwc_entries: usize,
    /// Host MMU PW-cache entries (128; 256/512 in Fig. 20b/c).
    pub host_pwc_entries: usize,
    /// PW-cache organisation.
    pub pwc_kind: PwcKind,
    /// PW-queue capacity (64).
    pub pw_queue_entries: usize,
    /// Memory latency per page-table level access (100 cycles).
    pub walk_level_latency: Cycle,
    /// Host-MMU per-fault handling occupancy beyond the raw walk (fault
    /// buffer management and migration orchestration keep the walk thread
    /// busy); this is what makes the host PW-queue the contention point the
    /// paper measures (Fig. 3: 20.9% of L2-miss latency).
    pub host_fault_overhead: Cycle,
    /// CPU–GPU interconnect latency (PCIe, 150 cycles).
    pub cpu_link_latency: Cycle,
    /// GPU–GPU interconnect latency (150 cycles; swept in Fig. 21).
    pub peer_link_latency: Cycle,
    /// Interconnect bandwidth in bytes per cycle per link.
    pub link_bytes_per_cycle: u64,
    /// GPU local memory (DRAM) data-access latency.
    pub dram_latency: Cycle,
    /// Data-cache hit latency for data accesses.
    pub cache_latency: Cycle,
    /// Far-fault handling mode.
    pub fault_mode: FarFaultMode,
    /// Software-driver cost model (used when `fault_mode` is `UvmDriver`).
    pub driver: uvm::DriverConfig,
    /// Additional per-GPU, per-batch driver cost: the driver polls and
    /// fetches every GPU's fault buffer each round, which is what makes the
    /// software path scale poorly as GPUs are added (Fig. 2a).
    pub driver_per_gpu_poll: sim_core::Cycle,
    /// Page placement policy.
    pub policy: uvm::MigrationPolicy,
    /// Placement-policy engine override. `None` (the default) derives the
    /// engine from the legacy `policy` selector, keeping old configurations
    /// bit-identical; `Some(kind)` selects one of the four
    /// [`uvm::PolicyKind`] policies directly (the only way to reach
    /// `DelayedMigration` and `PrefetchNeighborhood` with their knobs).
    pub placement: Option<uvm::PolicyKind>,
    /// Trans-FW (None = baseline).
    pub transfw: Option<TransFwKnobs>,
    /// ASAP PW-cache prefetching in GMMU and host MMU (§V-H); the value is
    /// the prediction accuracy.
    pub asap: Option<f64>,
    /// Fig. 4 idealisations.
    pub ideal: IdealKnobs,
    /// Least-TLB style redundancy elimination (§V-I): the shared L2 TLBs of
    /// all GPUs act as one distributed TLB, probed before the GMMU.
    pub least_tlb: bool,
    /// Fault-injection plan ([`FaultPlan::none`] = pristine run).
    pub faults: FaultPlan,
    /// Epoch-checkpoint period in cycles (None = no checkpointing). When
    /// set, the system records a state digest every interval so a crashed
    /// run can be restored and verified bit-identical (see
    /// [`run_with_restore`](crate::run_with_restore)).
    pub checkpoint_interval: Option<Cycle>,
    /// Protocol-watchdog and liveness knobs.
    pub watchdog: WatchdogConfig,
    /// Shadow sanitizer: check the model-checker's safety invariants
    /// (commit atomicity, retire-exactly-once, local-residency agreement)
    /// at every ownership commit and retire of a full-scale run. The checks
    /// are read-only and draw no randomness, so enabling them keeps runs
    /// bit-identical; findings surface through the post-run auditor.
    pub sanitize: bool,
    /// Overload-control knobs: admission watermarks, retry budgets with
    /// deterministic backoff, and per-peer circuit breakers. The default
    /// is disabled, which keeps every run bit-identical to a build without
    /// the subsystem (see [`OverloadConfig`](crate::OverloadConfig)).
    pub overload: crate::overload::OverloadConfig,
    /// Oversubscription knobs: per-GPU capacity, eviction policy and
    /// thrash detection. The default is disabled (capacity treated as
    /// infinite), which keeps every run bit-identical to a build without
    /// the subsystem (see [`OversubConfig`](crate::OversubConfig)).
    pub oversub: crate::oversub::OversubConfig,
    /// Deterministic simulation seed.
    pub seed: u64,
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self {
            gpus: 4,
            cus_per_gpu: 64,
            wavefronts_per_cu: 2,
            page_size_bits: 12,
            page_table_levels: 5,
            l1_tlb_entries: 32,
            l1_tlb_latency: 1,
            l2_tlb_entries: 512,
            l2_tlb_assoc: 16,
            l2_tlb_latency: 10,
            host_tlb_entries: 2048,
            host_tlb_assoc: 64,
            gmmu_walkers: 8,
            host_walkers: 16,
            gmmu_pwc_entries: 128,
            host_pwc_entries: 128,
            pwc_kind: PwcKind::Utc,
            pw_queue_entries: 64,
            walk_level_latency: 100,
            host_fault_overhead: 400,
            cpu_link_latency: 150,
            peer_link_latency: 150,
            link_bytes_per_cycle: 256,
            dram_latency: 200,
            cache_latency: 25,
            fault_mode: FarFaultMode::HostMmu,
            driver: uvm::DriverConfig::default(),
            driver_per_gpu_poll: 600,
            policy: uvm::MigrationPolicy::OnTouch,
            placement: None,
            transfw: None,
            asap: None,
            ideal: IdealKnobs::default(),
            least_tlb: false,
            faults: FaultPlan::none(),
            checkpoint_interval: None,
            watchdog: WatchdogConfig::default(),
            sanitize: false,
            overload: crate::overload::OverloadConfig::default(),
            oversub: crate::oversub::OversubConfig::default(),
            seed: 0xBEEF,
        }
    }
}

impl SystemConfig {
    /// Starts building a configuration from the Table II defaults.
    pub fn builder() -> SystemConfigBuilder {
        SystemConfigBuilder {
            cfg: Self::default(),
        }
    }

    /// The Table II baseline (no Trans-FW).
    pub fn baseline() -> Self {
        Self::default()
    }

    /// The baseline with Trans-FW fully enabled.
    pub fn with_transfw() -> Self {
        Self {
            transfw: Some(TransFwKnobs::full()),
            ..Self::default()
        }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent geometry (zero counts, TLB geometry that does
    /// not divide, unknown page size).
    pub fn validate(&self) {
        assert!(self.gpus > 0, "need at least one GPU");
        assert!(self.cus_per_gpu > 0, "need at least one CU");
        assert!(self.wavefronts_per_cu > 0, "need at least one wavefront");
        assert!(
            self.l2_tlb_entries.is_multiple_of(self.l2_tlb_assoc),
            "L2 TLB geometry"
        );
        assert!(
            self.host_tlb_entries.is_multiple_of(self.host_tlb_assoc),
            "host TLB geometry"
        );
        assert!(
            (2..=6).contains(&self.page_table_levels),
            "page table levels"
        );
        assert!(
            self.page_size_bits == 12 || self.page_size_bits == 21,
            "page size must be 4 KB or 2 MB"
        );
        if let Err(e) = self.faults.validate() {
            panic!("{e}");
        }
        if let Err(e) = self.faults.validate_topology(self.gpus as usize) {
            panic!("{e}");
        }
        if let Some(interval) = self.checkpoint_interval {
            assert!(interval > 0, "checkpoint_interval must be positive");
        }
        if self.watchdog.enabled {
            assert!(
                self.watchdog.request_timeout > 0,
                "watchdog request_timeout must be positive"
            );
            assert!(
                self.watchdog.liveness_interval > 0,
                "watchdog liveness_interval must be positive"
            );
        }
        if self.overload.enabled {
            self.overload.validate();
        }
        if self.oversub.enabled {
            self.oversub.validate();
        }
    }

    /// Page size in bytes.
    pub fn page_bytes(&self) -> u64 {
        1 << self.page_size_bits
    }

    /// Converts a 4 KB-granule VPN (the unit workloads generate) to a
    /// translation-granule VPN under the configured page size.
    pub fn translation_vpn(&self, vpn_4k: u64) -> u64 {
        vpn_4k >> (self.page_size_bits - 12)
    }

    /// The placement-policy kind the directory will run: the explicit
    /// `placement` override when set, else the engine equivalent of the
    /// legacy `policy` selector.
    pub fn placement_kind(&self) -> uvm::PolicyKind {
        self.placement.unwrap_or_else(|| self.policy.into())
    }
}

/// Builder for [`SystemConfig`] (non-consuming terminal, per C-BUILDER).
#[derive(Debug, Clone)]
pub struct SystemConfigBuilder {
    cfg: SystemConfig,
}

macro_rules! setter {
    ($(#[$doc:meta])* $name:ident: $ty:ty) => {
        $(#[$doc])*
        pub fn $name(&mut self, value: $ty) -> &mut Self {
            self.cfg.$name = value;
            self
        }
    };
}

impl SystemConfigBuilder {
    setter!(
        /// Number of GPUs.
        gpus: u16
    );
    setter!(
        /// CUs per GPU.
        cus_per_gpu: u16
    );
    setter!(
        /// Wavefront slots per CU.
        wavefronts_per_cu: u16
    );
    setter!(
        /// log2 page size (12 or 21).
        page_size_bits: u32
    );
    setter!(
        /// Page-table levels.
        page_table_levels: u32
    );
    setter!(
        /// L1 TLB entries.
        l1_tlb_entries: usize
    );
    setter!(
        /// L2 TLB entries.
        l2_tlb_entries: usize
    );
    setter!(
        /// L2 TLB associativity.
        l2_tlb_assoc: usize
    );
    setter!(
        /// Host TLB entries.
        host_tlb_entries: usize
    );
    setter!(
        /// Host TLB associativity.
        host_tlb_assoc: usize
    );
    setter!(
        /// GMMU walker threads.
        gmmu_walkers: usize
    );
    setter!(
        /// Host walker threads.
        host_walkers: usize
    );
    setter!(
        /// GMMU PW-cache entries.
        gmmu_pwc_entries: usize
    );
    setter!(
        /// Host PW-cache entries.
        host_pwc_entries: usize
    );
    setter!(
        /// PW-cache organisation.
        pwc_kind: PwcKind
    );
    setter!(
        /// Walk per-level memory latency.
        walk_level_latency: Cycle
    );
    setter!(
        /// Host per-fault handling occupancy.
        host_fault_overhead: Cycle
    );
    setter!(
        /// CPU link latency.
        cpu_link_latency: Cycle
    );
    setter!(
        /// Peer link latency.
        peer_link_latency: Cycle
    );
    setter!(
        /// DRAM data latency.
        dram_latency: Cycle
    );
    setter!(
        /// Far-fault mode.
        fault_mode: FarFaultMode
    );
    setter!(
        /// Driver cost model.
        driver: uvm::DriverConfig
    );
    setter!(
        /// Placement policy.
        policy: uvm::MigrationPolicy
    );
    setter!(
        /// Placement-policy engine override (None derives from `policy`).
        placement: Option<uvm::PolicyKind>
    );
    setter!(
        /// Trans-FW knobs.
        transfw: Option<TransFwKnobs>
    );
    setter!(
        /// ASAP prefetch accuracy.
        asap: Option<f64>
    );
    setter!(
        /// Fig. 4 idealisations.
        ideal: IdealKnobs
    );
    setter!(
        /// Least-TLB sharing.
        least_tlb: bool
    );
    setter!(
        /// Fault-injection plan.
        faults: FaultPlan
    );
    setter!(
        /// Epoch-checkpoint period.
        checkpoint_interval: Option<Cycle>
    );
    setter!(
        /// Watchdog knobs.
        watchdog: WatchdogConfig
    );
    setter!(
        /// Shadow-sanitizer invariant checking.
        sanitize: bool
    );
    setter!(
        /// Overload-control knobs.
        overload: crate::overload::OverloadConfig
    );
    setter!(
        /// Oversubscription knobs.
        oversub: crate::oversub::OversubConfig
    );
    setter!(
        /// Simulation seed.
        seed: u64
    );

    /// Finalises and validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (see
    /// [`SystemConfig::validate`]).
    pub fn build(&self) -> SystemConfig {
        let cfg = self.cfg.clone();
        cfg.validate();
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_ii() {
        let c = SystemConfig::default();
        assert_eq!(c.gpus, 4);
        assert_eq!(c.cus_per_gpu, 64);
        assert_eq!(c.l1_tlb_entries, 32);
        assert_eq!(c.l2_tlb_entries, 512);
        assert_eq!(c.l2_tlb_assoc, 16);
        assert_eq!(c.l2_tlb_latency, 10);
        assert_eq!(c.host_tlb_entries, 2048);
        assert_eq!(c.host_tlb_assoc, 64);
        assert_eq!(c.gmmu_walkers, 8);
        assert_eq!(c.host_walkers, 16);
        assert_eq!(c.gmmu_pwc_entries, 128);
        assert_eq!(c.pw_queue_entries, 64);
        assert_eq!(c.walk_level_latency, 100);
        assert_eq!(c.cpu_link_latency, 150);
        assert_eq!(c.page_table_levels, 5);
        assert_eq!(c.fault_mode, FarFaultMode::HostMmu);
        assert!(c.transfw.is_none());
    }

    #[test]
    fn builder_overrides_and_keeps_rest() {
        let c = SystemConfig::builder().gpus(16).host_walkers(128).build();
        assert_eq!(c.gpus, 16);
        assert_eq!(c.host_walkers, 128);
        assert_eq!(c.l2_tlb_entries, 512);
    }

    #[test]
    fn with_transfw_enables_both_mechanisms() {
        let c = SystemConfig::with_transfw();
        let knobs = c.transfw.unwrap();
        assert!(knobs.gmmu_short_circuit);
        assert!(knobs.host_forwarding);
    }

    #[test]
    fn page_size_conversion() {
        let c4k = SystemConfig::default();
        assert_eq!(c4k.page_bytes(), 4096);
        assert_eq!(c4k.translation_vpn(12345), 12345);
        let c2m = SystemConfig::builder().page_size_bits(21).build();
        assert_eq!(c2m.page_bytes(), 2 * 1024 * 1024);
        assert_eq!(c2m.translation_vpn(512), 1);
        assert_eq!(c2m.translation_vpn(511), 0);
    }

    #[test]
    #[should_panic(expected = "page size")]
    fn bad_page_size_rejected() {
        SystemConfig::builder().page_size_bits(13).build();
    }

    #[test]
    #[should_panic(expected = "L2 TLB geometry")]
    fn bad_tlb_geometry_rejected() {
        SystemConfig::builder().l2_tlb_entries(100).build();
    }

    #[test]
    fn default_fault_plan_is_inert_and_watchdogs_on() {
        let c = SystemConfig::default();
        assert!(!c.faults.is_active());
        assert!(c.watchdog.enabled);
        assert!(c.watchdog.max_cycles.is_none());
    }

    #[test]
    fn placement_defaults_to_legacy_policy_equivalent() {
        let c = SystemConfig::default();
        assert!(c.placement.is_none());
        assert_eq!(c.placement_kind(), uvm::PolicyKind::FirstTouch);
        let c = SystemConfig::builder()
            .policy(uvm::MigrationPolicy::ReadReplication)
            .build();
        assert_eq!(c.placement_kind(), uvm::PolicyKind::ReadDuplicate);
        let c = SystemConfig::builder()
            .placement(Some(uvm::PolicyKind::PrefetchNeighborhood { radius: 3 }))
            .build();
        assert_eq!(
            c.placement_kind(),
            uvm::PolicyKind::PrefetchNeighborhood { radius: 3 },
            "explicit override wins over the legacy selector"
        );
    }

    #[test]
    fn builder_accepts_fault_plan() {
        let c = SystemConfig::builder()
            .faults(FaultPlan::message_loss(7, 0.01))
            .build();
        assert!(c.faults.is_active());
    }

    #[test]
    #[should_panic(expected = "not in [0, 1]")]
    fn invalid_fault_plan_rejected() {
        let mut plan = FaultPlan::none();
        plan.message_drop_prob = 1.5;
        SystemConfig::builder().faults(plan).build();
    }
}
