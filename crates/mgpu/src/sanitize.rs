//! The shadow sanitizer (`SystemConfig::sanitize`): the model checker's
//! safety invariants, checked continuously during full-scale runs.
//!
//! `simcheck` proves the invariants over *every* interleaving of a tiny
//! configuration; the sanitizer checks the same properties at every
//! ownership commit and every retire of an arbitrarily large run, so
//! chaos-soak and policy-sweep runs get per-event invariant coverage for
//! free. Every check is a read-only probe (no counting-filter lookups, no
//! RNG, no events), which is what keeps a sanitized run bit-identical to
//! the unsanitized one; findings are queued and reported by the post-run
//! auditor as [`sim_core::SimError::InvariantViolation`].

use ptw::Location;
use uvm::OwnershipTransaction;

use crate::request::ReqId;
use crate::system::System;

/// Findings cap: a systemic violation (e.g. a corrupted table early in a
/// long run) repeats at almost every event; keeping the first few is enough
/// to diagnose it without ballooning memory.
const MAX_FINDINGS: usize = 16;

impl System {
    fn sanitizer_report(&mut self, msg: String) {
        if self.sanitizer_violations.len() < MAX_FINDINGS {
            self.sanitizer_violations.push(msg);
        }
    }

    /// Ownership-transaction atomicity, checked immediately after a commit:
    /// every invalidated GPU's stale PTE is gone, and the host's
    /// centralised table agrees with the directory about the page's home.
    ///
    /// Both probes hold under every fault plan — local PTE removal and the
    /// host PT rewrite are never lossy. The FT probe (the committed
    /// destination is discoverable as an owner) only holds when no plan
    /// deliberately corrupts the tables, and the FT is a fingerprint filter
    /// whose deletes may collide, so that probe is gated accordingly.
    pub(crate) fn sanitize_commit(&mut self, txn: &OwnershipTransaction) {
        let vpn = txn.vpn;
        for &g in &txn.invalidate {
            let stale = self
                .gpus
                .get(g as usize)
                .is_some_and(|gpu| gpu.pt.translate(vpn).is_some());
            if stale {
                self.sanitizer_report(format!(
                    "sanitize: {:?} commit of vpn {vpn} left a stale PTE on GPU{g}",
                    txn.kind
                ));
            }
        }
        let home = self.dir.home(vpn);
        if let Some(pte) = self.host.pt.translate(vpn) {
            if pte.loc != home {
                self.sanitizer_report(format!(
                    "sanitize: after {:?} commit of vpn {vpn} host PT says {:?} but directory says {home:?}",
                    txn.kind, pte.loc
                ));
            }
        }
        if txn.moves_home() && !self.injector.plan().perturbs_tables() {
            let missing = self
                .host
                .ft
                .as_ref()
                .is_some_and(|ft| !ft.names_owner(vpn, txn.dest));
            if missing {
                self.sanitizer_report(format!(
                    "sanitize: {:?} commit of vpn {vpn} did not register GPU{} in the FT",
                    txn.kind, txn.dest
                ));
            }
        }
    }

    /// Retire-time invariants: the request retires exactly once, and a
    /// translation retired as *local* is backed by directory residency (the
    /// no-stale-translation property). The residency probe is void while a
    /// GPU is offline (eviction races the in-flight retire by design),
    /// under a table-corrupting plan, or when this request's own resolution
    /// raced a concurrent commit — an ownership invalidation may pass the
    /// in-flight install, an accepted race the model checker proved
    /// reachable (the requester briefly holds a stale mapping, repaired at
    /// its next fault on the page).
    pub(crate) fn sanitize_retire(&mut self, req: ReqId) {
        let Some(r) = self.reqs.get(req) else {
            return;
        };
        let (count, vpn, g) = (r.retire_count, r.vpn, r.gpu);
        let raced_resolution = r.resolved_loc == Some(Location::Gpu(g));
        if count != 1 {
            self.sanitizer_report(format!(
                "sanitize: req {req} (vpn {vpn}, gpu {g}) retired {count} times"
            ));
        }
        if self.offline_count == 0
            && !self.injector.plan().perturbs_tables()
            && !raced_resolution
        {
            let local = self
                .gpus
                .get(g as usize)
                .and_then(|gpu| gpu.pt.translate(vpn))
                .map(|pte| pte.loc);
            if local == Some(Location::Gpu(g)) && !self.dir.is_resident(vpn, g) {
                self.sanitizer_report(format!(
                    "sanitize: req {req} retired vpn {vpn} as local to GPU{g} without directory residency"
                ));
            }
        }
    }
}
