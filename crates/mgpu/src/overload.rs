//! Overload control for the translation pipeline: admission gates, retry
//! budgets with deterministic backoff, and per-peer circuit breakers.
//!
//! Faults make individual messages unreliable; *load* makes the whole
//! pipeline unreliable. Without this module a saturated host MMU turns
//! watchdog timeouts into an immediate-retry storm that feeds back into the
//! very queues that caused the timeouts. [`OverloadControl`] breaks that
//! loop with four mechanisms, all deterministic and all inert by default:
//!
//! * **Admission control** — watermark [`Hysteresis`] gates over the
//!   host-MMU walker queue and each GPU's walk queue / MSHR file. While a
//!   gate is engaged, background traffic (prefetch, access-counter
//!   migration — see [`TrafficClass`]) is shed before any demand walk is
//!   touched.
//! * **Retry budgets** — watchdog retries draw from a per-GPU
//!   [`TokenBucket`] refilled by fresh demand traffic, and each granted
//!   retry is delayed by [`ExponentialBackoff`] with jitter from a private
//!   [`SimRng`] stream (never the simulator's main RNG, never wall clock).
//! * **Circuit breakers** — one [`CircuitBreaker`] per remote-forwarding
//!   peer. Repeated forward failures open the breaker; while open, walks
//!   take the reliable host path instead; half-open probes re-close it.
//! * **Priority classes** — [`TrafficClass`] orders what is shed first.
//!
//! With [`OverloadConfig::default`] (disabled) the control plane draws no
//! randomness, pushes no events and perturbs no queues, keeping fault-free
//! runs bit-identical to a build without it. With it enabled, all decisions
//! derive from the seed, so replay and `run_with_restore` stay exact.

use ptw::GpuId;
use sim_core::checkpoint::StateDigest;
use sim_core::stats::Histogram;
use sim_core::{Cycle, ExponentialBackoff, Hysteresis, SimRng, TokenBucket};
use uvm::TrafficClass;

use crate::request::ReqId;

/// Seed perturbation for the control plane's private RNG stream, so its
/// jitter draws never interleave with the simulator's main stream.
const OVERLOAD_SEED_SALT: u64 = 0x0E7B_10AD_5EED_CAFE;

/// Tuning for the overload-control subsystem. `Default` is **disabled**:
/// every gate permissive, no RNG draws, bit-identical to a build without
/// overload control.
#[derive(Debug, Clone, PartialEq)]
pub struct OverloadConfig {
    /// Master switch; `false` makes the whole subsystem inert.
    pub enabled: bool,
    /// Host walker-queue occupancy at which background shedding engages.
    pub host_queue_high: usize,
    /// Host walker-queue occupancy at which shedding releases.
    pub host_queue_low: usize,
    /// Per-GPU walk-queue occupancy at which borrowed remote walks shed.
    pub gpu_queue_high: usize,
    /// Per-GPU walk-queue occupancy at which that gate releases.
    pub gpu_queue_low: usize,
    /// Per-GPU MSHR occupancy at which borrowed remote walks shed.
    pub mshr_high: usize,
    /// Per-GPU MSHR occupancy at which that gate releases.
    pub mshr_low: usize,
    /// First-retry backoff delay in cycles.
    pub backoff_base: Cycle,
    /// Backoff ceiling in cycles.
    pub backoff_cap: Cycle,
    /// Retry tokens a GPU's bucket can hold.
    pub retry_budget: u64,
    /// Milli-tokens credited per fresh demand request (250 = one retry
    /// per four fresh requests, steady-state).
    pub retry_refill_permille: u64,
    /// Samples per breaker failure-rate window.
    pub breaker_window: u32,
    /// Failure rate (permille) that opens a breaker.
    pub breaker_failure_permille: u32,
    /// Minimum windowed samples before the rate is trusted.
    pub breaker_min_samples: u32,
    /// Cycles an open breaker waits before probing.
    pub breaker_open_cycles: Cycle,
    /// Concurrent half-open probe forwards allowed.
    pub breaker_probes: usize,
    /// Host→GPU link backlog (cycles) beyond which forwards are skipped.
    pub peer_backlog_high: Cycle,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            host_queue_high: 48,
            host_queue_low: 12,
            gpu_queue_high: 48,
            gpu_queue_low: 16,
            mshr_high: 192,
            mshr_low: 96,
            backoff_base: 1_000,
            backoff_cap: 32_000,
            retry_budget: 32,
            retry_refill_permille: 250,
            breaker_window: 16,
            breaker_failure_permille: 500,
            breaker_min_samples: 8,
            breaker_open_cycles: 50_000,
            breaker_probes: 2,
            peer_backlog_high: 2_000,
        }
    }
}

impl OverloadConfig {
    /// The default tuning with the master switch on.
    pub fn enabled() -> Self {
        Self {
            enabled: true,
            ..Self::default()
        }
    }

    /// Checks internal consistency (watermark ordering, rate bounds).
    ///
    /// # Panics
    ///
    /// Panics on an inconsistent configuration; called from
    /// [`SystemConfig::validate`](crate::SystemConfig::validate).
    pub fn validate(&self) {
        assert!(
            self.host_queue_low <= self.host_queue_high,
            "host queue watermarks inverted"
        );
        assert!(
            self.gpu_queue_low <= self.gpu_queue_high,
            "gpu queue watermarks inverted"
        );
        assert!(self.mshr_low <= self.mshr_high, "MSHR watermarks inverted");
        assert!(self.backoff_base > 0, "backoff base must be positive");
        assert!(
            self.backoff_cap >= self.backoff_base,
            "backoff cap below base"
        );
        assert!(self.retry_budget > 0, "retry budget must be positive");
        assert!(
            self.retry_refill_permille <= 1000,
            "retry refill above 1000 permille defeats the budget"
        );
        assert!(self.breaker_window > 0, "breaker window must be positive");
        assert!(
            self.breaker_failure_permille <= 1000,
            "breaker failure rate is a permille"
        );
        assert!(
            self.breaker_min_samples > 0 && self.breaker_min_samples <= self.breaker_window,
            "breaker min samples must fit the window"
        );
        assert!(self.breaker_probes > 0, "need at least one half-open probe");
    }
}

/// Counters and latency tails the overload subsystem reports through
/// [`RunMetrics`](crate::RunMetrics).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OverloadStats {
    /// Prefetch pages dropped by admission control.
    pub prefetch_shed: u64,
    /// Background migrations dropped by admission control.
    pub migration_shed: u64,
    /// Borrowed remote walks refused by an overloaded peer GPU.
    pub remote_walks_shed: u64,
    /// Demand walks that had to wait for host-queue space.
    pub demand_deferred: u64,
    /// Demand walks rejected outright (must stay 0 for graceful
    /// degradation; counted so the bench can prove it).
    pub demand_rejected: u64,
    /// Watchdog retries granted a token and a backoff slot.
    pub retries_budgeted: u64,
    /// Watchdog retries denied for lack of budget (went straight to the
    /// fallback host walk).
    pub retry_tokens_denied: u64,
    /// Total backoff delay inserted before granted retries, in cycles.
    pub backoff_delay_total: u64,
    /// Breaker transitions closed/half-open → open.
    pub breaker_opens: u64,
    /// Breaker transitions open → half-open.
    pub breaker_half_opens: u64,
    /// Breaker transitions half-open → closed.
    pub breaker_closes: u64,
    /// Forwards sent as half-open probes.
    pub breaker_probes: u64,
    /// Forwards suppressed by an open breaker.
    pub breaker_short_circuits: u64,
    /// Probe entries drained because their peer GPU was evicted.
    pub probe_drains: u64,
    /// Forwards skipped because the peer's host→GPU link was backlogged.
    pub forward_skipped_congested: u64,
    /// Demand-walk completion latency distribution (recorded only while
    /// overload control is enabled).
    pub demand_lat: Histogram,
}

impl OverloadStats {
    /// Background work shed (prefetch + migration + borrowed remote walks).
    pub fn background_shed(&self) -> u64 {
        self.prefetch_shed
            .saturating_add(self.migration_shed)
            .saturating_add(self.remote_walks_shed)
    }

    /// Everything shed, deferred or rejected across all classes.
    pub fn total_shed(&self) -> u64 {
        self.background_shed()
            .saturating_add(self.demand_deferred)
            .saturating_add(self.demand_rejected)
    }
}

/// What the control plane says about a proposed forward to a remote peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForwardDecision {
    /// Forward normally.
    Forward,
    /// Forward, and track the request as a half-open breaker probe.
    Probe,
    /// Do not forward; let the reliable host walk serve the request.
    Skip,
}

/// Verdict on a watchdog retry request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryDecision {
    /// Retry after `delay` cycles of jittered backoff.
    Retry {
        /// Cycles to wait before re-sending the fault to the host.
        delay: Cycle,
    },
    /// Budget exhausted: skip remaining retries, go to the fallback walk.
    Exhausted,
}

/// Circuit-breaker state: the classic three-state machine.
#[derive(Debug, Clone, PartialEq, Eq)]
enum BreakerState {
    /// Forwarding normally, watching the failure rate.
    Closed,
    /// Forwarding suppressed until `until`.
    Open {
        /// Cycle at which the breaker moves to half-open.
        until: Cycle,
    },
    /// Letting a bounded number of probes through.
    HalfOpen,
}

/// A per-peer circuit breaker over remote-forwarding outcomes.
///
/// Closed → (failure rate over threshold) → Open → (cooldown elapses,
/// evaluated lazily at the next forward attempt) → HalfOpen → (probe
/// succeeds) → Closed, or (probe fails) → Open again. No timer events are
/// scheduled: state advances when the forwarding path consults it, so the
/// event stream is untouched when nothing forwards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitBreaker {
    state: BreakerState,
    successes: u32,
    failures: u32,
    probes: Vec<ReqId>,
}

impl Default for CircuitBreaker {
    fn default() -> Self {
        Self {
            state: BreakerState::Closed,
            successes: 0,
            failures: 0,
            probes: Vec::new(),
        }
    }
}

impl CircuitBreaker {
    /// Whether the breaker currently suppresses forwarding (open and still
    /// cooling down as of `now`).
    pub fn is_open(&self, now: Cycle) -> bool {
        matches!(self.state, BreakerState::Open { until } if now < until)
    }

    /// Outstanding half-open probe requests.
    pub fn probe_count(&self) -> usize {
        self.probes.len()
    }

    fn decide(
        &mut self,
        now: Cycle,
        req: ReqId,
        cfg: &OverloadConfig,
        stats: &mut OverloadStats,
    ) -> ForwardDecision {
        if let BreakerState::Open { until } = self.state {
            if now < until {
                stats.breaker_short_circuits = stats.breaker_short_circuits.saturating_add(1);
                return ForwardDecision::Skip;
            }
            self.state = BreakerState::HalfOpen;
            stats.breaker_half_opens = stats.breaker_half_opens.saturating_add(1);
        }
        match self.state {
            BreakerState::Closed => ForwardDecision::Forward,
            BreakerState::HalfOpen => {
                if self.probes.len() < cfg.breaker_probes {
                    self.probes.push(req);
                    stats.breaker_probes = stats.breaker_probes.saturating_add(1);
                    ForwardDecision::Probe
                } else {
                    stats.breaker_short_circuits = stats.breaker_short_circuits.saturating_add(1);
                    ForwardDecision::Skip
                }
            }
            BreakerState::Open { .. } => unreachable!("open handled above"),
        }
    }

    fn record(
        &mut self,
        now: Cycle,
        req: ReqId,
        success: bool,
        cfg: &OverloadConfig,
        stats: &mut OverloadStats,
    ) {
        match self.state {
            BreakerState::Closed => {
                if success {
                    self.successes += 1;
                } else {
                    self.failures += 1;
                }
                let samples = self.successes + self.failures;
                if samples >= cfg.breaker_min_samples
                    && u64::from(self.failures) * 1000
                        >= u64::from(cfg.breaker_failure_permille) * u64::from(samples)
                {
                    self.trip(now, cfg, stats);
                } else if samples >= cfg.breaker_window {
                    // Decay the window so ancient history cannot pin the rate.
                    self.successes /= 2;
                    self.failures /= 2;
                }
            }
            BreakerState::HalfOpen => {
                let Some(pos) = self.probes.iter().position(|&p| p == req) else {
                    // A straggler from before the trip; not probe evidence.
                    return;
                };
                self.probes.swap_remove(pos);
                if success {
                    self.state = BreakerState::Closed;
                    self.successes = 0;
                    self.failures = 0;
                    self.probes.clear();
                    stats.breaker_closes = stats.breaker_closes.saturating_add(1);
                } else {
                    self.trip(now, cfg, stats);
                }
            }
            // Late outcomes while cooling down carry no new information.
            BreakerState::Open { .. } => {}
        }
    }

    fn trip(&mut self, now: Cycle, cfg: &OverloadConfig, stats: &mut OverloadStats) {
        self.state = BreakerState::Open {
            until: now + cfg.breaker_open_cycles,
        };
        self.successes = 0;
        self.failures = 0;
        self.probes.clear();
        stats.breaker_opens = stats.breaker_opens.saturating_add(1);
    }

    /// The peer was evicted: drain the probe queue (those forwards can
    /// never be answered) and hold the breaker open for a full cooldown so
    /// a rejoining GPU is probed, not flooded. Returns the drained probes.
    fn drain_for_offline(
        &mut self,
        now: Cycle,
        cfg: &OverloadConfig,
        stats: &mut OverloadStats,
    ) -> Vec<ReqId> {
        let drained = std::mem::take(&mut self.probes);
        stats.probe_drains = stats.probe_drains.saturating_add(drained.len() as u64);
        if !matches!(self.state, BreakerState::Open { .. }) {
            stats.breaker_opens = stats.breaker_opens.saturating_add(1);
        }
        self.state = BreakerState::Open {
            until: now + cfg.breaker_open_cycles,
        };
        self.successes = 0;
        self.failures = 0;
        drained
    }

    fn digest_into(&self, d: &mut StateDigest) {
        match self.state {
            BreakerState::Closed => d.mix(1),
            BreakerState::Open { until } => d.mix(2).mix(until),
            BreakerState::HalfOpen => d.mix(3),
        };
        d.mix(u64::from(self.successes))
            .mix(u64::from(self.failures))
            .mix_all(self.probes.iter().map(|&r| r as u64));
    }
}

/// The overload-control plane threaded through [`System`](crate::System).
///
/// Owns a private RNG stream (jitter), the per-GPU retry buckets, the
/// admission gates and the per-peer breakers. When constructed from a
/// disabled [`OverloadConfig`] every method is a permissive no-op that
/// draws no randomness, so disabled runs stay bit-identical.
#[derive(Debug, Clone)]
pub struct OverloadControl {
    cfg: OverloadConfig,
    rng: SimRng,
    backoff: ExponentialBackoff,
    retry: Vec<TokenBucket>,
    host_gate: Hysteresis,
    gpu_queue_gates: Vec<Hysteresis>,
    mshr_gates: Vec<Hysteresis>,
    breakers: Vec<CircuitBreaker>,
    /// Counters reported through `RunMetrics::overload`.
    pub stats: OverloadStats,
}

impl OverloadControl {
    /// Builds the control plane for `gpus` GPUs from `cfg`, deriving its
    /// private RNG stream from the simulation `seed`.
    pub fn new(cfg: &OverloadConfig, gpus: GpuId, seed: u64) -> Self {
        let n = usize::from(gpus);
        Self {
            cfg: cfg.clone(),
            rng: SimRng::new(seed ^ OVERLOAD_SEED_SALT),
            backoff: ExponentialBackoff::new(
                cfg.backoff_base.max(1),
                cfg.backoff_cap.max(cfg.backoff_base.max(1)),
            ),
            retry: vec![
                TokenBucket::new(
                    cfg.retry_budget.max(1),
                    cfg.retry_refill_permille.min(1000)
                );
                n
            ],
            host_gate: Hysteresis::new(
                cfg.host_queue_high,
                cfg.host_queue_low.min(cfg.host_queue_high),
            ),
            gpu_queue_gates: vec![
                Hysteresis::new(
                    cfg.gpu_queue_high,
                    cfg.gpu_queue_low.min(cfg.gpu_queue_high)
                );
                n
            ],
            mshr_gates: vec![
                Hysteresis::new(cfg.mshr_high, cfg.mshr_low.min(cfg.mshr_high));
                n
            ],
            breakers: vec![CircuitBreaker::default(); n],
            stats: OverloadStats::default(),
        }
    }

    /// Whether the subsystem is live (anything observable may happen).
    #[inline]
    pub fn active(&self) -> bool {
        self.cfg.enabled
    }

    /// A fresh demand translation arrived on `gpu`: fund its retry bucket.
    pub fn on_fresh_demand(&mut self, gpu: GpuId) {
        if !self.cfg.enabled {
            return;
        }
        if let Some(b) = self.retry.get_mut(usize::from(gpu)) {
            b.refill();
        }
    }

    /// Asks for a watchdog retry slot for `gpu`'s request on retry
    /// `attempt`. Callers must only invoke this when [`active`](Self::active).
    pub fn retry_decision(&mut self, gpu: GpuId, attempt: u32) -> RetryDecision {
        let granted = self
            .retry
            .get_mut(usize::from(gpu))
            .is_some_and(TokenBucket::try_take);
        if granted {
            let delay = self.backoff.delay(attempt, &mut self.rng);
            self.stats.retries_budgeted = self.stats.retries_budgeted.saturating_add(1);
            self.stats.backoff_delay_total = self.stats.backoff_delay_total.saturating_add(delay);
            RetryDecision::Retry { delay }
        } else {
            self.stats.retry_tokens_denied = self.stats.retry_tokens_denied.saturating_add(1);
            RetryDecision::Exhausted
        }
    }

    /// Feeds the host walker-queue occupancy to the admission gate;
    /// returns whether background shedding is engaged afterwards.
    pub fn observe_host(&mut self, occupancy: usize) -> bool {
        if !self.cfg.enabled {
            return false;
        }
        self.host_gate.observe(occupancy)
    }

    /// Whether background traffic of `class` should be shed right now.
    /// Demand is never shed here; callers count the drop themselves via
    /// the public [`stats`](Self::stats).
    pub fn shed_background(&self, class: TrafficClass) -> bool {
        self.cfg.enabled && class.is_background() && self.host_gate.engaged()
    }

    /// Feeds `gpu`'s walk-queue and MSHR occupancy to its admission gates;
    /// returns whether the GPU should refuse borrowed remote walks.
    pub fn gpu_overloaded(&mut self, gpu: GpuId, queue_occ: usize, mshr_occ: usize) -> bool {
        if !self.cfg.enabled {
            return false;
        }
        let g = usize::from(gpu);
        let q = self
            .gpu_queue_gates
            .get_mut(g)
            .is_some_and(|h| h.observe(queue_occ));
        let m = self.mshr_gates.get_mut(g).is_some_and(|h| h.observe(mshr_occ));
        q || m
    }

    /// Rules on forwarding `req` to peer `owner` given the current backlog
    /// on the host→owner link.
    pub fn forward_decision(
        &mut self,
        now: Cycle,
        owner: GpuId,
        req: ReqId,
        down_backlog: Cycle,
    ) -> ForwardDecision {
        if !self.cfg.enabled {
            return ForwardDecision::Forward;
        }
        if down_backlog > self.cfg.peer_backlog_high {
            self.stats.forward_skipped_congested = self.stats.forward_skipped_congested.saturating_add(1);
            return ForwardDecision::Skip;
        }
        match self.breakers.get_mut(usize::from(owner)) {
            Some(b) => b.decide(now, req, &self.cfg, &mut self.stats),
            None => ForwardDecision::Forward,
        }
    }

    /// Records the outcome of a forward of `req` to `owner`.
    pub fn record_forward_outcome(
        &mut self,
        now: Cycle,
        owner: GpuId,
        req: ReqId,
        success: bool,
    ) {
        if !self.cfg.enabled {
            return;
        }
        if let Some(b) = self.breakers.get_mut(usize::from(owner)) {
            b.record(now, req, success, &self.cfg, &mut self.stats);
        }
    }

    /// Peer `gpu` went offline/was evicted: drain its breaker's probe
    /// queue and hold the breaker open. Returns the drained probe reqs
    /// (their forwards are already doomed; recovery handles the requests).
    pub fn on_gpu_offline(&mut self, now: Cycle, gpu: GpuId) -> Vec<ReqId> {
        if !self.cfg.enabled {
            return Vec::new();
        }
        match self.breakers.get_mut(usize::from(gpu)) {
            Some(b) => b.drain_for_offline(now, &self.cfg, &mut self.stats),
            None => Vec::new(),
        }
    }

    /// Read access to peer `gpu`'s breaker (tests, diagnostics).
    pub fn breaker(&self, gpu: GpuId) -> Option<&CircuitBreaker> {
        self.breakers.get(usize::from(gpu))
    }

    /// Records one demand-walk completion latency (enabled runs only, so
    /// disabled metrics stay exactly at `Default`).
    pub fn note_demand_latency(&mut self, lat: Cycle) {
        if !self.cfg.enabled {
            return;
        }
        self.stats.demand_lat.record(lat);
    }

    /// A 64-bit digest of the control plane's live state for epoch
    /// checkpoints. Constant across a run while disabled.
    pub fn digest(&self) -> u64 {
        let mut d = StateDigest::new();
        d.mix(u64::from(self.cfg.enabled));
        d.mix(self.rng.state_digest());
        d.mix(u64::from(self.host_gate.engaged()));
        for b in &self.retry {
            d.mix(b.level_milli());
        }
        for g in &self.gpu_queue_gates {
            d.mix(u64::from(g.engaged()));
        }
        for g in &self.mshr_gates {
            d.mix(u64::from(g.engaged()));
        }
        for b in &self.breakers {
            b.digest_into(&mut d);
        }
        d.finish()
    }

    /// Moves the accumulated stats out (for end-of-run metrics merging).
    pub fn take_stats(&mut self) -> OverloadStats {
        std::mem::take(&mut self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn on() -> OverloadConfig {
        OverloadConfig::enabled()
    }

    #[test]
    fn default_config_is_disabled_and_valid() {
        let cfg = OverloadConfig::default();
        assert!(!cfg.enabled);
        cfg.validate();
        OverloadConfig::enabled().validate();
    }

    #[test]
    fn disabled_control_is_inert_and_digest_constant() {
        let mut c = OverloadControl::new(&OverloadConfig::default(), 4, 7);
        let before = c.digest();
        c.on_fresh_demand(2);
        assert!(!c.observe_host(10_000));
        assert!(!c.shed_background(TrafficClass::Prefetch));
        assert!(!c.gpu_overloaded(1, 10_000, 10_000));
        assert_eq!(c.forward_decision(5, 1, 9, 1 << 40), ForwardDecision::Forward);
        c.record_forward_outcome(5, 1, 9, false);
        c.note_demand_latency(123);
        assert!(c.on_gpu_offline(5, 1).is_empty());
        assert_eq!(c.digest(), before, "disabled control must not mutate");
        assert_eq!(c.stats, OverloadStats::default());
    }

    #[test]
    fn retry_budget_denies_once_drained() {
        let mut cfg = on();
        cfg.retry_budget = 2;
        cfg.retry_refill_permille = 0;
        let mut c = OverloadControl::new(&cfg, 2, 1);
        assert!(matches!(c.retry_decision(0, 0), RetryDecision::Retry { .. }));
        assert!(matches!(c.retry_decision(0, 1), RetryDecision::Retry { .. }));
        assert_eq!(c.retry_decision(0, 2), RetryDecision::Exhausted);
        assert_eq!(c.stats.retries_budgeted, 2);
        assert_eq!(c.stats.retry_tokens_denied, 1);
        assert!(c.stats.backoff_delay_total >= 1_000, "two jittered delays");
        // The other GPU's bucket is untouched.
        assert!(matches!(c.retry_decision(1, 0), RetryDecision::Retry { .. }));
    }

    #[test]
    fn fresh_demand_refunds_the_bucket() {
        let mut cfg = on();
        cfg.retry_budget = 1;
        cfg.retry_refill_permille = 500;
        let mut c = OverloadControl::new(&cfg, 1, 3);
        assert!(matches!(c.retry_decision(0, 0), RetryDecision::Retry { .. }));
        assert_eq!(c.retry_decision(0, 1), RetryDecision::Exhausted);
        c.on_fresh_demand(0);
        c.on_fresh_demand(0);
        assert!(matches!(c.retry_decision(0, 1), RetryDecision::Retry { .. }));
    }

    #[test]
    fn backoff_delays_grow_with_attempt_on_average() {
        let cfg = on();
        let mut c = OverloadControl::new(&cfg, 1, 11);
        let mut last_raw_floor = 0;
        for attempt in 0..5 {
            c.on_fresh_demand(0);
            c.on_fresh_demand(0);
            c.on_fresh_demand(0);
            c.on_fresh_demand(0);
            match c.retry_decision(0, attempt) {
                RetryDecision::Retry { delay } => {
                    let raw = cfg.backoff_base << attempt;
                    assert!(delay >= raw / 2 && delay <= raw.min(cfg.backoff_cap));
                    assert!(raw / 2 >= last_raw_floor);
                    last_raw_floor = raw / 2;
                }
                RetryDecision::Exhausted => panic!("budget should last 5 attempts"),
            }
        }
    }

    #[test]
    fn breaker_opens_after_failure_rate_and_reprobes() {
        let mut cfg = on();
        cfg.breaker_min_samples = 4;
        cfg.breaker_failure_permille = 500;
        cfg.breaker_open_cycles = 100;
        cfg.breaker_probes = 1;
        let mut c = OverloadControl::new(&cfg, 2, 5);
        // Four straight failures trip the breaker.
        for req in 0..4 {
            assert_eq!(c.forward_decision(0, 1, req, 0), ForwardDecision::Forward);
            c.record_forward_outcome(0, 1, req, false);
        }
        assert_eq!(c.stats.breaker_opens, 1);
        assert_eq!(c.forward_decision(10, 1, 4, 0), ForwardDecision::Skip);
        assert_eq!(c.stats.breaker_short_circuits, 1);
        // Cooldown elapses: next attempt is a probe; a second is refused.
        assert_eq!(c.forward_decision(150, 1, 5, 0), ForwardDecision::Probe);
        assert_eq!(c.stats.breaker_half_opens, 1);
        assert_eq!(c.forward_decision(151, 1, 6, 0), ForwardDecision::Skip);
        // Probe succeeds: breaker closes and traffic flows again.
        c.record_forward_outcome(160, 1, 5, true);
        assert_eq!(c.stats.breaker_closes, 1);
        assert_eq!(c.forward_decision(170, 1, 7, 0), ForwardDecision::Forward);
    }

    #[test]
    fn failed_probe_reopens_the_breaker() {
        let mut cfg = on();
        cfg.breaker_min_samples = 2;
        cfg.breaker_open_cycles = 100;
        let mut c = OverloadControl::new(&cfg, 1, 5);
        for req in 0..2 {
            c.forward_decision(0, 0, req, 0);
            c.record_forward_outcome(0, 0, req, false);
        }
        assert_eq!(c.forward_decision(200, 0, 2, 0), ForwardDecision::Probe);
        c.record_forward_outcome(210, 0, 2, false);
        assert_eq!(c.stats.breaker_opens, 2);
        assert_eq!(c.forward_decision(220, 0, 3, 0), ForwardDecision::Skip);
    }

    #[test]
    fn offline_peer_drains_probe_queue_and_holds_open() {
        // The recovery interaction: evicting a GPU whose breaker is
        // half-open must drain its probe queue and re-open the breaker.
        let mut cfg = on();
        cfg.breaker_min_samples = 2;
        cfg.breaker_open_cycles = 100;
        cfg.breaker_probes = 2;
        let mut c = OverloadControl::new(&cfg, 2, 5);
        for req in 0..2 {
            c.forward_decision(0, 1, req, 0);
            c.record_forward_outcome(0, 1, req, false);
        }
        assert_eq!(c.forward_decision(200, 1, 7, 0), ForwardDecision::Probe);
        assert_eq!(c.forward_decision(201, 1, 8, 0), ForwardDecision::Probe);
        assert_eq!(c.breaker(1).map(CircuitBreaker::probe_count), Some(2));
        let drained = c.on_gpu_offline(250, 1);
        assert_eq!(drained, vec![7, 8]);
        assert_eq!(c.stats.probe_drains, 2);
        assert_eq!(c.breaker(1).map(CircuitBreaker::probe_count), Some(0));
        assert!(c.breaker(1).is_some_and(|b| b.is_open(251)));
        // Late probe replies after the drain are ignored, not double-counted.
        let closes_before = c.stats.breaker_closes;
        c.record_forward_outcome(260, 1, 7, true);
        assert_eq!(c.stats.breaker_closes, closes_before);
        assert_eq!(c.forward_decision(260, 1, 9, 0), ForwardDecision::Skip);
    }

    #[test]
    fn congested_downlink_skips_forwarding() {
        let mut cfg = on();
        cfg.peer_backlog_high = 100;
        let mut c = OverloadControl::new(&cfg, 2, 5);
        assert_eq!(c.forward_decision(0, 1, 0, 101), ForwardDecision::Skip);
        assert_eq!(c.stats.forward_skipped_congested, 1);
        assert_eq!(c.forward_decision(0, 1, 0, 100), ForwardDecision::Forward);
    }

    #[test]
    fn admission_gates_shed_background_only() {
        let mut cfg = on();
        cfg.host_queue_high = 4;
        cfg.host_queue_low = 1;
        let mut c = OverloadControl::new(&cfg, 1, 5);
        assert!(!c.shed_background(TrafficClass::Prefetch));
        assert!(c.observe_host(4));
        assert!(c.shed_background(TrafficClass::Prefetch));
        assert!(c.shed_background(TrafficClass::Migration));
        assert!(!c.shed_background(TrafficClass::Demand), "demand never sheds");
        assert!(c.observe_host(2), "hysteresis holds between watermarks");
        assert!(!c.observe_host(1));
        assert!(!c.shed_background(TrafficClass::Prefetch));
    }

    #[test]
    fn gpu_gate_combines_queue_and_mshr_pressure() {
        let mut cfg = on();
        cfg.gpu_queue_high = 8;
        cfg.gpu_queue_low = 2;
        cfg.mshr_high = 16;
        cfg.mshr_low = 4;
        let mut c = OverloadControl::new(&cfg, 2, 5);
        assert!(!c.gpu_overloaded(0, 7, 15));
        assert!(c.gpu_overloaded(0, 8, 0), "queue alone engages");
        assert!(c.gpu_overloaded(0, 0, 16), "MSHR alone keeps it engaged");
        assert!(!c.gpu_overloaded(0, 2, 4), "both released at low");
        assert!(!c.gpu_overloaded(1, 0, 0), "other GPU independent");
    }

    #[test]
    fn enabled_digest_tracks_state_changes() {
        let mut c = OverloadControl::new(&on(), 2, 7);
        let d0 = c.digest();
        assert!(matches!(c.retry_decision(0, 0), RetryDecision::Retry { .. }));
        let d1 = c.digest();
        assert_ne!(d0, d1, "a granted retry moves RNG and bucket state");
        // Two controls with the same seed and history agree.
        let mut c2 = OverloadControl::new(&on(), 2, 7);
        assert!(matches!(c2.retry_decision(0, 0), RetryDecision::Retry { .. }));
        assert_eq!(c2.digest(), d1);
    }
}
