//! Small-scope abstract model of the Trans-FW forwarding protocol.
//!
//! [`ProtocolState`] is the model-checker's view of the system: exact
//! tables (the cuckoo PRT becomes an exact may-be-local set, the FT exact
//! owner-key counts, caches disappear, latency disappears) around the
//! *real* [`PageDirectory`] and the *real*
//! shared transitions of [`crate::protocol`] — the same code the
//! cycle-accurate simulator executes. What remains nondeterministic is
//! exactly what `simcheck` explores: the interleaving of protocol steps
//! ([`Action`]s), each of which fuses one simulator event-handler's
//! table-state effects.
//!
//! # Fidelity notes
//!
//! * The model covers the `FarFaultMode::HostMmu` path with Trans-FW fully
//!   enabled (PRT short-circuit + FT forwarding) — the paper's mechanism
//!   and the part of the protocol with genuine message races.
//! * Fairness assumption: messages are reliable and every enabled action
//!   eventually fires (no fault injection, no watchdog timeouts, no
//!   retries). Liveness violations therefore show up as *deadlocks*:
//!   terminal states where some request never retired.
//! * The host-walk pipeline (dispatch → walk → done) and the remote borrow
//!   (arrive → walk → finish) are each fused into a single action; their
//!   *messages* (supply, notify, resolved, reply) stay separate, which is
//!   where the races live.
//! * Accepted races mirrored from the simulator (see DESIGN.md): a remote
//!   supply may deliver a translation whose source page has concurrently
//!   moved (the directory registration via `add_remote_map` keeps it
//!   discoverable for later invalidation), and a reply may re-map a page
//!   that a concurrent migration already invalidated (the stale PTE is
//!   itself registered or re-faulted on next migration).

use ptw::{GpuId, Location};
use sim_core::{DetMap, DetSet, StateDigest};
use uvm::{OwnershipTransaction, PageDirectory, PolicyKind, TxnKind};

use super::{self as protocol, ProtocolTables};

/// Deliberate protocol defects for the mutation self-test suite: each makes
/// one shared-transition hook or one action handler misbehave in a way a
/// historically plausible bug would, and the checker must find each within
/// a bounded state budget. Enabled only through
/// [`ProtocolState::with_mutation`] (test builds / the `checker-mutations`
/// feature).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// `ft_page_migrated` forgets to remove the old home's FT key.
    SkipFtInvalidateOnMigrate,
    /// `prt_flush` is a no-op: an evicted GPU's PRT survives its memory.
    DropPrtFlushOnRejoin,
    /// The reply handler skips its idempotence guard: a duplicated reply
    /// retires the request twice.
    DoubleRetireOnDuplicateReply,
    /// The host forwards against a stale FT snapshot and optimistically
    /// cancels its own walk at forward time instead of on the remote's
    /// success notify.
    StaleForwardAfterCommit,
    /// A stale walk completion (its GPU's generation was bumped by a
    /// failure) still releases a force-reset walker.
    LostGenerationBump,
    /// The prefetcher ignores the pending-VPN snapshot and maps a page the
    /// directory declined to hand over.
    PrefetchPendingVpn,
    /// A capacity eviction drops the evictor's local mapping but forgets the
    /// remote TLB/FT invalidation fan-out: the host PT keeps pointing at the
    /// evicted copy and the FT keeps naming the evictor as an owner.
    SkipTlbShootdownOnEvict,
}

/// A tiny closed configuration for exhaustive exploration.
#[derive(Debug, Clone)]
pub struct ModelConfig {
    /// Number of GPUs (2–3 for tractable state spaces).
    pub gpus: u16,
    /// Number of pages (2–4).
    pub vpns: u64,
    /// Placement policy the embedded directory runs.
    pub policy: PolicyKind,
    /// In-flight translation requests, `(gpu, vpn, is_write)`. The per-GPU
    /// L2 MSHR guarantees at most one outstanding request per `(gpu, vpn)`
    /// in the simulator; configurations must respect that.
    pub reqs: Vec<(GpuId, u64, bool)>,
    /// Initial owner per VPN (`None` = cold on the host), `vpns` entries.
    pub warm: Vec<Option<GpuId>>,
    /// Optional component failure: this GPU may be evicted (and later
    /// rejoin) at any point of the interleaving.
    pub failure: Option<GpuId>,
    /// Optional per-GPU page capacity: while a GPU holds more resident
    /// pages than this, a capacity eviction of any *unpinned* resident page
    /// is enabled (the model explores every victim choice, subsuming every
    /// deterministic policy). `None` = unbounded memory (no evictions).
    pub capacity: Option<usize>,
}

impl ModelConfig {
    /// The standard small-scope configuration: `inflight` requests per GPU
    /// on overlapping pages (offset per GPU so requests contend), odd
    /// requests writing, every page warm on GPU `v % gpus`.
    ///
    /// # Panics
    ///
    /// Panics if `inflight` exceeds `vpns` (the MSHR uniqueness invariant
    /// could not hold).
    pub fn small(gpus: u16, vpns: u64, inflight: usize, policy: PolicyKind) -> Self {
        assert!(inflight as u64 <= vpns, "inflight per GPU must fit in vpns");
        let reqs = (0..gpus)
            .flat_map(|g| {
                (0..inflight).map(move |i| {
                    let vpn = (u64::from(g) + i as u64) % vpns;
                    (g, vpn, i % 2 == 1)
                })
            })
            .collect();
        let warm = (0..vpns).map(|v| Some((v % u64::from(gpus)) as GpuId)).collect();
        Self {
            gpus,
            vpns,
            policy,
            reqs,
            warm,
            failure: None,
            capacity: None,
        }
    }

    /// Enables the component-failure dimension: GPU `g` may be evicted once
    /// at any point and rejoins later.
    #[must_use]
    pub fn with_failure(mut self, g: GpuId) -> Self {
        assert!(g < self.gpus, "failure GPU out of range");
        self.failure = Some(g);
        self
    }

    /// Makes every page cold (homed on the host, no warm placement).
    #[must_use]
    pub fn cold(mut self) -> Self {
        self.warm = vec![None; self.vpns as usize];
        self
    }

    /// Enables the capacity-eviction dimension: any GPU holding more than
    /// `pages` resident pages may evict an unpinned one at any point.
    #[must_use]
    pub fn with_capacity(mut self, pages: usize) -> Self {
        assert!(pages > 0, "capacity must be positive");
        self.capacity = Some(pages);
        self
    }
}

/// Host-path progress of one modelled request. Phases advance monotonically
/// except for the deferred re-entry (`Resolving`/`ReplySent` →
/// `HostInFlight`) when a delivery finds its requester offline — the
/// simulator's recovery interceptor re-enters such requests into the host
/// path at rejoin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Created, not yet issued.
    Start,
    /// Local GMMU walk in flight (a walker is held).
    LocalWalk,
    /// A far fault is crossing to the host.
    HostInFlight,
    /// Queued at the host MMU (possibly concurrently forwarded).
    HostQueued,
    /// Fault resolved; the resolution is travelling to the requester.
    Resolving,
    /// The requester mapped the page; the reply is in flight.
    ReplySent,
    /// Host path finished for this request.
    Done,
}

/// One modelled in-flight translation request: the subset of the
/// simulator's [`crate::request::Req`] flags that the protocol reads, plus
/// the in-flight message slots the interleavings permute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelReq {
    /// Requesting GPU.
    pub gpu: GpuId,
    /// Faulting page.
    pub vpn: u64,
    /// Whether the access writes.
    pub is_write: bool,
    /// Host-path progress.
    pub phase: Phase,
    /// In-flight remote supply (the translation a borrowed walk produced).
    pub supply: Option<Location>,
    /// In-flight remote-outcome notify.
    pub notify: Option<bool>,
    /// A borrowed walk is pending at this GPU.
    pub remote_at: Option<GpuId>,
    /// The host forwarded this request to a peer.
    pub forwarded: bool,
    /// A remote supply retired this request.
    pub remote_supplied: bool,
    /// The host walk started (can no longer be cancelled).
    pub host_walk_started: bool,
    /// The queued host walk was cancelled by a remote success.
    pub cancelled: bool,
    /// The requester received a translation.
    pub completed: bool,
    /// The remote-outcome notify was processed (idempotence guard).
    pub remote_outcome: bool,
    /// Degraded to the reliable path by a failure (re-issued walk).
    pub fallback: bool,
    /// A stale local-walk completion (pre-failure generation) is pending.
    pub stale_walk: bool,
    /// Times the request retired; the checker requires exactly one.
    pub retire_count: u8,
    /// Where the fault resolution pointed the requester.
    pub resolved_loc: Option<Location>,
}

/// One protocol step: the table-state effect of one simulator event
/// handler. `simcheck` explores every interleaving of enabled actions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// The request enters translation: PRT short-circuit or local walk.
    Issue(usize),
    /// The local GMMU walk completes (hit retires, miss goes to the host).
    LocalWalkDone(usize),
    /// A pre-failure walk completion arrives; the generation check drops it.
    StaleWalkDone(usize),
    /// The far fault arrives at the host: TLB probe, FT consult, optional
    /// forward to `forward_to`, enqueue for the host walk.
    HostArrive {
        /// Request index.
        req: usize,
        /// Owner GPU the host forwards to (one action per candidate).
        forward_to: Option<GpuId>,
    },
    /// The borrowed remote walk runs to completion at the owner; its supply
    /// and notify messages become pending.
    RemoteWalkDone(usize),
    /// The remote supply reaches the requester (early retire).
    DeliverSupply(usize),
    /// The remote-outcome notify reaches the host (cancellation point).
    DeliverNotify(usize),
    /// The host walk dispatches and completes; uncancelled misses resolve
    /// the fault through the directory (ownership commit).
    HostWalkDone(usize),
    /// The fault resolution reaches the requester, which maps the page.
    DeliverResolved(usize),
    /// The reply retires the request.
    DeliverReply(usize),
    /// The failure GPU drops off the fabric (recovery eviction).
    Evict(GpuId),
    /// The failed GPU rejoins (PRT rebuild from the directory).
    Rejoin(GpuId),
    /// A GPU over its page capacity evicts one unpinned resident page
    /// through the live-eviction transition
    /// ([`crate::protocol::capacity_evict`]).
    CapacityEvict {
        /// The over-capacity GPU shedding the page.
        gpu: GpuId,
        /// The victim page.
        vpn: u64,
    },
}

impl Action {
    /// Serializes the action as one counterexample-trace token.
    pub fn encode(&self) -> String {
        match *self {
            Action::Issue(i) => format!("issue {i}"),
            Action::LocalWalkDone(i) => format!("local-walk {i}"),
            Action::StaleWalkDone(i) => format!("stale-walk {i}"),
            Action::HostArrive { req, forward_to: Some(o) } => format!("host-arrive {req} fwd={o}"),
            Action::HostArrive { req, forward_to: None } => format!("host-arrive {req} -"),
            Action::RemoteWalkDone(i) => format!("remote-walk {i}"),
            Action::DeliverSupply(i) => format!("supply {i}"),
            Action::DeliverNotify(i) => format!("notify {i}"),
            Action::HostWalkDone(i) => format!("host-walk {i}"),
            Action::DeliverResolved(i) => format!("resolved {i}"),
            Action::DeliverReply(i) => format!("reply {i}"),
            Action::Evict(g) => format!("evict {g}"),
            Action::Rejoin(g) => format!("rejoin {g}"),
            Action::CapacityEvict { gpu, vpn } => format!("cap-evict {gpu} {vpn}"),
        }
    }

    /// Parses one trace token (the inverse of [`encode`](Self::encode)).
    pub fn decode(token: &str) -> Option<Action> {
        let mut parts = token.split_whitespace();
        let kind = parts.next()?;
        let arg = parts.next()?;
        let action = match kind {
            "issue" => Action::Issue(arg.parse().ok()?),
            "local-walk" => Action::LocalWalkDone(arg.parse().ok()?),
            "stale-walk" => Action::StaleWalkDone(arg.parse().ok()?),
            "host-arrive" => {
                let req = arg.parse().ok()?;
                let fwd = parts.next()?;
                let forward_to = match fwd {
                    "-" => None,
                    f => Some(f.strip_prefix("fwd=")?.parse().ok()?),
                };
                Action::HostArrive { req, forward_to }
            }
            "remote-walk" => Action::RemoteWalkDone(arg.parse().ok()?),
            "supply" => Action::DeliverSupply(arg.parse().ok()?),
            "notify" => Action::DeliverNotify(arg.parse().ok()?),
            "host-walk" => Action::HostWalkDone(arg.parse().ok()?),
            "resolved" => Action::DeliverResolved(arg.parse().ok()?),
            "reply" => Action::DeliverReply(arg.parse().ok()?),
            "evict" => Action::Evict(arg.parse().ok()?),
            "rejoin" => Action::Rejoin(arg.parse().ok()?),
            "cap-evict" => {
                let gpu = arg.parse().ok()?;
                let vpn = parts.next()?.parse().ok()?;
                Action::CapacityEvict { gpu, vpn }
            }
            _ => return None,
        };
        if parts.next().is_some()
            && !matches!(action, Action::HostArrive { .. } | Action::CapacityEvict { .. })
        {
            return None;
        }
        Some(action)
    }
}

/// The abstract protocol state: exact tables + the real directory + the
/// modelled requests. Implements [`ProtocolTables`], so every table
/// mutation goes through the same shared transitions the simulator runs.
#[derive(Debug, Clone)]
pub struct ProtocolState {
    gpus: u16,
    vpns: u64,
    /// The real placement/ownership directory (authoritative state).
    pub dir: PageDirectory,
    /// Per-GPU local page table (exact map).
    pt: Vec<DetMap<u64, Location>>,
    /// Per-GPU PRT as an exact may-be-local set. The real counting cuckoo
    /// filter is a lossy multiset *over-approximation* of this set (its
    /// false positives only cost a wasted local walk); the model verifies
    /// the maintenance discipline on the exact set, which the filter then
    /// over-approximates soundly.
    prt: Vec<DetSet<u64>>,
    /// Host FT as exact per-GPU owner-key counts.
    ft: DetMap<u64, Vec<u32>>,
    /// Host centralised page table.
    host_pt: DetMap<u64, Location>,
    /// Host TLB (presence only — the entry contents are the home).
    host_tlb: DetSet<u64>,
    /// Per-GPU offline flag.
    offline: Vec<bool>,
    /// The one modelled eviction already happened.
    evicted_once: bool,
    /// Per-GPU busy-walker count (force-reset by an eviction); negative
    /// means a stale completion released a reset walker.
    walkers: Vec<i64>,
    /// The modelled requests.
    reqs: Vec<ModelReq>,
    /// The failure dimension, copied from the configuration.
    failure: Option<GpuId>,
    /// The capacity-eviction dimension, copied from the configuration.
    capacity: Option<usize>,
    /// Invariant violations observed so far, tagged `tag: detail`.
    violations: Vec<String>,
    /// Active deliberate defect, if any.
    mutation: Option<Mutation>,
    /// FT snapshot at t=0 (what [`Mutation::StaleForwardAfterCommit`]
    /// consults instead of the live table).
    initial_ft: DetMap<u64, Vec<u32>>,
}

/// The model's table hooks: exact structures, no lossy gate, violations on
/// multiset underflow (the corruption class the counting filters can
/// actually suffer). Mutations hook in here so the *shared transition
/// bodies* stay pristine.
impl ProtocolTables for ProtocolState {
    fn pt_insert(&mut self, gpu: GpuId, vpn: u64, loc: Location) {
        self.pt[gpu as usize].insert(vpn, loc);
    }

    fn pt_remove(&mut self, gpu: GpuId, vpn: u64) {
        self.pt[gpu as usize].remove(&vpn);
    }

    fn tlb_shootdown(&mut self, _gpu: GpuId, _vpn: u64) {}

    fn local_flush(&mut self, gpu: GpuId) {
        self.pt[gpu as usize].clear();
    }

    fn has_prt(&self, gpu: GpuId) -> bool {
        (gpu as usize) < self.prt.len()
    }

    fn prt_arrived(&mut self, gpu: GpuId, vpn: u64) {
        self.prt[gpu as usize].insert(vpn);
    }

    fn prt_departed(&mut self, gpu: GpuId, vpn: u64) {
        // Departure of a never-arrived key is a no-op, mirroring the real
        // cuckoo filter (an invalidation may legitimately target a GPU
        // whose install is still in flight — accepted race #3).
        self.prt[gpu as usize].remove(&vpn);
    }

    fn prt_flush(&mut self, gpu: GpuId) {
        if self.mutation == Some(Mutation::DropPrtFlushOnRejoin) {
            return; // the defect: the PRT survives the eviction
        }
        self.prt[gpu as usize].clear();
    }

    fn prt_rebuild(&mut self, gpu: GpuId, resident: &[u64]) {
        for &vpn in resident {
            self.prt[gpu as usize].insert(vpn);
        }
    }

    fn has_ft(&self) -> bool {
        true
    }

    fn ft_owner_added(&mut self, vpn: u64, gpu: GpuId) {
        let gpus = self.gpus as usize;
        self.ft.entry(vpn).or_insert_with(|| vec![0; gpus])[gpu as usize] += 1;
    }

    fn ft_owner_removed(&mut self, vpn: u64, gpu: GpuId) {
        // Removal of an absent owner key is a no-op, mirroring the real
        // fingerprint filter's delete.
        let slot = self.ft.get_mut(&vpn).and_then(|v| v.get_mut(gpu as usize));
        if let Some(c) = slot {
            *c = c.saturating_sub(1);
        }
    }

    fn ft_page_migrated(&mut self, vpn: u64, old: Option<GpuId>, new: GpuId) {
        if self.mutation != Some(Mutation::SkipFtInvalidateOnMigrate) {
            if let Some(o) = old {
                self.ft_owner_removed(vpn, o);
            }
        }
        self.ft_owner_added(vpn, new);
    }

    fn ft_rewrite_owners(&mut self, vpn: u64, remove: &[GpuId], add: &[GpuId]) {
        for &g in remove {
            self.ft_owner_removed(vpn, g);
        }
        for &g in add {
            self.ft_owner_added(vpn, g);
        }
    }

    fn host_tlb_invalidate(&mut self, vpn: u64) {
        self.host_tlb.remove(&vpn);
    }

    fn host_pt_set_loc(&mut self, vpn: u64, loc: Location) {
        self.host_pt.insert(vpn, loc);
    }
}

fn loc_code(loc: Location) -> u64 {
    match loc {
        Location::Cpu => 1,
        Location::Gpu(g) => 2 + u64::from(g),
    }
}

impl ProtocolState {
    /// Builds the initial state: warm pages placed and mapped through the
    /// shared transitions exactly as the simulator's run() warm-up does.
    ///
    /// # Panics
    ///
    /// Panics on an inconsistent configuration (out-of-range ids, duplicate
    /// `(gpu, vpn)` requests, warm list length mismatch).
    pub fn new(cfg: &ModelConfig) -> Self {
        assert_eq!(cfg.warm.len(), cfg.vpns as usize, "warm list length");
        let mut seen = DetSet::new();
        for &(g, vpn, _) in &cfg.reqs {
            assert!(g < cfg.gpus && vpn < cfg.vpns, "request out of range");
            assert!(seen.insert((g, vpn)), "MSHR uniqueness: duplicate (gpu, vpn) request");
        }
        let mut st = Self {
            gpus: cfg.gpus,
            vpns: cfg.vpns,
            dir: PageDirectory::with_policy(cfg.gpus, cfg.policy),
            pt: vec![DetMap::new(); cfg.gpus as usize],
            prt: vec![DetSet::new(); cfg.gpus as usize],
            ft: DetMap::new(),
            host_pt: DetMap::new(),
            host_tlb: DetSet::new(),
            offline: vec![false; cfg.gpus as usize],
            evicted_once: false,
            walkers: vec![0; cfg.gpus as usize],
            reqs: Vec::new(),
            failure: cfg.failure,
            capacity: cfg.capacity,
            violations: Vec::new(),
            mutation: None,
            initial_ft: DetMap::new(),
        };
        for v in 0..cfg.vpns {
            let owner = cfg.warm[v as usize];
            let loc = owner.map_or(Location::Cpu, Location::Gpu);
            st.host_pt.insert(v, loc);
            if let Some(g) = owner {
                st.dir.place(v, loc);
                protocol::map_page(&mut st, g, v, loc);
                st.ft_page_migrated(v, None, g);
            }
        }
        st.initial_ft = st.ft.clone();
        st.reqs = cfg
            .reqs
            .iter()
            .map(|&(gpu, vpn, is_write)| ModelReq {
                gpu,
                vpn,
                is_write,
                phase: Phase::Start,
                supply: None,
                notify: None,
                remote_at: None,
                forwarded: false,
                remote_supplied: false,
                host_walk_started: false,
                cancelled: false,
                completed: false,
                remote_outcome: false,
                fallback: false,
                stale_walk: false,
                retire_count: 0,
                resolved_loc: None,
            })
            .collect();
        st
    }

    /// Arms one deliberate protocol defect (mutation self-tests only).
    #[cfg(any(test, feature = "checker-mutations"))]
    #[must_use]
    pub fn with_mutation(mut self, m: Mutation) -> Self {
        self.mutation = m.into();
        self
    }

    /// The modelled requests (read-only).
    pub fn reqs(&self) -> &[ModelReq] {
        &self.reqs
    }

    /// Invariant violations observed so far (`tag: detail` strings).
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// Whether every request retired.
    pub fn all_completed(&self) -> bool {
        self.reqs.iter().all(|r| r.completed)
    }

    fn ft_owners(table: &DetMap<u64, Vec<u32>>, vpn: u64, skip: GpuId) -> Vec<GpuId> {
        table.get(&vpn).map_or_else(Vec::new, |counts| {
            counts
                .iter()
                .enumerate()
                .filter(|&(g, &c)| c > 0 && g != skip as usize)
                .map(|(g, _)| g as GpuId)
                .collect()
        })
    }

    /// Every action enabled in this state, in a fixed deterministic order.
    pub fn enabled_actions(&self) -> Vec<Action> {
        let mut out = Vec::new();
        for (i, r) in self.reqs.iter().enumerate() {
            let down = self.offline[r.gpu as usize];
            match r.phase {
                Phase::Start if !down => out.push(Action::Issue(i)),
                Phase::LocalWalk if !down => out.push(Action::LocalWalkDone(i)),
                Phase::HostInFlight if !down => {
                    if self.host_tlb.contains(&r.vpn) {
                        out.push(Action::HostArrive { req: i, forward_to: None });
                    } else {
                        let table = if self.mutation == Some(Mutation::StaleForwardAfterCommit) {
                            &self.initial_ft
                        } else {
                            &self.ft
                        };
                        let owners = Self::ft_owners(table, r.vpn, r.gpu);
                        if owners.is_empty() {
                            out.push(Action::HostArrive { req: i, forward_to: None });
                        } else {
                            for o in owners {
                                out.push(Action::HostArrive { req: i, forward_to: Some(o) });
                            }
                        }
                    }
                }
                Phase::HostQueued if !r.cancelled => out.push(Action::HostWalkDone(i)),
                Phase::Resolving => out.push(Action::DeliverResolved(i)),
                Phase::ReplySent => out.push(Action::DeliverReply(i)),
                _ => {}
            }
            if r.stale_walk {
                out.push(Action::StaleWalkDone(i));
            }
            if r.remote_at.is_some() {
                out.push(Action::RemoteWalkDone(i));
            }
            if r.supply.is_some() && !down {
                out.push(Action::DeliverSupply(i));
            }
            if r.notify.is_some() {
                out.push(Action::DeliverNotify(i));
            }
        }
        if let Some(f) = self.failure {
            if !self.evicted_once && !self.offline[f as usize] {
                out.push(Action::Evict(f));
            }
        }
        for g in 0..self.gpus {
            if self.offline[g as usize] {
                out.push(Action::Rejoin(g));
            }
        }
        if let Some(cap) = self.capacity {
            for g in 0..self.gpus {
                if self.offline[g as usize] {
                    continue;
                }
                let resident = self.dir.resident_vpns_on(g);
                if resident.len() <= cap {
                    continue;
                }
                for vpn in resident {
                    if !self.vpn_pinned(vpn) {
                        out.push(Action::CapacityEvict { gpu: g, vpn });
                    }
                }
            }
        }
        out
    }

    /// The model's pin rule, mirroring `System::outstanding_vpns`: a page
    /// is pinned from the moment a request on it is created until that
    /// request retires — an in-flight forwarded walk, host walk, supply or
    /// reply keeps its page unevictable everywhere. (Messages that outlive
    /// a retired request — duplicate supplies, late notifies — do NOT pin,
    /// exactly as in the simulator; the explorer races them against
    /// evictions.)
    fn vpn_pinned(&self, vpn: u64) -> bool {
        self.reqs
            .iter()
            .any(|r| r.vpn == vpn && r.phase != Phase::Start && !r.completed)
    }

    /// Whether `a` is a pure absorb: it consumes one of its own request's
    /// message slots behind an idempotence guard, mutates nothing else, and
    /// cannot raise a violation — so it commutes with every other enabled
    /// action and the explorer may expand it alone (partial-order
    /// reduction). Disabled entirely under a mutation, where the guards
    /// themselves may be the defect.
    pub fn is_absorbing(&self, a: &Action) -> bool {
        if self.mutation.is_some() {
            return false;
        }
        match *a {
            Action::RemoteWalkDone(i)
            | Action::DeliverSupply(i)
            | Action::DeliverResolved(i)
            | Action::DeliverReply(i) => self.reqs[i].completed,
            Action::DeliverNotify(i) => self.reqs[i].remote_outcome,
            _ => false,
        }
    }

    /// Applies one action. Invariants are checked on the way; findings are
    /// appended to [`violations`](Self::violations).
    pub fn apply(&mut self, a: &Action) {
        match *a {
            Action::Issue(i) => self.do_issue(i),
            Action::LocalWalkDone(i) => self.do_local_walk_done(i),
            Action::StaleWalkDone(i) => self.do_stale_walk_done(i),
            Action::HostArrive { req, forward_to } => self.do_host_arrive(req, forward_to),
            Action::RemoteWalkDone(i) => self.do_remote_walk_done(i),
            Action::DeliverSupply(i) => self.do_deliver_supply(i),
            Action::DeliverNotify(i) => self.do_deliver_notify(i),
            Action::HostWalkDone(i) => self.do_host_walk_done(i),
            Action::DeliverResolved(i) => self.do_deliver_resolved(i),
            Action::DeliverReply(i) => self.do_deliver_reply(i),
            Action::Evict(g) => self.do_evict(g),
            Action::Rejoin(g) => self.do_rejoin(g),
            Action::CapacityEvict { gpu, vpn } => self.do_capacity_evict(gpu, vpn),
        }
    }

    fn do_issue(&mut self, i: usize) {
        let (g, vpn) = (self.reqs[i].gpu, self.reqs[i].vpn);
        let may_be_local = self.prt[g as usize].contains(&vpn);
        if may_be_local {
            self.reqs[i].phase = Phase::LocalWalk;
            self.walkers[g as usize] += 1;
        } else {
            // PRT short-circuit: the fault goes straight to the host.
            self.reqs[i].phase = Phase::HostInFlight;
        }
    }

    fn do_local_walk_done(&mut self, i: usize) {
        let (g, vpn) = (self.reqs[i].gpu, self.reqs[i].vpn);
        self.walkers[g as usize] -= 1;
        match self.pt[g as usize].get(&vpn).copied() {
            Some(loc) => {
                self.model_retire(i, Some(loc));
                self.reqs[i].phase = Phase::Done;
            }
            None => {
                self.reqs[i].phase = Phase::HostInFlight;
            }
        }
    }

    fn do_stale_walk_done(&mut self, i: usize) {
        let g = self.reqs[i].gpu;
        self.reqs[i].stale_walk = false;
        // The generation check recognises the completion as pre-failure and
        // drops it WITHOUT releasing a walker (the pool was force-reset).
        if self.mutation == Some(Mutation::LostGenerationBump) {
            self.walkers[g as usize] -= 1;
            if self.walkers[g as usize] < 0 {
                self.violations.push(format!(
                    "txn-atomicity: GPU{g} walker count went negative (stale completion released a force-reset walker)"
                ));
            }
        }
    }

    fn do_host_arrive(&mut self, i: usize, forward_to: Option<GpuId>) {
        let vpn = self.reqs[i].vpn;
        if self.host_tlb.contains(&vpn) {
            // Host TLB hit: resolve immediately, no walk, no forward.
            self.resolve(i);
            return;
        }
        if let Some(o) = forward_to {
            self.reqs[i].forwarded = true;
            if self.mutation == Some(Mutation::StaleForwardAfterCommit) {
                // The defect: cancel the host walk at forward time instead
                // of on the remote's success notify.
                self.reqs[i].cancelled = true;
            }
            if self.offline[o as usize] {
                // The recovery interceptor refuses forwards to a dead GPU.
                self.reqs[i].notify = Some(false);
            } else {
                self.reqs[i].remote_at = Some(o);
            }
        }
        self.reqs[i].phase = Phase::HostQueued;
    }

    fn do_remote_walk_done(&mut self, i: usize) {
        // simlint::allow(panic-reach): model-checker invariant assertion — a panic here is simcheck reporting a broken protocol state, not a simulator path
        let o = self.reqs[i].remote_at.take().expect("remote walk pending");
        if self.reqs[i].completed {
            return; // duplicate-arrival guard: no walk, no notify
        }
        let vpn = self.reqs[i].vpn;
        let supply = (self.pt[o as usize].get(&vpn).copied() == Some(Location::Gpu(o)))
            .then_some(Location::Gpu(o));
        let success = supply.is_some();
        if success {
            self.reqs[i].supply = supply;
        }
        self.reqs[i].notify = Some(success);
    }

    fn do_deliver_supply(&mut self, i: usize) {
        // simlint::allow(panic-reach): model-checker invariant assertion — a panic here is simcheck reporting a broken protocol state, not a simulator path
        let loc = self.reqs[i].supply.take().expect("supply pending");
        if self.reqs[i].completed {
            return; // idempotence guard
        }
        let (g, vpn) = (self.reqs[i].gpu, self.reqs[i].vpn);
        self.reqs[i].remote_supplied = true;
        // A supply may be stale against a concurrent migration — accepted:
        // the directory registration below keeps the mapping discoverable,
        // so a later migration invalidates it (see DESIGN.md).
        self.model_retire(i, None);
        protocol::map_page(self, g, vpn, loc);
        self.dir.add_remote_map(vpn, g);
    }

    fn do_deliver_notify(&mut self, i: usize) {
        // simlint::allow(panic-reach): model-checker invariant assertion — a panic here is simcheck reporting a broken protocol state, not a simulator path
        let success = self.reqs[i].notify.take().expect("notify pending");
        if self.reqs[i].remote_outcome {
            return; // idempotence guard
        }
        self.reqs[i].remote_outcome = true;
        let r = &mut self.reqs[i];
        if success && !r.host_walk_started && !r.cancelled && !r.fallback {
            r.cancelled = true; // §IV-C: remote success cancels the host walk
        }
    }

    fn do_host_walk_done(&mut self, i: usize) {
        let vpn = self.reqs[i].vpn;
        self.reqs[i].host_walk_started = true;
        self.host_tlb.insert(vpn);
        if self.reqs[i].remote_supplied || self.reqs[i].completed {
            self.reqs[i].phase = Phase::Done; // the remote path won the race
            return;
        }
        self.resolve(i);
    }

    /// The host-side fault resolution: ownership transaction through the
    /// real directory, committed through the shared transitions, atomicity
    /// checked on the spot.
    fn resolve(&mut self, i: usize) {
        let (g, vpn, is_write) = (self.reqs[i].gpu, self.reqs[i].vpn, self.reqs[i].is_write);
        if self.offline[g as usize] {
            // The simulator defers resolution for an offline requester and
            // re-enters the host path at rejoin.
            self.reqs[i].phase = Phase::HostInFlight;
            return;
        }
        let txn = self
            .dir
            .begin_fault_txn(vpn, g, is_write)
            // simlint::allow(panic-reach): model-checker invariant assertion — a panic here is simcheck reporting a broken protocol state, not a simulator path
            .expect("model GPU ids are in range");
        protocol::commit_ownership(self, &txn);
        self.check_commit(&txn);
        self.reqs[i].resolved_loc = Some(txn.resolved_location());
        if txn.kind == TxnKind::Migrate {
            self.model_prefetches(vpn, g, txn.source);
        }
        self.reqs[i].phase = Phase::Resolving;
    }

    /// Post-commit atomicity: no invalidated GPU kept its PTE, the host's
    /// view agrees with the directory, and walker accounting is sane.
    fn check_commit(&mut self, txn: &OwnershipTransaction) {
        let vpn = txn.vpn;
        for &v in &txn.invalidate {
            if self.pt[v as usize].contains_key(&vpn) {
                self.violations.push(format!(
                    "txn-atomicity: {:?} commit of vpn {vpn} left a PTE on GPU{v}",
                    txn.kind
                ));
            }
        }
        let host = self.host_pt.get(&vpn).copied();
        let home = self.dir.home(vpn);
        if host != Some(home) {
            self.violations.push(format!(
                "txn-atomicity: after {:?} commit of vpn {vpn} host PT says {host:?} but directory says {home:?}",
                txn.kind
            ));
        }
        if let Some(g) = self.walkers.iter().position(|&w| w < 0) {
            self.violations
                .push(format!("txn-atomicity: GPU{g} walker count negative at commit"));
        }
    }

    /// Mirrors `System::apply_prefetches`: snapshot the pending state of
    /// the neighborhood up front, then pull in pages the directory blesses.
    fn model_prefetches(&mut self, vpn: u64, g: GpuId, from: Location) {
        let neighborhood = self.dir.prefetch_neighborhood(vpn);
        if neighborhood.is_empty() {
            return;
        }
        let pending: Vec<bool> = neighborhood
            .iter()
            .map(|v| {
                self.pt[g as usize].contains_key(v)
                    || self.prt[g as usize].contains(v)
            })
            .collect();
        for (v, was_pending) in neighborhood.into_iter().zip(pending) {
            if !self.host_pt.contains_key(&v) {
                continue; // outside the modelled footprint
            }
            if was_pending && self.mutation != Some(Mutation::PrefetchPendingVpn) {
                continue; // in flight on the destination: hands off
            }
            let txn = match self.dir.prefetch_page(v, g, from) {
                Some(t) => t,
                None if self.mutation == Some(Mutation::PrefetchPendingVpn) => {
                    // The defect: map the page anyway, without the
                    // directory's blessing.
                    OwnershipTransaction {
                        vpn: v,
                        kind: TxnKind::Prefetch,
                        source: from,
                        dest: g,
                        invalidate: from.gpu().into_iter().collect(),
                        ft_remove: Vec::new(),
                    }
                }
                None => continue,
            };
            protocol::commit_ownership(self, &txn);
            self.check_commit(&txn);
            protocol::map_page(self, g, v, Location::Gpu(g));
        }
    }

    fn do_deliver_resolved(&mut self, i: usize) {
        let (g, vpn) = (self.reqs[i].gpu, self.reqs[i].vpn);
        if self.offline[g as usize] {
            // Recovery interception: duplicates die, live resolutions
            // re-enter the host path at rejoin (stale placement).
            self.reqs[i].phase = if self.reqs[i].completed {
                Phase::Done
            } else {
                Phase::HostInFlight
            };
            return;
        }
        if self.reqs[i].completed {
            self.reqs[i].phase = Phase::Done; // duplicate guard: no reply
            return;
        }
        // simlint::allow(panic-reach): model-checker invariant assertion — a panic here is simcheck reporting a broken protocol state, not a simulator path
        let loc = self.reqs[i].resolved_loc.expect("resolving implies a location");
        protocol::map_page(self, g, vpn, loc);
        self.reqs[i].phase = Phase::ReplySent;
    }

    fn do_deliver_reply(&mut self, i: usize) {
        let (g, vpn) = (self.reqs[i].gpu, self.reqs[i].vpn);
        if self.offline[g as usize] {
            self.reqs[i].phase = if self.reqs[i].completed {
                Phase::Done
            } else {
                Phase::HostInFlight
            };
            return;
        }
        if self.reqs[i].completed && self.mutation != Some(Mutation::DoubleRetireOnDuplicateReply)
        {
            self.reqs[i].phase = Phase::Done; // idempotence guard
            return;
        }
        // simlint::allow(panic-reach): model-checker invariant assertion — a panic here is simcheck reporting a broken protocol state, not a simulator path
        let loc = self.reqs[i].resolved_loc.expect("reply implies a location");
        // No staleness probe here: the resolution was directory-blessed at
        // commit time, and an ownership invalidation may legitimately pass
        // the in-flight install (accepted race #3 — the requester briefly
        // holds a stale mapping, repaired at its next fault on the page).
        // Freshness is enforced where hit and retire are atomic: local-walk
        // retires.
        self.model_retire(i, None);
        if self.pt[g as usize].get(&vpn).is_none() {
            protocol::map_page(self, g, vpn, loc);
            if loc != Location::Gpu(g) {
                self.dir.add_remote_map(vpn, g);
            }
        }
        self.reqs[i].phase = Phase::Done;
    }

    fn do_evict(&mut self, g: GpuId) {
        self.offline[g as usize] = true;
        self.evicted_once = true;
        for i in 0..self.reqs.len() {
            if self.reqs[i].gpu == g && self.reqs[i].phase == Phase::LocalWalk {
                // Drained walk: re-issued through the reliable host path at
                // rejoin; its completion event is now stale-generation.
                self.reqs[i].stale_walk = true;
                self.reqs[i].fallback = true;
                self.reqs[i].cancelled = false;
                self.reqs[i].phase = Phase::HostInFlight;
            }
            if self.reqs[i].remote_at == Some(g) {
                // A borrowed walk dies with its borrower: refused.
                self.reqs[i].remote_at = None;
                self.reqs[i].notify = Some(false);
            }
        }
        self.walkers[g as usize] = 0; // force_reset
        let report = self.dir.evict_gpu(g);
        protocol::evict_tables(self, g, &report);
        protocol::offline_flush(self, g);
    }

    fn do_rejoin(&mut self, g: GpuId) {
        self.offline[g as usize] = false;
        let resident = self.dir.resident_vpns_on(g);
        protocol::rejoin_prt(self, g, &resident);
    }

    /// Mirrors `System::enforce_capacity`'s per-victim step: the directory
    /// drops the resident copy and the live-eviction transition fans the
    /// invalidations out (remote unmaps, host PT/TLB, FT keys, then the
    /// evictor's own mapping).
    fn do_capacity_evict(&mut self, g: GpuId, vpn: u64) {
        let Some(report) = self.dir.evict_page(vpn, g) else {
            return; // enablement raced a concurrent move: nothing resident
        };
        if self.mutation == Some(Mutation::SkipTlbShootdownOnEvict) {
            // The defect: only the local mapping dies; the remote TLB/FT
            // invalidation fan-out (evict_tables) is forgotten.
            protocol::unmap_page(self, g, vpn);
            return;
        }
        protocol::capacity_evict(self, g, vpn, &report);
    }

    /// Retires request `i`; `checked_loc` (when given) runs the
    /// no-stale-translation probe against the retiring translation.
    fn model_retire(&mut self, i: usize, checked_loc: Option<Location>) {
        self.reqs[i].retire_count += 1;
        self.reqs[i].completed = true;
        let (g, vpn, count) = (self.reqs[i].gpu, self.reqs[i].vpn, self.reqs[i].retire_count);
        if count > 1 {
            self.violations.push(format!(
                "retire-exactly-once: req {i} (gpu {g}, vpn {vpn}) retired {count} times"
            ));
        }
        if let Some(loc) = checked_loc {
            self.check_retired_translation(i, loc);
        }
    }

    /// The no-stale-translation probe: a translation retired as local must
    /// be backed by directory residency; one retired as remote must be a
    /// registered remote map or point at a resident holder.
    fn check_retired_translation(&mut self, i: usize, loc: Location) {
        let (g, vpn) = (self.reqs[i].gpu, self.reqs[i].vpn);
        let stale = match loc {
            Location::Cpu => false,
            Location::Gpu(o) if o == g => !self.dir.is_resident(vpn, g),
            Location::Gpu(o) => {
                let registered = self
                    .dir
                    .page(vpn)
                    .is_some_and(|p| p.remote_maps & (1 << g) != 0);
                !registered && !self.dir.is_resident(vpn, o)
            }
        };
        if stale {
            self.violations.push(format!(
                "stale-translation: req {i} (gpu {g}) retired vpn {vpn} -> {loc:?} without directory backing"
            ));
        }
    }

    /// Terminal-state checks: deadlock (liveness under fairness) when any
    /// request never retired; otherwise the quiescent table-agreement
    /// invariants (host PT vs directory, PRT support vs page tables, FT
    /// owners vs residents, walker accounting, directory self-audit).
    pub fn check_quiescent(&mut self) {
        let stuck: Vec<usize> = (0..self.reqs.len())
            .filter(|&i| !self.reqs[i].completed)
            .collect();
        if !stuck.is_empty() {
            for i in stuck {
                let r = &self.reqs[i];
                self.violations.push(format!(
                    "deadlock: req {i} (gpu {}, vpn {}) wedged in {:?}",
                    r.gpu, r.vpn, r.phase
                ));
            }
            return; // tables legitimately disagree mid-flight
        }
        for v in 0..self.vpns {
            let host = self.host_pt.get(&v).copied().unwrap_or(Location::Cpu);
            let home = self.dir.home(v);
            if host != home {
                self.violations.push(format!(
                    "table-agreement: vpn {v} host PT says {host:?} but directory says {home:?}"
                ));
            }
            let owners: Vec<GpuId> = Self::ft_owners(&self.ft, v, self.gpus);
            let residents: Vec<GpuId> =
                (0..self.gpus).filter(|&g| self.dir.is_resident(v, g)).collect();
            if owners != residents {
                self.violations.push(format!(
                    "table-agreement: vpn {v} FT names owners {owners:?} but directory residents are {residents:?}"
                ));
            }
        }
        for g in 0..self.gpus as usize {
            let prt_support: Vec<u64> = self.prt[g].iter().copied().collect();
            let pt_keys: Vec<u64> = self.pt[g].keys().copied().collect();
            if prt_support != pt_keys {
                self.violations.push(format!(
                    "table-agreement: GPU{g} PRT support {prt_support:?} != page-table keys {pt_keys:?}"
                ));
            }
            if self.walkers[g] != 0 {
                self.violations.push(format!(
                    "txn-atomicity: GPU{g} holds {} walkers at quiescence",
                    self.walkers[g]
                ));
            }
        }
        if let Err(e) = self.dir.audit() {
            self.violations.push(format!("table-agreement: {e}"));
        }
    }

    /// A 64-bit digest of the complete model state (everything that
    /// determines future behaviour, including the directory's access and
    /// fault counters the placement policies read — but NOT path-dependent
    /// statistics, which would fragment the explorer's dedup).
    pub fn digest(&self) -> u64 {
        let mut d = StateDigest::new();
        for v in 0..self.vpns {
            match self.dir.page(v) {
                Some(p) => {
                    d.mix(loc_code(p.home)).mix(p.replicas).mix(p.remote_maps);
                    for &c in &p.access_counts {
                        d.mix(u64::from(c));
                    }
                    for &c in &p.fault_counts {
                        d.mix(u64::from(c));
                    }
                }
                None => {
                    d.mix(0);
                }
            }
            d.mix(self.host_pt.get(&v).copied().map_or(0, loc_code));
            d.mix(u64::from(self.host_tlb.contains(&v)));
            match self.ft.get(&v) {
                Some(counts) => {
                    for &c in counts {
                        d.mix(u64::from(c) + 1);
                    }
                }
                None => {
                    d.mix(0);
                }
            }
        }
        for g in 0..self.gpus as usize {
            d.mix(u64::from(self.offline[g]));
            #[allow(clippy::cast_sign_loss)]
            d.mix(self.walkers[g] as u64);
            for (&v, &loc) in self.pt[g].iter() {
                d.mix(v + 1).mix(loc_code(loc));
            }
            d.mix(u64::MAX); // table separator
            for &v in self.prt[g].iter() {
                d.mix(v + 1);
            }
            d.mix(u64::MAX);
        }
        for r in &self.reqs {
            let flags = u64::from(r.forwarded)
                | u64::from(r.remote_supplied) << 1
                | u64::from(r.host_walk_started) << 2
                | u64::from(r.cancelled) << 3
                | u64::from(r.completed) << 4
                | u64::from(r.remote_outcome) << 5
                | u64::from(r.fallback) << 6
                | u64::from(r.stale_walk) << 7;
            d.mix(r.phase as u64)
                .mix(flags)
                .mix(u64::from(r.retire_count))
                .mix(r.supply.map_or(0, loc_code))
                .mix(r.notify.map_or(0, |s| 1 + u64::from(s)))
                .mix(r.remote_at.map_or(0, |g| 1 + u64::from(g)))
                .mix(r.resolved_loc.map_or(0, loc_code));
        }
        d.mix(u64::from(self.evicted_once));
        d.finish()
    }
}

/// Replays an encoded counterexample trace against a fresh unmutated model
/// of `cfg` and returns the violations it reproduces (running the terminal
/// checks if the trace ends in a terminal state).
///
/// # Errors
///
/// Returns a message naming the offending step if a token does not parse
/// or names an action that is not enabled at that point.
pub fn replay(cfg: &ModelConfig, steps: &[String]) -> Result<Vec<String>, String> {
    let st = ProtocolState::new(cfg);
    replay_on(st, steps)
}

/// [`replay`], but against a caller-built initial state (used by the
/// mutation self-tests, which arm a [`Mutation`] first).
///
/// # Errors
///
/// Returns a message naming the offending step if a token does not parse
/// or names an action that is not enabled at that point.
pub fn replay_on(mut st: ProtocolState, steps: &[String]) -> Result<Vec<String>, String> {
    for (n, token) in steps.iter().enumerate() {
        let a = Action::decode(token)
            .ok_or_else(|| format!("step {n}: unparseable action {token:?}"))?;
        if !st.enabled_actions().contains(&a) {
            return Err(format!("step {n}: action {token:?} is not enabled"));
        }
        st.apply(&a);
        if !st.violations.is_empty() {
            return Ok(st.violations);
        }
    }
    if st.enabled_actions().is_empty() {
        st.check_quiescent();
    }
    Ok(st.violations)
}
