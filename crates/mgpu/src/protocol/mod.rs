//! The shared protocol transition layer.
//!
//! Every mutation of the distributed translation tables — per-GPU page
//! tables and PRTs, the host PT/TLB, and the Forwarding Table — funnels
//! through the free functions in this module, generic over
//! [`ProtocolTables`]. Two implementors exist:
//!
//! * [`System`](crate::System) — the cycle-accurate simulator (caches,
//!   PW-cache invalidation, fault-injector gating, metrics) implements the
//!   trait in `system.rs`, so its event handlers execute these transitions
//!   against real hardware state.
//! * [`model::ProtocolState`] — the small-scope abstract model the
//!   `simcheck` model checker explores, with exact (idealised) tables.
//!
//! Because both run the *same* transition bodies, a property `simcheck`
//! proves over every interleaving of the abstract model is a property of
//! the code the simulator runs, not of a hand-written re-implementation.
//! The `protocol-transition` simlint rule enforces the funnel: no `match`
//! over [`ProtocolEvent`] may exist outside this module.
//!
//! The fault injector's `drop_table_update` perturbation is threaded
//! through the trait ([`ProtocolTables::drop_table_update`]); the gate
//! *order* in each transition reproduces the legacy draw sequence
//! bit-for-bit, which is what keeps golden runs identical across the
//! refactor.

use ptw::{GpuId, Location};
use uvm::{EvictionReport, OwnershipTransaction, TxnKind};

pub mod model;

/// Metric side effects raised by the shared transitions. The simulator maps
/// them onto [`RunMetrics`](crate::RunMetrics) counters; the abstract model
/// ignores them (counters are path-dependent and would fragment the state
/// hash).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolNote {
    /// An ownership transaction was committed.
    TxnCommitted,
    /// The committed transaction was a write collapse.
    Collapse,
    /// A page's home migrated off an evicted GPU.
    OwnershipMigration,
    /// An FT key was invalidated by the recovery protocol.
    FtInvalidation,
    /// A PRT was rebuilt from the directory at rejoin.
    PrtRebuild,
    /// A page was evicted to stay under the oversubscription capacity.
    CapacityEviction,
}

/// The table state the forwarding protocol mutates, as fine-grained hooks.
///
/// Implementors provide storage-specific behaviour (PW-cache invalidation,
/// TLB shootdowns, cuckoo multisets vs. exact maps); the *transition logic*
/// — what is updated, in which order, under which fault-injection gate —
/// lives in this module's free functions and is shared verbatim between the
/// simulator and the model checker.
pub trait ProtocolTables {
    /// Installs GPU `gpu`'s local PTE for `vpn` pointing at `loc`.
    fn pt_insert(&mut self, gpu: GpuId, vpn: u64, loc: Location);
    /// Removes GPU `gpu`'s local PTE for `vpn` (and any derived walk-cache
    /// state backing it).
    fn pt_remove(&mut self, gpu: GpuId, vpn: u64);
    /// Shoots `vpn` down from GPU `gpu`'s translation caches.
    fn tlb_shootdown(&mut self, gpu: GpuId, vpn: u64);
    /// Flushes GPU `gpu`'s local page table and caches wholesale (its
    /// device memory is gone).
    fn local_flush(&mut self, gpu: GpuId);

    /// Whether GPU `gpu` maintains a PRT (Trans-FW short-circuit enabled).
    fn has_prt(&self, gpu: GpuId) -> bool;
    /// Records a page arrival in GPU `gpu`'s PRT.
    fn prt_arrived(&mut self, gpu: GpuId, vpn: u64);
    /// Records a page departure in GPU `gpu`'s PRT.
    fn prt_departed(&mut self, gpu: GpuId, vpn: u64);
    /// Clears GPU `gpu`'s PRT wholesale (offline flush).
    fn prt_flush(&mut self, gpu: GpuId);
    /// Rebuilds GPU `gpu`'s PRT from the directory's residency list.
    fn prt_rebuild(&mut self, gpu: GpuId, resident: &[u64]);

    /// Whether the host maintains a Forwarding Table.
    fn has_ft(&self) -> bool;
    /// Adds an FT ownership key (`vpn` → `gpu`).
    fn ft_owner_added(&mut self, vpn: u64, gpu: GpuId);
    /// Removes an FT ownership key.
    fn ft_owner_removed(&mut self, vpn: u64, gpu: GpuId);
    /// Rewrites the FT home key for a migrated page.
    fn ft_page_migrated(&mut self, vpn: u64, old: Option<GpuId>, new: GpuId);
    /// Transactionally rewrites a page's FT owner set (recovery eviction).
    fn ft_rewrite_owners(&mut self, vpn: u64, remove: &[GpuId], add: &[GpuId]);

    /// Shoots `vpn` down from the host TLB.
    fn host_tlb_invalidate(&mut self, vpn: u64);
    /// Repoints the host's centralised PTE for `vpn` at `loc`.
    fn host_pt_set_loc(&mut self, vpn: u64, loc: Location);

    /// Fault-injection gate for lossy PRT/FT maintenance: one RNG draw per
    /// call. The simulator routes this to its injector; the model (and any
    /// fault-free run) never drops.
    fn drop_table_update(&mut self) -> bool {
        false
    }

    /// Metric side effect (default: ignored).
    fn note(&mut self, _note: ProtocolNote) {}
}

/// One step of the forwarding protocol's table state machine, as data. The
/// simulator's handlers call the transition functions below directly; the
/// model checker's counterexample traces and the replay harness drive the
/// same transitions through [`step`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolEvent {
    /// A local mapping of `vpn` appears on `gpu`, pointing at `loc`.
    Map {
        /// Mapping GPU.
        gpu: GpuId,
        /// Page.
        vpn: u64,
        /// Where the PTE points.
        loc: Location,
    },
    /// The local mapping of `vpn` on `gpu` is destroyed.
    Unmap {
        /// Unmapping GPU.
        gpu: GpuId,
        /// Page.
        vpn: u64,
    },
    /// An ownership transaction commits (shootdowns, host view, FT).
    Commit(OwnershipTransaction),
    /// A GPU's eviction report is mirrored into the tables.
    Evict {
        /// Evicted GPU.
        gpu: GpuId,
        /// What the directory evicted.
        report: EvictionReport,
    },
    /// An offline GPU's local tables are flushed wholesale.
    Flush {
        /// Flushed GPU.
        gpu: GpuId,
    },
    /// A rejoining GPU's PRT is rebuilt from the directory.
    Rejoin {
        /// Rejoining GPU.
        gpu: GpuId,
        /// The directory's residency list for the GPU.
        resident: Vec<u64>,
    },
}

/// Applies one [`ProtocolEvent`] to `t`. This is the single legal `match`
/// over the protocol alphabet (enforced by simlint's `protocol-transition`
/// rule): every arm delegates to the shared transition function the
/// simulator's handlers call directly.
pub fn step<T: ProtocolTables + ?Sized>(t: &mut T, ev: &ProtocolEvent) {
    match ev {
        ProtocolEvent::Map { gpu, vpn, loc } => map_page(t, *gpu, *vpn, *loc),
        ProtocolEvent::Unmap { gpu, vpn } => unmap_page(t, *gpu, *vpn),
        ProtocolEvent::Commit(txn) => commit_ownership(t, txn),
        ProtocolEvent::Evict { gpu, report } => evict_tables(t, *gpu, report),
        ProtocolEvent::Flush { gpu } => offline_flush(t, *gpu),
        ProtocolEvent::Rejoin { gpu, resident } => rejoin_prt(t, *gpu, resident),
    }
}

/// Creates GPU `gpu`'s local mapping of `vpn` pointing at `loc`, with the
/// PRT arrival subject to the lossy-update gate.
///
/// Gate order (bit-compatible with the legacy `System::map_on_gpu`): the
/// injector is drawn once, and only when the GPU has a PRT at all.
pub fn map_page<T: ProtocolTables + ?Sized>(t: &mut T, gpu: GpuId, vpn: u64, loc: Location) {
    let drop_update = t.has_prt(gpu) && t.drop_table_update();
    t.pt_insert(gpu, vpn, loc);
    if t.has_prt(gpu) && !drop_update {
        t.prt_arrived(gpu, vpn);
    }
}

/// Destroys GPU `gpu`'s local mapping of `vpn`: PTE, cached translations,
/// and the PRT departure (subject to the lossy-update gate).
pub fn unmap_page<T: ProtocolTables + ?Sized>(t: &mut T, gpu: GpuId, vpn: u64) {
    let drop_update = t.has_prt(gpu) && t.drop_table_update();
    t.pt_remove(gpu, vpn);
    t.tlb_shootdown(gpu, vpn);
    if t.has_prt(gpu) && !drop_update {
        t.prt_departed(gpu, vpn);
    }
}

/// Repoints a page's home at `dest` in the host's view and the FT: host-TLB
/// shootdown, centralised-PTE rewrite (never lossy), then the FT home-key
/// rewrite (lossy under a stale-entry fault plan).
///
/// Shared between ownership-transaction commits and background (access-
/// counter) migrations, which perform exactly this sequence.
pub fn migrate_home<T: ProtocolTables + ?Sized>(
    t: &mut T,
    vpn: u64,
    source: Option<GpuId>,
    dest: GpuId,
) {
    t.host_tlb_invalidate(vpn);
    t.host_pt_set_loc(vpn, Location::Gpu(dest));
    if t.has_ft() && !t.drop_table_update() {
        t.ft_page_migrated(vpn, source, dest);
    }
}

/// Mirrors one committed [`OwnershipTransaction`] into the tables: the
/// directory has already made the authoritative decision; this applies the
/// directive half — shootdowns on every listed GPU, the host view, and the
/// Trans-FW tables.
///
/// FT maintenance crossing the fabric stays subject to the lossy-update
/// gate; the authoritative host PT/TLB updates never are. Draw order is
/// bit-compatible with the legacy `System::apply_ownership_txn`.
pub fn commit_ownership<T: ProtocolTables + ?Sized>(t: &mut T, txn: &OwnershipTransaction) {
    t.note(ProtocolNote::TxnCommitted);
    let vpn = txn.vpn;
    for &v in &txn.invalidate {
        unmap_page(t, v, vpn);
        // FT maintenance: the old *home* key is rewritten by the migration
        // step below; `ft_remove` lists the stale replica keys (write
        // collapse) that were separately registered as owners. Remote-map
        // holders were never in the FT — a spurious delete would clobber
        // another page's fingerprint (the tables are masked multisets).
        if txn.ft_remove.contains(&v) && t.has_ft() && !t.drop_table_update() {
            t.ft_owner_removed(vpn, v);
        }
    }
    match txn.kind {
        TxnKind::Migrate | TxnKind::Collapse | TxnKind::Prefetch => {
            // The page's home moved. The stale host TLB entry is shot down
            // and NOT refilled — this is exactly why the paper finds that
            // enlarging the host TLB does not help (§V-B).
            migrate_home(t, vpn, txn.source.gpu(), txn.dest);
            if txn.kind == TxnKind::Collapse {
                t.note(ProtocolNote::Collapse);
            }
        }
        TxnKind::Replicate => {
            if t.has_ft() && !t.drop_table_update() {
                t.ft_owner_added(vpn, txn.dest);
            }
        }
        TxnKind::RemoteMap | TxnKind::AlreadyResident => {}
    }
}

/// Mirrors a GPU eviction's [`EvictionReport`] into the tables: per
/// migrated page the host view and the FT home key are rewritten in one
/// transactional step (the host must stop forwarding to the dead GPU
/// immediately); dropped replicas lose their FT keys; survivors' dangling
/// remote maps are shot down. Recovery updates are modelled reliable — no
/// lossy-update gate.
pub fn evict_tables<T: ProtocolTables + ?Sized>(t: &mut T, gpu: GpuId, report: &EvictionReport) {
    for &(vpn, new_home) in &report.migrated {
        t.note(ProtocolNote::OwnershipMigration);
        t.host_tlb_invalidate(vpn);
        t.host_pt_set_loc(vpn, new_home);
        if t.has_ft() {
            match new_home {
                Location::Gpu(n) => t.ft_rewrite_owners(vpn, &[gpu], &[n]),
                Location::Cpu => t.ft_rewrite_owners(vpn, &[gpu], &[]),
            }
            t.note(ProtocolNote::FtInvalidation);
        }
    }
    for &vpn in &report.dropped_replicas {
        if t.has_ft() {
            t.ft_owner_removed(vpn, gpu);
            t.note(ProtocolNote::FtInvalidation);
        }
    }
    for &(vpn, holder) in &report.invalidate {
        unmap_page(t, holder, vpn);
    }
}

/// Evicts a single page from a *live* GPU: the eviction report is mirrored
/// into the shared tables exactly as a recovery eviction would be
/// ([`evict_tables`]), and then — unlike recovery, where the victim's
/// tables are flushed wholesale — the evicting GPU's own local mapping is
/// destroyed, PRT departure included, so no stale short-circuit survives.
pub fn evict_page<T: ProtocolTables + ?Sized>(
    t: &mut T,
    gpu: GpuId,
    vpn: u64,
    report: &EvictionReport,
) {
    evict_tables(t, gpu, report);
    unmap_page(t, gpu, vpn);
}

/// A capacity-bounded eviction: [`evict_page`] plus the metric note the
/// oversubscription subsystem counts.
pub fn capacity_evict<T: ProtocolTables + ?Sized>(
    t: &mut T,
    gpu: GpuId,
    vpn: u64,
    report: &EvictionReport,
) {
    evict_page(t, gpu, vpn, report);
    t.note(ProtocolNote::CapacityEviction);
}

/// Flushes an offline GPU's local tables wholesale: page table, caches and
/// PRT. Its device memory is gone; residency is rebuilt at rejoin.
pub fn offline_flush<T: ProtocolTables + ?Sized>(t: &mut T, gpu: GpuId) {
    t.local_flush(gpu);
    if t.has_prt(gpu) {
        t.prt_flush(gpu);
    }
}

/// Rebuilds a rejoining GPU's PRT from the directory's authoritative
/// residency list.
pub fn rejoin_prt<T: ProtocolTables + ?Sized>(t: &mut T, gpu: GpuId, resident: &[u64]) {
    if t.has_prt(gpu) {
        t.prt_rebuild(gpu, resident);
        t.note(ProtocolNote::PrtRebuild);
    }
}
