//! The memory-system half of an [`OwnershipTransaction`]: every decision
//! the placement-policy engine makes is mirrored here into the per-GPU page
//! tables, TLBs, PW-caches and PRTs, the host's centralised table and TLB,
//! and the Forwarding Table — the same invalidation plumbing the recovery
//! protocol uses, so the post-run invariant auditor certifies that no stale
//! short-circuit (PRT entry, FT owner key, cached translation) survives a
//! migration.
//!
//! Table updates that cross the fabric (PRT/FT maintenance) stay subject to
//! the fault injector's `drop_table_update` perturbation, exactly as the
//! pre-engine fault path was; the authoritative host PT/TLB updates never
//! are. The gate order reproduces the legacy draw sequence bit-for-bit, so
//! a `FirstTouch` run under any fault plan replays identically to the
//! pre-engine simulator.

use ptw::{GpuId, Location};
use sim_core::{Cycle, MigrationEvent, MigrationKind};
use uvm::{OwnershipTransaction, TxnKind};

use crate::protocol;
use crate::system::System;

impl System {
    /// Mirrors one ownership transaction into the memory system via the
    /// shared transition layer ([`crate::protocol::commit_ownership`]); the
    /// shadow sanitizer (`cfg.sanitize`) then certifies the commit's
    /// atomicity on the spot.
    pub(crate) fn apply_ownership_txn(&mut self, txn: &OwnershipTransaction) {
        protocol::commit_ownership(self, txn);
        if self.oversub.active() {
            // Mirror the committed move into the eviction engine's
            // residency/recency tracking.
            self.evictor.apply_txn(txn, self.now);
        }
        if self.cfg.sanitize {
            self.sanitize_commit(txn);
        }
    }

    /// Schedules the data movement of a transaction on the fabric and
    /// returns its completion time. Non-moving transactions (remote map,
    /// already resident) and the zero-migration-latency idealisation
    /// complete immediately.
    pub(crate) fn txn_transfer_done(&mut self, txn: &OwnershipTransaction, now: Cycle) -> Cycle {
        if !txn.moves_data() || self.cfg.ideal.zero_migration_latency {
            return now;
        }
        let bytes = self.cfg.page_bytes();
        let g = txn.dest;
        match txn.source {
            Location::Cpu => self.fabric.send_cpu_to_gpu(g as usize, now, bytes),
            Location::Gpu(s) if s != g => {
                self.fabric.send_gpu_to_gpu(s as usize, g as usize, now, bytes)
            }
            Location::Gpu(_) => now, // the data is already local
        }
    }

    /// Records a completed movement in the migration log.
    pub(crate) fn record_migration(
        &mut self,
        txn: &OwnershipTransaction,
        issued: Cycle,
        completed: Cycle,
    ) {
        let kind = match txn.kind {
            TxnKind::Migrate => MigrationKind::FaultMigrate,
            TxnKind::Collapse => MigrationKind::Collapse,
            TxnKind::Replicate => MigrationKind::Replicate,
            TxnKind::Prefetch => MigrationKind::Prefetch,
            TxnKind::RemoteMap | TxnKind::AlreadyResident => return,
        };
        self.migration_log.record(MigrationEvent {
            vpn: txn.vpn,
            src: txn.source.gpu(),
            dst: txn.dest,
            issued,
            completed,
            kind,
        });
    }

    /// After a demand migration whose data came `from` lands on `gpu`,
    /// pulls the policy's prefetch neighborhood of `vpn` in alongside it.
    /// Only pages the directory deems untouched (cold, or idle on the
    /// migration source) move; a VPN outside the workload footprint, already
    /// mapped on the destination, or still pending in the destination's PRT
    /// (an in-flight arrival — double-inserting the multiset filter would
    /// corrupt the later departure) is skipped. Prefetch transfers occupy
    /// fabric bandwidth off the critical path.
    pub(crate) fn apply_prefetches(&mut self, vpn: u64, gpu: GpuId, from: Location, now: Cycle) {
        let neighborhood = self.dir.prefetch_neighborhood(vpn);
        if neighborhood.is_empty() {
            return;
        }
        if self.overload.shed_background(uvm::TrafficClass::Prefetch) {
            // Admission control sheds prefetch traffic first: the demand
            // migration already happened, only the speculative pull is lost.
            self.overload.stats.prefetch_shed = self.overload.stats.prefetch_shed.saturating_add(neighborhood.len() as u64);
            return;
        }
        if self.oversub.shed_background(gpu, uvm::TrafficClass::Prefetch) {
            // Thrash gate: speculative pulls into a thrashing GPU would be
            // the first pages evicted back out.
            return;
        }
        // Snapshot the pending state of the whole neighborhood up front:
        // the PRT is a group-granular multiset, so this batch's own
        // insertions must not make later candidates look pending.
        let Some(gpu_state) = self.gpus.get_mut(gpu as usize) else {
            return; // unknown GPU id: nothing to prefetch into
        };
        let pending: Vec<bool> = neighborhood
            .iter()
            .map(|&v| {
                gpu_state.pt.translate(v).is_some()
                    || gpu_state
                        .prt
                        .as_mut()
                        .is_some_and(|prt| prt.may_be_local(v))
            })
            .collect();
        for (v, was_pending) in neighborhood.into_iter().zip(pending) {
            if self.host.pt.translate(v).is_none() {
                continue; // outside the workload footprint
            }
            if was_pending {
                self.metrics.placement.prefetch_skipped_pending = self.metrics.placement.prefetch_skipped_pending.saturating_add(1);
                continue;
            }
            let Some(txn) = self.dir.prefetch_page(v, gpu, from) else {
                continue; // touched, shared, or homed off the source
            };
            self.apply_ownership_txn(&txn);
            self.map_on_gpu(gpu, v, Location::Gpu(gpu));
            let done = self.txn_transfer_done(&txn, now);
            self.record_migration(&txn, now, done);
            self.metrics.placement.prefetched_pages = self.metrics.placement.prefetched_pages.saturating_add(1);
        }
    }
}
