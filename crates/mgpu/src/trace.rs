//! Workload trace capture and replay.
//!
//! Research simulators live and die by trace support: this module can
//! *record* any [`Workload`]'s generated access streams into a portable
//! text format and *replay* such a file as a workload, so real-application
//! traces (e.g. captured with a binary-instrumentation tool) can drive the
//! simulator without writing a generator.
//!
//! # Format
//!
//! One header line, then one line per access:
//!
//! ```text
//! transfw-trace v1 name=<name> footprint=<pages> ctas=<n>
//! <cta> <vpn> <r|w> <compute>
//! ```
//!
//! Lines are grouped by CTA in any order; replay preserves per-CTA order.
//!
//! # Examples
//!
//! ```
//! use mgpu::trace::{record, TraceWorkload};
//! use mgpu::workload::{Access, AccessStream, Workload};
//!
//! #[derive(Debug)]
//! struct Two;
//! impl Workload for Two {
//!     fn name(&self) -> &str { "two" }
//!     fn footprint_pages(&self) -> u64 { 4 }
//!     fn cta_count(&self) -> usize { 1 }
//!     fn make_stream(&self, _: usize, _: u64) -> Box<dyn AccessStream> {
//!         Box::new(vec![Access::read(0, 5), Access::write(3, 7)].into_iter())
//!     }
//! }
//!
//! let text = record(&Two, 42);
//! let replay = TraceWorkload::parse(&text)?;
//! assert_eq!(replay.footprint_pages(), 4);
//! let mut s = replay.make_stream(0, 0);
//! assert_eq!(s.next_access(), Some(Access::read(0, 5)));
//! assert_eq!(s.next_access(), Some(Access::write(3, 7)));
//! assert_eq!(s.next_access(), None);
//! # Ok::<(), mgpu::trace::ParseTraceError>(())
//! ```
//!
//! A malformed trace is rejected with the offending line number, so a bad
//! capture pinpoints itself instead of panicking deep in replay:
//!
//! ```
//! use mgpu::trace::TraceWorkload;
//!
//! let bad = "transfw-trace v1 name=t footprint=2 ctas=1\n0 0 r 1\n0 0 r\n";
//! let e = TraceWorkload::parse(bad).unwrap_err();
//! assert_eq!(e.line, 3);
//! assert!(e.message.contains("missing compute"));
//! ```

use std::fmt::Write as _;
use std::str::FromStr;

use sim_core::det::DetMap;

use crate::workload::{Access, AccessStream, Workload};

/// Serialises every CTA stream of `workload` (generated with `seed`) into
/// the trace text format.
pub fn record(workload: &dyn Workload, seed: u64) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "transfw-trace v1 name={} footprint={} ctas={}",
        workload.name().replace(' ', "_"),
        workload.footprint_pages(),
        workload.cta_count()
    );
    for cta in 0..workload.cta_count() {
        let mut stream = workload.make_stream(cta, seed);
        while let Some(a) = stream.next_access() {
            let rw = if a.is_write { 'w' } else { 'r' };
            let _ = writeln!(out, "{cta} {} {rw} {}", a.vpn, a.compute);
        }
    }
    out
}

/// Error from parsing a trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number of the offending line (0 for the header).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseTraceError {}

fn err(line: usize, message: impl Into<String>) -> ParseTraceError {
    ParseTraceError {
        line,
        message: message.into(),
    }
}

/// A workload replayed from a recorded trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceWorkload {
    name: String,
    footprint: u64,
    streams: Vec<Vec<Access>>,
}

impl TraceWorkload {
    /// Parses the trace text format.
    ///
    /// # Errors
    ///
    /// Returns [`ParseTraceError`] on a malformed header, field, or an
    /// out-of-range CTA index or VPN.
    pub fn parse(text: &str) -> Result<Self, ParseTraceError> {
        let mut lines = text.lines().enumerate();
        let (_, header) = lines
            .next()
            .ok_or_else(|| err(0, "empty trace"))?;
        let mut name = String::from("trace");
        let mut footprint: Option<u64> = None;
        let mut ctas: Option<usize> = None;
        let mut parts = header.split_whitespace();
        if parts.next() != Some("transfw-trace") || parts.next() != Some("v1") {
            return Err(err(1, "expected `transfw-trace v1` header"));
        }
        for kv in parts {
            let (k, v) = kv
                .split_once('=')
                .ok_or_else(|| err(1, format!("bad header field `{kv}`")))?;
            match k {
                "name" => name = v.to_string(),
                "footprint" => {
                    footprint =
                        Some(u64::from_str(v).map_err(|e| err(1, format!("footprint: {e}")))?);
                }
                "ctas" => {
                    ctas = Some(usize::from_str(v).map_err(|e| err(1, format!("ctas: {e}")))?);
                }
                other => return Err(err(1, format!("unknown header field `{other}`"))),
            }
        }
        let footprint = footprint.ok_or_else(|| err(1, "missing footprint"))?;
        let ctas = ctas.ok_or_else(|| err(1, "missing ctas"))?;
        if footprint == 0 || ctas == 0 {
            return Err(err(1, "footprint and ctas must be positive"));
        }

        let mut streams: Vec<Vec<Access>> = vec![Vec::new(); ctas];
        for (i, line) in lines {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let lineno = i + 1;
            let mut f = line.split_whitespace();
            let cta: usize = f
                .next()
                .ok_or_else(|| err(lineno, "missing cta"))?
                .parse()
                .map_err(|e| err(lineno, format!("cta: {e}")))?;
            let vpn: u64 = f
                .next()
                .ok_or_else(|| err(lineno, "missing vpn"))?
                .parse()
                .map_err(|e| err(lineno, format!("vpn: {e}")))?;
            let rw = f.next().ok_or_else(|| err(lineno, "missing r/w flag"))?;
            let compute: u64 = f
                .next()
                .ok_or_else(|| err(lineno, "missing compute"))?
                .parse()
                .map_err(|e| err(lineno, format!("compute: {e}")))?;
            if f.next().is_some() {
                return Err(err(lineno, "trailing fields"));
            }
            if cta >= ctas {
                return Err(err(lineno, format!("cta {cta} out of range (<{ctas})")));
            }
            if vpn >= footprint {
                return Err(err(lineno, format!("vpn {vpn} outside footprint {footprint}")));
            }
            let is_write = match rw {
                "r" => false,
                "w" => true,
                other => return Err(err(lineno, format!("bad r/w flag `{other}`"))),
            };
            streams[cta].push(Access {
                vpn,
                is_write,
                compute,
            });
        }
        Ok(Self {
            name,
            footprint,
            streams,
        })
    }

    /// Total recorded accesses.
    pub fn access_count(&self) -> usize {
        self.streams.iter().map(Vec::len).sum()
    }

    /// Derives a warm placement from the trace itself: each page starts on
    /// the GPU whose CTAs touch it most (ties to the lowest GPU).
    pub fn majority_placement(&self, gpus: u16) -> TracePlacement {
        let ctas = self.streams.len();
        let mut counts: DetMap<u64, Vec<u32>> = DetMap::new();
        for (cta, stream) in self.streams.iter().enumerate() {
            let gpu = cta * gpus as usize / ctas.max(1);
            for a in stream {
                counts.entry(a.vpn).or_insert_with(|| vec![0; gpus as usize])[gpu] += 1;
            }
        }
        let owners = counts
            .into_iter()
            .map(|(vpn, c)| {
                let owner = c
                    .iter()
                    .enumerate()
                    .max_by_key(|&(i, &n)| (n, std::cmp::Reverse(i)))
                    .map(|(i, _)| i as u16)
                    .unwrap_or(0);
                (vpn, owner)
            })
            .collect();
        TracePlacement {
            trace: self.clone(),
            owners,
        }
    }
}

impl Workload for TraceWorkload {
    fn name(&self) -> &str {
        &self.name
    }

    fn footprint_pages(&self) -> u64 {
        self.footprint
    }

    fn cta_count(&self) -> usize {
        self.streams.len()
    }

    fn make_stream(&self, cta: usize, _seed: u64) -> Box<dyn AccessStream> {
        // An out-of-range CTA (a caller scheduling more CTAs than the trace
        // recorded) replays as an empty stream rather than panicking: the
        // trait has no error channel, and an empty stream degrades the run
        // instead of aborting it mid-simulation.
        Box::new(self.streams.get(cta).cloned().unwrap_or_default().into_iter())
    }
}

/// A [`TraceWorkload`] with a majority-vote warm placement attached.
#[derive(Debug, Clone, PartialEq)]
pub struct TracePlacement {
    trace: TraceWorkload,
    owners: DetMap<u64, u16>,
}

impl Workload for TracePlacement {
    fn name(&self) -> &str {
        self.trace.name()
    }

    fn footprint_pages(&self) -> u64 {
        self.trace.footprint_pages()
    }

    fn cta_count(&self) -> usize {
        self.trace.cta_count()
    }

    fn make_stream(&self, cta: usize, seed: u64) -> Box<dyn AccessStream> {
        self.trace.make_stream(cta, seed)
    }

    fn initial_owner(&self, vpn: u64, gpus: u16) -> Option<u16> {
        self.owners.get(&vpn).map(|&g| g.min(gpus - 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::System;
    use crate::SystemConfig;

    fn sample() -> &'static str {
        "transfw-trace v1 name=t footprint=8 ctas=2\n\
         0 0 r 5\n\
         0 1 w 6\n\
         1 7 r 9\n"
    }

    #[test]
    fn parse_roundtrip() -> Result<(), ParseTraceError> {
        let t = TraceWorkload::parse(sample())?;
        assert_eq!(t.name(), "t");
        assert_eq!(t.footprint_pages(), 8);
        assert_eq!(t.cta_count(), 2);
        assert_eq!(t.access_count(), 3);
        let mut s = t.make_stream(1, 0);
        assert_eq!(s.next_access(), Some(Access::read(7, 9)));
        assert_eq!(s.next_access(), None);
        Ok(())
    }

    #[test]
    fn record_then_parse_is_identity() -> Result<(), ParseTraceError> {
        let app = workloads_stub()?;
        let text = record(&app, 3);
        let replay = TraceWorkload::parse(&text)?;
        assert_eq!(replay.cta_count(), app.cta_count());
        // Streams are byte-identical when re-recorded.
        assert_eq!(record(&replay, 0), text);
        Ok(())
    }

    fn workloads_stub() -> Result<TraceWorkload, ParseTraceError> {
        TraceWorkload::parse(sample())
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() -> Result<(), ParseTraceError> {
        let text = "transfw-trace v1 name=t footprint=2 ctas=1\n\n# hi\n0 1 w 3\n";
        let t = TraceWorkload::parse(text)?;
        assert_eq!(t.access_count(), 1);
        Ok(())
    }

    #[test]
    fn rejects_bad_header() {
        assert!(TraceWorkload::parse("nope v1\n").is_err());
        assert!(TraceWorkload::parse("").is_err());
        let e = TraceWorkload::parse("transfw-trace v1 name=t ctas=1\n").unwrap_err();
        assert!(e.message.contains("footprint"), "{e}");
    }

    #[test]
    fn rejects_out_of_range_fields() {
        let e = TraceWorkload::parse("transfw-trace v1 name=t footprint=2 ctas=1\n0 5 r 1\n")
            .unwrap_err();
        assert!(e.message.contains("outside footprint"), "{e}");
        let e = TraceWorkload::parse("transfw-trace v1 name=t footprint=2 ctas=1\n3 0 r 1\n")
            .unwrap_err();
        assert!(e.message.contains("out of range"), "{e}");
        let e = TraceWorkload::parse("transfw-trace v1 name=t footprint=2 ctas=1\n0 0 x 1\n")
            .unwrap_err();
        assert!(e.message.contains("r/w"), "{e}");
    }

    #[test]
    fn error_reports_line_numbers() {
        let e = TraceWorkload::parse("transfw-trace v1 name=t footprint=2 ctas=1\n0 0 r 1\n0 0 r\n")
            .unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn out_of_range_cta_replays_empty_instead_of_panicking() -> Result<(), ParseTraceError> {
        let t = TraceWorkload::parse(sample())?;
        let mut s = t.make_stream(99, 0);
        assert_eq!(s.next_access(), None);
        Ok(())
    }

    #[test]
    fn majority_placement_picks_heaviest_gpu() -> Result<(), ParseTraceError> {
        // CTA 0 -> GPU 0 touches page 0 twice; CTA 1 -> GPU 1 touches it once.
        let text = "transfw-trace v1 name=t footprint=2 ctas=2\n\
                    0 0 r 1\n0 0 r 1\n1 0 r 1\n1 1 r 1\n";
        let t = TraceWorkload::parse(text)?;
        let placed = t.majority_placement(2);
        assert_eq!(placed.initial_owner(0, 2), Some(0));
        assert_eq!(placed.initial_owner(1, 2), Some(1));
        Ok(())
    }

    #[test]
    fn replayed_trace_drives_the_simulator() -> Result<(), Box<dyn std::error::Error>> {
        let t = TraceWorkload::parse(sample())?;
        let placed = t.majority_placement(2);
        let cfg = SystemConfig::builder()
            .gpus(2)
            .cus_per_gpu(1)
            .wavefronts_per_cu(1)
            .build();
        let m = System::new(cfg).run(&placed)?;
        assert_eq!(m.mem_instructions, 3);
        assert!(m.total_cycles > 0);
        Ok(())
    }
}
