//! Component-failure recovery: the state machine that keeps the protocol
//! sound when a GPU drops off the fabric, a peer link partitions, or the
//! host MMU fails over — plus the epoch checkpoint/restore harness.
//!
//! The recovery protocol (see DESIGN.md, "Recovery protocol") is driven by
//! the scheduled [`sim_core::ComponentEvent`]s of the fault plan:
//!
//! * **GPU offline** — drain its PW-queue and in-flight walks (re-issuing
//!   local work through the reliable host path at rejoin, refusing borrowed
//!   walks with a failure notify), invalidate every FT entry keyed to the
//!   victim *before* migrating page ownership to survivors through the
//!   directory, shoot down survivors' dangling remote maps, and flush the
//!   victim's page table, PW-cache, TLBs and PRT wholesale.
//! * **GPU rejoin** — rebuild the PRT from the directory's authoritative
//!   residency list and release the compute/translation events that were
//!   parked during the window (the warm-up cost).
//! * **Link partition** — peer traffic between the severed pair detours
//!   store-and-forward over the host links (real occupancy → backpressure)
//!   instead of hanging.
//! * **Host-MMU failover** — dispatch stalls while arrivals keep queueing
//!   under the PW-queue's bounded admission; a drain kick restarts dispatch
//!   when the window closes.
//!
//! Checkpoints are digest certificates, not deep snapshots: the simulator
//! is deterministic, so "restore" means replaying from the initial state
//! and verifying that every epoch digest of the crashed run reproduces
//! bit-identically ([`run_with_restore`]).

use std::sync::{Arc, Mutex};

use sim_core::{CheckpointLog, ComponentEvent, Cycle, EpochCheckpoint, SimError, StateDigest};

use crate::config::FarFaultMode;
use crate::metrics::RunMetrics;
use crate::protocol;
use crate::request::ReqId;
use crate::system::{Event, GmmuJob, System};
use crate::workload::Workload;

impl System {
    /// Translates the fault plan's scheduled component events into
    /// bookkeeping events on the queue. Called once at the start of a run;
    /// an empty plan pushes nothing, preserving fault-free bit-identity.
    pub(crate) fn schedule_component_events(&mut self) {
        let events = self.injector.plan().component_events.clone();
        for ev in events {
            match ev {
                ComponentEvent::GpuOffline { gpu, at_cycle, duration } => {
                    let until = at_cycle.saturating_add(duration);
                    let gpu = gpu as u16;
                    self.push_bookkeeping(at_cycle, Event::GpuOffline { gpu, until });
                    // Pushed before any deferred work targeting `until`, so
                    // FIFO tie-breaking runs the rejoin first.
                    self.push_bookkeeping(until, Event::GpuRejoin { gpu, until });
                }
                ComponentEvent::LinkPartition { a, b, at_cycle, duration } => {
                    let (a, b) = (a as u16, b as u16);
                    self.push_bookkeeping(at_cycle, Event::LinkDown { a, b });
                    if duration > 0 {
                        self.push_bookkeeping(at_cycle + duration, Event::LinkUp { a, b });
                    }
                }
                ComponentEvent::HostMmuFailover { at_cycle, stall } => {
                    let until = at_cycle.saturating_add(stall);
                    self.push_bookkeeping(at_cycle, Event::HostFailoverStart { until });
                    if stall > 0 {
                        self.push_bookkeeping(until, Event::HostFailoverEnd);
                    }
                }
            }
        }
    }

    /// The event that (re-)enters a request into the far-fault path, per
    /// the configured fault mode.
    pub(crate) fn host_entry_event(&self, req: ReqId) -> Event {
        match self.cfg.fault_mode {
            FarFaultMode::HostMmu => Event::HostArrive { req },
            FarFaultMode::UvmDriver => Event::DriverSubmit { req },
        }
    }

    /// Filters one popped event through the offline windows: events
    /// targeting a dead GPU are deferred to its rejoin, redirected through
    /// the host, or refused — never silently dropped with a request
    /// attached. Returns `None` when the event was consumed.
    pub(crate) fn intercept_for_recovery(&mut self, ev: Event) -> Option<Event> {
        if self.offline_count == 0 {
            return Some(ev);
        }
        let target: Option<u16> = match &ev {
            Event::WfStart(wf)
            | Event::WfMem(wf)
            | Event::L2Access(wf)
            | Event::DataDone(wf) => Some(wf.gpu),
            Event::GmmuEnqueue { gpu, .. }
            | Event::GmmuDispatch { gpu }
            | Event::RemoteWalkArrive { gpu, .. } => Some(*gpu),
            Event::RemoteSupply { req, .. }
            | Event::Reply { req, .. }
            | Event::HostArrive { req }
            | Event::DriverSubmit { req }
            | Event::FaultResolved { req } => Some(self.reqs[*req].gpu),
            // Walk completions are gated by the per-GPU generation counter
            // instead; host-side, watchdog, recovery and checkpoint
            // bookkeeping events have no offline GPU to defer for.
            Event::GmmuWalkDone { .. }
            | Event::HostDispatch
            | Event::HostWalkDone { .. }
            | Event::RemoteNotify { .. }
            | Event::DriverCheck
            | Event::DriverBatchDone
            | Event::ReqDeadline { .. }
            | Event::LivenessCheck
            | Event::GpuOffline { .. }
            | Event::GpuRejoin { .. }
            | Event::LinkDown { .. }
            | Event::LinkUp { .. }
            | Event::HostFailoverStart { .. }
            | Event::HostFailoverEnd
            | Event::Checkpoint => None,
        };
        let Some(until) = target.and_then(|g| self.offline_until[g as usize]) else {
            return Some(ev); // no target, or the target is healthy
        };
        match ev {
            // Compute, translation entry points and deliveries addressed to
            // the victim wait out the window: the warm-up cost of rejoin.
            Event::WfStart(_)
            | Event::WfMem(_)
            | Event::L2Access(_)
            | Event::DataDone(_)
            | Event::GmmuEnqueue { .. }
            | Event::RemoteSupply { .. }
            | Event::HostArrive { .. }
            | Event::DriverSubmit { .. } => {
                self.metrics.recovery.deferred_events = self.metrics.recovery.deferred_events.saturating_add(1);
                self.events.push(until, ev);
                None
            }
            // The queue was drained at offline time; the rejoin re-kicks it.
            Event::GmmuDispatch { .. } => None,
            // A forwarded walk reaching a dead GPU is refused immediately so
            // the host falls back to its own walk instead of waiting.
            Event::RemoteWalkArrive { req, .. } => {
                self.metrics.transfw.remote_failed = self.metrics.transfw.remote_failed.saturating_add(1);
                let at = self.cpu_control_arrival(self.now);
                self.send_message(req, at, Event::RemoteNotify { req, success: false });
                None
            }
            // A resolution (or its reply) computed before the failure
            // carries placement the eviction has invalidated: re-enter the
            // host path at rejoin and re-resolve against fresh state.
            Event::Reply { req, .. } | Event::FaultResolved { req } => {
                if self.reqs[req].completed {
                    self.note_duplicate();
                } else {
                    self.metrics.recovery.deferred_events = self.metrics.recovery.deferred_events.saturating_add(1);
                    let retry = self.host_entry_event(req);
                    self.events.push(until, retry);
                }
                None
            }
            // Unreachable in practice: the target-selection match above
            // returned `None` for these, so the let-else already passed
            // them through. Listed (not wildcarded) so a new Event variant
            // forces a routing decision here too.
            Event::GmmuWalkDone { .. }
            | Event::HostDispatch
            | Event::HostWalkDone { .. }
            | Event::RemoteNotify { .. }
            | Event::DriverCheck
            | Event::DriverBatchDone
            | Event::ReqDeadline { .. }
            | Event::LivenessCheck
            | Event::GpuOffline { .. }
            | Event::GpuRejoin { .. }
            | Event::LinkDown { .. }
            | Event::LinkUp { .. }
            | Event::HostFailoverStart { .. }
            | Event::HostFailoverEnd
            | Event::Checkpoint => Some(ev),
        }
    }

    /// GPU `g` drops off the fabric until `until`: drain, invalidate,
    /// migrate ownership, flush (the tentpole recovery sequence).
    pub(crate) fn gpu_offline(&mut self, g: u16, until: Cycle) {
        self.metrics.recovery.gpu_offline_events = self.metrics.recovery.gpu_offline_events.saturating_add(1);
        let gi = g as usize;
        if let Some(old) = self.offline_until[gi] {
            // Overlapping windows: the state was already drained; just
            // extend. The stale rejoin event is recognised by its `until`.
            self.offline_until[gi] = Some(old.max(until));
            return;
        }
        self.offline_until[gi] = Some(until);
        self.offline_count += 1;
        // Invalidate in-flight walk completions (their walkers are reset
        // below; the stale events are dropped by the generation check).
        self.gpus[gi].gen = self.gpus[gi].gen.wrapping_add(1);

        // Drain queued and in-flight walks.
        let mut orphans: Vec<GmmuJob> = Vec::new();
        while let Some(job) = self.gpus[gi].queue.remove_where(|_| true) {
            orphans.push(job);
        }
        orphans.append(&mut std::mem::take(&mut self.gpus[gi].inflight));
        self.gpus[gi].walkers.force_reset();
        let now = self.now;
        for job in orphans {
            if job.remote {
                // A borrowed walk dies with its borrower: refuse it so the
                // host's own walk proceeds.
                self.metrics.transfw.remote_failed = self.metrics.transfw.remote_failed.saturating_add(1);
                let at = self.cpu_control_arrival(now);
                self.send_message(job.req, at, Event::RemoteNotify { req: job.req, success: false });
            } else if !self.reqs[job.req].completed {
                // Re-issue the victim's own walk through the reliable host
                // path once it rejoins.
                self.reqs[job.req].fallback = true;
                self.reqs[job.req].cancelled = false;
                self.metrics.recovery.reissued_walks = self.metrics.recovery.reissued_walks.saturating_add(1);
                let entry = self.host_entry_event(job.req);
                self.events.push(until, entry);
            }
        }

        // Ownership migration through the directory, with the FT entries
        // keyed to the victim invalidated in the same step — the host must
        // stop forwarding to the dead GPU immediately (forwards already in
        // flight are refused by the interceptor). Pages with an outstanding
        // request (a PRT-pending fault or an in-flight forwarded walk) are
        // *pinned*: migrating their ownership mid-walk would let a late
        // supply resurrect a mapping the eviction tore down, so they are
        // deferred until their last request retires (`unpin_vpn`).
        let pins = self.pin_set();
        let report = self.dir.evict_gpu_pinned(g, &pins);
        for &vpn in &report.deferred {
            self.pending_evict.insert(vpn, g);
        }
        self.metrics.recovery.deferred_evictions = self.metrics.recovery.deferred_evictions.saturating_add(report.deferred.len() as u64);
        protocol::evict_tables(self, g, &report);
        if self.oversub.active() {
            self.evictor.on_gpu_offline(g);
            self.oversub.on_gpu_offline(g);
        }

        // An evicted peer takes its circuit breaker down with it: any
        // half-open probes aimed at it are drained (their in-flight forwards
        // were refused above / by the interceptor, and the probed requests
        // keep their host walks), and the breaker latches open so no new
        // forwards target the dead GPU before the host-side FT eviction is
        // observed everywhere.
        let _drained = self.overload.on_gpu_offline(now, g);

        // Flush the victim wholesale: device memory is gone. The MSHR is
        // deliberately kept — its coalesced waiters are woken by the
        // re-issued walks after rejoin.
        protocol::offline_flush(self, g);
    }

    /// GPU `g` rejoins at the end of the window it went down for: rebuild
    /// the PRT from the directory and restart dispatch. Stale rejoins (the
    /// window was extended by a second offline event) are ignored.
    pub(crate) fn gpu_rejoin(&mut self, g: u16, until: Cycle) {
        let gi = g as usize;
        if self.offline_until[gi] != Some(until) {
            return;
        }
        self.offline_until[gi] = None;
        self.offline_count -= 1;
        self.metrics.recovery.gpu_rejoins = self.metrics.recovery.gpu_rejoins.saturating_add(1);
        // PRT rebuild from the directory's authoritative residency list
        // (empty right after an eviction; pages repopulate it as the
        // re-issued and deferred walks migrate them back in).
        let resident = self.dir.resident_vpns_on(g);
        protocol::rejoin_prt(self, g, &resident);
        // Evictions deferred by the pin set are cancelled: the rejoining
        // GPU's deferred and re-issued walks re-resolve against fresh
        // placement and may legitimately migrate those pages back in.
        self.pending_evict.retain(|_, &mut owner| owner != g);
        if self.oversub.active() {
            self.evictor.sync_residency(g, &resident, self.now);
        }
        self.events.push(self.now, Event::GmmuDispatch { gpu: g });
    }

    /// The peer link between `a` and `b` is severed: subsequent peer
    /// traffic detours via the host (see
    /// [`Fabric::set_partitioned`](interconnect::Fabric::set_partitioned)).
    pub(crate) fn link_down(&mut self, a: u16, b: u16) {
        self.metrics.recovery.link_partition_events = self.metrics.recovery.link_partition_events.saturating_add(1);
        self.fabric.set_partitioned(a as usize, b as usize, true);
    }

    /// The peer link heals.
    pub(crate) fn link_up(&mut self, a: u16, b: u16) {
        self.fabric.set_partitioned(a as usize, b as usize, false);
    }

    /// The host MMU stops dispatching until `until` (failover to a standby
    /// walker complex). Overlapping windows extend.
    pub(crate) fn host_failover_start(&mut self, until: Cycle) {
        self.metrics.recovery.host_failover_events = self.metrics.recovery.host_failover_events.saturating_add(1);
        self.host_failover_until =
            Some(self.host_failover_until.map_or(until, |u| u.max(until)));
    }

    /// The failover window closed: drain the backlog.
    pub(crate) fn host_failover_end(&mut self) {
        let Some(until) = self.host_failover_until else {
            return;
        };
        if self.now < until {
            return; // stale end of an extended window
        }
        self.host_failover_until = None;
        self.events.push(self.now, Event::HostDispatch);
        if self.cfg.fault_mode == FarFaultMode::UvmDriver {
            self.events.push(self.now, Event::DriverCheck);
        }
    }

    /// Records one epoch checkpoint: a digest of the complete observable
    /// simulation state at this cycle.
    pub(crate) fn epoch_checkpoint(&mut self) {
        let cp = EpochCheckpoint {
            epoch: self.checkpoint_log.len() as u64,
            cycle: self.now,
            digest: self.state_digest(),
        };
        self.checkpoint_log.record(cp);
        if let Some(sink) = &self.checkpoint_sink {
            // A poisoned sink (a panic elsewhere while holding the lock)
            // still holds structurally valid checkpoints: recover the guard
            // instead of compounding the failure with a second panic.
            sink.lock().unwrap_or_else(std::sync::PoisonError::into_inner).record(cp);
        }
        self.metrics.recovery.checkpoints_taken = self.metrics.recovery.checkpoints_taken.saturating_add(1);
        if let Some(interval) = self.cfg.checkpoint_interval {
            if self.has_real_events() {
                self.push_bookkeeping(self.now + interval, Event::Checkpoint);
            }
        }
    }

    /// A 64-bit digest over everything that determines the rest of the run:
    /// cycle, RNG stream position, request states, per-GPU cache/queue/
    /// walker/table/CU state, host MMU state, the fabric links, the UVM
    /// driver, the page directory and the key counters. Two runs in the
    /// same state produce the same digest, and a divergence anywhere shows
    /// up in every later digest. Coverage is machine-checked: simlint's
    /// `epoch-digest-coverage` pass walks every struct reachable from
    /// `System`'s fields and fails on any field that never flows in.
    pub(crate) fn state_digest(&self) -> u64 {
        let mut d = StateDigest::new();
        d.mix(self.now)
            .mix(self.rng.state_digest())
            .mix(self.reqs.len() as u64)
            .mix(self.metrics.mem_instructions)
            .mix(self.metrics.translation_requests)
            .mix(self.metrics.resilience.requests_retired)
            .mix(self.metrics.local_faults);
        for req in self.reqs.iter() {
            d.mix(
                req.vpn
                    ^ (u64::from(req.completed) << 63)
                    ^ (u64::from(req.retire_count) << 48)
                    ^ (u64::from(req.gpu) << 40),
            );
            d.mix(
                (u64::from(req.is_write) << 63)
                    ^ (u64::from(req.remote_timed_out) << 62)
                    ^ (req.forwarded_to.map_or(0, |g| u64::from(g) + 1) << 44)
                    ^ (u64::from(req.watchdog_retries) << 24)
                    ^ req.born,
            );
            d.mix(req.host_submit_time).mix(req.lat.total());
        }
        for gpu in &self.gpus {
            d.mix(gpu.l2.hits())
                .mix(gpu.l2.misses())
                .mix(gpu.mshr.len() as u64)
                .mix(gpu.queue.len() as u64)
                .mix(gpu.walkers.busy() as u64)
                .mix(gpu.pt.state_digest())
                .mix(u64::from(gpu.gen))
                .mix(gpu.pwc.stats().lookups)
                .mix(gpu.pwc.stats().misses)
                .mix_all(gpu.ctas.iter().map(|&cta| cta as u64));
            for job in &gpu.inflight {
                d.mix(
                    job.req as u64
                        ^ (u64::from(job.remote) << 63)
                        ^ (u64::from(job.gen) << 40),
                );
            }
            for cu in &gpu.cus {
                d.mix(cu.l1.hits()).mix(cu.l1.misses());
                for wf in &cu.wfs {
                    d.mix(u64::from(wf.stream.is_some()));
                    if let Some(a) = wf.pending.as_ref() {
                        d.mix(
                            a.vpn
                                ^ (u64::from(a.is_write) << 63)
                                ^ a.compute.rotate_left(16),
                        );
                    }
                }
            }
            if let Some(asap) = gpu.asap.as_ref() {
                d.mix(asap.state_digest());
            }
            if let Some(prt) = gpu.prt.as_ref() {
                d.mix(prt.state_digest());
            }
        }
        d.mix(self.host.tlb.hits())
            .mix(self.host.tlb.misses())
            .mix(self.host.queue.len() as u64)
            .mix(self.host.walkers.busy() as u64)
            .mix(self.host.pt.state_digest())
            .mix(self.host.pwc.stats().lookups)
            .mix(self.host.pwc.stats().misses);
        if let Some(asap) = self.host.asap.as_ref() {
            d.mix(asap.state_digest());
        }
        if let Some(ft) = self.host.ft.as_ref() {
            d.mix(ft.state_digest());
        }
        d.mix(self.fabric.state_digest());
        d.mix(self.driver.state_digest());
        d.mix_all(self.driver_batch.iter().map(|&r| r as u64));
        d.mix(self.dir.state_digest());
        d.mix(self.overload.digest());
        d.mix(self.oversub.digest());
        d.mix(self.evictor.state_digest());
        for (&vpn, &c) in self.outstanding_vpns.iter() {
            d.mix(vpn + 1).mix(u64::from(c));
        }
        for (&vpn, &g) in self.pending_evict.iter() {
            d.mix(vpn + 1).mix(u64::from(g));
        }
        d.finish()
    }
}

/// Locks a shared checkpoint log, recovering from poisoning: the log's
/// entries are plain `Copy` digests, so a panic elsewhere while the lock
/// was held cannot have left them half-written.
fn lock_log(log: &Arc<Mutex<CheckpointLog>>) -> std::sync::MutexGuard<'_, CheckpointLog> {
    log.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Outcome of a crash-and-restore cycle (see [`run_with_restore`]).
#[derive(Debug, Clone)]
pub struct RestoreOutcome {
    /// Metrics of the restored, replayed-to-completion run.
    pub metrics: RunMetrics,
    /// Whether a restore actually happened (false when the "crashing" run
    /// finished before the crash point).
    pub restored: bool,
    /// Epochs the crashed run had recorded when it died.
    pub crashed_epochs: usize,
}

/// Runs `workload` with a crash injected at `crash_at` cycles, then
/// restores from the checkpoint log: the simulator is deterministic, so
/// restoring means replaying from the initial state and verifying that the
/// crashed run's every epoch digest reproduces bit-identically. Returns the
/// completed run's metrics (with `restores_performed` set) after the
/// verification passes.
///
/// # Errors
///
/// Propagates any [`SimError`] from either run other than the injected
/// [`SimError::CycleCapExceeded`], and fails with
/// [`SimError::InvariantViolation`] if the replay diverges from the crashed
/// run's checkpoint prefix.
///
/// # Panics
///
/// Panics if `cfg.checkpoint_interval` is `None` — a restore needs epochs.
pub fn run_with_restore(
    cfg: &crate::config::SystemConfig,
    workload: &dyn Workload,
    crash_at: Cycle,
) -> Result<RestoreOutcome, SimError> {
    assert!(
        cfg.checkpoint_interval.is_some(),
        "run_with_restore requires checkpoint_interval"
    );
    // Crash half: run with a hard cycle cap standing in for the crash. The
    // sink mirrors every checkpoint out of the dying System.
    let crashed = Arc::new(Mutex::new(CheckpointLog::new()));
    let mut crash_cfg = cfg.clone();
    crash_cfg.watchdog.max_cycles = Some(crash_at);
    let sys = System::new(crash_cfg).with_checkpoint_sink(crashed.clone());
    match sys.run(workload) {
        Ok(metrics) => {
            // Finished before the crash point: nothing to restore.
            return Ok(RestoreOutcome {
                crashed_epochs: lock_log(&crashed).len(),
                metrics,
                restored: false,
            });
        }
        Err(SimError::CycleCapExceeded { .. }) => {}
        Err(e) => return Err(e),
    }
    let crashed_log = lock_log(&crashed).clone();

    // Restore half: deterministic replay from cycle 0, verified epoch by
    // epoch against the crashed run's log.
    let restored = Arc::new(Mutex::new(CheckpointLog::new()));
    let sys = System::new(cfg.clone()).with_checkpoint_sink(restored.clone());
    let mut metrics = sys.run(workload)?;
    let restored_log = lock_log(&restored).clone();
    crashed_log.verify_prefix_of(&restored_log)?;
    metrics.recovery.restores_performed = 1;
    Ok(RestoreOutcome {
        metrics,
        restored: true,
        crashed_epochs: crashed_log.len(),
    })
}
