//! Event-driven multi-GPU address-translation simulator.
//!
//! This crate assembles the substrates (`tlb`, `ptw`, `interconnect`, `uvm`,
//! `transfw`) into the full system of Fig. 1 of the Trans-FW paper:
//!
//! ```text
//!  GPU i: CUs -> L1 TLB -> L2 TLB+MSHR -> [PRT] -> GMMU {PW-queue, PW-cache,
//!          walkers, local page table} --far fault--> interconnect -->
//!  host MMU {TLB || FT, PW-queue, PW-cache, walkers, centralised PT}
//!          --> page migration --> reply/replay
//! ```
//!
//! Compute is modelled at wavefront granularity: each CU runs a pool of
//! wavefronts that alternate compute delay and coalesced memory accesses, so
//! translation latency is naturally (partially) hidden by thread-level
//! parallelism, exactly the effect that makes AES/FIR insensitive to fault
//! latency (§V-A).
//!
//! # Examples
//!
//! ```
//! use mgpu::{System, SystemConfig};
//! use mgpu::workload::{Access, AccessStream, Workload};
//!
//! // A trivial workload: 4 CTAs, each touching 16 sequential pages.
//! #[derive(Debug)]
//! struct Seq;
//! impl Workload for Seq {
//!     fn name(&self) -> &str { "seq" }
//!     fn footprint_pages(&self) -> u64 { 64 }
//!     fn cta_count(&self) -> usize { 4 }
//!     fn make_stream(&self, cta: usize, _seed: u64) -> Box<dyn AccessStream> {
//!         let base = cta as u64 * 16;
//!         Box::new((0..16).map(move |i| Access::read(base + i, 20))
//!             .collect::<Vec<_>>().into_iter())
//!     }
//! }
//!
//! let cfg = SystemConfig::builder().gpus(2).cus_per_gpu(4).build();
//! let metrics = System::new(cfg).run(&Seq).unwrap();
//! assert!(metrics.total_cycles > 0);
//! assert_eq!(metrics.mem_instructions, 64);
//! ```

pub mod config;
pub mod gmmu;
pub mod host;
pub mod metrics;
pub mod overload;
pub mod oversub;
pub mod placement;
pub mod protocol;
pub mod recovery;
pub mod request;
pub mod sanitize;
pub mod system;
#[cfg(test)]
mod system_tests;
pub mod trace;
pub mod workload;

pub use config::{
    FarFaultMode, IdealKnobs, PwcKind, SystemConfig, SystemConfigBuilder, TransFwKnobs,
    WatchdogConfig,
};
pub use metrics::{
    LatencyBreakdown, PlacementStats, RecoveryStats, ResilienceStats, RunMetrics, SharingProfile,
};
pub use overload::{OverloadConfig, OverloadControl, OverloadStats};
pub use oversub::{OversubConfig, OversubControl, OversubStats};
pub use protocol::{ProtocolEvent, ProtocolNote, ProtocolTables};
pub use recovery::{run_with_restore, RestoreOutcome};
pub use sim_core::{CheckpointLog, ComponentEvent, EpochCheckpoint, FaultPlan, SimError};
pub use system::System;
