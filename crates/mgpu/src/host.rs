//! Host-side event handlers: the hardware host MMU (baseline far-fault
//! path), fault resolution/migration, and the software UVM-driver mode.

use ptw::Location;
use sim_core::{Cycle, SimError};
use uvm::TxnKind;

use crate::request::ReqId;
use crate::system::{Event, System, TransEntry};

impl System {
    /// A far fault (or short-circuited request) reached the host MMU: the
    /// host TLB and the Forwarding Table are searched in parallel (§IV-D).
    pub(crate) fn host_arrive(&mut self, req: ReqId) {
        let now = self.now;
        let Some(r) = self.reqs.get_mut(req) else {
            return;
        };
        if r.completed {
            // A watchdog retry can race the original reply: the reply
            // retires the request while the retried fault copy is still in
            // flight. Re-entering the host path here would start a second
            // walk — and retire the request a second time — so the
            // straggler is discarded like any other duplicate.
            self.note_duplicate();
            return;
        }
        r.host_submit_time = now;
        let (vpn, g) = (r.vpn, r.gpu);

        if self.host.tlb.lookup(vpn).is_some() {
            // Translation known: skip the PW-queue and PT-walk entirely and
            // resolve the fault right away (§II-B). The migration itself
            // remains on the critical path — Fig. 3 attributes it to fault
            // handling regardless of how the translation was found.
            self.resolve_fault(req);
            return;
        }

        // Miss: consult the FT and maybe forward, then join the PW-queue.
        let occupancy = self.host.queue.len();
        self.overload.observe_host(occupancy);
        let forward_to = self.host.ft.as_mut().and_then(|ft| {
            let owners: Vec<_> = ft.lookup(vpn).into_iter().filter(|&o| o != g).collect();
            if owners.is_empty() {
                None
            } else {
                let pick = self.rng.gen_index(owners.len());
                owners.get(pick).copied()
            }
        });
        if let Some(owner) = forward_to {
            if self
                .policy
                .should_forward(occupancy, self.host.walkers.threads())
                && self.allow_forward(owner, req, now)
            {
                if let Some(r) = self.reqs.get_mut(req) {
                    r.forwarded = true;
                    r.forwarded_to = Some(owner);
                }
                self.metrics.transfw.forwarded = self.metrics.transfw.forwarded.saturating_add(1);
                let arrival = self.cpu_control_arrival(now);
                self.send_message(req, arrival, Event::RemoteWalkArrive { gpu: owner, req });
            }
        }

        match self.host.queue.push(req, now) {
            Ok(()) => self.events.push(now, Event::HostDispatch),
            Err(req) => {
                // Host queue full (sized generously; effectively unreachable
                // under Table II parameters): retry shortly.
                if self.overload.active() {
                    self.overload.stats.demand_deferred = self.overload.stats.demand_deferred.saturating_add(1);
                }
                self.events.push(now + 64, Event::HostArrive { req });
            }
        }
    }

    /// Overload gate on the forwarding fast path: consults the peer's
    /// host→GPU link backlog (congestion) and its circuit breaker. Always
    /// permissive while overload control is disabled, so the pre-overload
    /// forward decision — and therefore the event stream — is unchanged.
    fn allow_forward(&mut self, owner: ptw::GpuId, req: ReqId, now: Cycle) -> bool {
        if !self.overload.active() {
            return true;
        }
        let backlog = self.fabric.down_backlog(usize::from(owner), now);
        !matches!(
            self.overload.forward_decision(now, owner, req, backlog),
            crate::overload::ForwardDecision::Skip
        )
    }

    /// Starts host PT-walks while walkers are free, lazily skipping
    /// requests cancelled by a successful remote lookup.
    pub(crate) fn host_dispatch(&mut self) -> Result<(), SimError> {
        let now = self.now;
        if let Some(until) = self.host_failover_until {
            if now < until {
                // Host-MMU failover window: arrivals keep queueing under the
                // PW-queue's bounded admission; dispatch resumes at the
                // queue-drain kick when the standby complex takes over.
                return Ok(());
            }
        }
        loop {
            if !self.host.walkers.has_free() {
                return Ok(());
            }
            let Some((req, waited)) = self.host.queue.pop(now) else {
                return Ok(());
            };
            let Some(r) = self.reqs.get_mut(req) else {
                continue;
            };
            if r.cancelled {
                continue;
            }
            r.lat.host_queue += waited;
            r.host_walk_started = true;
            let vpn = r.vpn;
            if !self.host.walkers.try_acquire() {
                return Err(SimError::Protocol {
                    cycle: now,
                    what: "host: free walker vanished during dispatch".into(),
                });
            }
            self.metrics.host_walks = self.metrics.host_walks.saturating_add(1);
            // Injected slowdowns: DRAM-contention walker stalls and
            // host-MMU overload bursts.
            let stall = self.injector.walker_stall() + self.injector.host_burst_penalty(now);
            let levels = self.cfg.page_table_levels;
            let resume = self.host.pwc.lookup(vpn);
            let walk = self.host.pt.walk(vpn, resume);
            debug_assert!(walk.pte.is_some(), "centralised table maps everything");
            let mut accesses = walk.accesses;
            if let Some(asap) = self.host.asap.as_mut() {
                accesses = asap.effective_accesses(accesses);
            }
            let walk_cycles = Cycle::from(accesses) * self.cfg.walk_level_latency
                + self.cfg.host_fault_overhead
                + stall;
            self.metrics.host_walk_accesses = self.metrics.host_walk_accesses.saturating_add(u64::from(walk.accesses));
            let start = resume.map_or(levels, |k| k - 1);
            self.events.push(
                now + walk_cycles,
                Event::HostWalkDone {
                    req,
                    walk_cycles,
                    insert_lo: walk.reached_level.max(2),
                    insert_hi: start.min(levels),
                },
            );
        }
    }

    /// A host walk finished: refill host PW-cache and TLB, then resolve the
    /// fault (unless a remote supply made this walk redundant).
    pub(crate) fn host_walk_done(
        &mut self,
        req: ReqId,
        walk_cycles: Cycle,
        insert_lo: u32,
        insert_hi: u32,
    ) {
        let now = self.now;
        self.host.walkers.release();
        self.events.push(now, Event::HostDispatch);
        let Some(r) = self.reqs.get_mut(req) else {
            return;
        };
        r.lat.host_walk += walk_cycles;
        let vpn = r.vpn;
        let redundant = r.remote_supplied || r.completed;
        for k in insert_lo..=insert_hi.min(self.cfg.page_table_levels) {
            self.host.pwc.insert(vpn, k);
        }
        let home = self.dir.home(vpn);
        self.host.tlb.fill(vpn, TransEntry { ppn: vpn, loc: home });

        if redundant {
            return; // counted as a replicated walk when the notify arrived
        }
        self.resolve_fault(req);
    }

    /// Applies the placement policy to a faulting request: migration /
    /// replication / remote mapping, with the data transfer on the critical
    /// path (Fig. 3's "migrating page to local memory" component).
    pub(crate) fn resolve_fault(&mut self, req: ReqId) {
        let now = self.now;
        let Some(r) = self.reqs.get(req) else {
            return;
        };
        let (vpn, g, is_write) = (r.vpn, r.gpu, r.is_write);
        if let Some(until) = self.offline_until.get(g as usize).copied().flatten() {
            // The requester is offline: resolving now would migrate the page
            // into a dead GPU. Park the request and re-resolve against fresh
            // placement state once it rejoins.
            self.metrics.recovery.deferred_events = self.metrics.recovery.deferred_events.saturating_add(1);
            let retry = self.host_entry_event(req);
            self.events.push(until, retry);
            return;
        }
        // Thrash detection: classify the fault (refault = the page was
        // evicted within the refault window) and, while the gate is
        // engaged, serve cold faults by host-mediated direct access — map
        // the page where it lives, no migration, no eviction — instead of
        // deepening the collapse. Inert while oversubscription is off.
        let was_refault = self.oversub.note_fault(g, vpn, now);
        if self.oversub.active() {
            let at_capacity = self.evictor.resident_count(g) >= self.oversub.capacity();
            if self.oversub.prefer_direct_access(g, was_refault, at_capacity) {
                let home = self.dir.home(vpn);
                if home != Location::Gpu(g) {
                    self.dir.add_remote_map(vpn, g);
                }
                if let Some(r) = self.reqs.get_mut(req) {
                    r.resolved_loc = Some(home);
                }
                self.events.push(now, Event::FaultResolved { req });
                return;
            }
        }
        // The directory commits the policy decision and hands back the
        // ownership transaction; the memory-system mirror (shootdowns, host
        // view, PRT/FT) is applied atomically in `apply_ownership_txn`.
        let txn = self
            .dir
            .begin_fault_txn(vpn, g, is_write)
            .unwrap_or_else(|e| panic!("{e}"));
        self.apply_ownership_txn(&txn);

        let done_at = self.txn_transfer_done(&txn, now);
        if let Some(r) = self.reqs.get_mut(req) {
            r.resolved_loc = Some(txn.resolved_location());
            r.lat.migration += done_at - now;
        }
        self.record_migration(&txn, now, done_at);
        if txn.kind == TxnKind::Migrate {
            // The prefetch policy pulls the neighborhood in alongside the
            // demand migration (no-op for non-prefetching policies).
            self.apply_prefetches(vpn, g, txn.source, now);
        }
        // Capacity ceiling: the demand resolution (and its prefetches) may
        // have pushed the destination over; evict back down to fit.
        self.enforce_capacity(g);
        self.events.push(done_at, Event::FaultResolved { req });
    }

    /// The page (or mapping) is in place: install the local PTE, update the
    /// PRT, and reply to the requesting GPU for replay.
    pub(crate) fn fault_resolved(&mut self, req: ReqId) -> Result<(), SimError> {
        let now = self.now;
        let Some(r) = self.reqs.get(req) else {
            return Ok(());
        };
        let (completed, vpn, g, resolved) = (r.completed, r.vpn, r.gpu, r.resolved_loc);
        if completed {
            // A remote supply raced ahead (or a retried resolution already
            // replied); drop the duplicate.
            self.note_duplicate();
            return Ok(());
        }
        let Some(loc) = resolved else {
            return Err(SimError::Protocol {
                cycle: now,
                what: format!("req {req} resolved with no location recorded"),
            });
        };
        self.map_on_gpu(g, vpn, loc);
        let arrival = self.cpu_control_arrival(now);
        if let Some(r) = self.reqs.get_mut(req) {
            r.lat.network += arrival - now;
        }
        self.send_message(
            req,
            arrival,
            Event::Reply {
                req,
                entry: TransEntry { ppn: vpn, loc },
            },
        );
        Ok(())
    }

    /// The host's reply reached the requester: replay the translation.
    pub(crate) fn reply(&mut self, req: ReqId, entry: TransEntry) {
        let Some(r) = self.reqs.get(req) else {
            return;
        };
        let (completed, g, vpn) = (r.completed, r.gpu, r.vpn);
        if completed {
            self.note_duplicate();
            return;
        }
        self.retire(req);
        // Replay through the L2 pipeline costs one more L2 access.
        let l2 = self.cfg.l2_tlb_latency;
        if let Some(r) = self.reqs.get_mut(req) {
            r.lat.network += l2;
        }
        // A host-TLB-hit reply maps the page in place on the requester (the
        // fault path was skipped entirely), like a remote mapping.
        let mapped = self
            .gpus
            .get(g as usize)
            .is_some_and(|gpu| gpu.pt.translate(vpn).is_some());
        if !mapped {
            self.map_on_gpu(g, vpn, entry.loc);
            if entry.loc != Location::Gpu(g) {
                self.dir.add_remote_map(vpn, g);
            }
        }
        self.complete_translation(g, vpn, entry);
    }

    // ----- software UVM-driver mode (§II-B, Figs. 2 and 26) -------------

    /// A far fault reached the driver: enqueue it; under Trans-FW the
    /// driver also checks the (CPU-memory) FT and may forward immediately.
    pub(crate) fn driver_submit(&mut self, req: ReqId) {
        let now = self.now;
        let Some(r) = self.reqs.get_mut(req) else {
            return;
        };
        if r.completed {
            // A duplicated/retried fault message for an already-answered
            // request: resubmitting would start a redundant driver walk.
            self.note_duplicate();
            return;
        }
        r.host_submit_time = now;
        let (vpn, g) = (r.vpn, r.gpu);

        let backlog = self.driver.pending_len();
        let threads = self.driver.config().walk_threads;
        let forward_to = self.host.ft.as_mut().and_then(|ft| {
            let owners: Vec<_> = ft.lookup(vpn).into_iter().filter(|&o| o != g).collect();
            if owners.is_empty() {
                None
            } else {
                let pick = self.rng.gen_index(owners.len());
                owners.get(pick).copied()
            }
        });
        if let Some(owner) = forward_to {
            if (self.policy.should_forward(backlog, threads) || self.driver.is_busy())
                && self.allow_forward(owner, req, now)
            {
                if let Some(r) = self.reqs.get_mut(req) {
                    r.forwarded = true;
                    r.forwarded_to = Some(owner);
                }
                self.metrics.transfw.forwarded = self.metrics.transfw.forwarded.saturating_add(1);
                let arrival = self.cpu_control_arrival(now);
                self.send_message(req, arrival, Event::RemoteWalkArrive { gpu: owner, req });
            }
        }

        self.driver.submit(req, now);
        self.events.push(now, Event::DriverCheck);
    }

    /// Starts a driver batch if the driver is idle and faults are pending.
    pub(crate) fn driver_check(&mut self) {
        let now = self.now;
        if let Some(until) = self.host_failover_until {
            if now < until {
                return; // failover window: batches resume at the drain kick
            }
        }
        if let Some(batch) = self.driver.try_start_batch(now) {
            for &req in &batch.faults {
                if let Some(r) = self.reqs.get_mut(req) {
                    r.host_walk_started = true;
                }
                self.metrics.host_walks = self.metrics.host_walks.saturating_add(1);
            }
            self.driver_batch = batch.faults;
            self.events.push(batch.done_at, Event::DriverBatchDone);
        }
    }

    /// A driver batch completed: resolve every fault in it, then look for
    /// the next batch.
    pub(crate) fn driver_batch_done(&mut self) -> Result<(), SimError> {
        let now = self.now;
        self.driver.finish_batch(now)?;
        let batch = std::mem::take(&mut self.driver_batch);
        for req in batch {
            let Some(r) = self.reqs.get_mut(req) else {
                continue;
            };
            if r.cancelled || r.completed {
                continue;
            }
            // Queue + processing time attribution: waiting for the batch.
            let waited = now.saturating_sub(r.host_submit_time);
            r.lat.host_queue += waited;
            self.resolve_fault(req);
        }
        self.events.push(now, Event::DriverCheck);
        Ok(())
    }
}
