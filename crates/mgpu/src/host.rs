//! Host-side event handlers: the hardware host MMU (baseline far-fault
//! path), fault resolution/migration, and the software UVM-driver mode.

use ptw::Location;
use sim_core::{Cycle, SimError};
use uvm::TxnKind;

use crate::request::ReqId;
use crate::system::{Event, System, TransEntry};

impl System {
    /// A far fault (or short-circuited request) reached the host MMU: the
    /// host TLB and the Forwarding Table are searched in parallel (§IV-D).
    pub(crate) fn host_arrive(&mut self, req: ReqId) {
        let now = self.now;
        let vpn = self.reqs[req].vpn;
        let g = self.reqs[req].gpu;
        self.reqs[req].host_submit_time = now;

        if self.host.tlb.lookup(vpn).is_some() {
            // Translation known: skip the PW-queue and PT-walk entirely and
            // resolve the fault right away (§II-B). The migration itself
            // remains on the critical path — Fig. 3 attributes it to fault
            // handling regardless of how the translation was found.
            self.resolve_fault(req);
            return;
        }

        // Miss: consult the FT and maybe forward, then join the PW-queue.
        let occupancy = self.host.queue.len();
        let forward_to = self.host.ft.as_mut().and_then(|ft| {
            let owners: Vec<_> = ft.lookup(vpn).into_iter().filter(|&o| o != g).collect();
            if owners.is_empty() {
                None
            } else {
                Some(owners[self.rng.gen_index(owners.len())])
            }
        });
        if let Some(owner) = forward_to {
            if self
                .policy
                .should_forward(occupancy, self.host.walkers.threads())
            {
                self.reqs[req].forwarded = true;
                self.metrics.transfw.forwarded += 1;
                let arrival = self.cpu_control_arrival(now);
                self.send_message(req, arrival, Event::RemoteWalkArrive { gpu: owner, req });
            }
        }

        match self.host.queue.push(req, now) {
            Ok(()) => self.events.push(now, Event::HostDispatch),
            Err(req) => {
                // Host queue full (sized generously; effectively unreachable
                // under Table II parameters): retry shortly.
                self.events.push(now + 64, Event::HostArrive { req });
            }
        }
    }

    /// Starts host PT-walks while walkers are free, lazily skipping
    /// requests cancelled by a successful remote lookup.
    pub(crate) fn host_dispatch(&mut self) -> Result<(), SimError> {
        let now = self.now;
        if let Some(until) = self.host_failover_until {
            if now < until {
                // Host-MMU failover window: arrivals keep queueing under the
                // PW-queue's bounded admission; dispatch resumes at the
                // queue-drain kick when the standby complex takes over.
                return Ok(());
            }
        }
        loop {
            if !self.host.walkers.has_free() {
                return Ok(());
            }
            let Some((req, waited)) = self.host.queue.pop(now) else {
                return Ok(());
            };
            if self.reqs[req].cancelled {
                continue;
            }
            if !self.host.walkers.try_acquire() {
                return Err(SimError::Protocol {
                    cycle: now,
                    what: "host: free walker vanished during dispatch".into(),
                });
            }
            self.reqs[req].lat.host_queue += waited;
            self.reqs[req].host_walk_started = true;
            self.metrics.host_walks += 1;
            // Injected slowdowns: DRAM-contention walker stalls and
            // host-MMU overload bursts.
            let stall = self.injector.walker_stall() + self.injector.host_burst_penalty(now);
            let vpn = self.reqs[req].vpn;
            let levels = self.cfg.page_table_levels;
            let resume = self.host.pwc.lookup(vpn);
            let walk = self.host.pt.walk(vpn, resume);
            debug_assert!(walk.pte.is_some(), "centralised table maps everything");
            let mut accesses = walk.accesses;
            if let Some(asap) = self.host.asap.as_mut() {
                accesses = asap.effective_accesses(accesses);
            }
            let walk_cycles = Cycle::from(accesses) * self.cfg.walk_level_latency
                + self.cfg.host_fault_overhead
                + stall;
            self.metrics.host_walk_accesses += u64::from(walk.accesses);
            let start = resume.map_or(levels, |k| k - 1);
            self.events.push(
                now + walk_cycles,
                Event::HostWalkDone {
                    req,
                    walk_cycles,
                    insert_lo: walk.reached_level.max(2),
                    insert_hi: start.min(levels),
                },
            );
        }
    }

    /// A host walk finished: refill host PW-cache and TLB, then resolve the
    /// fault (unless a remote supply made this walk redundant).
    pub(crate) fn host_walk_done(
        &mut self,
        req: ReqId,
        walk_cycles: Cycle,
        insert_lo: u32,
        insert_hi: u32,
    ) {
        let now = self.now;
        self.host.walkers.release();
        self.events.push(now, Event::HostDispatch);
        let vpn = self.reqs[req].vpn;
        for k in insert_lo..=insert_hi.min(self.cfg.page_table_levels) {
            self.host.pwc.insert(vpn, k);
        }
        let home = self.dir.home(vpn);
        self.host.tlb.fill(vpn, TransEntry { ppn: vpn, loc: home });
        self.reqs[req].lat.host_walk += walk_cycles;

        if self.reqs[req].remote_supplied || self.reqs[req].completed {
            return; // counted as a replicated walk when the notify arrived
        }
        self.resolve_fault(req);
    }

    /// Applies the placement policy to a faulting request: migration /
    /// replication / remote mapping, with the data transfer on the critical
    /// path (Fig. 3's "migrating page to local memory" component).
    pub(crate) fn resolve_fault(&mut self, req: ReqId) {
        let now = self.now;
        let vpn = self.reqs[req].vpn;
        let g = self.reqs[req].gpu;
        if let Some(until) = self.offline_until[g as usize] {
            // The requester is offline: resolving now would migrate the page
            // into a dead GPU. Park the request and re-resolve against fresh
            // placement state once it rejoins.
            self.metrics.recovery.deferred_events += 1;
            let retry = self.host_entry_event(req);
            self.events.push(until, retry);
            return;
        }
        let is_write = self.reqs[req].is_write;
        // The directory commits the policy decision and hands back the
        // ownership transaction; the memory-system mirror (shootdowns, host
        // view, PRT/FT) is applied atomically in `apply_ownership_txn`.
        let txn = self
            .dir
            .begin_fault_txn(vpn, g, is_write)
            .unwrap_or_else(|e| panic!("{e}"));
        self.apply_ownership_txn(&txn);
        self.reqs[req].resolved_loc = Some(txn.resolved_location());

        let done_at = self.txn_transfer_done(&txn, now);
        self.reqs[req].lat.migration += done_at - now;
        self.record_migration(&txn, now, done_at);
        if txn.kind == TxnKind::Migrate {
            // The prefetch policy pulls the neighborhood in alongside the
            // demand migration (no-op for non-prefetching policies).
            self.apply_prefetches(vpn, g, txn.source, now);
        }
        self.events.push(done_at, Event::FaultResolved { req });
    }

    /// The page (or mapping) is in place: install the local PTE, update the
    /// PRT, and reply to the requesting GPU for replay.
    pub(crate) fn fault_resolved(&mut self, req: ReqId) -> Result<(), SimError> {
        let now = self.now;
        if self.reqs[req].completed {
            // A remote supply raced ahead (or a retried resolution already
            // replied); drop the duplicate.
            self.note_duplicate();
            return Ok(());
        }
        let vpn = self.reqs[req].vpn;
        let g = self.reqs[req].gpu;
        let Some(loc) = self.reqs[req].resolved_loc else {
            return Err(SimError::Protocol {
                cycle: now,
                what: format!("req {req} resolved with no location recorded"),
            });
        };
        self.map_on_gpu(g, vpn, loc);
        let arrival = self.cpu_control_arrival(now);
        self.reqs[req].lat.network += arrival - now;
        self.send_message(
            req,
            arrival,
            Event::Reply {
                req,
                entry: TransEntry { ppn: vpn, loc },
            },
        );
        Ok(())
    }

    /// The host's reply reached the requester: replay the translation.
    pub(crate) fn reply(&mut self, req: ReqId, entry: TransEntry) {
        if self.reqs[req].completed {
            self.note_duplicate();
            return;
        }
        let g = self.reqs[req].gpu;
        let vpn = self.reqs[req].vpn;
        self.retire(req);
        // Replay through the L2 pipeline costs one more L2 access.
        self.reqs[req].lat.network += self.cfg.l2_tlb_latency;
        // A host-TLB-hit reply maps the page in place on the requester (the
        // fault path was skipped entirely), like a remote mapping.
        if self.gpus[g as usize].pt.translate(vpn).is_none() {
            self.map_on_gpu(g, vpn, entry.loc);
            if entry.loc != Location::Gpu(g) {
                self.dir.add_remote_map(vpn, g);
            }
        }
        self.complete_translation(g, vpn, entry);
    }

    // ----- software UVM-driver mode (§II-B, Figs. 2 and 26) -------------

    /// A far fault reached the driver: enqueue it; under Trans-FW the
    /// driver also checks the (CPU-memory) FT and may forward immediately.
    pub(crate) fn driver_submit(&mut self, req: ReqId) {
        let now = self.now;
        let vpn = self.reqs[req].vpn;
        let g = self.reqs[req].gpu;
        self.reqs[req].host_submit_time = now;

        let backlog = self.driver.pending_len();
        let threads = self.driver.config().walk_threads;
        let forward_to = self.host.ft.as_mut().and_then(|ft| {
            let owners: Vec<_> = ft.lookup(vpn).into_iter().filter(|&o| o != g).collect();
            if owners.is_empty() {
                None
            } else {
                Some(owners[self.rng.gen_index(owners.len())])
            }
        });
        if let Some(owner) = forward_to {
            if self.policy.should_forward(backlog, threads) || self.driver.is_busy() {
                self.reqs[req].forwarded = true;
                self.metrics.transfw.forwarded += 1;
                let arrival = self.cpu_control_arrival(now);
                self.send_message(req, arrival, Event::RemoteWalkArrive { gpu: owner, req });
            }
        }

        self.driver.submit(req, now);
        self.events.push(now, Event::DriverCheck);
    }

    /// Starts a driver batch if the driver is idle and faults are pending.
    pub(crate) fn driver_check(&mut self) {
        let now = self.now;
        if let Some(until) = self.host_failover_until {
            if now < until {
                return; // failover window: batches resume at the drain kick
            }
        }
        if let Some(batch) = self.driver.try_start_batch(now) {
            for &req in &batch.faults {
                self.reqs[req].host_walk_started = true;
                self.metrics.host_walks += 1;
            }
            self.driver_batch = batch.faults;
            self.events.push(batch.done_at, Event::DriverBatchDone);
        }
    }

    /// A driver batch completed: resolve every fault in it, then look for
    /// the next batch.
    pub(crate) fn driver_batch_done(&mut self) -> Result<(), SimError> {
        let now = self.now;
        self.driver.finish_batch(now)?;
        let batch = std::mem::take(&mut self.driver_batch);
        for req in batch {
            if self.reqs[req].cancelled || self.reqs[req].completed {
                continue;
            }
            // Queue + processing time attribution: waiting for the batch.
            let waited = now.saturating_sub(self.reqs[req].host_submit_time);
            self.reqs[req].lat.host_queue += waited;
            self.resolve_fault(req);
        }
        self.events.push(now, Event::DriverCheck);
        Ok(())
    }
}
