//! The workload abstraction the simulator executes.
//!
//! A [`Workload`] is a set of CTAs (thread blocks); each CTA is an
//! [`AccessStream`] — the sequence of *coalesced* memory instructions its
//! wavefront issues, each with a compute delay and a page-granule address.
//! The `workloads` crate implements the paper's ten applications and the ML
//! models on top of this trait; anything iterable over [`Access`] works too.

use sim_core::Cycle;

/// One coalesced memory instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Virtual page number at 4 KB granularity.
    pub vpn: u64,
    /// Whether the instruction writes the page.
    pub is_write: bool,
    /// Compute cycles the wavefront spends before issuing this access.
    pub compute: Cycle,
}

impl Access {
    /// A read access.
    pub fn read(vpn: u64, compute: Cycle) -> Self {
        Self {
            vpn,
            is_write: false,
            compute,
        }
    }

    /// A write access.
    pub fn write(vpn: u64, compute: Cycle) -> Self {
        Self {
            vpn,
            is_write: true,
            compute,
        }
    }
}

/// A CTA's lazily generated instruction stream.
///
/// Blanket-implemented for any `Send` iterator of [`Access`]es, so simple
/// workloads can be written as plain iterators.
pub trait AccessStream: Send {
    /// Produces the next memory instruction, or `None` when the CTA retires.
    fn next_access(&mut self) -> Option<Access>;
}

impl<I> AccessStream for I
where
    I: Iterator<Item = Access> + Send,
{
    fn next_access(&mut self) -> Option<Access> {
        self.next()
    }
}

/// A multi-GPU application: footprint, CTA decomposition and per-CTA
/// streams.
pub trait Workload: Sync {
    /// Short name used in reports (e.g. `"MT"`).
    fn name(&self) -> &str;

    /// Number of distinct 4 KB pages the application touches (VPNs are in
    /// `0..footprint_pages`).
    fn footprint_pages(&self) -> u64;

    /// Number of CTAs.
    fn cta_count(&self) -> usize;

    /// Builds CTA `cta`'s instruction stream. `seed` makes the stream
    /// deterministic per run.
    fn make_stream(&self, cta: usize, seed: u64) -> Box<dyn AccessStream>;

    /// Probability that a data access (after translation) hits in the data
    /// cache hierarchy; tunes compute/memory intensity.
    fn data_cache_hit_rate(&self) -> f64 {
        0.5
    }

    /// Initial owner of a (4 KB-granule) page in a warmed-up system, or
    /// `None` to start the page cold on the host.
    ///
    /// The paper measures steady-state executions where the data already
    /// lives on the GPUs (PFPKI counts *sharing-induced* faults, not
    /// first-touch cold faults); returning a placement here reproduces that
    /// warm state. The default is a cold start.
    fn initial_owner(&self, _vpn: u64, _gpus: u16) -> Option<u16> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iterators_are_streams() {
        let mut s: Box<dyn AccessStream> =
            Box::new(vec![Access::read(1, 5), Access::write(2, 6)].into_iter());
        assert_eq!(s.next_access(), Some(Access::read(1, 5)));
        let a = s.next_access().unwrap();
        assert!(a.is_write);
        assert_eq!(a.vpn, 2);
        assert_eq!(s.next_access(), None);
    }

    #[test]
    fn access_constructors() {
        let r = Access::read(9, 3);
        assert!(!r.is_write);
        assert_eq!((r.vpn, r.compute), (9, 3));
        let w = Access::write(9, 3);
        assert!(w.is_write);
    }
}
