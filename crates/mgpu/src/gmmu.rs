//! GMMU-side event handlers: PW-queue, walkers, local walks and the remote
//! walks borrowed by Trans-FW forwarding.

use ptw::Location;
use sim_core::{Cycle, SimError};

use crate::request::ReqId;
use crate::system::{Event, GmmuJob, System, TransEntry};

impl System {
    /// Enqueues a walk job, retrying later if the PW-queue is full.
    pub(crate) fn gmmu_enqueue(&mut self, gpu: u16, job: GmmuJob) {
        let now = self.now;
        // Stamp the job with the GPU's current recovery generation: an
        // enqueue deferred across an offline window must not look stale.
        let job = GmmuJob {
            gen: self.gpus[gpu as usize].gen,
            ..job
        };
        match self.gpus[gpu as usize].queue.push(job, now) {
            Ok(()) => self.events.push(now, Event::GmmuDispatch { gpu }),
            Err(job) => {
                self.events
                    .push(now + 64, Event::GmmuEnqueue { gpu, job });
            }
        }
    }

    /// Starts walks while walkers are free and jobs are queued.
    pub(crate) fn gmmu_dispatch(&mut self, gpu: u16) -> Result<(), SimError> {
        let now = self.now;
        loop {
            if !self.gpus[gpu as usize].walkers.has_free() {
                return Ok(());
            }
            let Some((job, waited)) = self.gpus[gpu as usize].queue.pop(now) else {
                return Ok(());
            };
            if !self.gpus[gpu as usize].walkers.try_acquire() {
                return Err(SimError::Protocol {
                    cycle: now,
                    what: format!("GPU{gpu}: free walker vanished during dispatch"),
                });
            }
            if !job.remote {
                self.reqs[job.req].lat.gmmu_queue += waited;
            }
            self.gpus[gpu as usize].inflight.push(job);
            let stall = self.injector.walker_stall();
            let vpn = self.reqs[job.req].vpn;
            let levels = self.cfg.page_table_levels;
            let g = &mut self.gpus[gpu as usize];
            let resume = g.pwc.lookup(vpn);
            let walk = g.pt.walk(vpn, resume);
            let mut accesses = walk.accesses;
            if let Some(asap) = g.asap.as_mut() {
                accesses = asap.effective_accesses(accesses);
            }
            let walk_cycles = Cycle::from(accesses) * self.cfg.walk_level_latency + stall;
            // PW-cache refill range: entries for the levels this walk read.
            let start = resume.map_or(levels, |k| k - 1);
            let insert_lo = walk.reached_level.max(2);
            let insert_hi = start.min(levels);
            self.metrics.gmmu_walk_accesses = self.metrics.gmmu_walk_accesses.saturating_add(u64::from(walk.accesses));
            self.events.push(
                now + walk_cycles,
                Event::GmmuWalkDone {
                    gpu,
                    job,
                    walk_cycles,
                    accesses: walk.accesses,
                    pte: walk.pte,
                    insert_lo,
                    insert_hi,
                },
            );
        }
    }

    /// A GMMU walk finished: refill the PW-cache, then either deliver the
    /// translation, raise a far fault, or answer a borrowed (remote) walk.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn gmmu_walk_done(
        &mut self,
        gpu: u16,
        job: GmmuJob,
        walk_cycles: Cycle,
        _accesses: u32,
        pte: Option<ptw::Pte>,
        insert_lo: u32,
        insert_hi: u32,
    ) {
        let now = self.now;
        if job.gen != self.gpus[gpu as usize].gen {
            // The GPU went offline after this walk started: its walker was
            // force-reset and the job drained/re-issued by the recovery
            // protocol, so this completion is stale — drop it without
            // releasing a walker that no longer exists.
            return;
        }
        {
            let g = &mut self.gpus[gpu as usize];
            if let Some(pos) = g
                .inflight
                .iter()
                .position(|j| j.req == job.req && j.remote == job.remote)
            {
                g.inflight.remove(pos);
            }
            g.walkers.release();
            let vpn = self.reqs[job.req].vpn;
            for k in insert_lo..=insert_hi.min(self.cfg.page_table_levels) {
                g.pwc.insert(vpn, k);
            }
        }
        self.events.push(now, Event::GmmuDispatch { gpu });

        if job.remote {
            self.remote_walk_finished(gpu, job.req, pte);
            return;
        }

        let req = job.req;
        self.reqs[req].lat.gmmu_walk += walk_cycles;
        match pte {
            Some(pte) => {
                let g = self.reqs[req].gpu;
                let vpn = self.reqs[req].vpn;
                self.retire(req);
                self.complete_translation(
                    g,
                    vpn,
                    TransEntry {
                        ppn: pte.ppn,
                        loc: pte.loc,
                    },
                );
            }
            None => {
                // GPU local page fault (far fault).
                self.metrics.local_faults = self.metrics.local_faults.saturating_add(1);
                self.record_remote_probe(gpu, self.reqs[req].vpn);
                if self.gpus[gpu as usize].prt.is_some() {
                    // With short-circuiting enabled every local-walk fault is
                    // a PRT false positive by construction.
                    self.metrics.transfw.prt_false_positives = self.metrics.transfw.prt_false_positives.saturating_add(1);
                }
                self.send_fault_to_host(req, now);
            }
        }
    }

    /// A forwarded request arrived at the owner GPU: join its PW-queue and
    /// borrow a walker (§IV-C "how to borrow").
    pub(crate) fn remote_walk_arrive(&mut self, gpu: u16, req: ReqId) {
        if self.reqs[req].completed {
            // The host path already satisfied the requester (or this is a
            // duplicated forward under fault injection).
            self.note_duplicate();
            return;
        }
        let queue_occ = self.gpus[gpu as usize].queue.len();
        let mshr_occ = self.gpus[gpu as usize].mshr.len();
        if self.overload.gpu_overloaded(gpu, queue_occ, mshr_occ) {
            // GPU-side admission control: an overloaded owner refuses the
            // borrowed walk instead of queueing behind its own demand
            // misses. The failure notify keeps the host path live (and
            // feeds the requester's circuit breaker for this peer).
            self.overload.stats.remote_walks_shed = self.overload.stats.remote_walks_shed.saturating_add(1);
            let now = self.now;
            let notify_at = self.cpu_control_arrival(now);
            self.send_message(req, notify_at, Event::RemoteNotify { req, success: false });
            return;
        }
        let gen = self.gpus[gpu as usize].gen;
        self.gmmu_enqueue(gpu, GmmuJob { req, remote: true, gen });
    }

    /// A borrowed walk completed on `gpu`: on success, ship the translation
    /// straight to the requester and notify the host; on failure (an FT
    /// false positive or stale owner) just notify the host.
    fn remote_walk_finished(&mut self, gpu: u16, req: ReqId, pte: Option<ptw::Pte>) {
        let now = self.now;
        let requester = self.reqs[req].gpu as usize;
        // Only a PTE whose page actually lives on this GPU can be supplied;
        // a remote-pointing PTE (remote mapping) would bounce again.
        let supply = pte.filter(|p| p.loc == Location::Gpu(gpu));
        let success = supply.is_some();
        if let Some(pte) = supply {
            // Honours link partitions: a severed supplier→requester pair
            // detours over the reliable host links.
            let arrival = self.peer_control_arrival_between(gpu, requester as u16, now);
            self.send_message(
                req,
                arrival,
                Event::RemoteSupply {
                    req,
                    entry: TransEntry {
                        ppn: pte.ppn,
                        loc: pte.loc,
                    },
                },
            );
        } else {
            self.metrics.transfw.remote_failed = self.metrics.transfw.remote_failed.saturating_add(1);
        }
        let notify_at = self.cpu_control_arrival(now);
        self.send_message(req, notify_at, Event::RemoteNotify { req, success });
    }

    /// The remote GPU's translation reached the requester: install a
    /// remote-pointing local mapping and release the waiters. The page does
    /// not move; data is accessed over the peer link until the page either
    /// migrates via a later host-resolved fault or is evicted.
    pub(crate) fn remote_supply(&mut self, req: ReqId, entry: TransEntry) {
        if self.reqs[req].completed {
            self.note_duplicate();
            return;
        }
        let g = self.reqs[req].gpu;
        let vpn = self.reqs[req].vpn;
        self.reqs[req].remote_supplied = true;
        self.retire(req);
        self.metrics.transfw.remote_supplied = self.metrics.transfw.remote_supplied.saturating_add(1);
        self.map_on_gpu(g, vpn, entry.loc);
        self.dir.add_remote_map(vpn, g);
        self.complete_translation(g, vpn, entry);
    }

    /// The host learns how the borrowed walk went: a success cancels the
    /// still-queued host walk (reducing PT-walk contention); a failure lets
    /// the host path proceed as if nothing happened.
    pub(crate) fn remote_notify(&mut self, req: ReqId, success: bool) {
        if self.reqs[req].remote_outcome {
            // A notification for this request was already processed: this
            // copy is an injected duplicate (or a retried forward's echo).
            self.note_duplicate();
            return;
        }
        self.reqs[req].remote_outcome = true;
        // The breaker samples one outcome per live forward attempt: taking
        // `forwarded_to` here means a watchdog timeout for the same attempt
        // (which also takes it) can never double-count.
        if let Some(peer) = self.reqs[req].forwarded_to.take() {
            let now = self.now;
            self.overload.record_forward_outcome(now, peer, req, success);
        }
        if success {
            // Never cancel a fallback request: the degraded path must stay
            // runnable no matter how late a lost-then-retried notification
            // straggles in.
            if !self.reqs[req].host_walk_started
                && !self.reqs[req].cancelled
                && !self.reqs[req].fallback
            {
                self.reqs[req].cancelled = true;
                self.metrics.transfw.cancelled_host_walks = self.metrics.transfw.cancelled_host_walks.saturating_add(1);
            } else if self.reqs[req].host_walk_started {
                // Both the host walk and the remote walk ran: Fig. 14's
                // replicated PT-walk.
                self.metrics.transfw.replicated_walks = self.metrics.transfw.replicated_walks.saturating_add(1);
            }
        } else {
            // The borrowed walk ran in vain and the host walk proceeds (or
            // already ran): the walk was replicated either way.
            self.metrics.transfw.replicated_walks = self.metrics.transfw.replicated_walks.saturating_add(1);
        }
    }
}
