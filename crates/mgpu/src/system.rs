//! The full-system model and its event loop.

use std::collections::VecDeque;

use interconnect::Fabric;
use ptw::{Asap, GpuId, InfinitePwc, Location, PageTable, Pte, PwCache, PwQueue, Stc, Utc, WalkerPool};
use sim_core::{Cycle, EventQueue, SimRng};
use tlb::{Mshr, MshrOutcome, Tlb};
use transfw::{ForwardPolicy, Ft, Prt};
use uvm::{PageDirectory, UvmDriver};

use crate::config::{FarFaultMode, PwcKind, SystemConfig};
use crate::metrics::RunMetrics;
use crate::request::{ReqArena, ReqId, WfRef};
use crate::workload::{Access, AccessStream, Workload};

/// A cached translation: physical page number plus where the page lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransEntry {
    /// Physical page number.
    pub ppn: u64,
    /// Memory holding the page.
    pub loc: Location,
}

/// A unit of work in a GMMU PW-queue: a local translation or a walk
/// borrowed by the host (Trans-FW forwarding).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct GmmuJob {
    pub req: ReqId,
    pub remote: bool,
}

#[derive(Debug)]
pub(crate) enum Event {
    WfStart(WfRef),
    WfMem(WfRef),
    L2Access(WfRef),
    GmmuEnqueue { gpu: u16, job: GmmuJob },
    GmmuDispatch { gpu: u16 },
    GmmuWalkDone { gpu: u16, job: GmmuJob, walk_cycles: Cycle, accesses: u32, pte: Option<Pte>, insert_lo: u32, insert_hi: u32 },
    HostArrive { req: ReqId },
    HostDispatch,
    HostWalkDone { req: ReqId, walk_cycles: Cycle, insert_lo: u32, insert_hi: u32 },
    RemoteWalkArrive { gpu: u16, req: ReqId },
    RemoteSupply { req: ReqId, entry: TransEntry },
    RemoteNotify { req: ReqId, success: bool },
    FaultResolved { req: ReqId },
    Reply { req: ReqId, entry: TransEntry },
    DataDone(WfRef),
    DriverSubmit { req: ReqId },
    DriverCheck,
    DriverBatchDone,
}

pub(crate) struct Wavefront {
    pub stream: Option<Box<dyn AccessStream>>,
    pub pending: Option<Access>,
}

pub(crate) struct Cu {
    pub l1: Tlb<TransEntry>,
    pub wfs: Vec<Wavefront>,
}

pub(crate) struct Gpu {
    pub cus: Vec<Cu>,
    pub l2: Tlb<TransEntry>,
    pub mshr: Mshr<WfRef>,
    pub queue: PwQueue<GmmuJob>,
    pub walkers: WalkerPool,
    pub pwc: Box<dyn PwCache>,
    pub pt: PageTable,
    pub prt: Option<Prt>,
    pub asap: Option<Asap>,
    pub ctas: VecDeque<usize>,
}

pub(crate) struct HostMmu {
    pub tlb: Tlb<TransEntry>,
    pub queue: PwQueue<ReqId>,
    pub walkers: WalkerPool,
    pub pwc: Box<dyn PwCache>,
    pub pt: PageTable,
    pub asap: Option<Asap>,
    pub ft: Option<Ft>,
}

fn make_pwc(kind: PwcKind, entries: usize, levels: u32) -> Box<dyn PwCache> {
    match kind {
        PwcKind::Utc => Box::new(Utc::new(entries, levels)),
        PwcKind::Stc => Box::new(Stc::paper_default(levels)),
        PwcKind::Infinite => Box::new(InfinitePwc::new(levels)),
    }
}

/// The simulated multi-GPU system.
///
/// Build one from a [`SystemConfig`] and [`run`](Self::run) a workload to
/// completion; the returned [`RunMetrics`] carry every statistic the paper's
/// figures use. See the crate-level example.
pub struct System {
    pub(crate) cfg: SystemConfig,
    pub(crate) now: Cycle,
    pub(crate) events: EventQueue<Event>,
    pub(crate) gpus: Vec<Gpu>,
    pub(crate) host: HostMmu,
    pub(crate) fabric: Fabric,
    pub(crate) dir: PageDirectory,
    pub(crate) driver: UvmDriver<ReqId>,
    pub(crate) driver_batch: Vec<ReqId>,
    pub(crate) reqs: ReqArena,
    pub(crate) metrics: RunMetrics,
    pub(crate) policy: ForwardPolicy,
    pub(crate) rng: SimRng,
    pub(crate) cache_hit_rate: f64,
}

impl System {
    /// Builds a system from a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent.
    pub fn new(cfg: SystemConfig) -> Self {
        cfg.validate();
        let levels = cfg.page_table_levels;
        let tf = cfg.transfw.clone();
        let gpus: Vec<Gpu> = (0..cfg.gpus)
            .map(|_| Gpu {
                cus: (0..cfg.cus_per_gpu)
                    .map(|_| Cu {
                        l1: Tlb::new(cfg.l1_tlb_entries, cfg.l1_tlb_entries, cfg.l1_tlb_latency),
                        wfs: (0..cfg.wavefronts_per_cu)
                            .map(|_| Wavefront {
                                stream: None,
                                pending: None,
                            })
                            .collect(),
                    })
                    .collect(),
                l2: Tlb::new(cfg.l2_tlb_entries, cfg.l2_tlb_assoc, cfg.l2_tlb_latency),
                mshr: Mshr::new(256),
                queue: PwQueue::new(cfg.pw_queue_entries),
                walkers: if cfg.ideal.infinite_walkers {
                    WalkerPool::infinite()
                } else {
                    WalkerPool::new(cfg.gmmu_walkers)
                },
                pwc: make_pwc(cfg.pwc_kind, cfg.gmmu_pwc_entries, levels),
                pt: PageTable::new(levels),
                prt: tf
                    .as_ref()
                    .filter(|k| k.gmmu_short_circuit)
                    .map(|k| Prt::new(&k.config)),
                asap: cfg.asap.map(Asap::new),
                ctas: VecDeque::new(),
            })
            .collect();
        let host = HostMmu {
            tlb: Tlb::new(cfg.host_tlb_entries, cfg.host_tlb_assoc, 1),
            queue: PwQueue::new(cfg.pw_queue_entries.max(4096)),
            walkers: if cfg.ideal.infinite_walkers {
                WalkerPool::infinite()
            } else {
                WalkerPool::new(cfg.host_walkers)
            },
            pwc: make_pwc(cfg.pwc_kind, cfg.host_pwc_entries, levels),
            pt: PageTable::new(levels),
            asap: cfg.asap.map(Asap::new),
            ft: tf
                .as_ref()
                .filter(|k| k.host_forwarding)
                .map(|k| Ft::new(&k.config, cfg.gpus)),
        };
        let policy = ForwardPolicy::new(
            tf.as_ref().map_or(0.5, |k| k.config.forward_threshold),
        );
        Self {
            fabric: Fabric::new(
                cfg.gpus as usize,
                cfg.cpu_link_latency,
                cfg.peer_link_latency,
                cfg.link_bytes_per_cycle,
            ),
            dir: PageDirectory::new(cfg.gpus, cfg.policy),
            driver: UvmDriver::new(uvm::DriverConfig {
                batch_overhead: cfg.driver.batch_overhead
                    + cfg.driver_per_gpu_poll * cfg.gpus as sim_core::Cycle,
                ..cfg.driver
            }),
            driver_batch: Vec::new(),
            reqs: ReqArena::new(),
            metrics: RunMetrics::default(),
            policy,
            rng: SimRng::new(cfg.seed),
            cache_hit_rate: 0.5,
            now: 0,
            events: EventQueue::with_capacity(1 << 14),
            gpus,
            host,
            cfg,
        }
    }

    /// Read access to the configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Runs `workload` to completion and returns the collected metrics.
    pub fn run(mut self, workload: &dyn Workload) -> RunMetrics {
        self.cache_hit_rate = workload.data_cache_hit_rate();
        self.metrics.app = workload.name().to_string();

        // Centralised page table: every page starts valid on the host, then
        // warm pages move to their initial owner (see
        // `Workload::initial_owner`).
        let t_pages = self
            .cfg
            .translation_vpn(workload.footprint_pages().saturating_sub(1))
            + 1;
        let shift = self.cfg.page_size_bits - 12;
        for vpn in 0..t_pages {
            let owner = workload.initial_owner(vpn << shift, self.cfg.gpus);
            if let Some(g) = owner {
                assert!(
                    g < self.cfg.gpus,
                    "initial_owner returned GPU {g} but only {} exist",
                    self.cfg.gpus
                );
            }
            let loc = owner.map_or(Location::Cpu, Location::Gpu);
            self.host.pt.insert(vpn, Pte::new(vpn, loc));
            if let Some(g) = owner {
                self.dir.place(vpn, loc);
                self.map_on_gpu(g, vpn, loc);
                if let Some(ft) = self.host.ft.as_mut() {
                    ft.page_migrated(vpn, None, g);
                }
            }
        }
        if self.cfg.ideal.no_local_faults {
            for (g, gpu) in self.gpus.iter_mut().enumerate() {
                for vpn in 0..t_pages {
                    gpu.pt.insert(vpn, Pte::new(vpn, Location::Gpu(g as GpuId)));
                }
            }
        }

        // Greedy CTA placement: contiguous blocks per GPU (§III-A).
        let n_ctas = workload.cta_count();
        let n_gpus = self.cfg.gpus as usize;
        for cta in 0..n_ctas {
            let g = cta * n_gpus / n_ctas.max(1);
            self.gpus[g].ctas.push_back(cta);
        }

        // Kick every wavefront slot.
        for g in 0..n_gpus {
            for c in 0..self.cfg.cus_per_gpu {
                for w in 0..self.cfg.wavefronts_per_cu {
                    self.events.push(
                        0,
                        Event::WfStart(WfRef {
                            gpu: g as u16,
                            cu: c,
                            wf: w,
                        }),
                    );
                }
            }
        }

        while let Some((t, ev)) = self.events.pop() {
            debug_assert!(t >= self.now, "time moved backwards");
            self.now = t;
            self.dispatch(ev, workload);
        }

        self.finalize()
    }

    fn dispatch(&mut self, ev: Event, workload: &dyn Workload) {
        match ev {
            Event::WfStart(wf) => self.wf_start(wf, workload),
            Event::WfMem(wf) => self.wf_mem(wf),
            Event::L2Access(wf) => self.l2_access(wf),
            Event::GmmuEnqueue { gpu, job } => self.gmmu_enqueue(gpu, job),
            Event::GmmuDispatch { gpu } => self.gmmu_dispatch(gpu),
            Event::GmmuWalkDone {
                gpu,
                job,
                walk_cycles,
                accesses,
                pte,
                insert_lo,
                insert_hi,
            } => self.gmmu_walk_done(gpu, job, walk_cycles, accesses, pte, insert_lo, insert_hi),
            Event::HostArrive { req } => self.host_arrive(req),
            Event::HostDispatch => self.host_dispatch(),
            Event::HostWalkDone {
                req,
                walk_cycles,
                insert_lo,
                insert_hi,
            } => self.host_walk_done(req, walk_cycles, insert_lo, insert_hi),
            Event::RemoteWalkArrive { gpu, req } => self.remote_walk_arrive(gpu, req),
            Event::RemoteSupply { req, entry } => self.remote_supply(req, entry),
            Event::RemoteNotify { req, success } => self.remote_notify(req, success),
            Event::FaultResolved { req } => self.fault_resolved(req),
            Event::Reply { req, entry } => self.reply(req, entry),
            Event::DataDone(wf) => self.data_done(wf, workload),
            Event::DriverSubmit { req } => self.driver_submit(req),
            Event::DriverCheck => self.driver_check(),
            Event::DriverBatchDone => self.driver_batch_done(),
        }
    }

    // ----- wavefront lifecycle ------------------------------------------

    fn wf_start(&mut self, wf: WfRef, workload: &dyn Workload) {
        loop {
            let gpu = &mut self.gpus[wf.gpu as usize];
            let slot = &mut gpu.cus[wf.cu as usize].wfs[wf.wf as usize];
            if slot.stream.is_none() {
                match gpu.ctas.pop_front() {
                    Some(cta) => {
                        slot.stream =
                            Some(workload.make_stream(cta, self.cfg.seed ^ (cta as u64) << 1));
                    }
                    None => return, // wavefront retires
                }
            }
            let slot = &mut self.gpus[wf.gpu as usize].cus[wf.cu as usize].wfs[wf.wf as usize];
            match slot.stream.as_mut().expect("stream present").next_access() {
                Some(a) => {
                    slot.pending = Some(a);
                    self.events.push(self.now + a.compute, Event::WfMem(wf));
                    return;
                }
                None => {
                    slot.stream = None; // CTA retired; pull the next one
                }
            }
        }
    }

    fn wf_mem(&mut self, wf: WfRef) {
        let a = self.gpus[wf.gpu as usize].cus[wf.cu as usize].wfs[wf.wf as usize]
            .pending
            .expect("pending access");
        let tvpn = self.cfg.translation_vpn(a.vpn);
        self.metrics.mem_instructions += 1;
        self.metrics.sharing.record(tvpn, wf.gpu, a.is_write);

        let l1_lat = self.cfg.l1_tlb_latency;
        let hit = self.gpus[wf.gpu as usize].cus[wf.cu as usize]
            .l1
            .lookup(tvpn)
            .copied();
        match hit {
            Some(entry) => {
                let lat = l1_lat + self.data_latency(wf.gpu, tvpn, entry);
                self.events.push(self.now + lat, Event::DataDone(wf));
            }
            None => {
                self.events.push(self.now + l1_lat, Event::L2Access(wf));
            }
        }
    }

    fn l2_access(&mut self, wf: WfRef) {
        let a = self.gpus[wf.gpu as usize].cus[wf.cu as usize].wfs[wf.wf as usize]
            .pending
            .expect("pending access");
        let tvpn = self.cfg.translation_vpn(a.vpn);
        let l2_lat = self.cfg.l2_tlb_latency;
        let hit = self.gpus[wf.gpu as usize].l2.lookup(tvpn).copied();
        if let Some(entry) = hit {
            self.gpus[wf.gpu as usize].cus[wf.cu as usize].l1.fill(tvpn, entry);
            let lat = l2_lat + self.data_latency(wf.gpu, tvpn, entry);
            self.events.push(self.now + lat, Event::DataDone(wf));
            return;
        }

        // Least-TLB (§V-I): the GPUs' L2 TLBs behave as one distributed TLB;
        // probe peers before walking.
        if self.cfg.least_tlb {
            let peer_hit = (0..self.gpus.len())
                .filter(|&g| g != wf.gpu as usize)
                .find_map(|g| self.gpus[g].l2.probe(tvpn).copied());
            if let Some(entry) = peer_hit {
                let rtt = 2 * self.cfg.peer_link_latency;
                self.gpus[wf.gpu as usize].l2.fill(tvpn, entry);
                self.gpus[wf.gpu as usize].cus[wf.cu as usize].l1.fill(tvpn, entry);
                let lat = l2_lat + rtt + self.data_latency(wf.gpu, tvpn, entry);
                self.events.push(self.now + lat, Event::DataDone(wf));
                return;
            }
        }

        match self.gpus[wf.gpu as usize].mshr.register(tvpn, wf) {
            MshrOutcome::Merged => {}
            MshrOutcome::Full => {
                // Stall and retry shortly.
                self.events.push(self.now + 30, Event::L2Access(wf));
            }
            MshrOutcome::Primary => {
                let born = self.now + l2_lat;
                let req = self.reqs.create(tvpn, wf.gpu, a.is_write, born);
                self.metrics.translation_requests += 1;
                self.start_translation(req, born);
            }
        }
    }

    /// Entry point of the translation machinery for a fresh L2 TLB miss:
    /// baseline goes to the GMMU; Trans-FW consults the PRT first.
    fn start_translation(&mut self, req: ReqId, at: Cycle) {
        let vpn = self.reqs[req].vpn;
        let g = self.reqs[req].gpu;
        let short_circuit = match self.gpus[g as usize].prt.as_mut() {
            Some(prt) => !prt.may_be_local(vpn),
            None => false,
        };
        if short_circuit {
            self.metrics.transfw.gmmu_bypassed += 1;
            self.send_fault_to_host(req, at);
        } else {
            self.events.push(
                at,
                Event::GmmuEnqueue {
                    gpu: g,
                    job: GmmuJob { req, remote: false },
                },
            );
        }
    }

    /// Arrival time of a control message on the CPU link: translation
    /// traffic rides a separate virtual channel, so it pays latency but does
    /// not queue behind page DMA.
    pub(crate) fn cpu_control_arrival(&self, at: Cycle) -> Cycle {
        at + self.cfg.cpu_link_latency
    }

    /// Arrival time of a control message on a peer link.
    pub(crate) fn peer_control_arrival(&self, at: Cycle) -> Cycle {
        at + self.cfg.peer_link_latency
    }

    /// Ships a far fault (or short-circuited request) to the host side.
    pub(crate) fn send_fault_to_host(&mut self, req: ReqId, at: Cycle) {
        let arrival = self.cpu_control_arrival(at);
        self.reqs[req].lat.network += arrival - at;
        match self.cfg.fault_mode {
            FarFaultMode::HostMmu => self.events.push(arrival, Event::HostArrive { req }),
            FarFaultMode::UvmDriver => self.events.push(arrival, Event::DriverSubmit { req }),
        }
    }

    fn data_done(&mut self, wf: WfRef, workload: &dyn Workload) {
        self.gpus[wf.gpu as usize].cus[wf.cu as usize].wfs[wf.wf as usize].pending = None;
        self.wf_start(wf, workload);
    }

    // ----- shared helpers ------------------------------------------------

    /// Latency of the data access once the translation is known; records
    /// remote-mapping access counters as a side effect.
    pub(crate) fn data_latency(&mut self, gpu: GpuId, vpn: u64, entry: TransEntry) -> Cycle {
        if self.rng.chance(self.cache_hit_rate) {
            return self.cfg.cache_latency;
        }
        match entry.loc {
            Location::Gpu(o) if o == gpu => self.cfg.dram_latency,
            Location::Cpu => 2 * self.cfg.cpu_link_latency + self.cfg.dram_latency,
            Location::Gpu(_) => {
                if let Some(outcome) = self.dir.record_remote_access(vpn, gpu) {
                    self.apply_background_migration(vpn, gpu, outcome);
                }
                2 * self.cfg.peer_link_latency + self.cfg.dram_latency
            }
        }
    }

    /// Applies an off-critical-path migration decided by the access-counter
    /// policy: page tables, TLB shootdowns and PRT/FT updates happen
    /// immediately; the data transfer only occupies fabric bandwidth.
    pub(crate) fn apply_background_migration(
        &mut self,
        vpn: u64,
        to: GpuId,
        outcome: uvm::FaultOutcome,
    ) {
        for v in &outcome.invalidations {
            self.unmap_on_gpu(*v, vpn);
        }
        if let Location::Gpu(src) = outcome.source {
            if src != to {
                let now = self.now;
                self.fabric
                    .send_gpu_to_gpu(src as usize, to as usize, now, self.cfg.page_bytes());
            }
        }
        self.map_on_gpu(to, vpn, Location::Gpu(to));
        self.host.tlb.invalidate(vpn);
        if let Some(pte) = self.host.pt.translate_mut(vpn) {
            pte.loc = Location::Gpu(to);
        }
        if let Some(ft) = self.host.ft.as_mut() {
            ft.page_migrated(vpn, outcome.source.gpu(), to);
        }
    }

    /// Destroys GPU `g`'s local mapping of `vpn`: page table, PW-cache
    /// levels backing it, L1/L2 TLB shootdowns and PRT update.
    pub(crate) fn unmap_on_gpu(&mut self, g: GpuId, vpn: u64) {
        let gpu = &mut self.gpus[g as usize];
        if let Some((_, emptied)) = gpu.pt.remove(vpn) {
            for k in emptied {
                if k <= self.cfg.page_table_levels {
                    gpu.pwc.invalidate(vpn, k);
                }
            }
        }
        gpu.l2.invalidate(vpn);
        for cu in &mut gpu.cus {
            cu.l1.invalidate(vpn);
        }
        if let Some(prt) = gpu.prt.as_mut() {
            prt.page_departed(vpn);
        }
    }

    /// Creates GPU `g`'s local mapping of `vpn` pointing at `loc`.
    pub(crate) fn map_on_gpu(&mut self, g: GpuId, vpn: u64, loc: Location) {
        let gpu = &mut self.gpus[g as usize];
        gpu.pt.insert(vpn, Pte::new(vpn, loc));
        if let Some(prt) = gpu.prt.as_mut() {
            prt.page_arrived(vpn);
        }
    }

    /// Delivers a finished translation to the requesting GPU: fills the L2
    /// TLB, releases every coalesced waiter and starts their data accesses.
    pub(crate) fn complete_translation(&mut self, g: GpuId, vpn: u64, entry: TransEntry) {
        self.gpus[g as usize].l2.fill(vpn, entry);
        let waiters = self.gpus[g as usize].mshr.complete(vpn);
        for wf in waiters {
            self.gpus[wf.gpu as usize].cus[wf.cu as usize].l1.fill(vpn, entry);
            let lat = self.data_latency(g, vpn, entry);
            self.events.push(self.now + lat, Event::DataDone(wf));
        }
    }

    /// End-of-run structural invariants: every queue drained, every walker
    /// released, no coalesced waiter lost, and the Trans-FW tables
    /// consistent with the page tables they shadow.
    ///
    /// # Panics
    ///
    /// Panics when the simulation reached quiescence in an inconsistent
    /// state — these would all be lost-wakeup or leaked-resource bugs.
    fn check_invariants(&mut self) {
        for (g, gpu) in self.gpus.iter().enumerate() {
            assert_eq!(gpu.walkers.busy(), 0, "GPU{g}: leaked walker");
            assert!(gpu.queue.is_empty(), "GPU{g}: stuck PW-queue entries");
            assert!(
                gpu.mshr.is_empty(),
                "GPU{g}: lost MSHR waiters (wavefronts never woken)"
            );
        }
        assert_eq!(self.host.walkers.busy(), 0, "host: leaked walker");
        assert!(self.host.queue.is_empty(), "host: stuck PW-queue entries");
        assert!(!self.driver.is_busy(), "driver: batch never finished");
        assert_eq!(self.driver.pending_len(), 0, "driver: stranded faults");

        // The host's centralised table must agree with the directory.
        for vpn in 0..self.host.pt.mapped_pages() as u64 {
            if let Some(pte) = self.host.pt.translate(vpn) {
                assert_eq!(
                    pte.loc,
                    self.dir.home(vpn),
                    "vpn {vpn}: host PT and directory disagree"
                );
            }
        }

        // PRT: no false negatives beyond the rare fingerprint-collision
        // deletes the paper's design accepts.
        for g in 0..self.gpus.len() {
            let mapped: Vec<u64> = (0..self.host.pt.mapped_pages() as u64)
                .filter(|&vpn| self.gpus[g].pt.translate(vpn).is_some())
                .collect();
            let gpu = &mut self.gpus[g];
            if let Some(prt) = gpu.prt.as_mut() {
                let missing = mapped
                    .iter()
                    .filter(|&&vpn| !prt.may_be_local(vpn))
                    .count();
                let rate = missing as f64 / mapped.len().max(1) as f64;
                assert!(
                    rate < 0.01,
                    "GPU{g}: PRT false-negative rate {rate} over {} pages",
                    mapped.len()
                );
            }
        }
    }

    fn finalize(mut self) -> RunMetrics {
        self.check_invariants();
        self.metrics.total_cycles = self.now;
        for gpu in &self.gpus {
            for cu in &gpu.cus {
                self.metrics.l1_hits += cu.l1.hits();
                self.metrics.l1_misses += cu.l1.misses();
            }
            self.metrics.l2_hits += gpu.l2.hits();
            self.metrics.l2_misses += gpu.l2.misses();
            self.metrics.gmmu_pwc.merge(gpu.pwc.stats());
        }
        self.metrics.host_pwc.merge(self.host.pwc.stats());
        self.metrics.host_tlb_hits = self.host.tlb.hits();
        self.metrics.host_tlb_misses = self.host.tlb.misses();
        self.metrics.host_queue_peak = self.host.queue.peak();
        self.metrics.directory = self.dir.stats();
        self.metrics.driver_batches = self.driver.batch_count();
        for req in self.reqs.iter() {
            self.metrics.breakdown.gmmu_queue += req.lat.gmmu_queue;
            self.metrics.breakdown.gmmu_walk += req.lat.gmmu_walk;
            self.metrics.breakdown.host_queue += req.lat.host_queue;
            self.metrics.breakdown.host_walk += req.lat.host_walk;
            self.metrics.breakdown.migration += req.lat.migration;
            self.metrics.breakdown.network += req.lat.network;
        }
        self.metrics
    }
}
