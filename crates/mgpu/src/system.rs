//! The full-system model and its event loop.

use std::collections::VecDeque;

use std::sync::{Arc, Mutex};

use interconnect::Fabric;
use ptw::{Asap, GpuId, InfinitePwc, Location, PageTable, Pte, PwCache, PwQueue, Stc, Utc, WalkerPool};
use sim_core::{CheckpointLog, Cycle, EventQueue, FaultInjector, MessageFate, SimError, SimRng};
use tlb::{Mshr, MshrOutcome, Tlb};
use transfw::{ForwardPolicy, Ft, Prt};
use uvm::{PageDirectory, UvmDriver};

use crate::config::{FarFaultMode, PwcKind, SystemConfig};
use crate::metrics::RunMetrics;
use crate::protocol::{self, ProtocolNote, ProtocolTables};
use crate::request::{ReqArena, ReqId, WfRef};
use crate::workload::{Access, AccessStream, Workload};

/// A cached translation: physical page number plus where the page lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransEntry {
    /// Physical page number.
    pub ppn: u64,
    /// Memory holding the page.
    pub loc: Location,
}

/// A unit of work in a GMMU PW-queue: a local translation or a walk
/// borrowed by the host (Trans-FW forwarding).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct GmmuJob {
    pub req: ReqId,
    pub remote: bool,
    /// The GPU's recovery generation at dispatch: a walk-done event whose
    /// generation is stale (the GPU went offline in between) is discarded
    /// instead of releasing a walker that was already force-reset.
    pub gen: u32,
}

#[derive(Debug, Clone)]
pub(crate) enum Event {
    WfStart(WfRef),
    WfMem(WfRef),
    L2Access(WfRef),
    GmmuEnqueue { gpu: u16, job: GmmuJob },
    GmmuDispatch { gpu: u16 },
    GmmuWalkDone { gpu: u16, job: GmmuJob, walk_cycles: Cycle, accesses: u32, pte: Option<Pte>, insert_lo: u32, insert_hi: u32 },
    HostArrive { req: ReqId },
    HostDispatch,
    HostWalkDone { req: ReqId, walk_cycles: Cycle, insert_lo: u32, insert_hi: u32 },
    RemoteWalkArrive { gpu: u16, req: ReqId },
    RemoteSupply { req: ReqId, entry: TransEntry },
    RemoteNotify { req: ReqId, success: bool },
    FaultResolved { req: ReqId },
    Reply { req: ReqId, entry: TransEntry },
    DataDone(WfRef),
    DriverSubmit { req: ReqId },
    DriverCheck,
    DriverBatchDone,
    /// Watchdog: deadline for a request that left its GPU over the fabric.
    /// `attempt` pins the deadline to one send; stale deadlines are ignored.
    ReqDeadline { req: ReqId, attempt: u32 },
    /// Watchdog: periodic whole-system progress check.
    LivenessCheck,
    /// Recovery: GPU `gpu` drops off the fabric until cycle `until`.
    GpuOffline { gpu: u16, until: Cycle },
    /// Recovery: GPU `gpu` rejoins; stale if its window was extended past
    /// `until` by a second offline event.
    GpuRejoin { gpu: u16, until: Cycle },
    /// Recovery: the peer link between `a` and `b` is severed.
    LinkDown { a: u16, b: u16 },
    /// Recovery: the peer link between `a` and `b` heals.
    LinkUp { a: u16, b: u16 },
    /// Recovery: the host MMU stops dispatching walks until `until`.
    HostFailoverStart { until: Cycle },
    /// Recovery: the host MMU resumes dispatching and drains its backlog.
    HostFailoverEnd,
    /// Epoch checkpoint: record a state digest and re-arm.
    Checkpoint,
}

pub(crate) struct Wavefront {
    pub stream: Option<Box<dyn AccessStream>>,
    pub pending: Option<Access>,
}

pub(crate) struct Cu {
    pub l1: Tlb<TransEntry>,
    pub wfs: Vec<Wavefront>,
}

pub(crate) struct Gpu {
    pub cus: Vec<Cu>,
    pub l2: Tlb<TransEntry>,
    pub mshr: Mshr<WfRef>,
    pub queue: PwQueue<GmmuJob>,
    pub walkers: WalkerPool,
    pub pwc: Box<dyn PwCache>,
    pub pt: PageTable,
    pub prt: Option<Prt>,
    pub asap: Option<Asap>,
    pub ctas: VecDeque<usize>,
    /// Recovery generation: bumped when the GPU goes offline so in-flight
    /// walk completions from before the failure are recognised as stale.
    pub gen: u32,
    /// Jobs whose walk is in flight (walker acquired, completion pending) —
    /// drained and re-issued when the GPU goes offline.
    pub inflight: Vec<GmmuJob>,
}

pub(crate) struct HostMmu {
    pub tlb: Tlb<TransEntry>,
    pub queue: PwQueue<ReqId>,
    pub walkers: WalkerPool,
    pub pwc: Box<dyn PwCache>,
    pub pt: PageTable,
    pub asap: Option<Asap>,
    pub ft: Option<Ft>,
}

fn make_pwc(kind: PwcKind, entries: usize, levels: u32) -> Box<dyn PwCache> {
    match kind {
        PwcKind::Utc => Box::new(Utc::new(entries, levels)),
        PwcKind::Stc => Box::new(Stc::paper_default(levels)),
        PwcKind::Infinite => Box::new(InfinitePwc::new(levels)),
    }
}

/// The simulated multi-GPU system.
///
/// Build one from a [`SystemConfig`] and [`run`](Self::run) a workload to
/// completion; the returned [`RunMetrics`] carry every statistic the paper's
/// figures use. See the crate-level example.
pub struct System {
    pub(crate) cfg: SystemConfig,
    pub(crate) now: Cycle,
    pub(crate) events: EventQueue<Event>,
    pub(crate) gpus: Vec<Gpu>,
    pub(crate) host: HostMmu,
    pub(crate) fabric: Fabric,
    pub(crate) dir: PageDirectory,
    pub(crate) driver: UvmDriver<ReqId>,
    pub(crate) driver_batch: Vec<ReqId>,
    pub(crate) reqs: ReqArena,
    pub(crate) metrics: RunMetrics,
    pub(crate) policy: ForwardPolicy,
    pub(crate) rng: SimRng,
    pub(crate) cache_hit_rate: f64,
    pub(crate) injector: FaultInjector,
    /// Time of the last non-watchdog event: what `total_cycles` reports, so
    /// watchdog bookkeeping events never inflate the measured runtime.
    pub(crate) last_real_event: Cycle,
    /// Progress snapshot at the previous liveness check:
    /// `(requests retired, memory instructions, requests created)`.
    pub(crate) liveness_mark: (u64, u64, u64),
    /// Per-GPU offline window: `Some(rejoin_cycle)` while the GPU is down.
    pub(crate) offline_until: Vec<Option<Cycle>>,
    /// Number of GPUs currently offline (fast path guard for the event
    /// interceptor).
    pub(crate) offline_count: usize,
    /// Host-MMU failover window: `Some(resume_cycle)` while dispatch stalls.
    pub(crate) host_failover_until: Option<Cycle>,
    /// Bookkeeping events (watchdog/recovery/checkpoint) currently queued;
    /// the liveness and checkpoint re-arm logic treats a queue holding only
    /// bookkeeping as drained, so the two self-re-arming watchdogs cannot
    /// keep each other alive forever.
    pub(crate) bookkeeping_pending: usize,
    /// Page movements (demand, background, prefetch) recorded by this run.
    pub(crate) migration_log: sim_core::MigrationLog,
    /// Epoch checkpoints recorded by this run.
    pub(crate) checkpoint_log: CheckpointLog,
    /// Optional external mirror of the checkpoint log: survives a run that
    /// aborts mid-flight (the crash half of checkpoint/restore).
    pub(crate) checkpoint_sink: Option<Arc<Mutex<CheckpointLog>>>,
    /// Shadow-sanitizer findings (`cfg.sanitize`): invariant violations
    /// observed at ownership commits and retires, reported by the post-run
    /// auditor. Capped so a systemic violation cannot balloon memory.
    pub(crate) sanitizer_violations: Vec<String>,
    /// Overload-control plane: admission gates, retry budgets, breakers.
    /// Inert (no RNG draws, no events) when `cfg.overload.enabled` is off.
    pub(crate) overload: crate::overload::OverloadControl,
    /// Oversubscription control plane: thrash detection and degradation
    /// policy. Inert when `cfg.oversub.enabled` is off.
    pub(crate) oversub: crate::oversub::OversubControl,
    /// Per-GPU residency/recency tracker and victim selector. Only
    /// consulted and updated while oversubscription is enabled.
    pub(crate) evictor: uvm::EvictionEngine,
    /// Outstanding translation requests per VPN — the pin set. A page with
    /// a PRT-pending fault or an in-flight forwarded walk must never be
    /// evicted (capacity or recovery): the supplied translation would
    /// resurrect a mapping the eviction just tore down. Pure bookkeeping
    /// (no RNG), maintained unconditionally so the recovery path honours
    /// it even with oversubscription off.
    pub(crate) outstanding_vpns: sim_core::DetMap<u64, u32>,
    /// Recovery evictions deferred because the page was pinned: VPN → the
    /// offline GPU it still must be evicted from. Completed when the last
    /// outstanding request on the VPN retires; cancelled at rejoin.
    pub(crate) pending_evict: sim_core::DetMap<u64, GpuId>,
}

impl System {
    /// Builds a system from a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent.
    pub fn new(cfg: SystemConfig) -> Self {
        cfg.validate();
        let levels = cfg.page_table_levels;
        let tf = cfg.transfw.clone();
        let gpus: Vec<Gpu> = (0..cfg.gpus)
            .map(|_| Gpu {
                cus: (0..cfg.cus_per_gpu)
                    .map(|_| Cu {
                        l1: Tlb::new(cfg.l1_tlb_entries, cfg.l1_tlb_entries, cfg.l1_tlb_latency),
                        wfs: (0..cfg.wavefronts_per_cu)
                            .map(|_| Wavefront {
                                stream: None,
                                pending: None,
                            })
                            .collect(),
                    })
                    .collect(),
                l2: Tlb::new(cfg.l2_tlb_entries, cfg.l2_tlb_assoc, cfg.l2_tlb_latency),
                mshr: Mshr::new(256),
                queue: PwQueue::new(cfg.pw_queue_entries),
                walkers: if cfg.ideal.infinite_walkers {
                    WalkerPool::infinite()
                } else {
                    WalkerPool::new(cfg.gmmu_walkers)
                },
                pwc: make_pwc(cfg.pwc_kind, cfg.gmmu_pwc_entries, levels),
                pt: PageTable::new(levels),
                prt: tf
                    .as_ref()
                    .filter(|k| k.gmmu_short_circuit)
                    .map(|k| Prt::new(&k.config)),
                asap: cfg.asap.map(Asap::new),
                ctas: VecDeque::new(),
                gen: 0,
                inflight: Vec::new(),
            })
            .collect();
        let host = HostMmu {
            tlb: Tlb::new(cfg.host_tlb_entries, cfg.host_tlb_assoc, 1),
            queue: PwQueue::new(cfg.pw_queue_entries.max(4096)),
            walkers: if cfg.ideal.infinite_walkers {
                WalkerPool::infinite()
            } else {
                WalkerPool::new(cfg.host_walkers)
            },
            pwc: make_pwc(cfg.pwc_kind, cfg.host_pwc_entries, levels),
            pt: PageTable::new(levels),
            asap: cfg.asap.map(Asap::new),
            ft: tf
                .as_ref()
                .filter(|k| k.host_forwarding)
                .map(|k| Ft::new(&k.config, cfg.gpus)),
        };
        let policy = ForwardPolicy::new(
            tf.as_ref().map_or(0.5, |k| k.config.forward_threshold),
        );
        Self {
            fabric: Fabric::new(
                cfg.gpus as usize,
                cfg.cpu_link_latency,
                cfg.peer_link_latency,
                cfg.link_bytes_per_cycle,
            ),
            dir: PageDirectory::with_policy(cfg.gpus, cfg.placement_kind()),
            driver: UvmDriver::new(uvm::DriverConfig {
                batch_overhead: cfg.driver.batch_overhead
                    + cfg.driver_per_gpu_poll * sim_core::Cycle::from(cfg.gpus),
                ..cfg.driver
            }),
            driver_batch: Vec::new(),
            reqs: ReqArena::new(),
            metrics: RunMetrics::default(),
            policy,
            // simlint::allow(rng-stream-discipline): the system root stream — every subsystem forks a salted stream from this seed
            rng: SimRng::new(cfg.seed),
            cache_hit_rate: 0.5,
            injector: FaultInjector::new(cfg.faults.clone()),
            last_real_event: 0,
            liveness_mark: (0, 0, 0),
            offline_until: vec![None; cfg.gpus as usize],
            offline_count: 0,
            host_failover_until: None,
            bookkeeping_pending: 0,
            migration_log: sim_core::MigrationLog::new(),
            checkpoint_log: CheckpointLog::new(),
            checkpoint_sink: None,
            sanitizer_violations: Vec::new(),
            overload: crate::overload::OverloadControl::new(&cfg.overload, cfg.gpus, cfg.seed),
            oversub: crate::oversub::OversubControl::new(&cfg.oversub, cfg.gpus, cfg.seed),
            evictor: uvm::EvictionEngine::new(cfg.oversub.policy, cfg.gpus),
            outstanding_vpns: sim_core::DetMap::new(),
            pending_evict: sim_core::DetMap::new(),
            now: 0,
            events: EventQueue::with_capacity(1 << 14),
            gpus,
            host,
            cfg,
        }
    }

    /// Mirrors every epoch checkpoint into `sink` as it is recorded, so the
    /// log survives a run that aborts (the crash half of checkpoint/restore;
    /// see [`run_with_restore`](crate::run_with_restore)).
    pub fn with_checkpoint_sink(mut self, sink: Arc<Mutex<CheckpointLog>>) -> Self {
        self.checkpoint_sink = Some(sink);
        self
    }

    /// Read access to the configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Runs `workload` to completion and returns the collected metrics.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when the run cannot complete soundly: a
    /// [`SimError::Livelock`] if outstanding work stops making progress for
    /// a whole liveness interval, [`SimError::CycleCapExceeded`] past
    /// `watchdog.max_cycles`, a [`SimError::Protocol`] from a handler that
    /// observed impossible state, or an [`SimError::InvariantViolation`]
    /// from the post-run auditor.
    pub fn run(mut self, workload: &dyn Workload) -> Result<RunMetrics, SimError> {
        self.cache_hit_rate = workload.data_cache_hit_rate();
        self.metrics.app = workload.name().to_string();

        // Stale-entry pollution (fault injection): garbage fingerprints the
        // PRTs and FT accumulated "before" this run's window.
        if self.injector.plan().table_pollution > 0 {
            let keys = self.injector.pollution_keys();
            for gpu in &mut self.gpus {
                if let Some(prt) = gpu.prt.as_mut() {
                    for &k in &keys {
                        prt.page_arrived(k);
                    }
                }
            }
            if let Some(ft) = self.host.ft.as_mut() {
                for (i, &k) in keys.iter().enumerate() {
                    ft.owner_added(k, (i % self.cfg.gpus as usize) as GpuId);
                }
            }
        }

        // Centralised page table: every page starts valid on the host, then
        // warm pages move to their initial owner (see
        // `Workload::initial_owner`).
        let t_pages = self
            .cfg
            .translation_vpn(workload.footprint_pages().saturating_sub(1))
            + 1;
        let shift = self.cfg.page_size_bits - 12;
        for vpn in 0..t_pages {
            let owner = workload.initial_owner(vpn << shift, self.cfg.gpus);
            if let Some(g) = owner {
                assert!(
                    g < self.cfg.gpus,
                    "initial_owner returned GPU {g} but only {} exist",
                    self.cfg.gpus
                );
            }
            let loc = owner.map_or(Location::Cpu, Location::Gpu);
            self.host.pt.insert(vpn, Pte::new(vpn, loc));
            if let Some(g) = owner {
                self.dir.place(vpn, loc);
                self.map_on_gpu(g, vpn, loc);
                if let Some(ft) = self.host.ft.as_mut() {
                    ft.page_migrated(vpn, None, g);
                }
            }
        }
        if self.cfg.ideal.no_local_faults {
            for (g, gpu) in self.gpus.iter_mut().enumerate() {
                for vpn in 0..t_pages {
                    gpu.pt.insert(vpn, Pte::new(vpn, Location::Gpu(g as GpuId)));
                }
            }
        }

        // Oversubscription: seed the eviction engine's residency tracking
        // from the warm placement, then trim any GPU whose warm set already
        // overflows its capacity.
        if self.oversub.active() {
            for g in 0..self.cfg.gpus {
                let resident = self.dir.resident_vpns_on(g);
                self.evictor.sync_residency(g, &resident, 0);
            }
            for g in 0..self.cfg.gpus {
                self.enforce_capacity(g);
            }
        }

        // Greedy CTA placement: contiguous blocks per GPU (§III-A).
        let n_ctas = workload.cta_count();
        let n_gpus = self.cfg.gpus as usize;
        for cta in 0..n_ctas {
            let g = cta * n_gpus / n_ctas.max(1);
            if let Some(gpu) = self.gpus.get_mut(g) {
                gpu.ctas.push_back(cta);
            }
        }

        // Kick every wavefront slot.
        for g in 0..n_gpus {
            for c in 0..self.cfg.cus_per_gpu {
                for w in 0..self.cfg.wavefronts_per_cu {
                    self.events.push(
                        0,
                        Event::WfStart(WfRef {
                            gpu: g as u16,
                            cu: c,
                            wf: w,
                        }),
                    );
                }
            }
        }

        // Event-loop liveness watchdog: periodic progress checks. The event
        // is bookkeeping-only (no simulated state, no RNG) and is excluded
        // from `total_cycles`, so arming it keeps fault-free runs
        // bit-identical while still catching wedges in every test.
        if self.cfg.watchdog.enabled {
            self.push_bookkeeping(self.cfg.watchdog.liveness_interval, Event::LivenessCheck);
        }

        // Scheduled component failures and the epoch-checkpoint tick, all
        // bookkeeping (excluded from `total_cycles`).
        self.schedule_component_events();
        if let Some(interval) = self.cfg.checkpoint_interval {
            self.push_bookkeeping(interval, Event::Checkpoint);
        }

        while let Some((t, ev)) = self.events.pop() {
            debug_assert!(t >= self.now, "time moved backwards");
            self.now = t;
            if Self::is_bookkeeping(&ev) {
                self.bookkeeping_pending -= 1;
            } else {
                // The cycle cap gates *real* work only: once the workload is
                // done, late bookkeeping (the initial liveness arming, stale
                // request deadlines) drains past the cap harmlessly.
                if let Some(cap) = self.cfg.watchdog.max_cycles {
                    if t > cap {
                        return Err(SimError::CycleCapExceeded {
                            cap,
                            outstanding: self.outstanding_requests(),
                        });
                    }
                }
                self.last_real_event = t;
            }
            let Some(ev) = self.intercept_for_recovery(ev) else {
                continue; // deferred or redirected around an offline GPU
            };
            self.dispatch(ev, workload)?;
        }

        self.finalize()
    }

    /// Whether an event is watchdog/recovery bookkeeping: excluded from
    /// `total_cycles` and from the "real work pending" count that gates the
    /// self-re-arming watchdogs.
    fn is_bookkeeping(ev: &Event) -> bool {
        matches!(
            ev,
            Event::LivenessCheck
                | Event::ReqDeadline { .. }
                | Event::Checkpoint
                | Event::GpuOffline { .. }
                | Event::GpuRejoin { .. }
                | Event::LinkDown { .. }
                | Event::LinkUp { .. }
                | Event::HostFailoverStart { .. }
                | Event::HostFailoverEnd
        )
    }

    /// Pushes a bookkeeping event, keeping the pending count in sync.
    pub(crate) fn push_bookkeeping(&mut self, at: Cycle, ev: Event) {
        debug_assert!(Self::is_bookkeeping(&ev));
        self.bookkeeping_pending += 1;
        self.events.push(at, ev);
    }

    /// Whether anything other than bookkeeping is still queued.
    pub(crate) fn has_real_events(&self) -> bool {
        self.events.len() > self.bookkeeping_pending
    }

    /// Translation requests created but not yet retired.
    fn outstanding_requests(&self) -> u64 {
        self.reqs.iter().filter(|r| !r.completed).count() as u64
    }

    fn dispatch(&mut self, ev: Event, workload: &dyn Workload) -> Result<(), SimError> {
        match ev {
            Event::WfStart(wf) => self.wf_start(wf, workload),
            Event::WfMem(wf) => self.wf_mem(wf),
            Event::L2Access(wf) => self.l2_access(wf),
            Event::GmmuEnqueue { gpu, job } => {
                self.gmmu_enqueue(gpu, job);
                Ok(())
            }
            Event::GmmuDispatch { gpu } => self.gmmu_dispatch(gpu),
            Event::GmmuWalkDone {
                gpu,
                job,
                walk_cycles,
                accesses,
                pte,
                insert_lo,
                insert_hi,
            } => {
                self.gmmu_walk_done(gpu, job, walk_cycles, accesses, pte, insert_lo, insert_hi);
                Ok(())
            }
            Event::HostArrive { req } => {
                self.host_arrive(req);
                Ok(())
            }
            Event::HostDispatch => self.host_dispatch(),
            Event::HostWalkDone {
                req,
                walk_cycles,
                insert_lo,
                insert_hi,
            } => {
                self.host_walk_done(req, walk_cycles, insert_lo, insert_hi);
                Ok(())
            }
            Event::RemoteWalkArrive { gpu, req } => {
                self.remote_walk_arrive(gpu, req);
                Ok(())
            }
            Event::RemoteSupply { req, entry } => {
                self.remote_supply(req, entry);
                Ok(())
            }
            Event::RemoteNotify { req, success } => {
                self.remote_notify(req, success);
                Ok(())
            }
            Event::FaultResolved { req } => self.fault_resolved(req),
            Event::Reply { req, entry } => {
                self.reply(req, entry);
                Ok(())
            }
            Event::DataDone(wf) => self.data_done(wf, workload),
            Event::DriverSubmit { req } => {
                self.driver_submit(req);
                Ok(())
            }
            Event::DriverCheck => {
                self.driver_check();
                Ok(())
            }
            Event::DriverBatchDone => self.driver_batch_done(),
            Event::ReqDeadline { req, attempt } => {
                self.req_deadline(req, attempt);
                Ok(())
            }
            Event::LivenessCheck => self.liveness_check(),
            Event::GpuOffline { gpu, until } => {
                self.gpu_offline(gpu, until);
                Ok(())
            }
            Event::GpuRejoin { gpu, until } => {
                self.gpu_rejoin(gpu, until);
                Ok(())
            }
            Event::LinkDown { a, b } => {
                self.link_down(a, b);
                Ok(())
            }
            Event::LinkUp { a, b } => {
                self.link_up(a, b);
                Ok(())
            }
            Event::HostFailoverStart { until } => {
                self.host_failover_start(until);
                Ok(())
            }
            Event::HostFailoverEnd => {
                self.host_failover_end();
                Ok(())
            }
            Event::Checkpoint => {
                self.epoch_checkpoint();
                Ok(())
            }
        }
    }

    // ----- protocol watchdogs --------------------------------------------

    /// A deadline armed when `req` was sent over the fabric fired. If the
    /// request is still outstanding and this deadline matches its latest
    /// send, the watchdog retries (lossy, bounded) and finally degrades to a
    /// reliable direct host walk — the ordinary path of §II-B, with the
    /// §IV-C cancellation undone so the fallback cannot be skipped.
    fn req_deadline(&mut self, req: ReqId, attempt: u32) {
        let now = self.now;
        let (gpu, timed_out_peer) = {
            let Some(r) = self.reqs.get_mut(req) else {
                return;
            };
            if r.completed || r.fallback {
                return;
            }
            if attempt != r.watchdog_retries {
                return; // stale: a newer send re-armed the deadline
            }
            r.remote_timed_out = true;
            (r.gpu, r.forwarded_to.take())
        };
        self.metrics.resilience.remote_timeouts = self.metrics.resilience.remote_timeouts.saturating_add(1);
        // A forward that timed out is failure evidence for the peer's
        // breaker (no-op while overload control is off).
        if let Some(peer) = timed_out_peer {
            self.overload.record_forward_outcome(now, peer, req, false);
        }
        // With overload control off every allowed retry fires immediately
        // (the pre-overload behaviour); with it on, a retry must win a
        // token from the per-GPU budget and then waits out jittered
        // exponential backoff so a saturated host is not hammered.
        let granted: Option<Cycle> = if attempt < self.cfg.watchdog.max_retries {
            if self.overload.active() {
                match self.overload.retry_decision(gpu, attempt) {
                    crate::overload::RetryDecision::Retry { delay } => Some(delay),
                    crate::overload::RetryDecision::Exhausted => None,
                }
            } else {
                Some(0)
            }
        } else {
            None
        };
        if let Some(delay) = granted {
            if let Some(r) = self.reqs.get_mut(req) {
                r.watchdog_retries += 1;
                r.cancelled = false;
            }
            self.metrics.resilience.retries = self.metrics.resilience.retries.saturating_add(1);
            self.send_fault_to_host(req, now + delay);
        } else {
            // Graceful degradation: mark the request fallback (all of its
            // subsequent messages bypass the injector) and hand it straight
            // to the host MMU.
            if let Some(r) = self.reqs.get_mut(req) {
                r.fallback = true;
                r.cancelled = false;
            }
            self.metrics.resilience.fallback_walks = self.metrics.resilience.fallback_walks.saturating_add(1);
            let arrival = self.cpu_control_arrival(now);
            if let Some(r) = self.reqs.get_mut(req) {
                r.lat.network += arrival - now;
            }
            self.events.push(arrival, Event::HostArrive { req });
        }
    }

    /// Periodic whole-system progress check: if nothing retired, started or
    /// executed for an entire interval while requests are outstanding, the
    /// protocol has wedged (e.g. every copy of a completion message was
    /// lost and no fallback fired) and the run aborts instead of spinning.
    fn liveness_check(&mut self) -> Result<(), SimError> {
        if !self.has_real_events() {
            return Ok(()); // run drained; nothing left to watch
        }
        let mark = (
            self.metrics.resilience.requests_retired,
            self.metrics.mem_instructions,
            self.reqs.len() as u64,
        );
        let outstanding = self.outstanding_requests();
        // While a component is down, stalled progress is the *expected*
        // state (work is parked until the rejoin/failover-end); only abort
        // for no-progress once the system is whole again.
        let degraded = self.offline_count > 0 || self.host_failover_until.is_some();
        if mark == self.liveness_mark && outstanding > 0 && !degraded {
            return Err(SimError::Livelock {
                cycle: self.now,
                outstanding,
            });
        }
        self.liveness_mark = mark;
        self.push_bookkeeping(
            self.now + self.cfg.watchdog.liveness_interval,
            Event::LivenessCheck,
        );
        Ok(())
    }

    /// Routes one fabric-borne protocol message through the fault injector:
    /// deliver, drop, delay or duplicate. Fallback requests bypass the
    /// injector entirely — the degraded path is modelled as reliable, which
    /// is what guarantees forward progress after the watchdog gives up on
    /// the lossy fast path.
    pub(crate) fn send_message(&mut self, req: ReqId, at: Cycle, ev: Event) {
        if !self.injector.active() || self.reqs.get(req).is_some_and(|r| r.fallback) {
            self.events.push(at, ev);
            return;
        }
        match self.injector.message_fate() {
            MessageFate::Deliver => self.events.push(at, ev),
            MessageFate::Drop => {}
            MessageFate::Delay(d) => self.events.push(at + d, ev),
            MessageFate::Duplicate => {
                self.events.push(at, ev.clone());
                self.events.push(at, ev);
            }
        }
    }

    /// Marks `req` retired: its waiters got a translation. The auditor
    /// checks every request retires exactly once.
    pub(crate) fn retire(&mut self, req: ReqId) {
        let Some(r) = self.reqs.get_mut(req) else {
            debug_assert!(false, "retire of unknown request {req}");
            return;
        };
        r.completed = true;
        r.retire_count += 1;
        let (born, vpn, gpu) = (r.born, r.vpn, r.gpu);
        self.metrics.resilience.requests_retired = self.metrics.resilience.requests_retired.saturating_add(1);
        // Latency-tail accounting (recorded only while overload control is
        // enabled, so disabled metrics stay at `Default`).
        self.overload.note_demand_latency(self.now.saturating_sub(born));
        self.unpin_vpn(vpn);
        if self.oversub.active() {
            self.evictor.note_touch(gpu, vpn, self.now);
        }
        if self.cfg.sanitize {
            self.sanitize_retire(req);
        }
    }

    /// Releases one pin on `vpn`; when the last outstanding request on the
    /// page retires, a recovery eviction deferred by the pin (the page's
    /// forwarded walk was still in flight when its GPU went offline) is
    /// completed against the directory's current state.
    fn unpin_vpn(&mut self, vpn: u64) {
        let emptied = match self.outstanding_vpns.get_mut(&vpn) {
            Some(c) => {
                *c = c.saturating_sub(1);
                *c == 0
            }
            None => {
                debug_assert!(false, "unpin of untracked vpn {vpn}");
                false
            }
        };
        if !emptied {
            return;
        }
        self.outstanding_vpns.remove(&vpn);
        let Some(g) = self.pending_evict.remove(&vpn) else {
            return;
        };
        // Rejoin cancels its pending evictions, so the GPU is still down;
        // the guard only protects against a page that already migrated away
        // (evict_page finds nothing to do and returns None).
        if self
            .offline_until
            .get(usize::from(g))
            .is_some_and(Option::is_some)
        {
            if let Some(report) = self.dir.evict_page(vpn, g) {
                protocol::evict_tables(self, g, &report);
            }
        }
    }

    /// Counts a protocol message discarded by an idempotence guard. Only
    /// counted under an active plan: the same guards also absorb benign
    /// races in fault-free runs (remote supply vs. host walk), which are
    /// not duplicates.
    pub(crate) fn note_duplicate(&mut self) {
        if self.injector.active() {
            self.metrics.resilience.duplicates_suppressed = self.metrics.resilience.duplicates_suppressed.saturating_add(1);
        }
    }

    // ----- wavefront lifecycle ------------------------------------------

    fn wf_start(&mut self, wf: WfRef, workload: &dyn Workload) -> Result<(), SimError> {
        loop {
            let seed = self.cfg.seed;
            let Some(gpu) = self.gpus.get_mut(wf.gpu as usize) else {
                return Ok(()); // misrouted wavefront reference: discard
            };
            let Some(slot) = gpu
                .cus
                .get_mut(wf.cu as usize)
                .and_then(|cu| cu.wfs.get_mut(wf.wf as usize))
            else {
                return Ok(());
            };
            if slot.stream.is_none() {
                match gpu.ctas.pop_front() {
                    Some(cta) => {
                        slot.stream =
                            Some(workload.make_stream(cta, seed ^ (cta as u64) << 1));
                    }
                    None => return Ok(()), // wavefront retires
                }
            }
            let now = self.now;
            let Some(slot) = self.wf_slot_mut(wf) else {
                return Ok(());
            };
            let Some(stream) = slot.stream.as_mut() else {
                return Err(SimError::Protocol {
                    cycle: now,
                    what: format!("wavefront {wf:?} scheduled without a stream"),
                });
            };
            match stream.next_access() {
                Some(a) => {
                    slot.pending = Some(a);
                    self.events.push(self.now + a.compute, Event::WfMem(wf));
                    return Ok(());
                }
                None => {
                    slot.stream = None; // CTA retired; pull the next one
                }
            }
        }
    }

    /// The wavefront slot addressed by `wf`, or `None` when any index is
    /// out of range (a corrupted or misrouted wavefront reference).
    fn wf_slot(&self, wf: WfRef) -> Option<&Wavefront> {
        self.gpus
            .get(wf.gpu as usize)?
            .cus
            .get(wf.cu as usize)?
            .wfs
            .get(wf.wf as usize)
    }

    /// Mutable twin of [`wf_slot`](Self::wf_slot).
    fn wf_slot_mut(&mut self, wf: WfRef) -> Option<&mut Wavefront> {
        self.gpus
            .get_mut(wf.gpu as usize)?
            .cus
            .get_mut(wf.cu as usize)?
            .wfs
            .get_mut(wf.wf as usize)
    }

    /// The pending access of a wavefront slot, as a typed error when the
    /// slot is missing or empty (a duplicated or misrouted wavefront
    /// event).
    fn pending_access(&self, wf: WfRef) -> Result<Access, SimError> {
        self.wf_slot(wf)
            .and_then(|slot| slot.pending)
            .ok_or_else(|| SimError::Protocol {
                cycle: self.now,
                what: format!("wavefront {wf:?} woken with no pending access"),
            })
    }

    fn wf_mem(&mut self, wf: WfRef) -> Result<(), SimError> {
        let a = self.pending_access(wf)?;
        let tvpn = self.cfg.translation_vpn(a.vpn);
        self.metrics.mem_instructions = self.metrics.mem_instructions.saturating_add(1);
        self.metrics.sharing.record(tvpn, wf.gpu, a.is_write);

        let l1_lat = self.cfg.l1_tlb_latency;
        let hit = self
            .gpus
            .get_mut(wf.gpu as usize)
            .and_then(|gpu| gpu.cus.get_mut(wf.cu as usize))
            .and_then(|cu| cu.l1.lookup(tvpn).copied());
        match hit {
            Some(entry) => {
                let lat = l1_lat + self.data_latency(wf.gpu, tvpn, entry);
                self.events.push(self.now + lat, Event::DataDone(wf));
            }
            None => {
                self.events.push(self.now + l1_lat, Event::L2Access(wf));
            }
        }
        Ok(())
    }

    fn l2_access(&mut self, wf: WfRef) -> Result<(), SimError> {
        let a = self.pending_access(wf)?;
        let tvpn = self.cfg.translation_vpn(a.vpn);
        let l2_lat = self.cfg.l2_tlb_latency;
        let hit = self
            .gpus
            .get_mut(wf.gpu as usize)
            .and_then(|gpu| gpu.l2.lookup(tvpn).copied());
        if let Some(entry) = hit {
            self.l1_fill(wf, tvpn, entry);
            let lat = l2_lat + self.data_latency(wf.gpu, tvpn, entry);
            self.events.push(self.now + lat, Event::DataDone(wf));
            return Ok(());
        }

        // Least-TLB (§V-I): the GPUs' L2 TLBs behave as one distributed TLB;
        // probe peers before walking.
        if self.cfg.least_tlb {
            let peer_hit = self
                .gpus
                .iter()
                .enumerate()
                .filter(|&(g, _)| g != wf.gpu as usize)
                .find_map(|(_, gpu)| gpu.l2.probe(tvpn).copied());
            if let Some(entry) = peer_hit {
                let rtt = 2 * self.cfg.peer_link_latency;
                if let Some(gpu) = self.gpus.get_mut(wf.gpu as usize) {
                    gpu.l2.fill(tvpn, entry);
                }
                self.l1_fill(wf, tvpn, entry);
                let lat = l2_lat + rtt + self.data_latency(wf.gpu, tvpn, entry);
                self.events.push(self.now + lat, Event::DataDone(wf));
                return Ok(());
            }
        }

        let outcome = match self.gpus.get_mut(wf.gpu as usize) {
            Some(gpu) => gpu.mshr.register(tvpn, wf),
            None => return Ok(()), // misrouted wavefront reference: discard
        };
        match outcome {
            MshrOutcome::Merged => {}
            MshrOutcome::Full => {
                // Stall and retry shortly.
                self.events.push(self.now + 30, Event::L2Access(wf));
            }
            MshrOutcome::Primary => {
                let born = self.now + l2_lat;
                let req = self.reqs.create(tvpn, wf.gpu, a.is_write, born);
                *self.outstanding_vpns.entry(tvpn).or_insert(0) += 1;
                self.metrics.translation_requests = self.metrics.translation_requests.saturating_add(1);
                // Fresh demand traffic funds the GPU's retry budget.
                self.overload.on_fresh_demand(wf.gpu);
                self.start_translation(req, born);
            }
        }
        Ok(())
    }

    /// Fills the L1 TLB of the CU addressed by `wf`, ignoring a misrouted
    /// reference (the fill is a performance hint, not a protocol step).
    fn l1_fill(&mut self, wf: WfRef, vpn: u64, entry: TransEntry) {
        if let Some(cu) = self
            .gpus
            .get_mut(wf.gpu as usize)
            .and_then(|gpu| gpu.cus.get_mut(wf.cu as usize))
        {
            cu.l1.fill(vpn, entry);
        }
    }

    /// Entry point of the translation machinery for a fresh L2 TLB miss:
    /// baseline goes to the GMMU; Trans-FW consults the PRT first.
    fn start_translation(&mut self, req: ReqId, at: Cycle) {
        let Some((vpn, g)) = self.reqs.get(req).map(|r| (r.vpn, r.gpu)) else {
            return; // stale request id: discard
        };
        let Some(gen) = self.gpus.get(g as usize).map(|gpu| gpu.gen) else {
            return;
        };
        let short_circuit = self
            .gpus
            .get_mut(g as usize)
            .and_then(|gpu| gpu.prt.as_mut())
            .is_some_and(|prt| !prt.may_be_local(vpn));
        if short_circuit {
            self.metrics.transfw.gmmu_bypassed = self.metrics.transfw.gmmu_bypassed.saturating_add(1);
            self.send_fault_to_host(req, at);
        } else {
            self.events.push(
                at,
                Event::GmmuEnqueue {
                    gpu: g,
                    job: GmmuJob {
                        req,
                        remote: false,
                        gen,
                    },
                },
            );
        }
    }

    /// Arrival time of a control message on the CPU link: translation
    /// traffic rides a separate virtual channel, so it pays latency but does
    /// not queue behind page DMA.
    pub(crate) fn cpu_control_arrival(&self, at: Cycle) -> Cycle {
        at + self.cfg.cpu_link_latency
    }

    /// Arrival time of a control message on a peer link.
    pub(crate) fn peer_control_arrival(&self, at: Cycle) -> Cycle {
        at + self.cfg.peer_link_latency
    }

    /// Arrival time of a control message between two specific peers,
    /// honouring link partitions: a severed pair detours store-and-forward
    /// over the reliable host links (paying their occupancy, i.e. real
    /// backpressure) instead of hanging on the dead link.
    pub(crate) fn peer_control_arrival_between(&mut self, src: u16, dst: u16, at: Cycle) -> Cycle {
        if self.fabric.is_partitioned(src as usize, dst as usize) {
            self.metrics.recovery.rerouted_messages = self.metrics.recovery.rerouted_messages.saturating_add(1);
            let at_host = self
                .fabric
                .send_gpu_to_cpu(src as usize, at, interconnect::msg::CONTROL);
            return self
                .fabric
                .send_cpu_to_gpu(dst as usize, at_host, interconnect::msg::CONTROL);
        }
        self.peer_control_arrival(at)
    }

    /// The Fig. 8 study: on each local fault, would a *remote* GPU's
    /// PW-cache have provided a prefix for this translation? Probes every
    /// peer's PW-cache read-only, so it is inherently cross-shard — it
    /// lives here in the `System` boundary layer (under the epoch barrier
    /// it becomes a barrier-time measurement pass).
    pub(crate) fn record_remote_probe(&mut self, faulting_gpu: u16, vpn: u64) {
        self.metrics.remote_probe.faults = self.metrics.remote_probe.faults.saturating_add(1);
        let best = self
            .gpus
            .iter()
            .enumerate()
            .filter(|&(g, _)| g != faulting_gpu as usize)
            .filter_map(|(_, gpu)| gpu.pwc.probe(vpn))
            .min();
        if let Some(k) = best {
            self.metrics.remote_probe.hits = self.metrics.remote_probe.hits.saturating_add(1);
            if k <= 3 {
                self.metrics.remote_probe.lower_hits = self.metrics.remote_probe.lower_hits.saturating_add(1);
            }
        }
    }

    /// Ships a far fault (or short-circuited request) to the host side.
    /// The message crosses the fabric, so it is subject to fault injection;
    /// under an active plan a watchdog deadline is armed for the round trip.
    pub(crate) fn send_fault_to_host(&mut self, req: ReqId, at: Cycle) {
        let arrival = self.cpu_control_arrival(at);
        self.reqs[req].lat.network += arrival - at;
        let ev = match self.cfg.fault_mode {
            FarFaultMode::HostMmu => Event::HostArrive { req },
            FarFaultMode::UvmDriver => Event::DriverSubmit { req },
        };
        self.send_message(req, arrival, ev);
        if self.injector.active() && self.cfg.watchdog.enabled && !self.reqs[req].fallback {
            let attempt = self.reqs[req].watchdog_retries;
            self.push_bookkeeping(
                at + self.cfg.watchdog.request_timeout,
                Event::ReqDeadline { req, attempt },
            );
        }
    }

    fn data_done(&mut self, wf: WfRef, workload: &dyn Workload) -> Result<(), SimError> {
        self.gpus[wf.gpu as usize].cus[wf.cu as usize].wfs[wf.wf as usize].pending = None;
        self.wf_start(wf, workload)
    }

    // ----- shared helpers ------------------------------------------------

    /// Latency of the data access once the translation is known; records
    /// remote-mapping access counters as a side effect.
    pub(crate) fn data_latency(&mut self, gpu: GpuId, vpn: u64, entry: TransEntry) -> Cycle {
        if self.rng.chance(self.cache_hit_rate) {
            return self.cfg.cache_latency;
        }
        match entry.loc {
            Location::Gpu(o) if o == gpu => self.cfg.dram_latency,
            Location::Cpu => 2 * self.cfg.cpu_link_latency + self.cfg.dram_latency,
            Location::Gpu(_) => {
                // Access-counter migration is the lowest priority class:
                // while the host admission gate is engaged it is shed
                // outright (a later access can always re-trigger it).
                if self.overload.shed_background(uvm::TrafficClass::Migration) {
                    self.overload.stats.migration_shed = self.overload.stats.migration_shed.saturating_add(1);
                } else if self.oversub.shed_background(gpu, uvm::TrafficClass::Migration) {
                    // Thrash gate: pulling more pages into a thrashing GPU
                    // only deepens the collapse; the access stays remote.
                } else if let Some(outcome) = self.dir.record_remote_access(vpn, gpu) {
                    self.apply_background_migration(vpn, gpu, outcome);
                }
                2 * self.cfg.peer_link_latency + self.cfg.dram_latency
            }
        }
    }

    /// Applies an off-critical-path migration decided by the access-counter
    /// policy: page tables, TLB shootdowns and PRT/FT updates happen
    /// immediately; the data transfer only occupies fabric bandwidth.
    pub(crate) fn apply_background_migration(
        &mut self,
        vpn: u64,
        to: GpuId,
        outcome: uvm::FaultOutcome,
    ) {
        for v in &outcome.invalidations {
            self.unmap_on_gpu(*v, vpn);
        }
        let now = self.now;
        let mut done = now;
        if let Location::Gpu(src) = outcome.source {
            if src != to {
                done = self.fabric.send_gpu_to_gpu(
                    src as usize,
                    to as usize,
                    now,
                    self.cfg.page_bytes(),
                );
            }
        }
        self.migration_log.record(sim_core::MigrationEvent {
            vpn,
            src: outcome.source.gpu(),
            dst: to,
            issued: now,
            completed: done,
            kind: sim_core::MigrationKind::Background,
        });
        protocol::map_page(self, to, vpn, Location::Gpu(to));
        protocol::migrate_home(self, vpn, outcome.source.gpu(), to);
        if self.oversub.active() {
            // Mirror the background move into the eviction engine and keep
            // the destination under its capacity ceiling.
            for &v in &outcome.invalidations {
                self.evictor.note_evicted(v, vpn);
            }
            if let Some(s) = outcome.source.gpu() {
                if s != to {
                    self.evictor.note_evicted(s, vpn);
                }
            }
            self.evictor.note_resident(to, vpn, now);
            self.enforce_capacity(to);
        }
    }

    /// The pin set: every VPN with an outstanding translation request
    /// (PRT-pending fault or in-flight forwarded walk) is exempt from
    /// eviction.
    pub(crate) fn pin_set(&self) -> sim_core::DetSet<u64> {
        let mut s = sim_core::DetSet::new();
        for &vpn in self.outstanding_vpns.keys() {
            s.insert(vpn);
        }
        s
    }

    /// Evicts pages from `g` until its tracked residency fits the
    /// oversubscription capacity. Victims flow through the shared protocol
    /// transition ([`protocol::capacity_evict`]) so PRT/FT/TLB/host-PT
    /// invalidation reuses the recovery plumbing. Degrades gracefully: when
    /// every candidate is pinned or protected the loop stops (the GPU runs
    /// over capacity briefly) instead of evicting a page mid-walk.
    pub(crate) fn enforce_capacity(&mut self, g: GpuId) {
        if !self.oversub.active() {
            return;
        }
        let cap = self.oversub.capacity();
        while self.evictor.resident_count(g) > cap {
            let pins = self.pin_set();
            let pick =
                self.evictor
                    .select_victim(g, &self.dir, &pins, self.oversub.hot_protect(g));
            self.oversub.note_pinned_skips(pick.pinned_skipped);
            let Some(victim) = pick.victim else {
                self.oversub.note_no_victim();
                return;
            };
            self.evictor.note_evicted(g, victim);
            let Some(report) = self.dir.evict_page(victim, g) else {
                // The engine tracked a page the directory no longer places
                // on `g` (stale after a racing move); dropping the tracking
                // entry above already reconciled them.
                continue;
            };
            protocol::capacity_evict(self, g, victim, &report);
            self.oversub.note_evicted(g, victim, self.now);
        }
    }

    /// Destroys GPU `g`'s local mapping of `vpn`: page table, PW-cache
    /// levels backing it, L1/L2 TLB shootdowns and PRT update
    /// (shared transition, see [`crate::protocol`]).
    pub(crate) fn unmap_on_gpu(&mut self, g: GpuId, vpn: u64) {
        protocol::unmap_page(self, g, vpn);
    }

    /// Creates GPU `g`'s local mapping of `vpn` pointing at `loc`
    /// (shared transition, see [`crate::protocol`]).
    pub(crate) fn map_on_gpu(&mut self, g: GpuId, vpn: u64, loc: Location) {
        protocol::map_page(self, g, vpn, loc);
    }

    /// Delivers a finished translation to the requesting GPU: fills the L2
    /// TLB, releases every coalesced waiter and starts their data accesses.
    pub(crate) fn complete_translation(&mut self, g: GpuId, vpn: u64, entry: TransEntry) {
        self.gpus[g as usize].l2.fill(vpn, entry);
        let waiters = self.gpus[g as usize].mshr.complete(vpn);
        for wf in waiters {
            self.gpus[wf.gpu as usize].cus[wf.cu as usize].l1.fill(vpn, entry);
            let lat = self.data_latency(g, vpn, entry);
            self.events.push(self.now + lat, Event::DataDone(wf));
        }
    }

    /// End-of-run structural audit: every queue drained, every walker
    /// released, no coalesced waiter lost, every translation request retired
    /// exactly once, the page directory internally consistent, and the
    /// Trans-FW tables consistent with the page tables they shadow.
    ///
    /// Collects *every* violation (instead of stopping at the first) and
    /// reports them as one [`SimError::InvariantViolation`]. Runs after
    /// every simulation, fault-injected or not — these would all be
    /// lost-wakeup or leaked-resource bugs.
    fn audit(&mut self) -> Result<(), SimError> {
        let mut violations: Vec<String> = Vec::new();
        for (g, gpu) in self.gpus.iter().enumerate() {
            if gpu.walkers.busy() != 0 {
                violations.push(format!("GPU{g}: leaked walker ({} busy)", gpu.walkers.busy()));
            }
            if !gpu.queue.is_empty() {
                violations.push(format!("GPU{g}: stuck PW-queue entries"));
            }
            if !gpu.mshr.is_empty() {
                violations.push(format!("GPU{g}: lost MSHR waiters (wavefronts never woken)"));
            }
        }
        if self.host.walkers.busy() != 0 {
            violations.push(format!("host: leaked walker ({} busy)", self.host.walkers.busy()));
        }
        if !self.host.queue.is_empty() {
            violations.push("host: stuck PW-queue entries".into());
        }
        if self.driver.is_busy() {
            violations.push("driver: batch never finished".into());
        }
        if self.driver.pending_len() != 0 {
            violations.push(format!("driver: {} stranded faults", self.driver.pending_len()));
        }

        // Request conservation: every translation request retires exactly
        // once — no stranded waiters, no double completions (the dedup
        // guards must have absorbed every duplicated message).
        for (id, req) in self.reqs.iter().enumerate() {
            if req.retire_count != 1 {
                violations.push(format!(
                    "req {id} (vpn {}, gpu {}): retired {} times",
                    req.vpn, req.gpu, req.retire_count
                ));
            }
        }

        // The host's centralised table must agree with the directory, and
        // the directory must be self-consistent.
        for vpn in 0..self.host.pt.mapped_pages() as u64 {
            if let Some(pte) = self.host.pt.translate(vpn) {
                if pte.loc != self.dir.home(vpn) {
                    violations.push(format!(
                        "vpn {vpn}: host PT says {:?} but directory says {:?}",
                        pte.loc,
                        self.dir.home(vpn)
                    ));
                }
            }
        }
        if let Err(e) = self.dir.audit() {
            violations.push(e.to_string());
        }

        // Shadow-sanitizer findings (`cfg.sanitize`): per-event invariant
        // violations recorded at ownership commits and retires.
        violations.append(&mut self.sanitizer_violations);

        // PRT: no false negatives beyond the rare fingerprint-collision
        // deletes the paper's design accepts. A plan that deliberately
        // corrupts the filters (stale entries, pollution) voids this check
        // — correctness then rests on the watchdog fallback instead.
        if !self.injector.plan().perturbs_tables() {
            for g in 0..self.gpus.len() {
                let mapped: Vec<u64> = (0..self.host.pt.mapped_pages() as u64)
                    .filter(|&vpn| self.gpus[g].pt.translate(vpn).is_some())
                    .collect();
                let gpu = &mut self.gpus[g];
                if let Some(prt) = gpu.prt.as_mut() {
                    let missing = mapped
                        .iter()
                        .filter(|&&vpn| !prt.may_be_local(vpn))
                        .count();
                    let rate = missing as f64 / mapped.len().max(1) as f64;
                    if rate >= 0.01 {
                        violations.push(format!(
                            "GPU{g}: PRT false-negative rate {rate} over {} pages",
                            mapped.len()
                        ));
                    }
                }
            }
        }

        if violations.is_empty() {
            Ok(())
        } else {
            Err(SimError::InvariantViolation(violations.join("; ")))
        }
    }

    fn finalize(mut self) -> Result<RunMetrics, SimError> {
        self.audit()?;
        self.metrics.total_cycles = self.last_real_event;
        for gpu in &self.gpus {
            for cu in &gpu.cus {
                self.metrics.l1_hits = self.metrics.l1_hits.saturating_add(cu.l1.hits());
                self.metrics.l1_misses = self.metrics.l1_misses.saturating_add(cu.l1.misses());
            }
            self.metrics.l2_hits = self.metrics.l2_hits.saturating_add(gpu.l2.hits());
            self.metrics.l2_misses = self.metrics.l2_misses.saturating_add(gpu.l2.misses());
            self.metrics.gmmu_pwc.merge(gpu.pwc.stats());
        }
        self.metrics.host_pwc.merge(self.host.pwc.stats());
        self.metrics.host_tlb_hits = self.host.tlb.hits();
        self.metrics.host_tlb_misses = self.host.tlb.misses();
        self.metrics.host_queue_peak = self.host.queue.peak();
        self.metrics.directory = self.dir.stats();
        self.metrics.placement.migration_latency = self.migration_log.latency();
        self.metrics.driver_batches = self.driver.batch_count();
        for req in self.reqs.iter() {
            self.metrics.breakdown.gmmu_queue += req.lat.gmmu_queue;
            self.metrics.breakdown.gmmu_walk += req.lat.gmmu_walk;
            self.metrics.breakdown.host_queue += req.lat.host_queue;
            self.metrics.breakdown.host_walk += req.lat.host_walk;
            self.metrics.breakdown.migration += req.lat.migration;
            self.metrics.breakdown.network += req.lat.network;
        }
        self.metrics.resilience.faults_injected = self.injector.stats();
        // Data transfers rerouted inside the fabric join the control
        // messages rerouted at the protocol layer.
        self.metrics.recovery.rerouted_messages = self.metrics.recovery.rerouted_messages.saturating_add(self.fabric.rerouted_count());
        self.metrics.overload = self.overload.take_stats();
        self.metrics.oversub = self.oversub.take_stats();
        Ok(self.metrics)
    }
}

/// The simulator's hardware state, viewed through the shared protocol
/// transition layer: every table mutation the transitions in
/// [`crate::protocol`] perform lands on the real structures (page tables
/// with PW-cache invalidation, TLB hierarchies, cuckoo PRT/FT), the lossy
/// gate draws from the fault injector, and metric notes land on
/// [`RunMetrics`].
impl ProtocolTables for System {
    fn pt_insert(&mut self, gpu: GpuId, vpn: u64, loc: Location) {
        if let Some(g) = self.gpus.get_mut(gpu as usize) {
            g.pt.insert(vpn, Pte::new(vpn, loc));
        }
    }

    fn pt_remove(&mut self, gpu: GpuId, vpn: u64) {
        let levels = self.cfg.page_table_levels;
        if let Some(g) = self.gpus.get_mut(gpu as usize) {
            if let Some((_, emptied)) = g.pt.remove(vpn) {
                for k in emptied {
                    if k <= levels {
                        g.pwc.invalidate(vpn, k);
                    }
                }
            }
        }
    }

    fn tlb_shootdown(&mut self, gpu: GpuId, vpn: u64) {
        if let Some(g) = self.gpus.get_mut(gpu as usize) {
            g.l2.invalidate(vpn);
            for cu in &mut g.cus {
                cu.l1.invalidate(vpn);
            }
        }
    }

    fn local_flush(&mut self, gpu: GpuId) {
        let levels = self.cfg.page_table_levels;
        if let Some(g) = self.gpus.get_mut(gpu as usize) {
            g.pt = PageTable::new(levels);
            g.pwc.flush();
            g.l2.flush();
            for cu in &mut g.cus {
                cu.l1.flush();
            }
        }
    }

    fn has_prt(&self, gpu: GpuId) -> bool {
        self.gpus.get(gpu as usize).is_some_and(|g| g.prt.is_some())
    }

    fn prt_arrived(&mut self, gpu: GpuId, vpn: u64) {
        if let Some(prt) = self.gpus.get_mut(gpu as usize).and_then(|g| g.prt.as_mut()) {
            prt.page_arrived(vpn);
        }
    }

    fn prt_departed(&mut self, gpu: GpuId, vpn: u64) {
        if let Some(prt) = self.gpus.get_mut(gpu as usize).and_then(|g| g.prt.as_mut()) {
            prt.page_departed(vpn);
        }
    }

    fn prt_flush(&mut self, gpu: GpuId) {
        if let Some(prt) = self.gpus.get_mut(gpu as usize).and_then(|g| g.prt.as_mut()) {
            prt.clear();
        }
    }

    fn prt_rebuild(&mut self, gpu: GpuId, resident: &[u64]) {
        if let Some(prt) = self.gpus.get_mut(gpu as usize).and_then(|g| g.prt.as_mut()) {
            prt.apply(&[], resident);
        }
    }

    fn has_ft(&self) -> bool {
        self.host.ft.is_some()
    }

    fn ft_owner_added(&mut self, vpn: u64, gpu: GpuId) {
        if let Some(ft) = self.host.ft.as_mut() {
            ft.owner_added(vpn, gpu);
        }
    }

    fn ft_owner_removed(&mut self, vpn: u64, gpu: GpuId) {
        if let Some(ft) = self.host.ft.as_mut() {
            ft.owner_removed(vpn, gpu);
        }
    }

    fn ft_page_migrated(&mut self, vpn: u64, old: Option<GpuId>, new: GpuId) {
        if let Some(ft) = self.host.ft.as_mut() {
            ft.page_migrated(vpn, old, new);
        }
    }

    fn ft_rewrite_owners(&mut self, vpn: u64, remove: &[GpuId], add: &[GpuId]) {
        if let Some(ft) = self.host.ft.as_mut() {
            ft.rewrite_owners(vpn, remove, add);
        }
    }

    fn host_tlb_invalidate(&mut self, vpn: u64) {
        self.host.tlb.invalidate(vpn);
    }

    fn host_pt_set_loc(&mut self, vpn: u64, loc: Location) {
        if let Some(pte) = self.host.pt.translate_mut(vpn) {
            pte.loc = loc;
        }
    }

    fn drop_table_update(&mut self) -> bool {
        self.injector.drop_table_update()
    }

    fn note(&mut self, note: ProtocolNote) {
        let counter = match note {
            ProtocolNote::TxnCommitted => &mut self.metrics.placement.transactions,
            ProtocolNote::Collapse => &mut self.metrics.placement.collapses,
            ProtocolNote::OwnershipMigration => &mut self.metrics.recovery.ownership_migrations,
            ProtocolNote::FtInvalidation => &mut self.metrics.recovery.ft_invalidations,
            ProtocolNote::PrtRebuild => &mut self.metrics.recovery.prt_rebuilds,
            ProtocolNote::CapacityEviction => &mut self.oversub.stats.evictions,
        };
        *counter = counter.saturating_add(1);
    }
}
