//! White-box system tests with tiny deterministic workloads.

use crate::config::{FarFaultMode, IdealKnobs, PwcKind, SystemConfig, TransFwKnobs};
use crate::system::System;
use crate::workload::{Access, AccessStream, Workload};

/// A fully scripted workload: every CTA replays the same access list.
#[derive(Debug)]
struct Scripted {
    name: &'static str,
    footprint: u64,
    ctas: usize,
    accesses: Vec<Access>,
    owners: Vec<Option<u16>>,
}

impl Scripted {
    fn new(footprint: u64, ctas: usize, accesses: Vec<Access>) -> Self {
        Self {
            name: "scripted",
            footprint,
            ctas,
            accesses,
            owners: Vec::new(),
        }
    }

    fn with_owners(mut self, owners: Vec<Option<u16>>) -> Self {
        self.owners = owners;
        self
    }
}

impl Workload for Scripted {
    fn name(&self) -> &str {
        self.name
    }

    fn footprint_pages(&self) -> u64 {
        self.footprint
    }

    fn cta_count(&self) -> usize {
        self.ctas
    }

    fn make_stream(&self, _cta: usize, _seed: u64) -> Box<dyn AccessStream> {
        Box::new(self.accesses.clone().into_iter())
    }

    fn initial_owner(&self, vpn: u64, _gpus: u16) -> Option<u16> {
        self.owners.get(vpn as usize).copied().flatten()
    }

    fn data_cache_hit_rate(&self) -> f64 {
        0.0 // deterministic: no cache-hit coin flips
    }
}

fn tiny_cfg() -> SystemConfig {
    SystemConfig::builder()
        .gpus(2)
        .cus_per_gpu(2)
        .wavefronts_per_cu(1)
        .build()
}

#[test]
fn single_access_local_page_completes_quickly() {
    // One CTA, one access, page pre-placed on GPU 0: L1 miss -> L2 miss ->
    // GMMU walk -> local hit -> data. No faults, no host traffic.
    let w = Scripted::new(
        4,
        1,
        vec![Access::read(0, 10)],
    )
    .with_owners(vec![Some(0), Some(0), Some(0), Some(0)]);
    let m = System::new(tiny_cfg()).run(&w).unwrap();
    assert_eq!(m.mem_instructions, 1);
    assert_eq!(m.local_faults, 0);
    assert_eq!(m.l1_misses, 1);
    assert_eq!(m.l2_misses, 1);
    assert_eq!(m.translation_requests, 1);
    // Latency: compute 10 + L1 1 + L2 10 + walk 5*100 + dram 200, plus
    // dispatch granularity.
    assert!(m.total_cycles >= 10 + 1 + 10 + 500);
    assert!(m.total_cycles < 2000, "unexpected stalls: {}", m.total_cycles);
}

#[test]
fn remote_page_faults_and_migrates() {
    // GPU 0's CTA touches a page owned by GPU 1: exactly one far fault and
    // one migration; the page ends up local.
    let w = Scripted::new(2, 1, vec![Access::read(0, 5)])
        .with_owners(vec![Some(1), Some(1)]);
    let m = System::new(tiny_cfg()).run(&w).unwrap();
    assert_eq!(m.local_faults, 1);
    assert_eq!(m.directory.migrations, 1);
    assert_eq!(m.host_walks, 1);
}

#[test]
fn repeated_access_hits_l1_tlb() {
    let accesses = vec![Access::read(0, 5); 10];
    let w = Scripted::new(2, 1, accesses).with_owners(vec![Some(0), Some(0)]);
    let m = System::new(tiny_cfg()).run(&w).unwrap();
    assert_eq!(m.mem_instructions, 10);
    assert_eq!(m.l1_misses, 1, "only the first access misses");
    assert_eq!(m.l1_hits, 9);
    assert_eq!(m.translation_requests, 1);
}

#[test]
fn mshr_coalesces_concurrent_misses_to_same_page() {
    // CTAs 0 and 1 land on GPU 0 (greedy placement of 3 CTAs over 2 GPUs)
    // and touch the same remote page concurrently: their misses coalesce in
    // the L2 MSHR, so at most 2 translation requests exist system-wide.
    let w = Scripted::new(2, 3, vec![Access::read(0, 5)])
        .with_owners(vec![Some(1), Some(1)]);
    let m = System::new(tiny_cfg()).run(&w).unwrap();
    assert_eq!(m.mem_instructions, 3);
    assert!(
        m.translation_requests <= 2,
        "concurrent same-page misses should coalesce (got {})",
        m.translation_requests
    );
}

#[test]
fn ping_pong_generates_repeated_faults() {
    // Both GPUs write the same page alternately; with one CTA per GPU the
    // page must bounce at least once each way.
    let accesses = vec![Access::write(0, 50); 8];
    let w = Scripted::new(1, 2, accesses).with_owners(vec![Some(0)]);
    let m = System::new(tiny_cfg()).run(&w).unwrap();
    assert!(
        m.directory.migrations >= 1,
        "shared writes must migrate the page"
    );
    assert!(m.local_faults >= 1);
}

#[test]
fn no_fault_ideal_never_faults() {
    let accesses = vec![Access::write(0, 5); 8];
    let w = Scripted::new(1, 2, accesses);
    let m = System::new(SystemConfig {
        ideal: IdealKnobs {
            no_local_faults: true,
            ..Default::default()
        },
        ..tiny_cfg()
    })
    .run(&w).unwrap();
    assert_eq!(m.local_faults, 0);
    assert_eq!(m.directory.migrations, 0);
}

#[test]
fn zero_migration_latency_removes_migration_component() {
    let accesses = vec![Access::write(0, 20); 6];
    let w = Scripted::new(1, 2, accesses).with_owners(vec![Some(0)]);
    let m = System::new(SystemConfig {
        ideal: IdealKnobs {
            zero_migration_latency: true,
            ..Default::default()
        },
        ..tiny_cfg()
    })
    .run(&w).unwrap();
    assert!(m.local_faults > 0, "faults still happen");
    assert_eq!(m.breakdown.migration, 0, "but cost nothing");
}

#[test]
fn transfw_prt_short_circuits_remote_page() {
    // GPU 0 touches GPU 1's page with Trans-FW: the PRT must bypass the
    // GMMU walk (the page was never local to GPU 0).
    let w = Scripted::new(16, 1, vec![Access::read(8, 5)])
        .with_owners((0..16).map(|_| Some(1)).collect());
    let cfg = SystemConfig {
        transfw: Some(TransFwKnobs::full()),
        ..tiny_cfg()
    };
    let m = System::new(cfg).run(&w).unwrap();
    assert_eq!(m.transfw.gmmu_bypassed, 1, "PRT miss must short-circuit");
    assert_eq!(m.local_faults, 0, "no GMMU walk means no local fault event");
}

#[test]
fn transfw_prt_lets_local_pages_walk_locally() {
    let w = Scripted::new(4, 1, vec![Access::read(0, 5)])
        .with_owners(vec![Some(0); 4]);
    let cfg = SystemConfig {
        transfw: Some(TransFwKnobs::full()),
        ..tiny_cfg()
    };
    let m = System::new(cfg).run(&w).unwrap();
    assert_eq!(m.transfw.gmmu_bypassed, 0, "local page must not bypass");
    assert_eq!(m.local_faults, 0);
}

#[test]
fn driver_mode_batches_faults() {
    let accesses = vec![Access::read(0, 5), Access::read(1, 5)];
    let w = Scripted::new(2, 1, accesses).with_owners(vec![Some(1), Some(1)]);
    let cfg = SystemConfig {
        fault_mode: FarFaultMode::UvmDriver,
        ..tiny_cfg()
    };
    let m = System::new(cfg).run(&w).unwrap();
    assert!(m.driver_batches >= 1);
    assert_eq!(m.local_faults, 2);
    assert_eq!(m.host_walks, 2, "driver-processed faults count as walks");
}

#[test]
fn infinite_pwc_walks_are_short_after_warmup() {
    // Touch 16 pages in the same leaf table twice; with an infinite
    // PW-cache the second round resumes at level 2 (1 access per walk).
    let mut accesses: Vec<Access> = (0..16).map(|v| Access::read(v, 2)).collect();
    accesses.extend((0..16).map(|v| Access::read(v, 2)));
    let w = Scripted::new(16, 1, accesses).with_owners(vec![Some(0); 16]);
    let mut cfg = tiny_cfg();
    cfg.pwc_kind = PwcKind::Infinite;
    cfg.l1_tlb_entries = 4; // force L1/L2 evictions so walks repeat
    cfg.l2_tlb_entries = 4;
    cfg.l2_tlb_assoc = 4;
    let m = System::new(cfg).run(&w).unwrap();
    let per_walk = m.gmmu_walk_accesses as f64 / m.translation_requests.max(1) as f64;
    assert!(
        per_walk < 3.0,
        "infinite PW-cache should shorten walks, got {per_walk} accesses/walk"
    );
}

#[test]
fn large_pages_collapse_vpns() {
    // 512 distinct 4K pages = one 2 MB page: a single translation request
    // serves everything after the first fill.
    let accesses: Vec<Access> = (0..512).map(|v| Access::read(v, 1)).collect();
    let w = Scripted::new(512, 1, accesses).with_owners(vec![Some(0); 512]);
    let mut cfg = tiny_cfg();
    cfg.page_size_bits = 21;
    let m = System::new(cfg).run(&w).unwrap();
    assert_eq!(m.translation_requests, 1, "one 2MB translation");
    assert_eq!(m.l1_misses, 1);
}

#[test]
fn metrics_accumulate_over_both_gpus() {
    let accesses = vec![Access::read(0, 5), Access::read(1, 5)];
    let w = Scripted::new(4, 2, accesses).with_owners(vec![Some(0); 4]);
    let m = System::new(tiny_cfg()).run(&w).unwrap();
    // 2 CTAs x 2 accesses.
    assert_eq!(m.mem_instructions, 4);
    assert_eq!(m.sharing.page_count(), 2);
}

#[test]
fn greedy_cta_placement_fills_gpus_in_blocks() {
    // 4 CTAs on 2 GPUs: CTAs 0-1 on GPU 0, 2-3 on GPU 1. Each touches its
    // own page; sharing profile must see each page from exactly one GPU.
    #[derive(Debug)]
    struct PerCta;
    impl Workload for PerCta {
        fn name(&self) -> &str {
            "percta"
        }
        fn footprint_pages(&self) -> u64 {
            4
        }
        fn cta_count(&self) -> usize {
            4
        }
        fn make_stream(&self, cta: usize, _seed: u64) -> Box<dyn AccessStream> {
            Box::new(std::iter::once(Access::read(cta as u64, 1)))
        }
        fn initial_owner(&self, vpn: u64, _gpus: u16) -> Option<u16> {
            Some((vpn / 2) as u16)
        }
        fn data_cache_hit_rate(&self) -> f64 {
            0.0
        }
    }
    let m = System::new(tiny_cfg()).run(&PerCta).unwrap();
    assert_eq!(m.local_faults, 0, "greedy block placement matches owners");
    let deg = m.sharing.access_fraction_by_degree(2);
    assert!((deg[0] - 1.0).abs() < 1e-9, "all accesses private: {deg:?}");
}

#[test]
fn config_accessor_reflects_input() {
    let cfg = tiny_cfg();
    let sys = System::new(cfg.clone());
    assert_eq!(sys.config(), &cfg);
}

#[test]
fn migration_racing_inflight_forwarded_walk_retires_once() {
    // Trans-FW with an eager forward threshold and a single host walker:
    // every CTA faults on a distinct remote page at once, the PW-queue
    // backs up, and later arrivals are forwarded to the very GPUs the host
    // is simultaneously migrating pages away from. Stale remote supplies
    // must be suppressed by the idempotence guards and every request must
    // still retire exactly once (the post-run auditor also verifies no
    // stale short-circuit state survives).
    #[derive(Debug)]
    struct Interleaved;
    impl Workload for Interleaved {
        fn name(&self) -> &str {
            "race"
        }
        fn footprint_pages(&self) -> u64 {
            8
        }
        fn cta_count(&self) -> usize {
            4
        }
        fn make_stream(&self, cta: usize, _seed: u64) -> Box<dyn AccessStream> {
            // CTAs 0-1 run on GPU 0 and sweep GPU 1's pages (0..4) from
            // staggered offsets so both wavefronts fault concurrently on
            // distinct pages; CTAs 2-3 mirror that against GPU 0's pages.
            let base: u64 = if cta < 2 { 0 } else { 4 };
            let offset = (cta % 2) as u64 * 2;
            let accesses: Vec<Access> = (0..12)
                .map(|i| Access::write(base + (offset + i) % 4, 2))
                .collect();
            Box::new(accesses.into_iter())
        }
        fn initial_owner(&self, vpn: u64, _gpus: u16) -> Option<u16> {
            Some(if vpn < 4 { 1 } else { 0 })
        }
        fn data_cache_hit_rate(&self) -> f64 {
            0.0
        }
    }
    let mut knobs = TransFwKnobs::full();
    knobs.config.forward_threshold = 0.0; // forward whenever anything queues
    let mut cfg = SystemConfig {
        transfw: Some(knobs),
        ..tiny_cfg()
    };
    cfg.host_walkers = 1; // serialise host walks so the PW-queue backs up
    let m = System::new(cfg).run(&Interleaved).unwrap();
    assert!(m.transfw.forwarded >= 1, "race never materialised");
    assert!(m.directory.migrations >= 1, "contended writes must migrate");
    assert_eq!(m.resilience.requests_retired, m.translation_requests);
    assert_eq!(m.mem_instructions, 48);
}

#[test]
fn replicate_then_write_collapse_end_to_end() {
    // Under ReadDuplicate GPUs 0 and 1 read page 0 (one becomes home, the
    // other a replica); GPU 2 — which has no local mapping, so its write
    // actually far-faults — then collapses the page back to a single owner.
    // The collapse transaction must leave the directory, host PT and PRT/FT
    // coherent — the post-run auditor checks all of it.
    #[derive(Debug)]
    struct RwSplit;
    impl Workload for RwSplit {
        fn name(&self) -> &str {
            "rwsplit"
        }
        fn footprint_pages(&self) -> u64 {
            1
        }
        fn cta_count(&self) -> usize {
            3
        }
        fn make_stream(&self, cta: usize, _seed: u64) -> Box<dyn AccessStream> {
            // CTA 2 writes long after the readers established replicas.
            Box::new(std::iter::once(if cta == 2 {
                Access::write(0, 20_000)
            } else {
                Access::read(0, 2)
            }))
        }
        fn data_cache_hit_rate(&self) -> f64 {
            0.0
        }
    }
    let cfg = SystemConfig {
        placement: Some(uvm::PolicyKind::ReadDuplicate),
        transfw: Some(TransFwKnobs::full()),
        ..SystemConfig::builder()
            .gpus(3)
            .cus_per_gpu(1)
            .wavefronts_per_cu(1)
            .build()
    };
    let m = System::new(cfg).run(&RwSplit).unwrap();
    assert!(m.directory.replications >= 1, "reads must replicate");
    assert!(m.placement.collapses >= 1, "a write must collapse the replica set");
    assert!(m.directory.write_invalidations >= 1);
    assert_eq!(m.resilience.requests_retired, m.translation_requests);
}

#[test]
fn prefetch_skips_vpns_already_pending_in_the_prt() {
    // Radius-3 prefetch: GPU 0 demand-faults on page 8 (neighborhood
    // 9..=15). Page 9 is already resident on GPU 0, so with a PRT present
    // its whole 8-page group looks pending (`may_be_local` is group
    // granular) and every candidate must be skipped rather than
    // double-inserted into the multiset filter.
    let mut owners = vec![Some(1u16); 16];
    owners[9] = Some(0);
    let w = Scripted::new(16, 1, vec![Access::read(8, 5)]).with_owners(owners.clone());
    let cfg = SystemConfig {
        placement: Some(uvm::PolicyKind::PrefetchNeighborhood { radius: 3 }),
        transfw: Some(TransFwKnobs::full()),
        ..tiny_cfg()
    };
    let m = System::new(cfg).run(&w).unwrap();
    assert_eq!(m.directory.migrations, 1, "the demand page migrates");
    assert_eq!(m.placement.prefetched_pages, 0, "whole group is pending");
    assert_eq!(m.placement.prefetch_skipped_pending, 7, "9..=15 all skipped");

    // Without a PRT only the page-table check gates: page 9 (mapped on the
    // destination) is skipped, the untouched source-homed 10..=15 move.
    let w = Scripted::new(16, 1, vec![Access::read(8, 5)]).with_owners(owners);
    let cfg = SystemConfig {
        placement: Some(uvm::PolicyKind::PrefetchNeighborhood { radius: 3 }),
        ..tiny_cfg()
    };
    let m = System::new(cfg).run(&w).unwrap();
    assert_eq!(m.placement.prefetched_pages, 6, "10..=15 travel along");
    assert_eq!(m.placement.prefetch_skipped_pending, 1, "only page 9 pending");
    assert_eq!(m.directory.prefetches, 6);
}

#[test]
fn sanitized_run_is_bit_identical_and_clean() {
    // The shadow sanitizer is read-only: a contended ping-pong workload
    // (repeated cross-GPU write migrations, full Trans-FW tables engaged)
    // must produce *identical* metrics with and without `sanitize`, and the
    // sanitized run must finish clean — no false findings from the auditor.
    let accesses: Vec<Access> = (0..12).map(|i| Access::write(i % 4, 10)).collect();
    let workload = || Scripted::new(4, 4, accesses.clone()).with_owners(vec![Some(1); 4]);
    let cfg = || SystemConfig {
        transfw: Some(TransFwKnobs::full()),
        ..tiny_cfg()
    };
    let plain = System::new(cfg()).run(&workload()).unwrap();
    let sanitized = System::new(SystemConfig {
        sanitize: true,
        ..cfg()
    })
    .run(&workload())
    .unwrap();
    assert_eq!(plain, sanitized, "sanitizer perturbed the run");
    assert!(plain.directory.migrations > 1, "workload was not contended");
}

#[test]
fn gpu_offline_mid_run_recovers_on_scripted_workload() {
    // GPU 1 dies at cycle 200 with walks in flight and pages resident,
    // rejoins at 1200: the run must complete with every request retired
    // exactly once and the drain/re-issue machinery exercised.
    use sim_core::{ComponentEvent, FaultPlan};
    let accesses: Vec<Access> = (0..16).map(|i| Access::write(i % 8, 20)).collect();
    let w = Scripted::new(8, 4, accesses).with_owners(vec![Some(0); 8]);
    let mut cfg = tiny_cfg();
    cfg.faults = FaultPlan::components(vec![ComponentEvent::GpuOffline {
        gpu: 1,
        at_cycle: 200,
        duration: 1_000,
    }]);
    cfg.watchdog.max_cycles = Some(200_000);
    let m = System::new(cfg).run(&w).unwrap();
    assert_eq!(m.recovery.gpu_offline_events, 1);
    assert_eq!(m.recovery.gpu_rejoins, 1);
    assert!(m.recovery.deferred_events > 0);
    assert_eq!(m.mem_instructions, 64);
    assert_eq!(m.resilience.requests_retired, m.translation_requests);
}
