//! Run metrics: everything the paper's figures are computed from.

use ptw::PwCacheStats;
use sim_core::det::DetMap;
use uvm::DirectoryStats;

/// The L2-TLB-miss latency components of Fig. 3/12, accumulated over all
/// translation requests (cycles).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyBreakdown {
    /// Waiting in the GMMU PW-queue.
    pub gmmu_queue: u64,
    /// GMMU page-table memory accesses (the PW-cache-miss penalty).
    pub gmmu_walk: u64,
    /// Waiting in the host MMU PW-queue (or the driver backlog).
    pub host_queue: u64,
    /// Host page-table memory accesses.
    pub host_walk: u64,
    /// Page migration data transfer on the critical path.
    pub migration: u64,
    /// Interconnect hops and request replay.
    pub network: u64,
}

impl LatencyBreakdown {
    /// Sum of all components.
    pub fn total(&self) -> u64 {
        self.gmmu_queue
            + self.gmmu_walk
            + self.host_queue
            + self.host_walk
            + self.migration
            + self.network
    }

    /// The fault-handling share (everything past the GMMU; §III-B reports
    /// 86.1% on average for the baseline).
    pub fn fault_total(&self) -> u64 {
        self.host_queue + self.host_walk + self.migration + self.network
    }

    /// Each component as a fraction of the total, in the order
    /// `[gmmu_queue, gmmu_walk, host_queue, host_walk, migration, network]`.
    pub fn fractions(&self) -> [f64; 6] {
        let t = self.total() as f64;
        if t == 0.0 {
            return [0.0; 6];
        }
        [
            self.gmmu_queue as f64 / t,
            self.gmmu_walk as f64 / t,
            self.host_queue as f64 / t,
            self.host_walk as f64 / t,
            self.migration as f64 / t,
            self.network as f64 / t,
        ]
    }

    /// Per-component reduction versus a baseline, as fractions in `[0, 1]`
    /// (0 when the baseline component is 0), same order as
    /// [`fractions`](Self::fractions). Used for Fig. 12.
    pub fn reduction_vs(&self, base: &LatencyBreakdown) -> [f64; 6] {
        fn red(opt: u64, base: u64) -> f64 {
            if base == 0 {
                0.0
            } else {
                1.0 - (opt as f64 / base as f64).min(1.0)
            }
        }
        [
            red(self.gmmu_queue, base.gmmu_queue),
            red(self.gmmu_walk, base.gmmu_walk),
            red(self.host_queue, base.host_queue),
            red(self.host_walk, base.host_walk),
            red(self.migration, base.migration),
            red(self.network, base.network),
        ]
    }
}

/// Page-sharing bookkeeping for Figs. 7 and 24: which GPUs touched each
/// page, and how many reads/writes each page received.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SharingProfile {
    pages: DetMap<u64, PageTouch>,
}

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct PageTouch {
    gpu_mask: u64,
    reads: u64,
    writes: u64,
}

impl SharingProfile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one access.
    pub fn record(&mut self, vpn: u64, gpu: u16, is_write: bool) {
        let t = self.pages.entry(vpn).or_default();
        t.gpu_mask |= 1 << gpu;
        if is_write {
            t.writes += 1;
        } else {
            t.reads += 1;
        }
    }

    /// Fraction of all page accesses that went to pages shared by exactly
    /// `1, 2, 3, …, max_degree` GPUs (Fig. 7; the last bucket absorbs higher
    /// degrees).
    pub fn access_fraction_by_degree(&self, max_degree: usize) -> Vec<f64> {
        let mut by_degree = vec![0u64; max_degree + 1];
        let mut total = 0u64;
        for t in self.pages.values() {
            let d = (t.gpu_mask.count_ones() as usize).min(max_degree);
            let acc = t.reads + t.writes;
            by_degree[d] += acc;
            total += acc;
        }
        by_degree[1..]
            .iter()
            .map(|&a| sim_core::stats::ratio(a, total))
            .collect()
    }

    /// `(reads, writes)` to pages shared by at least two GPUs (Fig. 24).
    pub fn shared_rw(&self) -> (u64, u64) {
        let mut reads = 0;
        let mut writes = 0;
        for t in self.pages.values() {
            if t.gpu_mask.count_ones() >= 2 {
                reads += t.reads;
                writes += t.writes;
            }
        }
        (reads, writes)
    }

    /// Number of distinct pages touched.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }
}

/// Counters specific to the Trans-FW datapath.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransFwStats {
    /// L2 TLB misses that skipped the GMMU walk on a PRT miss.
    pub gmmu_bypassed: u64,
    /// PRT hits that nonetheless faulted (false positives).
    pub prt_false_positives: u64,
    /// Host requests forwarded to a remote GPU.
    pub forwarded: u64,
    /// Forwarded requests whose translation was supplied by the remote GPU.
    pub remote_supplied: u64,
    /// Forwarded requests that failed at the remote GPU (FT false
    /// positives/stale owners).
    pub remote_failed: u64,
    /// Host walks cancelled because the remote lookup finished first.
    pub cancelled_host_walks: u64,
    /// Requests where both the host walk and the remote walk ran (Fig. 14's
    /// replicated PT-walks).
    pub replicated_walks: u64,
}

/// The remote PW-cache probe study of Fig. 8: on each local fault, would a
/// remote GPU's PW-cache have served the prefix?
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RemoteProbeStats {
    /// Local faults probed.
    pub faults: u64,
    /// Faults where some remote PW-cache held a matching prefix.
    pub hits: u64,
    /// Hits at the lower levels (L2/L3): 1–2 remaining accesses.
    pub lower_hits: u64,
}

impl RemoteProbeStats {
    /// Remote hit rate over probed faults.
    pub fn hit_rate(&self) -> f64 {
        sim_core::stats::ratio(self.hits, self.faults)
    }

    /// Lower-level (L2/L3) remote hit rate.
    pub fn lower_hit_rate(&self) -> f64 {
        sim_core::stats::ratio(self.lower_hits, self.faults)
    }
}

/// Policy-engine counters: what the placement-policy engine's ownership
/// transactions did during the run, beyond the per-decision tallies in
/// [`DirectoryStats`]. All-zero when every fault is already-resident (or
/// the run has no far faults).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlacementStats {
    /// Ownership transactions applied to the memory system (every far-fault
    /// resolution, collapse, promotion and prefetch flows through one).
    pub transactions: u64,
    /// Cold pages pulled in by the prefetch policy alongside migrations.
    pub prefetched_pages: u64,
    /// Prefetch candidates skipped because the destination GPU already had
    /// a local mapping or a pending PRT entry for the VPN (double-inserting
    /// the multiset filter would corrupt later departures).
    pub prefetch_skipped_pending: u64,
    /// Write-collapses of replicated pages back to a single owner.
    pub collapses: u64,
    /// Critical-path latency of data-moving transactions (migration,
    /// replication, collapse), over every such transaction.
    pub migration_latency: sim_core::stats::LatencyAccumulator,
}

/// Resilience counters: what the protocol watchdogs and the fault injector
/// did during the run. All-zero on a fault-free run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResilienceStats {
    /// Remote lookups / forwarded walks whose watchdog deadline fired.
    pub remote_timeouts: u64,
    /// Lossy retries issued by the watchdog before degrading.
    pub retries: u64,
    /// Requests that degraded to the reliable fallback host-walk path.
    pub fallback_walks: u64,
    /// Duplicated protocol messages discarded by idempotence guards.
    pub duplicates_suppressed: u64,
    /// Translation requests retired (each exactly once — audited).
    pub requests_retired: u64,
    /// Faults actually injected, by kind.
    pub faults_injected: sim_core::InjectStats,
}

/// Component-failure and recovery counters: what the recovery state machine
/// did during the run. All-zero unless the fault plan schedules component
/// events or checkpointing is enabled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// GPUs taken offline by the fault plan.
    pub gpu_offline_events: u64,
    /// GPUs re-admitted after an offline window.
    pub gpu_rejoins: u64,
    /// Link partitions opened by the fault plan.
    pub link_partition_events: u64,
    /// Host-MMU failover windows entered.
    pub host_failover_events: u64,
    /// Forwarding-table entries invalidated because they were keyed to a
    /// failed GPU (owner removals plus migrated-away home entries).
    pub ft_invalidations: u64,
    /// PRT rebuilds performed from the page directory on rejoin.
    pub prt_rebuilds: u64,
    /// Pages whose ownership migrated off a failed GPU to a surviving GPU
    /// or back to host memory.
    pub ownership_migrations: u64,
    /// In-flight walks of a failed GPU re-issued through the reliable host
    /// path.
    pub reissued_walks: u64,
    /// Events deferred because their target component was offline (the
    /// warm-up cost a rejoining GPU pays).
    pub deferred_events: u64,
    /// Recovery evictions deferred because the page was pinned by an
    /// outstanding request (a forwarded walk still in flight); completed
    /// when the last request on the page retires, or cancelled at rejoin.
    pub deferred_evictions: u64,
    /// Peer messages rerouted through the host because the direct link was
    /// partitioned.
    pub rerouted_messages: u64,
    /// Epoch checkpoints recorded.
    pub checkpoints_taken: u64,
    /// Restores performed (set by the checkpoint/restore harness).
    pub restores_performed: u64,
}

/// Everything measured by one simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunMetrics {
    /// Workload name.
    pub app: String,
    /// End-to-end execution time in cycles.
    pub total_cycles: u64,
    /// Coalesced memory instructions executed.
    pub mem_instructions: u64,
    /// L1 TLB hits/misses (all CUs).
    pub l1_hits: u64,
    /// L1 TLB misses.
    pub l1_misses: u64,
    /// L2 TLB hits (all GPUs).
    pub l2_hits: u64,
    /// L2 TLB misses.
    pub l2_misses: u64,
    /// Translation requests created (post-MSHR-coalescing L2 misses).
    pub translation_requests: u64,
    /// GPU local page faults (far faults).
    pub local_faults: u64,
    /// Host MMU TLB hits.
    pub host_tlb_hits: u64,
    /// Host MMU TLB misses.
    pub host_tlb_misses: u64,
    /// Host PT-walks performed.
    pub host_walks: u64,
    /// Total GMMU page-table memory accesses.
    pub gmmu_walk_accesses: u64,
    /// Total host page-table memory accesses.
    pub host_walk_accesses: u64,
    /// Latency attribution over all translation requests.
    pub breakdown: LatencyBreakdown,
    /// Merged GMMU PW-cache statistics.
    pub gmmu_pwc: PwCacheStats,
    /// Host PW-cache statistics.
    pub host_pwc: PwCacheStats,
    /// Page-sharing profile.
    pub sharing: SharingProfile,
    /// Trans-FW datapath counters.
    pub transfw: TransFwStats,
    /// Fig. 8 remote-probe counters.
    pub remote_probe: RemoteProbeStats,
    /// Placement statistics (migrations, replications, …).
    pub directory: DirectoryStats,
    /// Policy-engine transaction counters (prefetches, collapses, migration
    /// latency).
    pub placement: PlacementStats,
    /// Software-driver batches processed (driver mode only).
    pub driver_batches: u64,
    /// Peak host PW-queue occupancy.
    pub host_queue_peak: usize,
    /// Watchdog and fault-injection counters.
    pub resilience: ResilienceStats,
    /// Component-failure and recovery counters.
    pub recovery: RecoveryStats,
    /// Overload-control counters: shed/deferred work by priority class,
    /// retry-budget and backoff accounting, breaker transitions, and the
    /// demand-walk latency tail (all zero while overload control is off).
    pub overload: crate::overload::OverloadStats,
    /// Oversubscription counters: capacity evictions, refaults, thrash-gate
    /// trips, pinned-victim skips and direct-access fallbacks (all zero
    /// while oversubscription is off).
    pub oversub: crate::oversub::OversubStats,
}

impl RunMetrics {
    /// Page faults per kilo (memory) instruction — the Table III metric.
    pub fn pfpki(&self) -> f64 {
        if self.mem_instructions == 0 {
            0.0
        } else {
            self.local_faults as f64 * 1000.0 / self.mem_instructions as f64
        }
    }

    /// L2 TLB hit rate.
    pub fn l2_hit_rate(&self) -> f64 {
        sim_core::stats::ratio(self.l2_hits, self.l2_hits.saturating_add(self.l2_misses))
    }

    /// Speedup of this run relative to `baseline` (>1 means faster).
    ///
    /// # Panics
    ///
    /// Panics if this run has zero cycles.
    pub fn speedup_vs(&self, baseline: &RunMetrics) -> f64 {
        assert!(self.total_cycles > 0, "run has no cycles");
        baseline.total_cycles as f64 / self.total_cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_total_and_fractions() {
        let b = LatencyBreakdown {
            gmmu_queue: 10,
            gmmu_walk: 20,
            host_queue: 30,
            host_walk: 15,
            migration: 20,
            network: 5,
        };
        assert_eq!(b.total(), 100);
        assert_eq!(b.fault_total(), 70);
        let f = b.fractions();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((f[0] - 0.10).abs() < 1e-12);
    }

    #[test]
    fn breakdown_empty_fractions_are_zero() {
        assert_eq!(LatencyBreakdown::default().fractions(), [0.0; 6]);
    }

    #[test]
    fn reduction_vs_baseline() {
        let base = LatencyBreakdown {
            gmmu_queue: 100,
            ..Default::default()
        };
        let opt = LatencyBreakdown {
            gmmu_queue: 25,
            ..Default::default()
        };
        let r = opt.reduction_vs(&base);
        assert!((r[0] - 0.75).abs() < 1e-12);
        assert_eq!(r[1], 0.0, "zero baseline -> zero reduction");
    }

    #[test]
    fn sharing_degree_fractions() {
        let mut s = SharingProfile::new();
        // Page 1: GPU0 only, 3 accesses. Page 2: GPUs 0+1, 1 access.
        s.record(1, 0, false);
        s.record(1, 0, false);
        s.record(1, 0, true);
        s.record(2, 0, false);
        s.record(2, 1, true);
        let f = s.access_fraction_by_degree(4);
        assert_eq!(f.len(), 4);
        assert!((f[0] - 0.6).abs() < 1e-12, "degree 1: 3/5");
        assert!((f[1] - 0.4).abs() < 1e-12, "degree 2: 2/5");
        assert_eq!(s.page_count(), 2);
    }

    #[test]
    fn sharing_degree_clamps_to_max() {
        let mut s = SharingProfile::new();
        for g in 0..8 {
            s.record(7, g, false);
        }
        let f = s.access_fraction_by_degree(4);
        assert!((f[3] - 1.0).abs() < 1e-12, "8-way sharing lands in 4+ bucket");
    }

    #[test]
    fn shared_rw_only_counts_shared_pages() {
        let mut s = SharingProfile::new();
        s.record(1, 0, true); // private page: ignored
        s.record(2, 0, false);
        s.record(2, 1, true);
        s.record(2, 1, true);
        assert_eq!(s.shared_rw(), (1, 2));
    }

    #[test]
    fn pfpki_computation() {
        let m = RunMetrics {
            local_faults: 50,
            mem_instructions: 10_000,
            ..Default::default()
        };
        assert!((m.pfpki() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn speedup_ratio() {
        let base = RunMetrics {
            total_cycles: 200,
            ..Default::default()
        };
        let opt = RunMetrics {
            total_cycles: 100,
            ..Default::default()
        };
        assert_eq!(opt.speedup_vs(&base), 2.0);
    }

    #[test]
    fn remote_probe_rates() {
        let r = RemoteProbeStats {
            faults: 100,
            hits: 88,
            lower_hits: 45,
        };
        assert!((r.hit_rate() - 0.88).abs() < 1e-12);
        assert!((r.lower_hit_rate() - 0.45).abs() < 1e-12);
    }
}
