//! TLBs and MSHRs for the multi-GPU translation hierarchy.
//!
//! Three structures from Fig. 1 of the paper live here:
//!
//! * [`Tlb`] — per-CU L1 TLBs (32-entry fully associative), the per-GPU
//!   shared L2 TLB (512-entry, 16-way) and the host MMU TLB (2048-entry,
//!   64-way), all set-associative with true-LRU replacement.
//! * [`Mshr`] — the miss-status holding registers in front of the L2 TLB and
//!   host MMU that coalesce outstanding requests to the same virtual page.
//!
//! # Examples
//!
//! ```
//! use tlb::Tlb;
//!
//! let mut l1: Tlb<u64> = Tlb::new(32, 32, 1); // fully associative
//! l1.fill(0x12, 0xabc);
//! assert_eq!(l1.lookup(0x12), Some(&0xabc));
//! assert_eq!(l1.lookup(0x13), None);
//! ```

pub mod mshr;

pub use mshr::{Mshr, MshrOutcome};

use sim_core::Cycle;

#[derive(Debug, Clone)]
struct Way<V> {
    vpn: u64,
    value: V,
    tick: u64,
}

/// A set-associative translation lookaside buffer with true-LRU replacement.
///
/// The value type `V` carries whatever the level stores: a physical page
/// number for the L1/L2 TLBs, or a `(ppn, owner)` pair for the host MMU TLB
/// which must also say where a page lives.
#[derive(Debug, Clone)]
pub struct Tlb<V> {
    sets: Vec<Vec<Way<V>>>,
    assoc: usize,
    latency: Cycle,
    tick: u64,
    hits: u64,
    misses: u64,
    shootdowns: u64,
}

impl<V> Tlb<V> {
    /// Creates a TLB of `entries` total entries organised as
    /// `entries / assoc` sets of `assoc` ways, with the given lookup latency.
    ///
    /// An `assoc` equal to `entries` yields a fully associative TLB (the
    /// paper's L1 configuration: "32 entries, 32-way").
    ///
    /// # Panics
    ///
    /// Panics if `entries` or `assoc` is zero, or `entries` is not a multiple
    /// of `assoc`.
    pub fn new(entries: usize, assoc: usize, latency: Cycle) -> Self {
        assert!(entries > 0 && assoc > 0, "entries and assoc must be positive");
        assert!(
            entries.is_multiple_of(assoc),
            "entries ({entries}) must be a multiple of assoc ({assoc})"
        );
        let set_count = entries / assoc;
        Self {
            sets: (0..set_count).map(|_| Vec::with_capacity(assoc)).collect(),
            assoc,
            latency,
            tick: 0,
            hits: 0,
            misses: 0,
            shootdowns: 0,
        }
    }

    /// Lookup latency in cycles (Table II: 1 for L1, 10 for L2).
    pub fn latency(&self) -> Cycle {
        self.latency
    }

    /// Total entry capacity.
    pub fn capacity(&self) -> usize {
        self.sets.len() * self.assoc
    }

    #[inline]
    fn set_of(&self, vpn: u64) -> usize {
        (vpn % self.sets.len() as u64) as usize
    }

    /// Looks up `vpn`, updating LRU state and hit/miss statistics.
    pub fn lookup(&mut self, vpn: u64) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(vpn);
        let ways = &mut self.sets[set];
        if let Some(way) = ways.iter_mut().find(|w| w.vpn == vpn) {
            way.tick = tick;
            self.hits = self.hits.saturating_add(1);
            Some(&way.value)
        } else {
            self.misses = self.misses.saturating_add(1);
            None
        }
    }

    /// Tests for presence without perturbing LRU state or statistics.
    pub fn probe(&self, vpn: u64) -> Option<&V> {
        let set = self.set_of(vpn);
        self.sets[set].iter().find(|w| w.vpn == vpn).map(|w| &w.value)
    }

    /// Inserts (or refreshes) a translation, returning the evicted victim if
    /// the set was full.
    pub fn fill(&mut self, vpn: u64, value: V) -> Option<(u64, V)> {
        self.tick += 1;
        let tick = self.tick;
        let assoc = self.assoc;
        let set = self.set_of(vpn);
        let ways = &mut self.sets[set];
        if let Some(way) = ways.iter_mut().find(|w| w.vpn == vpn) {
            way.value = value;
            way.tick = tick;
            return None;
        }
        if ways.len() < assoc {
            ways.push(Way { vpn, value, tick });
            return None;
        }
        let Some(lru) = ways
            .iter()
            .enumerate()
            .min_by_key(|(_, w)| w.tick)
            .map(|(i, _)| i)
        else {
            return None; // zero-way set: nothing to evict into
        };
        let victim = std::mem::replace(&mut ways[lru], Way { vpn, value, tick });
        Some((victim.vpn, victim.value))
    }

    /// Invalidates one translation (a TLB shootdown); returns the removed
    /// value, if the entry was present.
    pub fn invalidate(&mut self, vpn: u64) -> Option<V> {
        let set = self.set_of(vpn);
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|w| w.vpn == vpn) {
            self.shootdowns += 1;
            Some(ways.swap_remove(pos).value)
        } else {
            None
        }
    }

    /// Drops every entry.
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }

    /// Lookups that hit.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that missed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Successful invalidations performed.
    pub fn shootdowns(&self) -> u64 {
        self.shootdowns
    }

    /// Hit rate over all lookups so far (0 when no lookups).
    pub fn hit_rate(&self) -> f64 {
        sim_core::stats::ratio(self.hits, self.hits.saturating_add(self.misses))
    }

    /// Number of currently valid entries.
    pub fn occupancy(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_fill() {
        let mut t: Tlb<u32> = Tlb::new(8, 2, 1);
        t.fill(5, 50);
        assert_eq!(t.lookup(5), Some(&50));
        assert_eq!(t.hits(), 1);
        assert_eq!(t.misses(), 0);
    }

    #[test]
    fn miss_on_absent() {
        let mut t: Tlb<u32> = Tlb::new(8, 2, 1);
        assert_eq!(t.lookup(5), None);
        assert_eq!(t.misses(), 1);
        assert_eq!(t.hit_rate(), 0.0);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 2-way single-set TLB.
        let mut t: Tlb<u32> = Tlb::new(2, 2, 1);
        t.fill(0, 0);
        t.fill(2, 2);
        t.lookup(0); // 0 is now MRU
        let victim = t.fill(4, 4);
        assert_eq!(victim, Some((2, 2)));
        assert!(t.probe(0).is_some());
        assert!(t.probe(4).is_some());
    }

    #[test]
    fn refill_updates_value_without_eviction() {
        let mut t: Tlb<u32> = Tlb::new(2, 2, 1);
        t.fill(1, 10);
        assert_eq!(t.fill(1, 11), None);
        assert_eq!(t.probe(1), Some(&11));
        assert_eq!(t.occupancy(), 1);
    }

    #[test]
    fn set_mapping_isolates_sets() {
        // 4 sets x 1 way: vpns 0..4 all land in distinct sets.
        let mut t: Tlb<u32> = Tlb::new(4, 1, 1);
        for vpn in 0..4 {
            assert_eq!(t.fill(vpn, vpn as u32), None);
        }
        assert_eq!(t.occupancy(), 4);
        // vpn 4 conflicts with vpn 0 only.
        let victim = t.fill(4, 40);
        assert_eq!(victim, Some((0, 0)));
    }

    #[test]
    fn invalidate_removes_entry() {
        let mut t: Tlb<u32> = Tlb::new(8, 4, 1);
        t.fill(3, 30);
        assert_eq!(t.invalidate(3), Some(30));
        assert_eq!(t.invalidate(3), None);
        assert_eq!(t.shootdowns(), 1);
        assert_eq!(t.lookup(3), None);
    }

    #[test]
    fn flush_empties() {
        let mut t: Tlb<u32> = Tlb::new(8, 4, 1);
        for vpn in 0..8 {
            t.fill(vpn, 0);
        }
        t.flush();
        assert_eq!(t.occupancy(), 0);
    }

    #[test]
    fn probe_does_not_affect_stats_or_lru() {
        let mut t: Tlb<u32> = Tlb::new(2, 2, 1);
        t.fill(0, 0);
        t.fill(2, 2);
        t.probe(0); // should NOT promote 0
        // After fills, 2 is MRU; inserting evicts 0 if probe didn't promote.
        let victim = t.fill(4, 4);
        assert_eq!(victim, Some((0, 0)));
        assert_eq!(t.hits(), 0);
        assert_eq!(t.misses(), 0);
    }

    #[test]
    fn fully_associative_uses_whole_capacity() {
        let mut t: Tlb<u32> = Tlb::new(32, 32, 1);
        for vpn in 0..32 {
            assert_eq!(t.fill(vpn * 1000, 1), None, "no eviction before full");
        }
        assert!(t.fill(999_999, 1).is_some());
    }

    #[test]
    #[should_panic(expected = "multiple of assoc")]
    fn rejects_bad_geometry() {
        let _ = Tlb::<u32>::new(10, 4, 1);
    }
}
