//! Miss-status holding registers with request coalescing.

use sim_core::det::DetMap;

/// Outcome of registering a miss with an [`Mshr`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome {
    /// First outstanding miss for this page: the caller must issue the fill.
    Primary,
    /// An earlier miss for the same page is in flight; this request was
    /// queued behind it and will be woken by [`Mshr::complete`].
    Merged,
    /// No free MSHR entry: the request must stall and retry.
    Full,
}

/// A miss-status holding register file keyed by virtual page number.
///
/// Requests to a page that already has an outstanding fill are *coalesced*:
/// they park in the entry's waiter list and are all released when the fill
/// completes. The paper relies on this heavily (§III-B: Conv2d's speedup
/// comes from many pending requests coalescing onto one page fault).
///
/// # Examples
///
/// ```
/// use tlb::{Mshr, MshrOutcome};
///
/// let mut mshr: Mshr<&str> = Mshr::new(4);
/// assert_eq!(mshr.register(7, "first"), MshrOutcome::Primary);
/// assert_eq!(mshr.register(7, "second"), MshrOutcome::Merged);
/// let woken = mshr.complete(7);
/// assert_eq!(woken, vec!["first", "second"]);
/// ```
#[derive(Debug, Clone)]
pub struct Mshr<W> {
    entries: DetMap<u64, Vec<W>>,
    capacity: usize,
    merged: u64,
    primaries: u64,
    stalls: u64,
}

impl<W> Mshr<W> {
    /// Creates an MSHR file with `capacity` distinct outstanding pages.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            entries: DetMap::new(),
            capacity,
            merged: 0,
            primaries: 0,
            stalls: 0,
        }
    }

    /// Registers a missing request for `vpn` carrying waiter token `waiter`.
    pub fn register(&mut self, vpn: u64, waiter: W) -> MshrOutcome {
        if let Some(waiters) = self.entries.get_mut(&vpn) {
            waiters.push(waiter);
            self.merged += 1;
            return MshrOutcome::Merged;
        }
        if self.entries.len() >= self.capacity {
            self.stalls += 1;
            return MshrOutcome::Full;
        }
        self.entries.insert(vpn, vec![waiter]);
        self.primaries += 1;
        MshrOutcome::Primary
    }

    /// Completes the outstanding fill for `vpn`, returning every coalesced
    /// waiter (primary first, in arrival order). Returns an empty vector if
    /// no entry was outstanding.
    pub fn complete(&mut self, vpn: u64) -> Vec<W> {
        self.entries.remove(&vpn).unwrap_or_default()
    }

    /// Whether a fill for `vpn` is already in flight.
    pub fn is_outstanding(&self, vpn: u64) -> bool {
        self.entries.contains_key(&vpn)
    }

    /// Outstanding distinct pages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no fills are outstanding.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Requests that merged into an existing entry.
    pub fn merged_count(&self) -> u64 {
        self.merged
    }

    /// Requests that allocated a new entry.
    pub fn primary_count(&self) -> u64 {
        self.primaries
    }

    /// Requests rejected because the file was full.
    pub fn stall_count(&self) -> u64 {
        self.stalls
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primary_then_merged() {
        let mut m: Mshr<u32> = Mshr::new(2);
        assert_eq!(m.register(1, 100), MshrOutcome::Primary);
        assert_eq!(m.register(1, 101), MshrOutcome::Merged);
        assert_eq!(m.register(2, 200), MshrOutcome::Primary);
        assert_eq!(m.merged_count(), 1);
        assert_eq!(m.primary_count(), 2);
    }

    #[test]
    fn full_when_capacity_reached() {
        let mut m: Mshr<u32> = Mshr::new(1);
        assert_eq!(m.register(1, 0), MshrOutcome::Primary);
        assert_eq!(m.register(2, 0), MshrOutcome::Full);
        assert_eq!(m.stall_count(), 1);
        // Same page still merges even when full.
        assert_eq!(m.register(1, 1), MshrOutcome::Merged);
    }

    #[test]
    fn complete_releases_all_waiters_in_order() {
        let mut m: Mshr<u32> = Mshr::new(4);
        m.register(9, 1);
        m.register(9, 2);
        m.register(9, 3);
        assert_eq!(m.complete(9), vec![1, 2, 3]);
        assert!(!m.is_outstanding(9));
        assert!(m.is_empty());
    }

    #[test]
    fn complete_absent_is_empty() {
        let mut m: Mshr<u32> = Mshr::new(4);
        assert!(m.complete(42).is_empty());
    }

    #[test]
    fn freed_entry_is_reusable() {
        let mut m: Mshr<u32> = Mshr::new(1);
        m.register(1, 0);
        m.complete(1);
        assert_eq!(m.register(2, 0), MshrOutcome::Primary);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = Mshr::<u32>::new(0);
    }
}
