//! Integration tests combining TLBs and MSHRs as the L1/L2 hierarchy does.

use tlb::{Mshr, MshrOutcome, Tlb};

#[test]
fn two_level_lookup_flow() {
    // Model an L1 (small) in front of an L2 (large): misses fill both.
    let mut l1: Tlb<u64> = Tlb::new(4, 4, 1);
    let mut l2: Tlb<u64> = Tlb::new(64, 16, 10);
    let mut walks = 0;
    let mut translate = |vpn: u64, l1: &mut Tlb<u64>, l2: &mut Tlb<u64>| -> u64 {
        if let Some(&ppn) = l1.lookup(vpn) {
            return ppn;
        }
        if let Some(&ppn) = l2.lookup(vpn) {
            l1.fill(vpn, ppn);
            return ppn;
        }
        walks += 1;
        let ppn = vpn + 1000;
        l2.fill(vpn, ppn);
        l1.fill(vpn, ppn);
        ppn
    };
    // Touch 8 pages twice: 8 walks, second round served by L2 (L1 too small).
    for round in 0..2 {
        for vpn in 0..8 {
            assert_eq!(translate(vpn, &mut l1, &mut l2), vpn + 1000, "round {round}");
        }
    }
    assert_eq!(walks, 8, "L2 must absorb the second round");
    assert!(l2.hits() >= 4);
}

#[test]
fn shootdown_propagates_through_hierarchy() {
    let mut l1: Tlb<u64> = Tlb::new(8, 8, 1);
    let mut l2: Tlb<u64> = Tlb::new(64, 16, 10);
    l2.fill(7, 70);
    l1.fill(7, 70);
    // Page migrates: both levels must drop it.
    l1.invalidate(7);
    l2.invalidate(7);
    assert_eq!(l1.lookup(7), None);
    assert_eq!(l2.lookup(7), None);
    assert_eq!(l1.shootdowns() + l2.shootdowns(), 2);
}

#[test]
fn mshr_guards_duplicate_walks() {
    let mut l2: Tlb<u64> = Tlb::new(64, 16, 10);
    let mut mshr: Mshr<u32> = Mshr::new(8);
    let mut walks_started = 0;
    for waiter in 0..5u32 {
        if l2.lookup(42).is_none() {
            match mshr.register(42, waiter) {
                MshrOutcome::Primary => walks_started += 1,
                MshrOutcome::Merged => {}
                MshrOutcome::Full => unreachable!(),
            }
        }
    }
    assert_eq!(walks_started, 1, "one walk serves all 5 requesters");
    // Walk completes: fill and wake.
    l2.fill(42, 420);
    let woken = mshr.complete(42);
    assert_eq!(woken.len(), 5);
    assert_eq!(l2.lookup(42), Some(&420));
}

#[test]
fn capacity_pressure_alternates_hits_and_misses() {
    // A 2-set TLB with vpns mapping to alternating sets: a cyclic sweep of
    // 2x capacity yields 0% hits (LRU worst case).
    let mut t: Tlb<u64> = Tlb::new(8, 4, 1);
    for _ in 0..3 {
        for vpn in 0..16 {
            if t.lookup(vpn).is_none() {
                t.fill(vpn, vpn);
            }
        }
    }
    assert_eq!(t.hits(), 0, "cyclic over-capacity sweep defeats LRU");
}

#[test]
fn occupancy_never_exceeds_capacity() {
    let mut t: Tlb<u64> = Tlb::new(16, 4, 1);
    for vpn in 0..1000 {
        t.fill(vpn, vpn);
        assert!(t.occupancy() <= 16);
    }
    assert_eq!(t.occupancy(), 16);
}
