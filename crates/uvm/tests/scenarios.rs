//! Multi-step placement scenarios across the directory and driver.

use ptw::Location;
use uvm::{DriverConfig, FaultAction, MigrationPolicy, PageDirectory, UvmDriver};

#[test]
fn producer_consumer_ping_pong() {
    // GPU 0 writes, GPU 1 reads, repeatedly: on-touch keeps migrating.
    let mut dir = PageDirectory::new(2, MigrationPolicy::OnTouch);
    dir.resolve_fault(0, 0, true);
    for round in 0..10 {
        let out = dir.resolve_fault(0, 1, false);
        assert_eq!(out.action, FaultAction::Migrate, "round {round}");
        assert_eq!(out.source, Location::Gpu(0));
        let out = dir.resolve_fault(0, 0, true);
        assert_eq!(out.action, FaultAction::Migrate);
        assert_eq!(out.source, Location::Gpu(1));
    }
    assert_eq!(dir.stats().migrations, 21);
}

#[test]
fn replication_stops_read_ping_pong() {
    let mut dir = PageDirectory::new(2, MigrationPolicy::ReadReplication);
    dir.resolve_fault(0, 0, false);
    dir.resolve_fault(0, 1, false); // replica
    // Further reads are already resident on both GPUs: no faults resolve to
    // data movement.
    for g in 0..2 {
        let out = dir.resolve_fault(0, g, false);
        assert_eq!(out.action, FaultAction::AlreadyResident);
    }
    assert_eq!(dir.stats().migrations, 1, "only the first touch moved data");
}

#[test]
fn write_storm_on_replicated_page() {
    // Alternating writers under replication: every write collapses the
    // other side's copy (the Fig. 24 pathology).
    let mut dir = PageDirectory::new(4, MigrationPolicy::ReadReplication);
    for g in 0..4 {
        dir.resolve_fault(0, g, false);
    }
    let mut invalidations = 0;
    for round in 0..8 {
        let writer = round % 4;
        let out = dir.resolve_fault(0, writer, true);
        invalidations += out.invalidations.len();
        // After a write, only the writer holds the page.
        for g in 0..4 {
            assert_eq!(dir.is_resident(0, g), g == writer, "round {round}");
        }
        // Re-replicate for the next round.
        for g in 0..4 {
            if g != writer {
                dir.resolve_fault(0, g, false);
            }
        }
    }
    assert!(invalidations >= 8, "writes must invalidate replicas");
}

#[test]
fn remote_mapping_defers_until_threshold() {
    let mut dir = PageDirectory::new(2, MigrationPolicy::RemoteMapping { migrate_threshold: 5 });
    dir.resolve_fault(0, 0, false);
    let out = dir.resolve_fault(0, 1, false);
    assert_eq!(out.action, FaultAction::RemoteMap);
    for i in 0..4 {
        assert!(
            dir.record_remote_access(0, 1).is_none(),
            "access {i} below threshold"
        );
    }
    let promo = dir.record_remote_access(0, 1).expect("fifth access promotes");
    assert_eq!(promo.action, FaultAction::Migrate);
    assert_eq!(dir.home(0), Location::Gpu(1));
    // Counter resets after migration: home GPU accesses never promote.
    assert!(dir.record_remote_access(0, 1).is_none());
}

#[test]
fn driver_backlog_drains_in_arrival_order() {
    let mut drv: UvmDriver<u64> = UvmDriver::new(DriverConfig {
        batch_size: 3,
        batch_overhead: 10,
        per_fault_cost: 2,
        walk_threads: 1,
    });
    for f in 0..8u64 {
        drv.submit(f, 0);
    }
    let mut order = Vec::new();
    let mut now = 0;
    while let Some(batch) = drv.try_start_batch(now) {
        now = batch.done_at;
        order.extend(batch.faults);
        drv.finish_batch(now).unwrap();
    }
    assert_eq!(order, (0..8).collect::<Vec<_>>());
    assert_eq!(drv.batch_count(), 3);
    assert_eq!(drv.busy_cycle_count(), (10 + 6) + (10 + 6) + (10 + 4));
}

#[test]
fn directory_stats_partition_by_action() {
    let mut dir = PageDirectory::new(4, MigrationPolicy::ReadReplication);
    dir.resolve_fault(0, 0, false); // migrate (cold)
    dir.resolve_fault(0, 1, false); // replicate
    dir.resolve_fault(0, 2, true); // write: invalidate 2 + migrate
    let s = dir.stats();
    assert_eq!(s.migrations, 2);
    assert_eq!(s.replications, 1);
    assert_eq!(s.write_invalidations, 2);
}

#[test]
fn placement_survives_many_pages() {
    let mut dir = PageDirectory::new(8, MigrationPolicy::OnTouch);
    for vpn in 0..10_000u64 {
        dir.place(vpn, Location::Gpu((vpn % 8) as u16));
    }
    for vpn in (0..10_000u64).step_by(97) {
        assert_eq!(dir.home(vpn), Location::Gpu((vpn % 8) as u16));
        assert!(dir.is_resident(vpn, (vpn % 8) as u16));
    }
}
