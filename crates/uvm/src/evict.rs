//! Victim selection for oversubscribed GPU memories.
//!
//! When a GPU's resident footprint exceeds its configured capacity the
//! memory system must pick pages to evict. [`EvictionEngine`] tracks
//! per-GPU residency and recency (fed by the same [`OwnershipTransaction`]
//! stream the directory emits, so it can never disagree with the
//! authoritative placement for long) and ranks victims under a pluggable
//! [`EvictPolicy`]:
//!
//! * **LRU** — the page with the oldest touch stamp goes first;
//! * **access counter** — the page with the least directory heat
//!   (fault + remote-access counters) goes first, recency breaking ties.
//!
//! Selection never names a *pinned* page (one with a PRT-pending fault or
//! an in-flight forwarded walk against it) and, while the thrash gate is
//! engaged, also protects the hottest `protect_hot` pages — the pinned
//! working set that graceful degradation keeps resident.
//!
//! The engine is deterministic: ties break on ascending VPN, maps iterate
//! in sorted order, and no randomness is drawn anywhere.

use ptw::GpuId;
use sim_core::checkpoint::StateDigest;
use sim_core::det::{DetMap, DetSet};

use crate::directory::PageDirectory;
use crate::policy::{OwnershipTransaction, TxnKind};

/// Which victim-selection policy the engine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvictPolicy {
    /// Evict the least-recently-touched resident page.
    #[default]
    Lru,
    /// Evict the page with the least directory heat (fault plus
    /// remote-access counters), least-recent touch breaking ties.
    AccessCounter,
}

impl EvictPolicy {
    /// Short stable name for reports and JSON.
    pub fn name(&self) -> &'static str {
        match self {
            EvictPolicy::Lru => "lru",
            EvictPolicy::AccessCounter => "access-counter",
        }
    }
}

/// What one victim selection produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VictimPick {
    /// The chosen victim VPN, or `None` when every candidate is pinned or
    /// protected — the caller degrades gracefully instead of evicting.
    pub victim: Option<u64>,
    /// Candidates skipped because they were pinned.
    pub pinned_skipped: u64,
}

/// Per-GPU residency/recency tracker and victim selector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvictionEngine {
    policy: EvictPolicy,
    /// Per GPU: resident VPN → last-touch cycle.
    resident: Vec<DetMap<u64, u64>>,
}

impl EvictionEngine {
    /// Creates an empty engine for `gpus` GPUs under `policy`.
    pub fn new(policy: EvictPolicy, gpus: GpuId) -> Self {
        Self {
            policy,
            resident: vec![DetMap::new(); usize::from(gpus)],
        }
    }

    /// The configured victim-selection policy.
    pub fn policy(&self) -> EvictPolicy {
        self.policy
    }

    /// Resident pages currently tracked on `gpu` (the capacity measure).
    pub fn resident_count(&self, gpu: GpuId) -> usize {
        self.resident.get(usize::from(gpu)).map_or(0, DetMap::len)
    }

    /// Whether `vpn` is tracked as resident on `gpu`.
    pub fn is_tracked(&self, gpu: GpuId, vpn: u64) -> bool {
        self.resident
            .get(usize::from(gpu))
            .is_some_and(|m| m.contains_key(&vpn))
    }

    /// Marks `vpn` resident on `gpu` as of `now` (idempotent; refreshes the
    /// touch stamp).
    pub fn note_resident(&mut self, gpu: GpuId, vpn: u64, now: u64) {
        if let Some(m) = self.resident.get_mut(usize::from(gpu)) {
            m.insert(vpn, now);
        }
    }

    /// Refreshes `vpn`'s touch stamp on `gpu` if it is tracked.
    pub fn note_touch(&mut self, gpu: GpuId, vpn: u64, now: u64) {
        if let Some(m) = self.resident.get_mut(usize::from(gpu)) {
            if let Some(t) = m.get_mut(&vpn) {
                *t = now;
            }
        }
    }

    /// Drops `vpn` from `gpu`'s residency tracking.
    pub fn note_evicted(&mut self, gpu: GpuId, vpn: u64) {
        if let Some(m) = self.resident.get_mut(usize::from(gpu)) {
            m.remove(&vpn);
        }
    }

    /// Clears `gpu`'s tracking entirely (component-failure eviction).
    pub fn on_gpu_offline(&mut self, gpu: GpuId) {
        if let Some(m) = self.resident.get_mut(usize::from(gpu)) {
            m.clear();
        }
    }

    /// Replaces `gpu`'s tracked set with `vpns`, all stamped `now` (warm
    /// placement sync at the start of a run, or a rejoin resync).
    pub fn sync_residency(&mut self, gpu: GpuId, vpns: &[u64], now: u64) {
        if let Some(m) = self.resident.get_mut(usize::from(gpu)) {
            m.clear();
            for &v in vpns {
                m.insert(v, now);
            }
        }
    }

    /// Mirrors one committed ownership transaction into the tracker: the
    /// destination gains residency, invalidated holders and a moved-out
    /// source lose it. Remote maps consume no device memory and are not
    /// tracked.
    pub fn apply_txn(&mut self, txn: &OwnershipTransaction, now: u64) {
        match txn.kind {
            TxnKind::Migrate | TxnKind::Collapse | TxnKind::Prefetch => {
                for &g in &txn.invalidate {
                    if g != txn.dest {
                        self.note_evicted(g, txn.vpn);
                    }
                }
                if let Some(s) = txn.source.gpu() {
                    if s != txn.dest {
                        self.note_evicted(s, txn.vpn);
                    }
                }
                self.note_resident(txn.dest, txn.vpn, now);
            }
            TxnKind::Replicate => {
                self.note_resident(txn.dest, txn.vpn, now);
            }
            TxnKind::RemoteMap => {}
            TxnKind::AlreadyResident => {
                self.note_touch(txn.dest, txn.vpn, now);
            }
        }
    }

    /// Ranks `gpu`'s resident pages and picks the coldest as victim,
    /// skipping `pinned` pages entirely and protecting the hottest
    /// `protect_hot` candidates (0 protects nothing). Returns `None` as
    /// the victim when no candidate survives the exemptions.
    pub fn select_victim(
        &self,
        gpu: GpuId,
        dir: &PageDirectory,
        pinned: &DetSet<u64>,
        protect_hot: usize,
    ) -> VictimPick {
        let Some(m) = self.resident.get(usize::from(gpu)) else {
            return VictimPick {
                victim: None,
                pinned_skipped: 0,
            };
        };
        let mut pinned_skipped = 0u64;
        // Rank key: smaller is colder. DetMap iteration is VPN-ascending,
        // and the key embeds the VPN, so the ordering is total and
        // deterministic.
        let mut candidates: Vec<(u64, u64, u64)> = Vec::new();
        for (&vpn, &touch) in m.iter() {
            if pinned.contains(&vpn) {
                pinned_skipped += 1;
                continue;
            }
            let heat = match self.policy {
                EvictPolicy::Lru => 0,
                EvictPolicy::AccessCounter => dir.page(vpn).map_or(0, |p| {
                    let f: u64 = p.fault_counts.iter().map(|&c| u64::from(c)).sum();
                    let a: u64 = p.access_counts.iter().map(|&c| u64::from(c)).sum();
                    f + a
                }),
            };
            candidates.push((heat, touch, vpn));
        }
        candidates.sort_unstable();
        let victim = if candidates.len() > protect_hot {
            candidates.first().map(|&(_, _, vpn)| vpn)
        } else {
            None
        };
        VictimPick {
            victim,
            pinned_skipped,
        }
    }

    /// A 64-bit digest of the tracked residency/recency state for epoch
    /// checkpoints.
    pub fn state_digest(&self) -> u64 {
        let mut d = StateDigest::new();
        for m in &self.resident {
            for (&vpn, &touch) in m.iter() {
                d.mix(vpn + 1).mix(touch);
            }
            d.mix(u64::MAX); // per-GPU separator
        }
        d.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directory::MigrationPolicy;
    use ptw::Location;

    fn pins(vpns: &[u64]) -> DetSet<u64> {
        let mut s = DetSet::new();
        for &v in vpns {
            s.insert(v);
        }
        s
    }

    #[test]
    fn lru_picks_oldest_touch_with_vpn_tiebreak() {
        let dir = PageDirectory::new(2, MigrationPolicy::OnTouch);
        let mut e = EvictionEngine::new(EvictPolicy::Lru, 2);
        e.note_resident(0, 5, 100);
        e.note_resident(0, 9, 50);
        e.note_resident(0, 3, 50);
        let pick = e.select_victim(0, &dir, &DetSet::new(), 0);
        assert_eq!(pick.victim, Some(3), "oldest touch; vpn breaks the tie");
        e.note_touch(0, 3, 200);
        let pick = e.select_victim(0, &dir, &DetSet::new(), 0);
        assert_eq!(pick.victim, Some(9), "touch refreshed 3's recency");
    }

    #[test]
    fn pinned_pages_are_never_selected() {
        let dir = PageDirectory::new(2, MigrationPolicy::OnTouch);
        let mut e = EvictionEngine::new(EvictPolicy::Lru, 2);
        e.note_resident(0, 5, 10);
        e.note_resident(0, 9, 20);
        let pick = e.select_victim(0, &dir, &pins(&[5]), 0);
        assert_eq!(pick.victim, Some(9));
        assert_eq!(pick.pinned_skipped, 1);
        let pick = e.select_victim(0, &dir, &pins(&[5, 9]), 0);
        assert_eq!(pick.victim, None, "everything pinned: degrade, don't evict");
        assert_eq!(pick.pinned_skipped, 2);
    }

    #[test]
    fn protect_hot_keeps_the_working_set() {
        let dir = PageDirectory::new(2, MigrationPolicy::OnTouch);
        let mut e = EvictionEngine::new(EvictPolicy::Lru, 2);
        e.note_resident(0, 1, 10);
        e.note_resident(0, 2, 20);
        let pick = e.select_victim(0, &dir, &DetSet::new(), 2);
        assert_eq!(pick.victim, None, "both candidates are protected");
        let pick = e.select_victim(0, &dir, &DetSet::new(), 1);
        assert_eq!(pick.victim, Some(1), "the colder page is still evictable");
    }

    #[test]
    fn access_counter_prefers_cold_directory_heat() {
        let mut dir = PageDirectory::new(2, MigrationPolicy::RemoteMapping {
            migrate_threshold: 100,
        });
        let _ = dir.resolve_fault(5, 0, false); // fault heat on 5
        let _ = dir.resolve_fault(5, 1, false);
        let _ = dir.record_remote_access(5, 1);
        dir.place(9, Location::Gpu(0)); // vpn 9: zero heat
        let mut e = EvictionEngine::new(EvictPolicy::AccessCounter, 2);
        e.note_resident(0, 5, 10); // 5 is older by recency...
        e.note_resident(0, 9, 20);
        let pick = e.select_victim(0, &dir, &DetSet::new(), 0);
        assert_eq!(pick.victim, Some(9), "...but 9 is colder by heat");
    }

    #[test]
    fn apply_txn_mirrors_ownership_moves() {
        let mut e = EvictionEngine::new(EvictPolicy::Lru, 3);
        e.note_resident(0, 7, 1);
        let migrate = OwnershipTransaction {
            vpn: 7,
            kind: TxnKind::Migrate,
            source: Location::Gpu(0),
            dest: 1,
            invalidate: vec![0],
            ft_remove: Vec::new(),
        };
        e.apply_txn(&migrate, 5);
        assert!(!e.is_tracked(0, 7));
        assert!(e.is_tracked(1, 7));
        let replicate = OwnershipTransaction {
            vpn: 7,
            kind: TxnKind::Replicate,
            source: Location::Gpu(1),
            dest: 2,
            invalidate: Vec::new(),
            ft_remove: Vec::new(),
        };
        e.apply_txn(&replicate, 6);
        assert!(e.is_tracked(1, 7), "source keeps its copy on replicate");
        assert!(e.is_tracked(2, 7));
        let remote_map = OwnershipTransaction {
            vpn: 9,
            kind: TxnKind::RemoteMap,
            source: Location::Gpu(1),
            dest: 0,
            invalidate: Vec::new(),
            ft_remove: Vec::new(),
        };
        e.apply_txn(&remote_map, 7);
        assert!(!e.is_tracked(0, 9), "remote maps consume no device memory");
        assert_eq!(e.resident_count(1), 1);
    }

    #[test]
    fn collapse_with_local_writer_keeps_dest_tracked() {
        let mut e = EvictionEngine::new(EvictPolicy::Lru, 2);
        e.note_resident(0, 7, 1);
        e.note_resident(1, 7, 1);
        // Writer 1 already holds a replica: source == dest == 1.
        let collapse = OwnershipTransaction {
            vpn: 7,
            kind: TxnKind::Collapse,
            source: Location::Gpu(1),
            dest: 1,
            invalidate: vec![0],
            ft_remove: vec![0],
        };
        e.apply_txn(&collapse, 9);
        assert!(!e.is_tracked(0, 7));
        assert!(e.is_tracked(1, 7));
    }

    #[test]
    fn sync_and_offline_reset_tracking() {
        let mut e = EvictionEngine::new(EvictPolicy::Lru, 2);
        e.sync_residency(0, &[1, 2, 3], 0);
        assert_eq!(e.resident_count(0), 3);
        let d0 = e.state_digest();
        e.on_gpu_offline(0);
        assert_eq!(e.resident_count(0), 0);
        assert_ne!(e.state_digest(), d0);
        e.sync_residency(0, &[1, 2, 3], 0);
        assert_eq!(e.state_digest(), d0, "digest is a pure state function");
    }
}
