//! The driver's centralised view of page placement.

use ptw::{GpuId, Location};
use sim_core::det::{DetMap, DetSet};
use sim_core::SimError;

use crate::policy::{OwnershipTransaction, PlacementPolicy, PolicyDecision, PolicyKind, TxnKind};

/// Page-placement policy (§V-D/E evaluate the last two).
///
/// This is the legacy selector kept for configuration back-compat; it maps
/// 1:1 onto the [`PolicyKind`] engine (see `crate::policy`), which adds
/// prefetching and fault-count-delayed migration on top.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationPolicy {
    /// First touch migrates the page into the faulting GPU (default).
    OnTouch,
    /// Read faults replicate the page; a write invalidates every replica
    /// (ESI coherence, §V-D).
    ReadReplication,
    /// A far fault maps the page in place; after `migrate_threshold`
    /// remote accesses the page migrates for real (§V-E).
    RemoteMapping {
        /// Remote accesses before the page is promoted to a migration.
        migrate_threshold: u32,
    },
}

/// Authoritative placement state of one page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageState {
    /// Owner of the authoritative copy.
    pub home: Location,
    /// Bitmask of GPUs holding read replicas (replication policy only).
    pub replicas: u64,
    /// Bitmask of GPUs holding remote mappings (remote-mapping policy only).
    pub remote_maps: u64,
    /// Per-GPU remote-access counters (remote-mapping policy only).
    pub access_counts: Vec<u32>,
    /// Per-GPU far-fault counters (the policy engine's heat signal; reset
    /// when the page migrates or the GPU is evicted).
    pub fault_counts: Vec<u32>,
}

impl PageState {
    /// A never-touched page: homed on the CPU with zeroed counters.
    pub fn cold(gpu_count: u16) -> Self {
        Self {
            home: Location::Cpu,
            replicas: 0,
            remote_maps: 0,
            access_counts: vec![0; gpu_count as usize],
            fault_counts: vec![0; gpu_count as usize],
        }
    }

    /// Whether `gpu` holds a resident copy (home or replica).
    pub fn resident_on(&self, gpu: GpuId) -> bool {
        self.home == Location::Gpu(gpu) || self.replicas & (1 << gpu) != 0
    }

    /// Every location holding a resident copy, home first.
    pub fn holders(&self) -> Vec<Location> {
        let mut v = vec![self.home];
        for g in 0..64u16 {
            if self.replicas & (1 << g) != 0 {
                v.push(Location::Gpu(g));
            }
        }
        v
    }
}

/// What the fault handler decided to do; the simulator turns this into page
/// transfers, page-table updates, TLB shootdowns and PRT/FT maintenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultOutcome {
    /// The decided action.
    pub action: FaultAction,
    /// Where the data is fetched from.
    pub source: Location,
    /// GPUs whose local PTE and TLB entries for this page must be shot down.
    pub invalidations: Vec<GpuId>,
}

/// The kind of resolution applied to a far fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Page moved into the faulting GPU's memory.
    Migrate,
    /// A read replica was created on the faulting GPU.
    Replicate,
    /// A PTE pointing at remote memory was created; no data moved.
    RemoteMap,
    /// The page was already resident (e.g. a racing fault resolved it).
    AlreadyResident,
}

/// What [`PageDirectory::evict_gpu`] did, so the memory system can mirror
/// the ownership changes into the host page table, host TLB, FT and the
/// surviving GPUs' local tables. All lists are sorted by VPN so the caller's
/// bookkeeping replays deterministically.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EvictionReport {
    /// Pages whose home moved off the evicted GPU, with the new home
    /// (a surviving replica holder when one exists, else the CPU).
    pub migrated: Vec<(u64, Location)>,
    /// Pages that lost a read replica held by the evicted GPU.
    pub dropped_replicas: Vec<u64>,
    /// Pages that lost a remote mapping held by the evicted GPU.
    pub dropped_remote_maps: Vec<u64>,
    /// Stale remote mappings on *surviving* GPUs that pointed at physical
    /// memory on the evicted GPU and must be shot down.
    pub invalidate: Vec<(u64, GpuId)>,
    /// Pages the eviction *skipped* because they were pinned (a forwarded
    /// walk or PRT-pending fault still in flight). The caller must finish
    /// them individually (see [`PageDirectory::evict_page`]) once the pin
    /// drains, or drop them if ownership moved on in the meantime.
    pub deferred: Vec<u64>,
}

impl EvictionReport {
    /// Whether the eviction touched any state at all.
    pub fn is_empty(&self) -> bool {
        self.migrated.is_empty()
            && self.dropped_replicas.is_empty()
            && self.dropped_remote_maps.is_empty()
            && self.invalidate.is_empty()
            && self.deferred.is_empty()
    }
}

/// Aggregate placement statistics for Figs. 7/23/25.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DirectoryStats {
    /// Pages moved between memories.
    pub migrations: u64,
    /// Read replicas created.
    pub replications: u64,
    /// Replica invalidations triggered by writes.
    pub write_invalidations: u64,
    /// Remote mappings created.
    pub remote_maps: u64,
    /// Remote-mapped pages promoted to migrations by the access counter.
    pub promotions: u64,
    /// Cold pages pulled in by the prefetch policy alongside a migration.
    pub prefetches: u64,
}

/// The centralised page table the UVM driver / host MMU consults: it always
/// knows where every page's valid copies live (§II-A).
///
/// Placement decisions are delegated to a [`PlacementPolicy`] built from the
/// configured [`PolicyKind`]; every ownership change is reported as an
/// [`OwnershipTransaction`] the memory system mirrors atomically.
///
/// # Examples
///
/// ```
/// use uvm::{PageDirectory, MigrationPolicy};
/// use ptw::Location;
///
/// let mut dir = PageDirectory::new(4, MigrationPolicy::OnTouch);
/// let out = dir.resolve_fault(42, 1, false);
/// assert_eq!(out.source, Location::Cpu); // first touch fetches from host
/// assert_eq!(dir.home(42), Location::Gpu(1));
/// ```
#[derive(Debug)]
pub struct PageDirectory {
    gpu_count: u16,
    kind: PolicyKind,
    engine: Box<dyn PlacementPolicy>,
    pages: DetMap<u64, PageState>,
    stats: DirectoryStats,
}

impl Clone for PageDirectory {
    fn clone(&self) -> Self {
        // Policies are stateless (all state lives in `PageState`), so a
        // rebuilt box is a faithful clone.
        Self {
            gpu_count: self.gpu_count,
            kind: self.kind,
            engine: self.kind.build(),
            pages: self.pages.clone(),
            stats: self.stats,
        }
    }
}

impl PageDirectory {
    /// Creates a directory for a system of `gpu_count` GPUs under a legacy
    /// policy selector.
    ///
    /// # Panics
    ///
    /// Panics if `gpu_count` is zero or exceeds 64.
    pub fn new(gpu_count: u16, policy: MigrationPolicy) -> Self {
        Self::with_policy(gpu_count, policy.into())
    }

    /// Creates a directory driven by the given placement-policy kind.
    ///
    /// # Panics
    ///
    /// Panics if `gpu_count` is zero or exceeds 64.
    pub fn with_policy(gpu_count: u16, kind: PolicyKind) -> Self {
        assert!((1..=64).contains(&gpu_count), "gpu_count must be 1..=64");
        Self {
            gpu_count,
            kind,
            engine: kind.build(),
            pages: DetMap::new(),
            stats: DirectoryStats::default(),
        }
    }

    /// The configured policy, in the legacy selector's terms.
    pub fn policy(&self) -> MigrationPolicy {
        self.kind.into()
    }

    /// The configured placement-policy kind.
    pub fn policy_kind(&self) -> PolicyKind {
        self.kind
    }

    /// Placement statistics so far.
    pub fn stats(&self) -> DirectoryStats {
        self.stats
    }

    /// Current home of `vpn` (CPU for never-touched pages).
    pub fn home(&self, vpn: u64) -> Location {
        self.pages.get(&vpn).map_or(Location::Cpu, |p| p.home)
    }

    /// Whether `gpu` holds a resident copy of `vpn`.
    pub fn is_resident(&self, vpn: u64, gpu: GpuId) -> bool {
        self.pages.get(&vpn).is_some_and(|p| p.resident_on(gpu))
    }

    /// Placement state, if the page was ever touched.
    pub fn page(&self, vpn: u64) -> Option<&PageState> {
        self.pages.get(&vpn)
    }

    /// Directly places a page (initial/warm-up placement): sets the home
    /// without counting a migration.
    pub fn place(&mut self, vpn: u64, loc: Location) {
        let gpu_count = self.gpu_count;
        let page = self.pages.entry(vpn).or_insert_with(|| PageState::cold(gpu_count));
        page.home = loc;
    }

    /// Registers a remote mapping created outside the fault path (Trans-FW
    /// remote supply), so a later migration invalidates it.
    pub fn add_remote_map(&mut self, vpn: u64, gpu: GpuId) {
        let gpu_count = self.gpu_count;
        let page = self.pages.entry(vpn).or_insert_with(|| PageState::cold(gpu_count));
        page.remote_maps |= 1 << gpu;
    }

    /// Resolves a far fault raised by `gpu` on `vpn`.
    ///
    /// Mutates the authoritative state and returns the actions the memory
    /// system must carry out.
    ///
    /// # Panics
    ///
    /// Panics if `gpu` is out of range. Event-driven callers that may see
    /// corrupted fault descriptors should use
    /// [`try_resolve_fault`](Self::try_resolve_fault) instead.
    pub fn resolve_fault(&mut self, vpn: u64, gpu: GpuId, is_write: bool) -> FaultOutcome {
        self.try_resolve_fault(vpn, gpu, is_write)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`resolve_fault`](Self::resolve_fault): an
    /// out-of-range `gpu` (a corrupted or misrouted fault descriptor)
    /// becomes a [`SimError::Protocol`] instead of a panic, and the
    /// directory state is left untouched.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Protocol`] when `gpu >= gpu_count`.
    pub fn try_resolve_fault(
        &mut self,
        vpn: u64,
        gpu: GpuId,
        is_write: bool,
    ) -> Result<FaultOutcome, SimError> {
        self.begin_fault_txn(vpn, gpu, is_write).map(|t| t.outcome())
    }

    /// Resolves a far fault and returns the full [`OwnershipTransaction`]
    /// the memory system must mirror (directory state is already updated —
    /// the transaction is the directive half of the atomic change).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Protocol`] when `gpu >= gpu_count`.
    pub fn begin_fault_txn(
        &mut self,
        vpn: u64,
        gpu: GpuId,
        is_write: bool,
    ) -> Result<OwnershipTransaction, SimError> {
        if gpu >= self.gpu_count {
            return Err(SimError::Protocol {
                cycle: 0,
                what: format!(
                    "fault on vpn {vpn} from gpu {gpu} out of range (gpu_count {})",
                    self.gpu_count
                ),
            });
        }
        let gpu_count = self.gpu_count;
        let page = self.pages.entry(vpn).or_insert_with(|| PageState::cold(gpu_count));

        if page.resident_on(gpu) && !(is_write && page.replicas != 0) {
            return Ok(OwnershipTransaction {
                vpn,
                kind: TxnKind::AlreadyResident,
                source: Location::Gpu(gpu),
                dest: gpu,
                invalidate: Vec::new(),
                ft_remove: Vec::new(),
            });
        }

        // A genuine far fault: bump the heat counter before consulting the
        // policy, so a threshold of N migrates on the Nth fault.
        if let Some(c) = page.fault_counts.get_mut(gpu as usize) {
            *c += 1;
        }
        let decision = self.engine.on_fault(page, gpu, is_write);
        let stats = &mut self.stats;

        Ok(match decision {
            PolicyDecision::Migrate => {
                let source = page.home;
                let mut invalidate: Vec<GpuId> = source.gpu().into_iter().collect();
                for g in 0..gpu_count {
                    if g != gpu && page.remote_maps & (1 << g) != 0 && Some(g) != source.gpu() {
                        invalidate.push(g);
                    }
                }
                page.remote_maps &= 1 << gpu;
                page.home = Location::Gpu(gpu);
                page.fault_counts.fill(0);
                page.access_counts.fill(0);
                stats.migrations = stats.migrations.saturating_add(1);
                OwnershipTransaction {
                    vpn,
                    kind: TxnKind::Migrate,
                    source,
                    dest: gpu,
                    invalidate,
                    ft_remove: Vec::new(),
                }
            }
            PolicyDecision::Collapse => {
                // Write to a (possibly replicated) page: invalidate every
                // other copy, the writer becomes the exclusive owner.
                let source = if page.resident_on(gpu) {
                    Location::Gpu(gpu)
                } else {
                    page.home
                };
                let mut invalidate: Vec<GpuId> = Vec::new();
                if let Some(h) = page.home.gpu() {
                    if h != gpu {
                        invalidate.push(h);
                    }
                }
                for g in 0..gpu_count {
                    if g != gpu && page.replicas & (1 << g) != 0 {
                        invalidate.push(g);
                    }
                }
                stats.write_invalidations = stats.write_invalidations.saturating_add(invalidate.len() as u64);
                if source != Location::Gpu(gpu) {
                    stats.migrations = stats.migrations.saturating_add(1);
                }
                page.home = Location::Gpu(gpu);
                page.replicas = 0;
                page.fault_counts.fill(0);
                page.access_counts.fill(0);
                // The invalidated copies (minus the data source, whose FT
                // key the migration itself rewrites) still have forwarding
                // entries naming them as owners.
                let ft_remove = invalidate
                    .iter()
                    .copied()
                    .filter(|&v| Some(v) != source.gpu())
                    .collect();
                OwnershipTransaction {
                    vpn,
                    kind: TxnKind::Collapse,
                    source,
                    dest: gpu,
                    invalidate,
                    ft_remove,
                }
            }
            PolicyDecision::Replicate => {
                let source = page.home;
                page.replicas |= 1 << gpu;
                stats.replications = stats.replications.saturating_add(1);
                OwnershipTransaction {
                    vpn,
                    kind: TxnKind::Replicate,
                    source,
                    dest: gpu,
                    invalidate: Vec::new(),
                    ft_remove: Vec::new(),
                }
            }
            PolicyDecision::RemoteMap => {
                let source = page.home;
                page.remote_maps |= 1 << gpu;
                stats.remote_maps = stats.remote_maps.saturating_add(1);
                OwnershipTransaction {
                    vpn,
                    kind: TxnKind::RemoteMap,
                    source,
                    dest: gpu,
                    invalidate: Vec::new(),
                    ft_remove: Vec::new(),
                }
            }
        })
    }

    /// Prefetches a page into `gpu` alongside a demand migration whose data
    /// came `from` some location: eligible pages are *untouched* (no fault
    /// or access history — a page anyone has been using is someone else's
    /// working set) with no replicas or remote mappings, and homed either on
    /// the CPU (cold) or on `from` itself (the tree-prefetch case: the
    /// neighborhood travels with the page that just migrated away from
    /// there).
    ///
    /// Returns the transaction to mirror, or `None` when the page is not
    /// eligible (already on `gpu`, touched, shared, homed elsewhere, or
    /// `gpu` out of range).
    pub fn prefetch_page(
        &mut self,
        vpn: u64,
        gpu: GpuId,
        from: Location,
    ) -> Option<OwnershipTransaction> {
        if gpu >= self.gpu_count {
            return None;
        }
        let gpu_count = self.gpu_count;
        let page = self.pages.entry(vpn).or_insert_with(|| PageState::cold(gpu_count));
        if page.home == Location::Gpu(gpu) || page.replicas != 0 || page.remote_maps != 0 {
            return None;
        }
        if page.home != Location::Cpu && page.home != from {
            return None;
        }
        if page.fault_counts.iter().any(|&c| c != 0)
            || page.access_counts.iter().any(|&c| c != 0)
        {
            return None;
        }
        let source = page.home;
        page.home = Location::Gpu(gpu);
        self.stats.prefetches = self.stats.prefetches.saturating_add(1);
        Some(OwnershipTransaction {
            vpn,
            kind: TxnKind::Prefetch,
            source,
            dest: gpu,
            invalidate: source.gpu().into_iter().collect(),
            ft_remove: Vec::new(),
        })
    }

    /// VPNs the configured policy wants prefetched around `vpn` (ascending;
    /// empty for non-prefetching policies).
    pub fn prefetch_neighborhood(&self, vpn: u64) -> Vec<u64> {
        self.engine.prefetch_neighborhood(vpn)
    }

    /// Records one access through a remote mapping; when the access counter
    /// crosses the policy threshold the page is promoted to a migration and
    /// the returned outcome lists the mappings to invalidate.
    ///
    /// Returns `None` while the page stays put, or under policies that do
    /// not count remote accesses.
    pub fn record_remote_access(&mut self, vpn: u64, gpu: GpuId) -> Option<FaultOutcome> {
        self.record_remote_access_txn(vpn, gpu).map(|t| t.outcome())
    }

    /// Transactional variant of
    /// [`record_remote_access`](Self::record_remote_access).
    pub fn record_remote_access_txn(
        &mut self,
        vpn: u64,
        gpu: GpuId,
    ) -> Option<OwnershipTransaction> {
        let migrate_threshold = self.engine.remote_access_threshold()?;
        // An out-of-range GPU (corrupted descriptor) has no counter slot and
        // can never be promoted; ignore it rather than index out of bounds.
        if gpu >= self.gpu_count {
            return None;
        }
        let stats = &mut self.stats;
        let gpu_count = self.gpu_count;
        let page = self.pages.entry(vpn).or_insert_with(|| PageState::cold(gpu_count));
        if page.home == Location::Gpu(gpu) {
            return None;
        }
        let count = page.access_counts.get_mut(gpu as usize)?;
        *count += 1;
        if *count < migrate_threshold {
            return None;
        }
        // Promote: migrate the page, invalidate every other mapping.
        let source = page.home;
        let mut invalidate: Vec<GpuId> = Vec::new();
        if let Some(h) = source.gpu() {
            invalidate.push(h);
        }
        for g in 0..gpu_count {
            if g != gpu && page.remote_maps & (1 << g) != 0 && Some(g) != source.gpu() {
                invalidate.push(g);
            }
        }
        page.home = Location::Gpu(gpu);
        page.remote_maps = 0;
        page.access_counts.fill(0);
        page.fault_counts.fill(0);
        stats.promotions = stats.promotions.saturating_add(1);
        stats.migrations = stats.migrations.saturating_add(1);
        Some(OwnershipTransaction {
            vpn,
            kind: TxnKind::Migrate,
            source,
            dest: gpu,
            invalidate,
            ft_remove: Vec::new(),
        })
    }

    /// Evicts every trace of `gpu` from the directory: pages homed there are
    /// re-owned (the lowest surviving replica holder is promoted, else the
    /// home falls back to the CPU backing copy), its replica and remote-map
    /// bits are cleared everywhere, and its access *and* fault counters
    /// reset — a rejoined GPU must not inherit pre-failure heat. Remote
    /// mappings on *other* GPUs that pointed at the evicted GPU's memory are
    /// reported for shootdown.
    ///
    /// Pages are processed in ascending VPN order, so two runs that reach
    /// this call with identical directory contents produce identical
    /// reports — the property the checkpoint/restore certificate relies on.
    ///
    /// # Panics
    ///
    /// Panics if `gpu` is out of range.
    pub fn evict_gpu(&mut self, gpu: GpuId) -> EvictionReport {
        self.evict_gpu_pinned(gpu, &DetSet::new())
    }

    /// [`evict_gpu`](Self::evict_gpu), but pages in `pins` whose placement
    /// involves the evicted GPU are left untouched and reported in
    /// [`EvictionReport::deferred`] instead. A pinned page has a walk in
    /// flight against its current placement (a forwarded walk borrowing the
    /// GPU's tables, or a PRT-pending fault); migrating its ownership out
    /// from under that walk would let a stale translation retire. The
    /// caller evicts each deferred page via [`evict_page`](Self::evict_page)
    /// once its pin drains.
    ///
    /// # Panics
    ///
    /// Panics if `gpu` is out of range.
    pub fn evict_gpu_pinned(&mut self, gpu: GpuId, pins: &DetSet<u64>) -> EvictionReport {
        assert!(gpu < self.gpu_count, "gpu {gpu} out of range");
        let mut report = EvictionReport::default();
        let bit = 1u64 << gpu;
        // DetMap iterates in ascending VPN order: the report lists pages in
        // the same deterministic order on every run.
        for (&vpn, page) in self.pages.iter_mut() {
            if pins.contains(&vpn)
                && (page.home == Location::Gpu(gpu)
                    || page.replicas & bit != 0
                    || page.remote_maps & bit != 0)
            {
                report.deferred.push(vpn);
                continue;
            }
            if page.replicas & bit != 0 {
                page.replicas &= !bit;
                report.dropped_replicas.push(vpn);
            }
            if page.remote_maps & bit != 0 {
                page.remote_maps &= !bit;
                report.dropped_remote_maps.push(vpn);
            }
            if let Some(c) = page.access_counts.get_mut(gpu as usize) {
                *c = 0;
            }
            if let Some(c) = page.fault_counts.get_mut(gpu as usize) {
                *c = 0;
            }
            if page.home == Location::Gpu(gpu) {
                // Promote the lowest surviving replica; with none left the
                // CPU backing copy (always coherent for read replicas)
                // becomes the home again.
                let new_home = (0..self.gpu_count)
                    .find(|&g| page.replicas & (1 << g) != 0)
                    .map_or(Location::Cpu, |g| {
                        page.replicas &= !(1 << g);
                        Location::Gpu(g)
                    });
                page.home = new_home;
                self.stats.migrations = self.stats.migrations.saturating_add(1);
                // Data moved (or ceased to exist on the old owner): remote
                // mappings on survivors now dangle and must be shot down.
                for g in 0..self.gpu_count {
                    if g != gpu && page.remote_maps & (1 << g) != 0 {
                        report.invalidate.push((vpn, g));
                    }
                }
                page.remote_maps = 0;
                report.migrated.push((vpn, new_home));
            }
        }
        report
    }

    /// Evicts `gpu`'s copy of a single page — the capacity-eviction
    /// primitive, and the finisher for a pin-deferred recovery eviction.
    /// Exactly the per-page body of [`evict_gpu`](Self::evict_gpu): a
    /// replica or remote mapping is dropped, a home copy is re-owned (the
    /// lowest surviving replica is promoted, else the CPU backing copy),
    /// and dangling remote maps are reported for shootdown.
    ///
    /// Returns `None` when `gpu` holds nothing for `vpn` (e.g. ownership
    /// moved while a deferred eviction waited for its pin to drain).
    ///
    /// # Panics
    ///
    /// Panics if `gpu` is out of range.
    pub fn evict_page(&mut self, vpn: u64, gpu: GpuId) -> Option<EvictionReport> {
        assert!(gpu < self.gpu_count, "gpu {gpu} out of range");
        let bit = 1u64 << gpu;
        let gpu_count = self.gpu_count;
        let page = self.pages.get_mut(&vpn)?;
        if page.home != Location::Gpu(gpu)
            && page.replicas & bit == 0
            && page.remote_maps & bit == 0
        {
            return None;
        }
        let mut report = EvictionReport::default();
        if page.replicas & bit != 0 {
            page.replicas &= !bit;
            report.dropped_replicas.push(vpn);
        }
        if page.remote_maps & bit != 0 {
            page.remote_maps &= !bit;
            report.dropped_remote_maps.push(vpn);
        }
        if let Some(c) = page.access_counts.get_mut(gpu as usize) {
            *c = 0;
        }
        if let Some(c) = page.fault_counts.get_mut(gpu as usize) {
            *c = 0;
        }
        if page.home == Location::Gpu(gpu) {
            let new_home = (0..gpu_count)
                .find(|&g| page.replicas & (1 << g) != 0)
                .map_or(Location::Cpu, |g| {
                    page.replicas &= !(1 << g);
                    Location::Gpu(g)
                });
            page.home = new_home;
            self.stats.migrations = self.stats.migrations.saturating_add(1);
            for g in 0..gpu_count {
                if g != gpu && page.remote_maps & (1 << g) != 0 {
                    report.invalidate.push((vpn, g));
                }
            }
            page.remote_maps = 0;
            report.migrated.push((vpn, new_home));
        }
        Some(report)
    }

    /// Every VPN with a resident copy (home or replica) on `gpu`, in
    /// ascending order — the seed list for a PRT rebuild on rejoin.
    pub fn resident_vpns_on(&self, gpu: GpuId) -> Vec<u64> {
        let mut vpns: Vec<u64> = self
            .pages
            .iter()
            .filter(|(_, p)| p.resident_on(gpu))
            .map(|(&vpn, _)| vpn)
            .collect();
        vpns.sort_unstable();
        vpns
    }

    /// A 64-bit order-independent-input digest of the directory contents
    /// (VPNs visited in sorted order), for epoch checkpoints.
    pub fn state_digest(&self) -> u64 {
        let mut digest = sim_core::checkpoint::StateDigest::new();
        // DetMap iterates in ascending VPN order, so the digest input order
        // is already canonical.
        for (&vpn, page) in &self.pages {
            let home = match page.home {
                Location::Cpu => u64::MAX,
                Location::Gpu(g) => u64::from(g),
            };
            digest.mix(vpn).mix(home).mix(page.replicas).mix(page.remote_maps);
        }
        digest.finish()
    }

    /// Post-run consistency audit: every page's placement state must be
    /// internally coherent. Run by the system-level invariant auditor after
    /// each simulation (including fault-injected ones).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvariantViolation`] listing every inconsistent
    /// page: out-of-range home, replica/remote-map bits beyond `gpu_count`,
    /// the home GPU listed as its own replica, or a malformed counter
    /// vector.
    pub fn audit(&self) -> Result<(), SimError> {
        let mut violations = Vec::new();
        let live_mask: u64 = if self.gpu_count == 64 {
            u64::MAX
        } else {
            (1u64 << self.gpu_count) - 1
        };
        for (&vpn, page) in &self.pages {
            if let Location::Gpu(h) = page.home {
                if h >= self.gpu_count {
                    violations.push(format!("page {vpn}: home gpu {h} out of range"));
                }
                if page.replicas & (1 << h) != 0 {
                    violations.push(format!("page {vpn}: home gpu {h} listed as replica"));
                }
            }
            if page.replicas & !live_mask != 0 {
                violations.push(format!(
                    "page {vpn}: replica mask 0b{:b} names nonexistent GPUs",
                    page.replicas
                ));
            }
            if page.remote_maps & !live_mask != 0 {
                violations.push(format!(
                    "page {vpn}: remote-map mask 0b{:b} names nonexistent GPUs",
                    page.remote_maps
                ));
            }
            if page.access_counts.len() != self.gpu_count as usize {
                violations.push(format!(
                    "page {vpn}: {} access counters for {} GPUs",
                    page.access_counts.len(),
                    self.gpu_count
                ));
            }
            if page.fault_counts.len() != self.gpu_count as usize {
                violations.push(format!(
                    "page {vpn}: {} fault counters for {} GPUs",
                    page.fault_counts.len(),
                    self.gpu_count
                ));
            }
        }
        if violations.is_empty() {
            Ok(())
        } else {
            Err(SimError::InvariantViolation(violations.join("; ")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn on_touch_first_fault_migrates_from_cpu() {
        let mut d = PageDirectory::new(4, MigrationPolicy::OnTouch);
        let out = d.resolve_fault(10, 2, false);
        assert_eq!(out.action, FaultAction::Migrate);
        assert_eq!(out.source, Location::Cpu);
        assert!(out.invalidations.is_empty());
        assert_eq!(d.home(10), Location::Gpu(2));
        assert!(d.is_resident(10, 2));
    }

    #[test]
    fn on_touch_second_gpu_steals_page() {
        let mut d = PageDirectory::new(4, MigrationPolicy::OnTouch);
        d.resolve_fault(10, 0, false);
        let out = d.resolve_fault(10, 1, false);
        assert_eq!(out.source, Location::Gpu(0));
        assert_eq!(out.invalidations, vec![0]);
        assert_eq!(d.home(10), Location::Gpu(1));
        assert!(!d.is_resident(10, 0));
        assert_eq!(d.stats().migrations, 2);
    }

    #[test]
    fn already_resident_fault_is_noop() {
        let mut d = PageDirectory::new(4, MigrationPolicy::OnTouch);
        d.resolve_fault(10, 0, false);
        let out = d.resolve_fault(10, 0, true);
        assert_eq!(out.action, FaultAction::AlreadyResident);
        assert_eq!(d.stats().migrations, 1);
    }

    #[test]
    fn replication_reads_share() {
        let mut d = PageDirectory::new(4, MigrationPolicy::ReadReplication);
        d.resolve_fault(5, 0, false); // first touch migrates
        let out = d.resolve_fault(5, 1, false);
        assert_eq!(out.action, FaultAction::Replicate);
        assert_eq!(out.source, Location::Gpu(0));
        assert!(d.is_resident(5, 0));
        assert!(d.is_resident(5, 1));
        assert_eq!(d.stats().replications, 1);
    }

    #[test]
    fn replication_write_invalidates_all_replicas() {
        let mut d = PageDirectory::new(4, MigrationPolicy::ReadReplication);
        d.resolve_fault(5, 0, false);
        d.resolve_fault(5, 1, false);
        d.resolve_fault(5, 2, false);
        let out = d.resolve_fault(5, 3, true);
        assert_eq!(out.action, FaultAction::Migrate);
        let mut inv = out.invalidations.clone();
        inv.sort_unstable();
        assert_eq!(inv, vec![0, 1, 2]);
        assert_eq!(d.home(5), Location::Gpu(3));
        assert!(!d.is_resident(5, 0));
        assert_eq!(d.stats().write_invalidations, 3);
    }

    #[test]
    fn replication_writer_holding_replica_upgrades() {
        let mut d = PageDirectory::new(4, MigrationPolicy::ReadReplication);
        d.resolve_fault(5, 0, false);
        d.resolve_fault(5, 1, false); // replica on 1
        let out = d.resolve_fault(5, 1, true); // 1 writes its replica
        assert_eq!(out.action, FaultAction::Migrate);
        assert_eq!(out.source, Location::Gpu(1), "data already local");
        assert_eq!(out.invalidations, vec![0]);
        assert_eq!(d.home(5), Location::Gpu(1));
    }

    #[test]
    fn remote_mapping_maps_without_moving() {
        let mut d = PageDirectory::new(4, MigrationPolicy::RemoteMapping { migrate_threshold: 3 });
        d.resolve_fault(5, 0, false); // first touch migrates from CPU
        let out = d.resolve_fault(5, 1, false);
        assert_eq!(out.action, FaultAction::RemoteMap);
        assert_eq!(out.source, Location::Gpu(0));
        assert_eq!(d.home(5), Location::Gpu(0), "page did not move");
        assert_eq!(d.stats().remote_maps, 1);
    }

    #[test]
    fn remote_mapping_promotes_after_threshold() {
        let mut d = PageDirectory::new(4, MigrationPolicy::RemoteMapping { migrate_threshold: 3 });
        d.resolve_fault(5, 0, false);
        d.resolve_fault(5, 1, false);
        assert!(d.record_remote_access(5, 1).is_none());
        assert!(d.record_remote_access(5, 1).is_none());
        let out = d.record_remote_access(5, 1).expect("third access promotes");
        assert_eq!(out.action, FaultAction::Migrate);
        assert_eq!(out.source, Location::Gpu(0));
        assert_eq!(out.invalidations, vec![0]);
        assert_eq!(d.home(5), Location::Gpu(1));
        assert_eq!(d.stats().promotions, 1);
    }

    #[test]
    fn remote_access_on_home_gpu_is_ignored() {
        let mut d = PageDirectory::new(4, MigrationPolicy::RemoteMapping { migrate_threshold: 1 });
        d.resolve_fault(5, 0, false);
        assert!(d.record_remote_access(5, 0).is_none());
    }

    #[test]
    fn record_remote_access_noop_under_on_touch() {
        let mut d = PageDirectory::new(4, MigrationPolicy::OnTouch);
        d.resolve_fault(5, 0, false);
        assert!(d.record_remote_access(5, 1).is_none());
        assert!(d.page(5).unwrap().access_counts.iter().all(|&c| c == 0));
    }

    #[test]
    fn holders_lists_home_and_replicas() {
        let mut d = PageDirectory::new(4, MigrationPolicy::ReadReplication);
        d.resolve_fault(5, 0, false);
        d.resolve_fault(5, 2, false);
        let holders = d.page(5).unwrap().holders();
        assert_eq!(holders, vec![Location::Gpu(0), Location::Gpu(2)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn fault_from_unknown_gpu_panics() {
        PageDirectory::new(2, MigrationPolicy::OnTouch).resolve_fault(0, 5, false);
    }

    #[test]
    fn try_resolve_rejects_unknown_gpu_without_mutating() {
        let mut d = PageDirectory::new(2, MigrationPolicy::OnTouch);
        let err = d.try_resolve_fault(0, 5, false).unwrap_err();
        assert!(matches!(err, SimError::Protocol { .. }), "{err}");
        assert!(d.page(0).is_none(), "rejected fault must not create state");
        assert_eq!(d.stats().migrations, 0);
    }

    #[test]
    fn remote_access_from_unknown_gpu_is_ignored() {
        let mut d = PageDirectory::new(2, MigrationPolicy::RemoteMapping { migrate_threshold: 1 });
        d.resolve_fault(5, 0, false);
        assert!(d.record_remote_access(5, 9).is_none());
        assert_eq!(d.stats().promotions, 0);
    }

    #[test]
    fn audit_accepts_consistent_state() {
        let mut d = PageDirectory::new(4, MigrationPolicy::ReadReplication);
        d.resolve_fault(5, 0, false);
        d.resolve_fault(5, 1, false);
        d.resolve_fault(9, 2, true);
        d.audit().unwrap();
    }

    #[test]
    fn audit_flags_corrupted_state() {
        let mut d = PageDirectory::new(2, MigrationPolicy::ReadReplication);
        d.resolve_fault(5, 0, false);
        // Corrupt the directory the way a dropped invalidation would:
        // a replica bit for a GPU that does not exist.
        d.pages.get_mut(&5).unwrap().replicas = 1 << 7;
        let err = d.audit().unwrap_err();
        assert!(matches!(err, SimError::InvariantViolation(_)), "{err}");
        assert!(err.to_string().contains("nonexistent"));
    }

    #[test]
    fn evict_gpu_promotes_replica_to_home() {
        let mut d = PageDirectory::new(4, MigrationPolicy::ReadReplication);
        d.resolve_fault(5, 0, false); // home on 0
        d.resolve_fault(5, 1, false); // replica on 1
        d.resolve_fault(5, 3, false); // replica on 3
        let report = d.evict_gpu(0);
        assert_eq!(report.migrated, vec![(5, Location::Gpu(1))], "lowest replica promoted");
        assert_eq!(d.home(5), Location::Gpu(1));
        assert!(!d.is_resident(5, 0));
        assert!(d.is_resident(5, 3), "other replica survives");
        assert!(d.page(5).unwrap().replicas & 0b10 == 0, "promoted GPU no longer a replica");
        d.audit().unwrap();
    }

    #[test]
    fn evict_gpu_without_replicas_falls_back_to_cpu() {
        let mut d = PageDirectory::new(4, MigrationPolicy::OnTouch);
        d.resolve_fault(7, 2, false);
        d.resolve_fault(9, 2, false);
        d.resolve_fault(11, 0, false);
        let report = d.evict_gpu(2);
        assert_eq!(report.migrated, vec![(7, Location::Cpu), (9, Location::Cpu)]);
        assert_eq!(d.home(7), Location::Cpu);
        assert_eq!(d.home(11), Location::Gpu(0), "unrelated page untouched");
        d.audit().unwrap();
    }

    #[test]
    fn evict_gpu_drops_replicas_and_remote_maps() {
        let mut d = PageDirectory::new(4, MigrationPolicy::ReadReplication);
        d.resolve_fault(5, 0, false);
        d.resolve_fault(5, 1, false); // replica on 1
        d.add_remote_map(6, 1);
        let report = d.evict_gpu(1);
        assert_eq!(report.dropped_replicas, vec![5]);
        assert_eq!(report.dropped_remote_maps, vec![6]);
        assert!(report.migrated.is_empty(), "1 was not home for anything");
        assert!(!d.is_resident(5, 1));
        d.audit().unwrap();
    }

    #[test]
    fn evict_gpu_invalidates_survivors_remote_maps() {
        let mut d = PageDirectory::new(4, MigrationPolicy::RemoteMapping { migrate_threshold: 8 });
        d.resolve_fault(5, 2, false); // home on 2
        d.resolve_fault(5, 1, false); // remote map on 1 -> 2's memory
        d.resolve_fault(5, 3, false); // remote map on 3 -> 2's memory
        let report = d.evict_gpu(2);
        assert_eq!(report.migrated, vec![(5, Location::Cpu)]);
        assert_eq!(report.invalidate, vec![(5, 1), (5, 3)], "dangling maps shot down");
        assert_eq!(d.page(5).unwrap().remote_maps, 0);
        d.audit().unwrap();
    }

    #[test]
    fn evict_gpu_is_deterministic_and_idempotent() {
        let build = || {
            let mut d = PageDirectory::new(4, MigrationPolicy::ReadReplication);
            for vpn in [12, 3, 99, 45, 7] {
                d.resolve_fault(vpn, 1, false);
                d.resolve_fault(vpn, 2, false);
            }
            d
        };
        let mut a = build();
        let mut b = build();
        assert_eq!(a.state_digest(), b.state_digest());
        assert_eq!(a.evict_gpu(1), b.evict_gpu(1), "sorted processing order");
        assert_eq!(a.state_digest(), b.state_digest());
        let second = a.evict_gpu(1);
        assert!(second.is_empty(), "second eviction finds nothing");
    }

    #[test]
    fn evict_gpu_pinned_defers_pinned_pages() {
        let mut d = PageDirectory::new(4, MigrationPolicy::OnTouch);
        d.resolve_fault(7, 2, false);
        d.resolve_fault(9, 2, false);
        d.resolve_fault(11, 0, false);
        let mut pins = DetSet::new();
        pins.insert(9); // a forwarded walk on vpn 9 is still in flight
        pins.insert(11); // pinned but not involving GPU 2: not deferred
        let report = d.evict_gpu_pinned(2, &pins);
        assert_eq!(report.migrated, vec![(7, Location::Cpu)]);
        assert_eq!(report.deferred, vec![9], "pinned page skipped, not migrated");
        assert_eq!(d.home(9), Location::Gpu(2), "deferred page untouched");
        assert_eq!(d.home(11), Location::Gpu(0));
        // Once the pin drains, the caller finishes the page individually.
        let fin = d.evict_page(9, 2).expect("still held");
        assert_eq!(fin.migrated, vec![(9, Location::Cpu)]);
        assert_eq!(d.home(9), Location::Cpu);
        d.audit().unwrap();
    }

    #[test]
    fn evict_page_drops_a_single_replica() {
        let mut d = PageDirectory::new(4, MigrationPolicy::ReadReplication);
        d.resolve_fault(5, 0, false); // home on 0
        d.resolve_fault(5, 1, false); // replica on 1
        let report = d.evict_page(5, 1).expect("replica held");
        assert_eq!(report.dropped_replicas, vec![5]);
        assert!(report.migrated.is_empty());
        assert!(d.is_resident(5, 0));
        assert!(!d.is_resident(5, 1));
        assert!(d.evict_page(5, 1).is_none(), "second eviction finds nothing");
        d.audit().unwrap();
    }

    #[test]
    fn evict_page_promotes_replica_and_invalidates_danglers() {
        let mut d = PageDirectory::new(4, MigrationPolicy::ReadReplication);
        d.resolve_fault(5, 0, false); // home on 0
        d.resolve_fault(5, 2, false); // replica on 2
        d.add_remote_map(5, 3); // a Trans-FW supply registered on 3
        let report = d.evict_page(5, 0).expect("home held");
        assert_eq!(report.migrated, vec![(5, Location::Gpu(2))]);
        assert_eq!(report.invalidate, vec![(5, 3)], "dangling map shot down");
        assert_eq!(d.home(5), Location::Gpu(2));
        assert_eq!(d.page(5).unwrap().remote_maps, 0);
        d.audit().unwrap();
    }

    #[test]
    fn evict_page_matches_evict_gpu_per_page_effects() {
        let build = || {
            let mut d = PageDirectory::new(4, MigrationPolicy::ReadReplication);
            d.resolve_fault(3, 1, false);
            d.resolve_fault(3, 2, false);
            d.resolve_fault(8, 1, false);
            d.add_remote_map(12, 1);
            d
        };
        let mut whole = build();
        let gpu_report = whole.evict_gpu(1);
        let mut single = build();
        let mut merged = EvictionReport::default();
        for vpn in [3u64, 8, 12] {
            if let Some(r) = single.evict_page(vpn, 1) {
                merged.migrated.extend(r.migrated);
                merged.dropped_replicas.extend(r.dropped_replicas);
                merged.dropped_remote_maps.extend(r.dropped_remote_maps);
                merged.invalidate.extend(r.invalidate);
            }
        }
        assert_eq!(merged, gpu_report);
        assert_eq!(whole.state_digest(), single.state_digest());
    }

    #[test]
    fn evict_page_on_untouched_page_is_none() {
        let mut d = PageDirectory::new(2, MigrationPolicy::OnTouch);
        assert!(d.evict_page(5, 0).is_none());
        assert_eq!(d.stats().migrations, 0);
    }

    #[test]
    fn resident_vpns_on_lists_home_and_replicas_sorted() {
        let mut d = PageDirectory::new(4, MigrationPolicy::ReadReplication);
        d.resolve_fault(20, 0, false);
        d.resolve_fault(4, 1, false);
        d.resolve_fault(4, 0, false); // replica on 0
        d.resolve_fault(9, 2, false);
        assert_eq!(d.resident_vpns_on(0), vec![4, 20]);
        assert_eq!(d.resident_vpns_on(1), vec![4]);
        assert_eq!(d.resident_vpns_on(3), Vec::<u64>::new());
    }

    #[test]
    fn audit_flags_home_listed_as_replica() {
        let mut d = PageDirectory::new(2, MigrationPolicy::ReadReplication);
        d.resolve_fault(5, 0, false);
        d.pages.get_mut(&5).unwrap().replicas = 1 << 0;
        let err = d.audit().unwrap_err();
        assert!(err.to_string().contains("listed as replica"));
    }

    // ----- policy-engine behaviour -------------------------------------

    #[test]
    fn legacy_constructor_reports_equivalent_kinds() {
        let d = PageDirectory::new(4, MigrationPolicy::ReadReplication);
        assert_eq!(d.policy_kind(), PolicyKind::ReadDuplicate);
        assert_eq!(d.policy(), MigrationPolicy::ReadReplication);
        let d = PageDirectory::with_policy(4, PolicyKind::PrefetchNeighborhood { radius: 2 });
        assert_eq!(d.policy(), MigrationPolicy::OnTouch, "closest legacy view");
    }

    #[test]
    fn delayed_migration_migrates_on_nth_fault() {
        let mut d = PageDirectory::with_policy(4, PolicyKind::DelayedMigration { threshold: 2 });
        d.resolve_fault(5, 0, false); // cold: migrate to 0
        let t = d.begin_fault_txn(5, 1, false).unwrap();
        assert_eq!(t.kind, TxnKind::RemoteMap, "first far fault maps in place");
        // The remote map created a PTE; a second *fault* means it was lost
        // (e.g. shot down) — the second fault crosses the threshold.
        let t = d.begin_fault_txn(5, 1, false).unwrap();
        assert_eq!(t.kind, TxnKind::Migrate);
        assert_eq!(t.source, Location::Gpu(0));
        assert_eq!(d.home(5), Location::Gpu(1));
        assert_eq!(d.page(5).unwrap().fault_counts, vec![0; 4], "heat reset on migrate");
        d.audit().unwrap();
    }

    #[test]
    fn replicate_then_write_collapse_txn_lists_every_stale_copy() {
        let mut d = PageDirectory::with_policy(4, PolicyKind::ReadDuplicate);
        d.resolve_fault(5, 0, false); // home on 0
        d.resolve_fault(5, 1, false); // replica on 1
        d.resolve_fault(5, 2, false); // replica on 2
        let t = d.begin_fault_txn(5, 2, true).unwrap(); // holder 2 writes
        assert_eq!(t.kind, TxnKind::Collapse);
        assert_eq!(t.source, Location::Gpu(2), "writer already holds the data");
        assert_eq!(t.invalidate, vec![0, 1]);
        assert_eq!(t.ft_remove, vec![0, 1], "both stale FT owner keys go");
        assert_eq!(t.resolved_location(), Location::Gpu(2));
        assert_eq!(d.page(5).unwrap().replicas, 0);
        assert_eq!(d.home(5), Location::Gpu(2));
        d.audit().unwrap();
    }

    #[test]
    fn collapse_from_remote_writer_keeps_source_out_of_ft_remove() {
        let mut d = PageDirectory::with_policy(4, PolicyKind::ReadDuplicate);
        d.resolve_fault(5, 0, false); // home on 0
        d.resolve_fault(5, 1, false); // replica on 1
        let t = d.begin_fault_txn(5, 3, true).unwrap(); // outsider writes
        assert_eq!(t.kind, TxnKind::Collapse);
        assert_eq!(t.source, Location::Gpu(0));
        assert_eq!(t.invalidate, vec![0, 1]);
        assert_eq!(t.ft_remove, vec![1], "source's FT key moves with the data");
    }

    #[test]
    fn prefetch_page_takes_only_untouched_pages() {
        let mut d = PageDirectory::with_policy(4, PolicyKind::PrefetchNeighborhood { radius: 2 });
        let t = d.prefetch_page(8, 1, Location::Cpu).expect("cold page is eligible");
        assert_eq!(t.kind, TxnKind::Prefetch);
        assert_eq!((t.source, t.dest), (Location::Cpu, 1));
        assert!(t.invalidate.is_empty(), "nothing to shoot down for a cold page");
        assert_eq!(d.home(8), Location::Gpu(1));
        assert_eq!(d.stats().prefetches, 1);
        assert!(
            d.prefetch_page(8, 2, Location::Cpu).is_none(),
            "already placed off the claimed source"
        );
        d.resolve_fault(9, 0, false);
        assert!(
            d.prefetch_page(9, 1, Location::Cpu).is_none(),
            "a page with fault history is someone's working set"
        );
        assert_eq!(d.stats().prefetches, 1);
        d.audit().unwrap();
    }

    #[test]
    fn prefetch_page_follows_the_migration_source() {
        // Warm placement: page 9 homed on GPU 0 untouched. A migration that
        // pulled its neighbor from GPU 0 to GPU 1 drags it along, and the
        // transaction lists the shootdown on the old owner.
        let mut d = PageDirectory::with_policy(4, PolicyKind::PrefetchNeighborhood { radius: 2 });
        d.place(9, Location::Gpu(0));
        let t = d
            .prefetch_page(9, 1, Location::Gpu(0))
            .expect("untouched page homed on the source is eligible");
        assert_eq!((t.source, t.dest), (Location::Gpu(0), 1));
        assert_eq!(t.invalidate, vec![0], "old owner's mapping is shot down");
        assert_eq!(d.home(9), Location::Gpu(1));
        // Homed on a *different* GPU: not dragged.
        d.place(20, Location::Gpu(2));
        assert!(d.prefetch_page(20, 1, Location::Gpu(0)).is_none());
        d.audit().unwrap();
    }

    #[test]
    fn prefetch_neighborhood_comes_from_the_policy() {
        let d = PageDirectory::with_policy(4, PolicyKind::PrefetchNeighborhood { radius: 2 });
        assert_eq!(d.prefetch_neighborhood(5), vec![4, 6, 7]);
        let d = PageDirectory::with_policy(4, PolicyKind::FirstTouch);
        assert!(d.prefetch_neighborhood(5).is_empty());
    }

    #[test]
    fn evict_gpu_clears_fault_heat_for_the_evicted_gpu_only() {
        let mut d = PageDirectory::with_policy(4, PolicyKind::DelayedMigration { threshold: 9 });
        d.resolve_fault(5, 0, false); // home on 0
        d.resolve_fault(5, 1, false); // remote map, fault_counts[1] = 1
        d.resolve_fault(5, 2, false); // remote map, fault_counts[2] = 1
        assert_eq!(d.page(5).unwrap().fault_counts, vec![0, 1, 1, 0]);
        d.evict_gpu(1);
        assert_eq!(
            d.page(5).unwrap().fault_counts,
            vec![0, 0, 1, 0],
            "rejoined GPU must not inherit pre-failure heat"
        );
        d.audit().unwrap();
    }

    #[test]
    fn cloned_directory_keeps_policy_behaviour() {
        let mut d = PageDirectory::with_policy(4, PolicyKind::DelayedMigration { threshold: 2 });
        d.resolve_fault(5, 0, false);
        d.resolve_fault(5, 1, false); // fault_counts[1] = 1
        let mut c = d.clone();
        assert_eq!(c.policy_kind(), d.policy_kind());
        let t = c.begin_fault_txn(5, 1, false).unwrap();
        assert_eq!(t.kind, TxnKind::Migrate, "clone kept the heat counters");
    }

    #[test]
    fn first_touch_txn_matches_legacy_outcome_shape() {
        let mut d = PageDirectory::with_policy(4, PolicyKind::FirstTouch);
        d.resolve_fault(10, 0, false);
        let t = d.begin_fault_txn(10, 1, false).unwrap();
        assert_eq!(t.kind, TxnKind::Migrate);
        assert_eq!(t.source, Location::Gpu(0));
        assert_eq!(t.invalidate, vec![0]);
        assert!(t.ft_remove.is_empty(), "first touch never touches FT owner keys");
        assert!(t.moves_data() && t.moves_home());
        let again = d.begin_fault_txn(10, 1, true).unwrap();
        assert_eq!(again.kind, TxnKind::AlreadyResident);
        assert!(!again.moves_data());
    }
}
