//! Unified virtual memory (UVM) state machines.
//!
//! The UVM driver owns a *centralised page table* that always knows where
//! every page lives (§II-A). This crate models that authority and the three
//! page-placement policies the paper evaluates:
//!
//! * **on-touch migration** (the default in modern GPUs, §V-E): the first
//!   access from a GPU migrates the page into its device memory;
//! * **read replication** (§V-D): read-shared pages are replicated under an
//!   ESI coherence protocol, writes invalidate all replicas;
//! * **remote mapping** (§V-E): a far fault first maps the remote page
//!   without moving it, and per-GPU access counters promote hot pages to a
//!   real migration.
//!
//! It also models the **software UVM-driver far-fault path** (§II-B): a
//! fault buffer drained in 256-fault batches by driver threads, the
//! scalability bottleneck that Fig. 2 quantifies.
//!
//! Placement decisions live in the pluggable [`policy`] engine: a
//! [`PlacementPolicy`] trait with four shipped policies (first-touch,
//! delayed migration, read duplication, neighborhood prefetch), every
//! ownership change expressed as an [`OwnershipTransaction`] that the
//! memory system mirrors atomically into page tables, TLBs, PRTs and FTs.

pub mod directory;
pub mod driver;
pub mod evict;
pub mod policy;

pub use directory::{
    DirectoryStats, EvictionReport, FaultAction, FaultOutcome, MigrationPolicy, PageDirectory,
    PageState,
};
pub use evict::{EvictPolicy, EvictionEngine, VictimPick};
pub use driver::{DriverBatch, DriverConfig, UvmDriver};
pub use policy::{
    OwnershipTransaction, PlacementPolicy, PolicyDecision, PolicyKind, TrafficClass, TxnKind,
};
