//! The software UVM-driver far-fault handler (§II-B).
//!
//! Far faults land in a per-GPU fault buffer; the GMMU alerts the driver,
//! which fetches and caches the fault descriptors on the host and processes
//! them in batches of 256. Each batch pays a fixed wake-up/fetch overhead
//! plus a per-fault cost (centralised-table walk, data-transfer kickoff and
//! GPU page-table update), divided over the driver's walk threads. The
//! driver is a single serialised context — this is what makes the software
//! path scale poorly as GPUs are added (Fig. 2a).

use std::collections::VecDeque;

use sim_core::{Cycle, SimError, StateDigest};

/// Tunable costs of the software fault path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DriverConfig {
    /// Faults processed per batch (256 in the open NVIDIA driver).
    pub batch_size: usize,
    /// Fixed per-batch overhead: interrupt, wake-up, buffer fetch.
    pub batch_overhead: Cycle,
    /// Per-fault processing cost (walk + PTE updates), before threading.
    pub per_fault_cost: Cycle,
    /// Driver page-walk threads sharing a batch's per-fault work.
    pub walk_threads: usize,
}

impl Default for DriverConfig {
    fn default() -> Self {
        Self {
            batch_size: 256,
            batch_overhead: 2_000,
            per_fault_cost: 400,
            walk_threads: 16,
        }
    }
}

/// A batch the driver has started processing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DriverBatch<F> {
    /// Fault descriptors in arrival order.
    pub faults: Vec<F>,
    /// Absolute completion time of the whole batch.
    pub done_at: Cycle,
}

/// The UVM driver's fault intake and batch scheduler.
///
/// # Examples
///
/// ```
/// use uvm::{UvmDriver, DriverConfig};
///
/// let mut drv: UvmDriver<u32> = UvmDriver::new(DriverConfig::default());
/// drv.submit(7, 100);
/// let batch = drv.try_start_batch(100).expect("driver idle, work pending");
/// assert_eq!(batch.faults, vec![7]);
/// assert!(batch.done_at > 100);
/// drv.finish_batch(batch.done_at).unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct UvmDriver<F> {
    config: DriverConfig,
    pending: VecDeque<F>,
    busy: bool,
    batches: u64,
    faults: u64,
    busy_cycles: u64,
    peak_pending: usize,
}

impl<F> UvmDriver<F> {
    /// Creates an idle driver.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` or `walk_threads` is zero.
    pub fn new(config: DriverConfig) -> Self {
        assert!(config.batch_size > 0, "batch_size must be positive");
        assert!(config.walk_threads > 0, "walk_threads must be positive");
        Self {
            config,
            pending: VecDeque::new(),
            busy: false,
            batches: 0,
            faults: 0,
            busy_cycles: 0,
            peak_pending: 0,
        }
    }

    /// Configuration in use.
    pub fn config(&self) -> DriverConfig {
        self.config
    }

    /// Queues one fault descriptor (the GMMU alert + fetch are part of the
    /// batch overhead).
    pub fn submit(&mut self, fault: F, _now: Cycle) {
        self.pending.push_back(fault);
        self.peak_pending = self.peak_pending.max(self.pending.len());
    }

    /// If the driver is idle and faults are pending, starts a batch and
    /// returns it; the caller schedules the completion event at `done_at`
    /// and must call [`finish_batch`](Self::finish_batch) then.
    pub fn try_start_batch(&mut self, now: Cycle) -> Option<DriverBatch<F>> {
        if self.busy || self.pending.is_empty() {
            return None;
        }
        let n = self.pending.len().min(self.config.batch_size);
        let faults: Vec<F> = self.pending.drain(..n).collect();
        let work = (n as u64).div_ceil(self.config.walk_threads as u64)
            * self.config.per_fault_cost;
        let duration = self.config.batch_overhead + work;
        self.busy = true;
        self.batches += 1;
        self.faults = self.faults.saturating_add(n as u64);
        self.busy_cycles += duration;
        Some(DriverBatch {
            faults,
            done_at: now + duration,
        })
    }

    /// Marks the in-flight batch complete; the driver may immediately start
    /// the next one via [`try_start_batch`](Self::try_start_batch).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Protocol`] if no batch is in flight — a
    /// duplicated or spurious batch-completion event must not corrupt the
    /// driver's serialisation state.
    pub fn finish_batch(&mut self, now: Cycle) -> Result<(), SimError> {
        if !self.busy {
            return Err(SimError::Protocol {
                cycle: now,
                what: "finish_batch without a batch in flight".into(),
            });
        }
        self.busy = false;
        Ok(())
    }

    /// Whether a batch is currently processing.
    pub fn is_busy(&self) -> bool {
        self.busy
    }

    /// Faults waiting for a batch.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Batches processed.
    pub fn batch_count(&self) -> u64 {
        self.batches
    }

    /// Faults processed.
    pub fn fault_count(&self) -> u64 {
        self.faults
    }

    /// Total cycles spent processing batches.
    pub fn busy_cycle_count(&self) -> u64 {
        self.busy_cycles
    }

    /// Largest fault backlog observed.
    pub fn peak_pending(&self) -> usize {
        self.peak_pending
    }

    /// A 64-bit digest of the driver's state — configuration, backlog
    /// depth, busy flag and the batch/fault counters — for epoch
    /// checkpoints. The `pending` queue's *contents* are digested by the
    /// caller, which knows how to hash `F`; here only its shape is mixed.
    pub fn state_digest(&self) -> u64 {
        let mut d = StateDigest::new();
        d.mix(self.config.batch_size as u64)
            .mix(self.config.walk_threads as u64)
            .mix(self.config.batch_overhead)
            .mix(self.pending.len() as u64)
            .mix(u64::from(self.busy))
            .mix(self.batches)
            .mix(self.faults)
            .mix(self.busy_cycles)
            .mix(self.peak_pending as u64);
        d.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DriverConfig {
        DriverConfig {
            batch_size: 4,
            batch_overhead: 100,
            per_fault_cost: 10,
            walk_threads: 2,
        }
    }

    #[test]
    fn batch_respects_size_limit() {
        let mut d: UvmDriver<u32> = UvmDriver::new(cfg());
        for i in 0..10 {
            d.submit(i, 0);
        }
        let b = d.try_start_batch(0).unwrap();
        assert_eq!(b.faults, vec![0, 1, 2, 3]);
        assert_eq!(d.pending_len(), 6);
    }

    #[test]
    fn batch_cost_model() {
        let mut d: UvmDriver<u32> = UvmDriver::new(cfg());
        for i in 0..4 {
            d.submit(i, 0);
        }
        // 4 faults / 2 threads = 2 rounds x 10 + 100 overhead = 120.
        let b = d.try_start_batch(1000).unwrap();
        assert_eq!(b.done_at, 1120);
    }

    #[test]
    fn driver_serialises_batches() {
        let mut d: UvmDriver<u32> = UvmDriver::new(cfg());
        for i in 0..8 {
            d.submit(i, 0);
        }
        let b1 = d.try_start_batch(0).unwrap();
        assert!(d.try_start_batch(10).is_none(), "busy driver refuses");
        d.finish_batch(b1.done_at).unwrap();
        let b2 = d.try_start_batch(b1.done_at).unwrap();
        assert_eq!(b2.faults, vec![4, 5, 6, 7]);
        assert_eq!(d.batch_count(), 2);
        assert_eq!(d.fault_count(), 8);
    }

    #[test]
    fn idle_empty_driver_starts_nothing() {
        let mut d: UvmDriver<u32> = UvmDriver::new(cfg());
        assert!(d.try_start_batch(0).is_none());
    }

    #[test]
    fn partial_batch_starts_immediately() {
        let mut d: UvmDriver<u32> = UvmDriver::new(cfg());
        d.submit(9, 0);
        let b = d.try_start_batch(0).unwrap();
        assert_eq!(b.faults, vec![9]);
        // 1 fault / 2 threads rounds up to one round.
        assert_eq!(b.done_at, 110);
    }

    #[test]
    fn finish_without_start_is_a_protocol_error() {
        let err = UvmDriver::<u32>::new(cfg()).finish_batch(0).unwrap_err();
        assert!(matches!(err, SimError::Protocol { .. }), "{err}");
        assert!(err.to_string().contains("without a batch"));
    }

    #[test]
    fn spurious_finish_does_not_corrupt_serialisation() {
        let mut d: UvmDriver<u32> = UvmDriver::new(cfg());
        d.submit(1, 0);
        let b = d.try_start_batch(0).unwrap();
        assert!(d.finish_batch(b.done_at).is_ok());
        // A duplicated completion event reports an error but leaves the
        // driver consistent and able to start new batches.
        assert!(d.finish_batch(b.done_at + 1).is_err());
        d.submit(2, b.done_at + 2);
        assert!(d.try_start_batch(b.done_at + 2).is_some());
    }

    #[test]
    fn peak_pending_tracks_backlog() {
        let mut d: UvmDriver<u32> = UvmDriver::new(cfg());
        for i in 0..7 {
            d.submit(i, 0);
        }
        let b = d.try_start_batch(0).unwrap();
        drop(b);
        assert_eq!(d.peak_pending(), 7);
    }
}
