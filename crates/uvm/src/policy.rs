//! Pluggable page-placement policies and the ownership transaction their
//! decisions are carried out through.
//!
//! The directory used to hard-wire the three §V-D/E policies into one match
//! statement; everything the memory system had to mirror (page-table
//! rewrites, TLB shootdowns, PRT/FT maintenance) was reconstructed ad hoc at
//! each call site. This module splits that into:
//!
//! * [`PolicyKind`] — a cheap, copyable policy selector carried in configs;
//! * [`PlacementPolicy`] — the decision trait: given the current
//!   [`PageState`] and the faulting GPU, pick a [`PolicyDecision`];
//! * [`OwnershipTransaction`] — the *single* record every ownership change
//!   flows through. The directory mutates its authoritative state and emits
//!   one transaction naming the data source, destination, the GPUs whose
//!   PTE/TLB/PRT entries must be shot down, and the FT keys to rewrite. The
//!   memory system applies it atomically (within one simulated event), so
//!   the post-run invariant auditor can check that no stale short-circuit
//!   path survives a migration.
//!
//! Four policies ship:
//!
//! | kind | far fault behaviour |
//! |------|---------------------|
//! | [`PolicyKind::FirstTouch`] | always migrate into the faulting GPU |
//! | [`PolicyKind::DelayedMigration`] | map remotely; migrate after `threshold` far faults (NVIDIA-UVM style) |
//! | [`PolicyKind::ReadDuplicate`] | replicate read-shared pages; a write collapses every copy back to one owner |
//! | [`PolicyKind::PrefetchNeighborhood`] | migrate, plus tree-style prefetch of the surrounding aligned VPN block |

use ptw::{GpuId, Location};

use crate::directory::{FaultAction, FaultOutcome, MigrationPolicy, PageState};

/// Priority class of translation-pipeline traffic, for overload shedding.
///
/// Under overload the memory system sheds work lowest-class-first: demand
/// walks (a warp is stalled on them) are protected, prefetch is speculative
/// and cheap to drop, and background migration is pure optimisation that
/// can always be retried by a later access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TrafficClass {
    /// Access-counter-driven background migration — shed first.
    Migration,
    /// Policy-driven neighborhood prefetch — shed second.
    Prefetch,
    /// A demand translation a warp is blocked on — shed last, if ever.
    Demand,
}

impl TrafficClass {
    /// Whether this class is background work (sheddable before demand).
    pub fn is_background(self) -> bool {
        matches!(self, TrafficClass::Migration | TrafficClass::Prefetch)
    }
}

/// Which placement policy drives the directory.
///
/// `Copy` so configs can embed it; [`build`](Self::build) turns it into the
/// boxed implementation the directory consults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PolicyKind {
    /// First touch migrates the page into the faulting GPU (the default;
    /// today's behaviour).
    #[default]
    FirstTouch,
    /// Map remotely and migrate only after `threshold` remote far faults
    /// from the same GPU, plus access-counter promotion (§V-E).
    DelayedMigration {
        /// Far faults from one GPU before the page migrates to it.
        threshold: u32,
    },
    /// Read faults replicate; a write collapses all copies back to a single
    /// owner (ESI coherence, §V-D).
    ReadDuplicate,
    /// First-touch migration plus prefetch of the aligned `2^radius`-page
    /// block around the faulting VPN.
    PrefetchNeighborhood {
        /// log2 of the prefetch block size in pages.
        radius: u32,
    },
}

impl PolicyKind {
    /// Short stable name for reports and JSON.
    pub fn name(&self) -> &'static str {
        match self {
            PolicyKind::FirstTouch => "first-touch",
            PolicyKind::DelayedMigration { .. } => "delayed-migration",
            PolicyKind::ReadDuplicate => "read-duplicate",
            PolicyKind::PrefetchNeighborhood { .. } => "prefetch-neighborhood",
        }
    }

    /// Builds the boxed policy implementation.
    pub fn build(self) -> Box<dyn PlacementPolicy> {
        match self {
            PolicyKind::FirstTouch => Box::new(FirstTouch),
            PolicyKind::DelayedMigration { threshold } => {
                Box::new(DelayedMigration { threshold })
            }
            PolicyKind::ReadDuplicate => Box::new(ReadDuplicate),
            PolicyKind::PrefetchNeighborhood { radius } => {
                Box::new(PrefetchNeighborhood { radius })
            }
        }
    }
}

impl From<MigrationPolicy> for PolicyKind {
    /// Every legacy [`MigrationPolicy`] maps onto the policy engine; the
    /// mapped kind reproduces the legacy behaviour exactly (the engine is a
    /// strict superset).
    fn from(p: MigrationPolicy) -> Self {
        match p {
            MigrationPolicy::OnTouch => PolicyKind::FirstTouch,
            MigrationPolicy::ReadReplication => PolicyKind::ReadDuplicate,
            MigrationPolicy::RemoteMapping { migrate_threshold } => PolicyKind::DelayedMigration {
                threshold: migrate_threshold,
            },
        }
    }
}

impl From<PolicyKind> for MigrationPolicy {
    /// Closest legacy policy, for the back-compat accessor.
    fn from(k: PolicyKind) -> Self {
        match k {
            PolicyKind::FirstTouch | PolicyKind::PrefetchNeighborhood { .. } => {
                MigrationPolicy::OnTouch
            }
            PolicyKind::DelayedMigration { threshold } => MigrationPolicy::RemoteMapping {
                migrate_threshold: threshold,
            },
            PolicyKind::ReadDuplicate => MigrationPolicy::ReadReplication,
        }
    }
}

/// What a policy decided to do about one far fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyDecision {
    /// Move the page into the faulting GPU.
    Migrate,
    /// Write-collapse: invalidate every other copy, the writer becomes the
    /// exclusive owner (counted as write invalidations).
    Collapse,
    /// Create a read replica on the faulting GPU.
    Replicate,
    /// Map the page in place; no data moves.
    RemoteMap,
}

/// A placement policy: pure decision logic over directory state.
///
/// Implementations are stateless — every counter they consult lives in the
/// per-page [`PageState`], so cloning a directory (checkpointing) never
/// loses policy state.
pub trait PlacementPolicy: std::fmt::Debug + Send + Sync {
    /// The selector this implementation was built from.
    fn kind(&self) -> PolicyKind;

    /// Decides how to resolve a far fault by `gpu` on a page currently in
    /// state `page`. The directory has already filtered already-resident
    /// faults and bumped `page.fault_counts[gpu]`.
    fn on_fault(&self, page: &PageState, gpu: GpuId, is_write: bool) -> PolicyDecision;

    /// Remote data accesses before a remote-mapped page is promoted to a
    /// migration, or `None` when this policy does not count accesses.
    /// Policies returning `None` never create directory entries on the
    /// remote-access path.
    fn remote_access_threshold(&self) -> Option<u32> {
        None
    }

    /// VPNs to prefetch alongside a migration of `vpn` (empty for policies
    /// that do not prefetch). Candidates are returned in ascending order so
    /// the simulator applies them deterministically.
    fn prefetch_neighborhood(&self, _vpn: u64) -> Vec<u64> {
        Vec::new()
    }
}

/// Always migrate into the faulting GPU.
#[derive(Debug, Clone, Copy)]
pub struct FirstTouch;

impl PlacementPolicy for FirstTouch {
    fn kind(&self) -> PolicyKind {
        PolicyKind::FirstTouch
    }

    fn on_fault(&self, _page: &PageState, _gpu: GpuId, _is_write: bool) -> PolicyDecision {
        PolicyDecision::Migrate
    }
}

/// Remote-map first; migrate once a GPU has far-faulted `threshold` times on
/// the page (and still promote hot remote mappings on data accesses).
#[derive(Debug, Clone, Copy)]
pub struct DelayedMigration {
    /// Far faults from one GPU before the page migrates to it.
    pub threshold: u32,
}

impl PlacementPolicy for DelayedMigration {
    fn kind(&self) -> PolicyKind {
        PolicyKind::DelayedMigration {
            threshold: self.threshold,
        }
    }

    fn on_fault(&self, page: &PageState, gpu: GpuId, _is_write: bool) -> PolicyDecision {
        if page.home == Location::Cpu {
            // Cold pages have no remote owner to borrow from.
            PolicyDecision::Migrate
        } else if page
            .fault_counts
            .get(gpu as usize)
            .is_some_and(|&c| c >= self.threshold)
        {
            PolicyDecision::Migrate
        } else {
            PolicyDecision::RemoteMap
        }
    }

    fn remote_access_threshold(&self) -> Option<u32> {
        Some(self.threshold)
    }
}

/// Replicate read-shared pages; writes collapse back to a single owner.
#[derive(Debug, Clone, Copy)]
pub struct ReadDuplicate;

impl PlacementPolicy for ReadDuplicate {
    fn kind(&self) -> PolicyKind {
        PolicyKind::ReadDuplicate
    }

    fn on_fault(&self, page: &PageState, _gpu: GpuId, is_write: bool) -> PolicyDecision {
        if is_write {
            PolicyDecision::Collapse
        } else if page.home == Location::Cpu && page.replicas == 0 {
            // First touch: plain migration from the host.
            PolicyDecision::Migrate
        } else {
            PolicyDecision::Replicate
        }
    }
}

/// First-touch migration plus prefetch of the aligned block around the
/// faulting VPN (the tree-climbing heuristic of the NVIDIA UVM driver,
/// restricted to one level).
#[derive(Debug, Clone, Copy)]
pub struct PrefetchNeighborhood {
    /// log2 of the prefetch block size in pages.
    pub radius: u32,
}

impl PlacementPolicy for PrefetchNeighborhood {
    fn kind(&self) -> PolicyKind {
        PolicyKind::PrefetchNeighborhood {
            radius: self.radius,
        }
    }

    fn on_fault(&self, _page: &PageState, _gpu: GpuId, _is_write: bool) -> PolicyDecision {
        PolicyDecision::Migrate
    }

    fn prefetch_neighborhood(&self, vpn: u64) -> Vec<u64> {
        let span = 1u64 << self.radius.min(16);
        let base = vpn & !(span - 1);
        (base..base + span).filter(|&v| v != vpn).collect()
    }
}

/// The kind of ownership change a transaction carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnKind {
    /// Page moves into `dest`; the old copy and stale mappings die.
    Migrate,
    /// Write-collapse of a replicated page into exclusive ownership.
    Collapse,
    /// A read replica appears on `dest`.
    Replicate,
    /// A remote mapping appears on `dest`; no data moves.
    RemoteMap,
    /// A policy-initiated prefetch moved a cold page into `dest`.
    Prefetch,
    /// The page was already resident (e.g. a racing fault resolved it).
    AlreadyResident,
}

/// One atomic ownership change, as decided by the directory.
///
/// The directory's authoritative state is already updated when a
/// transaction is returned; the memory system must mirror it — unmap
/// `invalidate` on those GPUs (PTE + TLB + PRT departure), rewrite the FT
/// keys listed in `ft_remove`, move the home FT key for data-moving kinds,
/// and map the page on `dest` when the transfer lands. Applying the whole
/// record within one simulated event is what makes the change atomic from
/// the protocol's point of view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OwnershipTransaction {
    /// The page changing ownership.
    pub vpn: u64,
    /// What kind of change this is.
    pub kind: TxnKind,
    /// Where the data is fetched from.
    pub source: Location,
    /// The GPU gaining a copy or mapping.
    pub dest: GpuId,
    /// GPUs whose PTE/TLB/PRT entries for this page must be shot down.
    pub invalidate: Vec<GpuId>,
    /// GPUs whose FT ownership key (`vpn ⊕ owner`) must be removed — the
    /// invalidated replica holders the host forwarding table still names.
    pub ft_remove: Vec<GpuId>,
}

impl OwnershipTransaction {
    /// Whether page data crosses the interconnect.
    pub fn moves_data(&self) -> bool {
        matches!(
            self.kind,
            TxnKind::Migrate | TxnKind::Collapse | TxnKind::Replicate | TxnKind::Prefetch
        )
    }

    /// Location the faulting GPU's page table should point at afterwards.
    pub fn resolved_location(&self) -> Location {
        match self.kind {
            TxnKind::RemoteMap => self.source,
            _ => Location::Gpu(self.dest),
        }
    }

    /// Whether the home FT key moves to `dest` (data-moving exclusive
    /// ownership changes; replicas only add a key).
    pub fn moves_home(&self) -> bool {
        matches!(
            self.kind,
            TxnKind::Migrate | TxnKind::Collapse | TxnKind::Prefetch
        )
    }

    /// The legacy per-fault outcome view of this transaction.
    pub fn outcome(&self) -> FaultOutcome {
        FaultOutcome {
            action: match self.kind {
                TxnKind::Migrate | TxnKind::Collapse | TxnKind::Prefetch => FaultAction::Migrate,
                TxnKind::Replicate => FaultAction::Replicate,
                TxnKind::RemoteMap => FaultAction::RemoteMap,
                TxnKind::AlreadyResident => FaultAction::AlreadyResident,
            },
            source: self.source,
            invalidations: self.invalidate.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(gpus: u16) -> PageState {
        PageState::cold(gpus)
    }

    #[test]
    fn default_kind_is_first_touch() {
        assert_eq!(PolicyKind::default(), PolicyKind::FirstTouch);
        assert_eq!(PolicyKind::default().name(), "first-touch");
    }

    #[test]
    fn legacy_policies_map_onto_the_engine() {
        assert_eq!(
            PolicyKind::from(MigrationPolicy::OnTouch),
            PolicyKind::FirstTouch
        );
        assert_eq!(
            PolicyKind::from(MigrationPolicy::ReadReplication),
            PolicyKind::ReadDuplicate
        );
        assert!(matches!(
            PolicyKind::from(MigrationPolicy::RemoteMapping { migrate_threshold: 5 }),
            PolicyKind::DelayedMigration { .. }
        ));
        // And back: the accessor view stays faithful for the shared pairs.
        assert_eq!(
            MigrationPolicy::from(PolicyKind::ReadDuplicate),
            MigrationPolicy::ReadReplication
        );
    }

    #[test]
    fn first_touch_always_migrates() {
        let p = PolicyKind::FirstTouch.build();
        let mut s = page(4);
        assert_eq!(p.on_fault(&s, 1, false), PolicyDecision::Migrate);
        s.home = Location::Gpu(2);
        assert_eq!(p.on_fault(&s, 1, true), PolicyDecision::Migrate);
        assert_eq!(p.remote_access_threshold(), None);
        assert!(p.prefetch_neighborhood(40).is_empty());
    }

    #[test]
    fn delayed_migration_maps_then_migrates_at_threshold() {
        let p = PolicyKind::DelayedMigration { threshold: 3 }.build();
        let mut s = page(4);
        // Cold page: nothing to borrow, migrate.
        assert_eq!(p.on_fault(&s, 1, false), PolicyDecision::Migrate);
        s.home = Location::Gpu(0);
        s.fault_counts[1] = 1;
        assert_eq!(p.on_fault(&s, 1, false), PolicyDecision::RemoteMap);
        s.fault_counts[1] = 3;
        assert_eq!(p.on_fault(&s, 1, false), PolicyDecision::Migrate);
        assert_eq!(p.remote_access_threshold(), Some(3));
    }

    #[test]
    fn read_duplicate_replicates_reads_and_collapses_writes() {
        let p = PolicyKind::ReadDuplicate.build();
        let mut s = page(4);
        assert_eq!(p.on_fault(&s, 1, false), PolicyDecision::Migrate, "first touch");
        s.home = Location::Gpu(0);
        assert_eq!(p.on_fault(&s, 1, false), PolicyDecision::Replicate);
        assert_eq!(p.on_fault(&s, 1, true), PolicyDecision::Collapse);
    }

    #[test]
    fn prefetch_neighborhood_is_an_aligned_block_minus_the_trigger() {
        let p = PolicyKind::PrefetchNeighborhood { radius: 2 }.build();
        assert_eq!(p.prefetch_neighborhood(5), vec![4, 6, 7]);
        assert_eq!(p.prefetch_neighborhood(8), vec![9, 10, 11]);
        let wide = PolicyKind::PrefetchNeighborhood { radius: 3 }.build();
        assert_eq!(wide.prefetch_neighborhood(0), vec![1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn transaction_resolution_mapping() {
        let mk = |kind| OwnershipTransaction {
            vpn: 9,
            kind,
            source: Location::Gpu(2),
            dest: 1,
            invalidate: vec![2],
            ft_remove: Vec::new(),
        };
        let m = mk(TxnKind::Migrate);
        assert!(m.moves_data() && m.moves_home());
        assert_eq!(m.resolved_location(), Location::Gpu(1));
        assert_eq!(m.outcome().action, FaultAction::Migrate);

        let r = mk(TxnKind::RemoteMap);
        assert!(!r.moves_data() && !r.moves_home());
        assert_eq!(r.resolved_location(), Location::Gpu(2), "points at the home");

        let repl = mk(TxnKind::Replicate);
        assert!(repl.moves_data() && !repl.moves_home());

        let a = mk(TxnKind::AlreadyResident);
        assert!(!a.moves_data());
        assert_eq!(a.outcome().action, FaultAction::AlreadyResident);
    }

    #[test]
    fn builds_report_their_kind() {
        for kind in [
            PolicyKind::FirstTouch,
            PolicyKind::DelayedMigration { threshold: 4 },
            PolicyKind::ReadDuplicate,
            PolicyKind::PrefetchNeighborhood { radius: 3 },
        ] {
            assert_eq!(kind.build().kind(), kind);
        }
    }
}
