//! The Cuckoo filter data structure.

use sim_core::{SimRng, StateDigest};

use crate::hash::metro_mix;

const SEED_FP: u64 = 0x5EED_F00D;
const SEED_IDX: u64 = 0x1D_0BAD_5EED;
const SEED_ALT: u64 = 0xA17_5EED;
const MAX_KICKS: usize = 500;

/// Error returned when an insertion cannot find room even after relocation.
///
/// The displaced fingerprint is preserved in the filter's internal stash so
/// the structure never produces false negatives; the error is informational
/// (hardware would raise an overflow interrupt).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InsertError {
    /// The key whose insertion triggered the overflow.
    pub key: u64,
}

impl std::fmt::Display for InsertError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cuckoo filter overflow while inserting key {}", self.key)
    }
}

impl std::error::Error for InsertError {}

/// A deletable approximate-membership filter.
///
/// Parameterised exactly as Trans-FW's tables: `buckets × slots` fingerprint
/// cells of `fp_bits` bits each. Lookups have no false negatives; false
/// positives occur at rate ≈ `2 * slots / 2^fp_bits`.
///
/// # Examples
///
/// ```
/// use cuckoo::CuckooFilter;
///
/// // The paper's PRT: 125 buckets x 4 slots, 13-bit fingerprints.
/// let mut prt = CuckooFilter::new(125, 4, 13);
/// for vpn in 0..300 {
///     prt.insert(vpn).unwrap();
/// }
/// assert!(prt.contains(123));
/// assert_eq!(prt.len(), 300);
/// ```
#[derive(Debug, Clone)]
pub struct CuckooFilter {
    cells: Vec<u16>,
    bucket_count: usize,
    slots: usize,
    fp_mask: u16,
    fp_bits: u32,
    len: usize,
    stash: Vec<(usize, u16)>,
    overflows: u64,
    rng: SimRng,
}

impl CuckooFilter {
    /// Creates a filter with `bucket_count` buckets of `slots` fingerprints,
    /// each `fp_bits` wide.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_count` or `slots` is zero, or `fp_bits` is not in
    /// `1..=16`.
    pub fn new(bucket_count: usize, slots: usize, fp_bits: u32) -> Self {
        assert!(bucket_count > 0, "bucket_count must be positive");
        assert!(slots > 0, "slots must be positive");
        assert!((1..=16).contains(&fp_bits), "fp_bits must be in 1..=16");
        Self {
            cells: vec![0; bucket_count * slots],
            bucket_count,
            slots,
            fp_mask: if fp_bits == 16 {
                u16::MAX
            } else {
                (1u16 << fp_bits) - 1
            },
            fp_bits,
            len: 0,
            stash: Vec::new(),
            overflows: 0,
            rng: SimRng::new(0xC0C0_0F11),
        }
    }

    /// Number of stored fingerprints (including the stash).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the filter stores no fingerprints.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total fingerprint slots in the table (excluding the stash).
    pub fn capacity(&self) -> usize {
        self.bucket_count * self.slots
    }

    /// Fraction of table slots occupied.
    pub fn occupancy(&self) -> f64 {
        let table = self.len.saturating_sub(self.stash.len());
        table as f64 / self.capacity() as f64
    }

    /// Fingerprint width in bits.
    pub fn fp_bits(&self) -> u32 {
        self.fp_bits
    }

    /// Total SRAM storage in bits (the §IV-E area model input).
    pub fn storage_bits(&self) -> u64 {
        self.capacity() as u64 * u64::from(self.fp_bits)
    }

    /// How many insertions overflowed into the stash so far.
    pub fn overflow_count(&self) -> u64 {
        self.overflows
    }

    /// Entries currently held in the overflow stash.
    pub fn stash_len(&self) -> usize {
        self.stash.len()
    }

    #[inline]
    fn fingerprint(&self, key: u64) -> u16 {
        let fp = (metro_mix(key, SEED_FP) as u16) & self.fp_mask;
        // Zero marks an empty cell; remap to keep fingerprints nonzero.
        if fp == 0 {
            1
        } else {
            fp
        }
    }

    #[inline]
    fn index1(&self, key: u64) -> usize {
        (metro_mix(key, SEED_IDX) % self.bucket_count as u64) as usize
    }

    /// Alternate bucket: `(H(fp) - i) mod n`, an involution, so relocation
    /// works without knowing which of the two indices a cell currently uses.
    #[inline]
    fn alt_index(&self, index: usize, fp: u16) -> usize {
        let h = (metro_mix(u64::from(fp), SEED_ALT) % self.bucket_count as u64) as usize;
        (h + self.bucket_count - index) % self.bucket_count
    }

    fn bucket(&self, index: usize) -> &[u16] {
        &self.cells[index * self.slots..(index + 1) * self.slots]
    }

    fn bucket_mut(&mut self, index: usize) -> &mut [u16] {
        &mut self.cells[index * self.slots..(index + 1) * self.slots]
    }

    fn try_place(&mut self, index: usize, fp: u16) -> bool {
        let b = self.bucket_mut(index);
        for cell in b.iter_mut() {
            if *cell == 0 {
                *cell = fp;
                return true;
            }
        }
        false
    }

    /// Inserts `key`.
    ///
    /// Duplicate insertions are allowed and stored separately (the filter is
    /// a multiset, matching the hardware tables where two pages can map to
    /// the same fingerprint).
    ///
    /// # Errors
    ///
    /// Returns [`InsertError`] when relocation fails; the displaced
    /// fingerprint is kept in an internal stash so lookups stay correct.
    pub fn insert(&mut self, key: u64) -> Result<(), InsertError> {
        let fp = self.fingerprint(key);
        let i1 = self.index1(key);
        let i2 = self.alt_index(i1, fp);
        self.len += 1;
        if self.try_place(i1, fp) || self.try_place(i2, fp) {
            return Ok(());
        }
        // Kick-out relocation.
        let mut index = if self.rng.chance(0.5) { i1 } else { i2 };
        let mut fp = fp;
        for _ in 0..MAX_KICKS {
            let victim_slot = self.rng.gen_index(self.slots);
            let slot_base = index * self.slots;
            std::mem::swap(&mut fp, &mut self.cells[slot_base + victim_slot]);
            index = self.alt_index(index, fp);
            if self.try_place(index, fp) {
                return Ok(());
            }
        }
        // Preserve the final victim in the stash: no false negatives.
        self.stash.push((index, fp));
        self.overflows += 1;
        Err(InsertError { key })
    }

    /// Tests membership. No false negatives; false positives at the
    /// configured fingerprint rate.
    pub fn contains(&self, key: u64) -> bool {
        let fp = self.fingerprint(key);
        let i1 = self.index1(key);
        let i2 = self.alt_index(i1, fp);
        self.bucket(i1).contains(&fp)
            || self.bucket(i2).contains(&fp)
            || self
                .stash
                .iter()
                .any(|&(i, f)| f == fp && (i == i1 || i == i2))
    }

    /// Removes one copy of `key`'s fingerprint, if present.
    ///
    /// Returns `true` when a fingerprint was removed. When both candidate
    /// buckets hold a matching fingerprint a random one is chosen, exactly as
    /// the paper describes (§IV-B) — this is the source of FT stale-owner
    /// entries.
    pub fn remove(&mut self, key: u64) -> bool {
        let fp = self.fingerprint(key);
        let i1 = self.index1(key);
        let i2 = self.alt_index(i1, fp);
        let in1 = self.bucket(i1).contains(&fp);
        let in2 = i2 != i1 && self.bucket(i2).contains(&fp);
        let target = match (in1, in2) {
            (true, true) => {
                if self.rng.chance(0.5) {
                    i1
                } else {
                    i2
                }
            }
            (true, false) => i1,
            (false, true) => i2,
            (false, false) => {
                if let Some(pos) = self
                    .stash
                    .iter()
                    .position(|&(i, f)| f == fp && (i == i1 || i == i2))
                {
                    self.stash.swap_remove(pos);
                    self.len -= 1;
                    return true;
                }
                return false;
            }
        };
        let b = self.bucket_mut(target);
        if let Some(cell) = b.iter_mut().find(|c| **c == fp) {
            *cell = 0;
            self.len -= 1;
            true
        } else {
            false
        }
    }

    /// Empties the filter.
    pub fn clear(&mut self) {
        self.cells.fill(0);
        self.stash.clear();
        self.len = 0;
    }

    /// A 64-bit digest of the filter's full state — geometry, every cell,
    /// the stash, the overflow counter and the eviction RNG position — for
    /// epoch checkpoints. Two filters that answer queries identically from
    /// here on produce the same digest.
    pub fn state_digest(&self) -> u64 {
        let mut d = StateDigest::new();
        d.mix(self.bucket_count as u64)
            .mix(self.slots as u64)
            .mix(u64::from(self.fp_bits))
            .mix(u64::from(self.fp_mask))
            .mix(self.len as u64)
            .mix(self.overflows)
            .mix(self.rng.state_digest())
            .mix_all(self.cells.iter().map(|&c| u64::from(c)))
            .mix_all(self.stash.iter().map(|&(b, fp)| ((b as u64) << 16) | u64::from(fp)));
        d.finish()
    }
}

/// Minimum fingerprint bits for a target false-positive rate `epsilon` with
/// `slots` entries per bucket: `ceil(log2(1/eps) + log2(2 * slots))` (§IV-E).
///
/// ```
/// // The paper: eps = 0.2%, 2-slot buckets => ~9 + 2 = 11 bits.
/// assert_eq!(cuckoo::filter::min_fingerprint_bits(0.002, 2), 11);
/// // eps = 0.1%, 4-slot buckets => 10 + 3 = 13 bits.
/// assert_eq!(cuckoo::filter::min_fingerprint_bits(0.001, 4), 13);
/// ```
pub fn min_fingerprint_bits(epsilon: f64, slots: usize) -> u32 {
    assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1)");
    ((1.0 / epsilon).log2() + (2.0 * slots as f64).log2()).ceil() as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_contains() {
        let mut f = CuckooFilter::new(64, 4, 12);
        for k in 0..100u64 {
            f.insert(k).unwrap();
        }
        for k in 0..100u64 {
            assert!(f.contains(k), "missing {k}");
        }
        assert_eq!(f.len(), 100);
    }

    #[test]
    fn remove_clears_membership() {
        let mut f = CuckooFilter::new(64, 4, 12);
        f.insert(7).unwrap();
        assert!(f.remove(7));
        assert!(!f.contains(7));
        assert!(!f.remove(7));
        assert_eq!(f.len(), 0);
    }

    #[test]
    fn duplicates_are_multiset() {
        let mut f = CuckooFilter::new(64, 4, 12);
        f.insert(9).unwrap();
        f.insert(9).unwrap();
        assert!(f.remove(9));
        assert!(f.contains(9), "one copy must remain");
        assert!(f.remove(9));
        assert!(!f.contains(9));
    }

    #[test]
    fn no_false_negatives_under_load() {
        // 125 x 4 = 500 slots, fill to 95%: every inserted key must be found.
        let mut f = CuckooFilter::new(125, 4, 13);
        let keys: Vec<u64> = (0..475).map(|i| i * 37 + 5).collect();
        for &k in &keys {
            let _ = f.insert(k);
        }
        for &k in &keys {
            assert!(f.contains(k));
        }
    }

    #[test]
    fn false_positive_rate_near_target() {
        // 13-bit fingerprints, 4-slot buckets: eps ~ 2*4/2^13 ~ 0.1%.
        let mut f = CuckooFilter::new(1000, 4, 13);
        for k in 0..3000u64 {
            f.insert(k).unwrap();
        }
        let probes = 200_000u64;
        let fps = (0..probes)
            .filter(|p| f.contains(1_000_000 + p))
            .count() as f64;
        let rate = fps / probes as f64;
        assert!(rate < 0.004, "false positive rate {rate}");
    }

    #[test]
    fn overflow_goes_to_stash_and_stays_visible() {
        let mut f = CuckooFilter::new(4, 2, 8); // tiny: 8 slots
        let keys: Vec<u64> = (0..16).collect();
        let mut errs = 0;
        for &k in &keys {
            if f.insert(k).is_err() {
                errs += 1;
            }
        }
        assert!(errs > 0, "tiny filter must overflow");
        assert_eq!(f.overflow_count(), errs);
        for &k in &keys {
            assert!(f.contains(k), "stash must preserve {k}");
        }
    }

    #[test]
    fn clear_resets() {
        let mut f = CuckooFilter::new(16, 2, 8);
        for k in 0..10 {
            let _ = f.insert(k);
        }
        f.clear();
        assert!(f.is_empty());
        assert_eq!(f.occupancy(), 0.0);
        for k in 0..10 {
            assert!(!f.contains(k));
        }
    }

    #[test]
    fn alt_index_is_involution() {
        let f = CuckooFilter::new(125, 4, 13);
        for key in 0..500u64 {
            let fp = f.fingerprint(key);
            let i1 = f.index1(key);
            let i2 = f.alt_index(i1, fp);
            assert_eq!(f.alt_index(i2, fp), i1);
        }
    }

    #[test]
    fn fingerprints_never_zero() {
        let f = CuckooFilter::new(8, 2, 4); // narrow fp: zeros likely pre-remap
        for key in 0..10_000u64 {
            assert_ne!(f.fingerprint(key), 0);
        }
    }

    #[test]
    fn storage_bits_match_paper() {
        // FT: 1000 buckets x 2 slots x 11 bits = 2.68 KB.
        let ft = CuckooFilter::new(1000, 2, 11);
        assert_eq!(ft.storage_bits(), 22_000);
        let kb = ft.storage_bits() as f64 / 8.0 / 1024.0;
        assert!((kb - 2.68).abs() < 0.01, "FT size {kb} KB");
        // PRT: 125 buckets x 4 slots x 13 bits = 0.79 KB.
        let prt = CuckooFilter::new(125, 4, 13);
        assert_eq!(prt.storage_bits(), 6_500);
        let kb = prt.storage_bits() as f64 / 8.0 / 1024.0;
        assert!((kb - 0.79).abs() < 0.01, "PRT size {kb} KB");
    }

    #[test]
    fn paper_fingerprint_sizing() {
        assert_eq!(min_fingerprint_bits(0.002, 2), 11);
        assert_eq!(min_fingerprint_bits(0.001, 4), 13);
    }

    #[test]
    #[should_panic(expected = "fp_bits")]
    fn rejects_zero_fp_bits() {
        CuckooFilter::new(8, 2, 0);
    }

    #[test]
    #[should_panic(expected = "bucket_count")]
    fn rejects_zero_buckets() {
        CuckooFilter::new(0, 2, 8);
    }
}
