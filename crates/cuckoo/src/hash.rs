//! MetroHash-style 64-bit mixing.
//!
//! The paper uses MetroHash for the PRT/FT hash functions h1/h2. For fixed
//! 64-bit keys (virtual page numbers, optionally concatenated with a GPU id)
//! the property that matters is avalanche quality, so we implement a mixer
//! with MetroHash's structure: multiply by large odd constants, xor-rotate,
//! repeat. The constants are MetroHash64's `k0..k3`.

const K0: u64 = 0xD6D0_18F5;
const K1: u64 = 0xA2AA_033B;
const K2: u64 = 0x6299_2FC1;
const K3: u64 = 0x30BC_5B29;

/// Mixes a 64-bit key with a seed into a well-distributed 64-bit hash.
///
/// # Examples
///
/// ```
/// let a = cuckoo::metro_mix(1, 0);
/// let b = cuckoo::metro_mix(2, 0);
/// assert_ne!(a, b);
/// ```
#[inline]
pub fn metro_mix(key: u64, seed: u64) -> u64 {
    let mut h = seed.wrapping_add(K2).wrapping_mul(K0);
    h = h.wrapping_add(key.wrapping_mul(K1));
    h ^= h.rotate_right(29);
    h = h.wrapping_mul(K2);
    h = h.wrapping_add(key.rotate_right(31).wrapping_mul(K3));
    h ^= h.rotate_right(29);
    h = h.wrapping_mul(K0);
    h ^= h >> 33;
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic() {
        assert_eq!(metro_mix(123, 7), metro_mix(123, 7));
    }

    #[test]
    fn seed_changes_output() {
        assert_ne!(metro_mix(123, 0), metro_mix(123, 1));
    }

    #[test]
    fn no_collisions_on_small_dense_keys() {
        // Page numbers are dense small integers; the mixer must spread them.
        let hashes: HashSet<u64> = (0..100_000u64).map(|k| metro_mix(k, 0)).collect();
        assert_eq!(hashes.len(), 100_000);
    }

    #[test]
    fn avalanche_quality() {
        // Flipping one input bit should flip roughly half the output bits.
        let mut total_flips = 0u32;
        let trials = 64 * 32;
        for bit in 0..64 {
            for k in 0..32u64 {
                let key = k.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let a = metro_mix(key, 0);
                let b = metro_mix(key ^ (1 << bit), 0);
                total_flips += (a ^ b).count_ones();
            }
        }
        let avg = f64::from(total_flips) / f64::from(trials);
        assert!((24.0..40.0).contains(&avg), "avalanche avg {avg}");
    }

    #[test]
    fn low_bits_are_uniform() {
        // Bucket index uses the low bits mod a non-power-of-two (125, 1000).
        let mut buckets = [0u32; 125];
        for k in 0..125_000u64 {
            buckets[(metro_mix(k, 0) % 125) as usize] += 1;
        }
        let (min, max) = buckets
            .iter()
            .fold((u32::MAX, 0), |(lo, hi), &c| (lo.min(c), hi.max(c)));
        assert!(min > 800 && max < 1200, "bucket spread {min}..{max}");
    }
}
