//! Cuckoo filter: practically better than Bloom.
//!
//! Trans-FW's two hardware tables — the per-GPU *Pending Request Table* (PRT)
//! and the host-MMU *Forwarding Table* (FT) — are both Cuckoo filters
//! (Fan et al., CoNEXT '14). This crate implements the filter with the exact
//! knobs the paper exposes: bucket count, slots per bucket (2 for FT, 4 for
//! PRT), fingerprint width (11 and 13 bits), and deletion support.
//!
//! The paper hashes with MetroHash; [`hash`] provides a 64-bit mixer with the
//! same xor-multiply-rotate structure (only distribution quality matters for
//! the filter's false-positive rate).
//!
//! # Examples
//!
//! ```
//! use cuckoo::CuckooFilter;
//!
//! let mut f = CuckooFilter::new(128, 4, 13);
//! f.insert(42).unwrap();
//! assert!(f.contains(42));
//! assert!(f.remove(42));
//! assert!(!f.contains(42));
//! ```

pub mod filter;
pub mod hash;

pub use filter::{CuckooFilter, InsertError};
pub use hash::metro_mix;
