//! Stress and adversarial tests for the Cuckoo filter.

use cuckoo::{metro_mix, CuckooFilter};

#[test]
fn sustained_churn_at_high_occupancy() {
    // Fill to 90%, then cycle insert/remove for many rounds: membership
    // must stay exact for live keys.
    let mut f = CuckooFilter::new(250, 4, 13);
    let capacity = f.capacity();
    let live: Vec<u64> = (0..(capacity as u64 * 9 / 10)).collect();
    for &k in &live {
        let _ = f.insert(k);
    }
    for round in 0..50u64 {
        let churn_base = 1_000_000 + round * 1000;
        for i in 0..50 {
            let _ = f.insert(churn_base + i);
        }
        for i in 0..50 {
            assert!(f.contains(churn_base + i), "round {round} lost {i}");
            f.remove(churn_base + i);
        }
        for &k in live.iter().step_by(17) {
            assert!(f.contains(k), "round {round}: lost resident key {k}");
        }
    }
    assert_eq!(f.len(), live.len());
}

#[test]
fn clustered_keys_do_not_collapse() {
    // Page-number keys arrive in dense runs; the filter must not see them
    // as one fingerprint.
    let mut f = CuckooFilter::new(500, 4, 13);
    for k in 0..1500u64 {
        let _ = f.insert(k);
    }
    assert_eq!(f.len(), 1500);
    f.remove(100);
    // Only one key's membership can be affected by the removal.
    let missing = (0..1500u64).filter(|&k| !f.contains(k)).count();
    assert!(missing <= 1, "removal clobbered {missing} keys");
}

#[test]
fn occupancy_tracks_table_content() {
    let mut f = CuckooFilter::new(100, 4, 12);
    assert_eq!(f.occupancy(), 0.0);
    for k in 0..200u64 {
        let _ = f.insert(k);
    }
    assert!((f.occupancy() - 0.5).abs() < 0.05, "{}", f.occupancy());
}

#[test]
fn hash_seeds_partition_the_space() {
    // The filter internally uses distinct seeds for fingerprint and index;
    // check the public mixer gives independent streams.
    let same = (0..10_000u64)
        .filter(|&k| metro_mix(k, 1) % 1000 == metro_mix(k, 2) % 1000)
        .count();
    assert!(same < 40, "seeded hashes too correlated: {same}");
}

#[test]
fn fp_width_controls_false_positives() {
    // Wider fingerprints must strictly reduce the false-positive rate.
    let rate = |bits: u32| {
        let mut f = CuckooFilter::new(500, 4, bits);
        for k in 0..1000u64 {
            let _ = f.insert(k);
        }
        (0..100_000u64)
            .filter(|&p| f.contains(1_000_000 + p))
            .count() as f64
            / 100_000.0
    };
    let narrow = rate(8);
    let wide = rate(14);
    assert!(
        wide < narrow / 4.0,
        "14-bit fp rate {wide} should be far below 8-bit {narrow}"
    );
}
