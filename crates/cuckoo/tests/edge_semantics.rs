//! Edge-case semantics the Trans-FW tables lean on: deletion with colliding
//! fingerprints (the §IV-C stale-entry source) and stash overflow (the
//! no-false-negative guarantee under pressure).

use cuckoo::CuckooFilter;

/// Finds a key that collides with `base` in `f`: same fingerprint and an
/// overlapping candidate-bucket pair, detected behaviourally (the probe
/// reads as present even though only `base` was inserted).
fn find_collider(f: &CuckooFilter, base: u64, from: u64, to: u64) -> Option<u64> {
    (from..to).find(|&k| k != base && f.contains(k))
}

#[test]
fn deleting_one_of_two_colliding_keys_never_false_negatives() {
    // Narrow fingerprints make collisions easy to find deterministically
    // (the hash functions are fixed-seed).
    let mut f = CuckooFilter::new(16, 2, 6);
    let base = 42u64;
    f.insert(base).unwrap();
    let collider = find_collider(&f, base, 0, 100_000)
        .expect("6-bit fingerprints over 100k probes must collide");

    // Store both keys: two copies of the same fingerprint (multiset).
    f.insert(collider).unwrap();
    assert_eq!(f.len(), 2);

    // Removing one key may take either copy — the paper's §IV-C ambiguity.
    // Whichever copy goes, the *other key must still read as present*:
    // the survivor's fingerprint vouches for both (a stale entry at worst,
    // never a false negative).
    assert!(f.remove(base));
    assert!(f.contains(collider), "collider lost to ambiguous delete");
    assert!(
        f.contains(base),
        "base still aliases the collider's copy (stale, not absent)"
    );

    // Removing the second copy clears both.
    assert!(f.remove(collider));
    assert!(!f.contains(base));
    assert!(!f.contains(collider));
    assert_eq!(f.len(), 0);
}

#[test]
fn colliding_deletes_are_count_stable() {
    // A delete of a colliding key must remove exactly one copy per call, so
    // repeated migrate-away events cannot underflow the multiset.
    let mut f = CuckooFilter::new(16, 2, 6);
    let base = 7u64;
    f.insert(base).unwrap();
    let collider = find_collider(&f, base, 0, 100_000).expect("collision");
    f.insert(collider).unwrap();
    f.insert(base).unwrap(); // three copies total
    assert_eq!(f.len(), 3);
    assert!(f.remove(base));
    assert!(f.remove(collider));
    assert_eq!(f.len(), 1);
    assert!(f.contains(base) && f.contains(collider), "one copy vouches");
    assert!(f.remove(base));
    assert_eq!(f.len(), 0);
    assert!(!f.remove(base), "empty filter has nothing left to remove");
}

#[test]
fn stash_overflow_preserves_membership_and_supports_deletion() {
    // 4 buckets x 2 slots = 8 cells; 24 keys guarantee stash spill.
    let mut f = CuckooFilter::new(4, 2, 8);
    let keys: Vec<u64> = (0..24).map(|i| i * 131 + 17).collect();
    for &k in &keys {
        let _ = f.insert(k);
    }
    assert!(f.overflow_count() > 0, "must spill into the stash");
    assert!(f.stash_len() > 0);

    // No false negatives while full...
    for &k in &keys {
        assert!(f.contains(k), "key {k} lost under overflow");
    }

    // ...and none while draining: after each delete, every remaining key is
    // still visible, whether its fingerprint sits in the table or the stash.
    for (i, &k) in keys.iter().enumerate() {
        assert!(f.remove(k), "key {k} not removable");
        for &later in &keys[i + 1..] {
            assert!(f.contains(later), "key {later} lost after removing {k}");
        }
    }
    assert_eq!(f.len(), 0);
    assert_eq!(f.stash_len(), 0, "stash must drain with the table");
}

#[test]
fn reinsertion_after_overflow_churn_stays_exact() {
    // Fill past capacity, drain, refill: overflow bookkeeping must not wedge
    // the filter or leak phantom fingerprints across rounds.
    let mut f = CuckooFilter::new(4, 2, 8);
    for round in 0..3u64 {
        let keys: Vec<u64> = (0..20).map(|i| i * 977 + round * 7 + 1).collect();
        for &k in &keys {
            let _ = f.insert(k);
        }
        for &k in &keys {
            assert!(f.contains(k), "round {round}: key {k} missing");
        }
        for &k in &keys {
            assert!(f.remove(k), "round {round}: key {k} stuck");
        }
        assert!(f.is_empty(), "round {round}: residue left behind");
    }
}
