//! Traffic-pattern tests for the fabric.

use interconnect::{msg, Fabric, Link};

#[test]
fn page_burst_serialises_but_parallel_links_do_not() {
    let mut f = Fabric::new(4, 150, 150, 256);
    // 10 pages to GPU 0 queue up; 1 page each to GPUs 1-3 go in parallel.
    let mut last = 0;
    for _ in 0..10 {
        last = f.send_cpu_to_gpu(0, 0, msg::PAGE_4K);
    }
    let single = f.send_cpu_to_gpu(1, 0, msg::PAGE_4K);
    // Strip propagation latency: serialisation time scales with the burst.
    assert_eq!(last - 150, 10 * (single - 150), "burst must queue: {last} vs {single}");
}

#[test]
fn duplex_links_are_independent() {
    let mut f = Fabric::new(2, 100, 100, 32);
    let up = f.send_gpu_to_cpu(0, 0, msg::PAGE_4K);
    let down = f.send_cpu_to_gpu(0, 0, msg::PAGE_4K);
    assert_eq!(up, down, "up and down directions do not contend");
}

#[test]
fn large_pages_cost_proportionally_more() {
    let mut l = Link::new(0, 256);
    let small = l.send(0, msg::PAGE_4K);
    let mut l = Link::new(0, 256);
    let large = l.send(0, msg::PAGE_2M);
    assert_eq!(large, small * 512, "2 MB = 512 x 4 KB serialisation");
}

#[test]
fn bandwidth_bound_throughput() {
    // Saturate a link for 1000 sends and verify steady-state throughput
    // equals the configured bandwidth.
    let mut l = Link::new(50, 64);
    let mut last = 0;
    for i in 0..1000 {
        last = l.send(i, 4096);
    }
    let cycles = last - 50; // subtract propagation
    let bytes = 1000 * 4096;
    let achieved = f64::from(bytes) / cycles as f64;
    assert!((achieved - 64.0).abs() < 1.0, "throughput {achieved} B/cy");
}

#[test]
fn peer_latency_sweep_affects_only_peers() {
    let mut f = Fabric::new(2, 100, 100, 32);
    f.set_peer_latency(3200);
    let peer = f.send_gpu_to_gpu(0, 1, 0, msg::CONTROL);
    let cpu = f.send_gpu_to_cpu(0, 0, msg::CONTROL);
    assert!(peer > 3200);
    assert!(cpu < 200);
}
