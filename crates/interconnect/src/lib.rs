//! Interconnect models for the multi-GPU system.
//!
//! Table II models the CPU–GPU interconnect as PCIe with a 150-cycle latency;
//! GPU–GPU transfers use a peer link whose latency is swept in Fig. 21.
//! Besides fixed latency, links serialise payloads at a configurable
//! bandwidth, so bursts of far faults and page migrations queue behind each
//! other — the congestion that motivates Trans-FW's PRT filter (§IV-B).
//!
//! # Examples
//!
//! ```
//! use interconnect::Link;
//!
//! let mut pcie = Link::new(150, 16); // 150-cycle latency, 16 B/cycle
//! let first = pcie.send(0, 4096);    // a 4 KB page
//! let second = pcie.send(0, 4096);   // queues behind the first
//! assert_eq!(first, 150 + 256);
//! assert_eq!(second, 150 + 512);
//! ```

use sim_core::{Cycle, StateDigest};

/// A simplex link with fixed propagation latency and finite bandwidth.
#[derive(Debug, Clone)]
pub struct Link {
    latency: Cycle,
    bytes_per_cycle: u64,
    busy_until: Cycle,
    messages: u64,
    bytes: u64,
    busy_cycles: u64,
}

impl Link {
    /// Creates a link with the given propagation `latency` and bandwidth in
    /// bytes per cycle.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_cycle` is zero.
    pub fn new(latency: Cycle, bytes_per_cycle: u64) -> Self {
        assert!(bytes_per_cycle > 0, "bandwidth must be positive");
        Self {
            latency,
            bytes_per_cycle,
            busy_until: 0,
            messages: 0,
            bytes: 0,
            busy_cycles: 0,
        }
    }

    /// Sends `bytes` at time `now`; returns the arrival time at the far end.
    ///
    /// The payload serialises after any in-flight payloads (store-and-
    /// forward), then propagates with the fixed latency.
    pub fn send(&mut self, now: Cycle, bytes: u64) -> Cycle {
        let serialize = bytes.div_ceil(self.bytes_per_cycle);
        let start = self.busy_until.max(now);
        self.busy_until = start + serialize;
        self.messages += 1;
        self.bytes += bytes;
        self.busy_cycles += serialize;
        self.busy_until + self.latency
    }

    /// Propagation latency.
    pub fn latency(&self) -> Cycle {
        self.latency
    }

    /// Reconfigures the propagation latency (Fig. 21 sweep).
    pub fn set_latency(&mut self, latency: Cycle) {
        self.latency = latency;
    }

    /// Messages sent so far.
    pub fn message_count(&self) -> u64 {
        self.messages
    }

    /// Bytes sent so far.
    pub fn byte_count(&self) -> u64 {
        self.bytes
    }

    /// Cycles the link spent serialising payloads.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Earliest time a new payload could start serialising.
    pub fn busy_until(&self) -> Cycle {
        self.busy_until
    }

    /// Queued serialisation work ahead of a payload submitted at `now`:
    /// zero when the link is idle. Overload control reads this as its
    /// congestion signal before committing traffic to a path.
    pub fn backlog(&self, now: Cycle) -> Cycle {
        self.busy_until.saturating_sub(now)
    }

    /// A 64-bit digest of the link's full state (configuration and live
    /// serialisation front) for epoch checkpoints.
    pub fn state_digest(&self) -> u64 {
        let mut d = StateDigest::new();
        d.mix(self.latency)
            .mix(self.bytes_per_cycle)
            .mix(self.busy_until)
            .mix(self.messages)
            .mix(self.bytes)
            .mix(self.busy_cycles);
        d.finish()
    }
}

/// Message size constants used by the simulator, in bytes.
pub mod msg {
    /// A translation request or reply (command + VPN + PPN).
    pub const CONTROL: u64 = 32;
    /// A small (4 KB) page payload.
    pub const PAGE_4K: u64 = 4096;
    /// A large (2 MB) page payload.
    pub const PAGE_2M: u64 = 2 * 1024 * 1024;
}

/// The system fabric: one duplex CPU link per GPU plus a per-GPU peer port.
///
/// # Examples
///
/// ```
/// use interconnect::Fabric;
///
/// let mut fabric = Fabric::new(4, 150, 150, 32);
/// let arrival = fabric.send_gpu_to_cpu(0, 1000, interconnect::msg::CONTROL);
/// assert!(arrival >= 1150);
/// ```
#[derive(Debug, Clone)]
pub struct Fabric {
    /// Per-GPU GPU→CPU links.
    up: Vec<Link>,
    /// Per-GPU CPU→GPU links.
    down: Vec<Link>,
    /// Per-GPU peer egress ports (GPU→GPU traffic serialises at the source).
    peer: Vec<Link>,
    /// Symmetric pairwise partition state: `partitions[a]` has bit `b` set
    /// when the peer path between `a` and `b` is severed (and vice versa).
    partitions: Vec<u64>,
    /// Peer sends rerouted over the two-hop host path due to a partition.
    rerouted: u64,
}

impl Fabric {
    /// Creates a fabric for `gpus` GPUs with the given CPU-link and
    /// peer-link latencies and a common per-link bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if `gpus` is zero or `bytes_per_cycle` is zero.
    pub fn new(gpus: usize, cpu_latency: Cycle, peer_latency: Cycle, bytes_per_cycle: u64) -> Self {
        assert!(gpus > 0, "need at least one GPU");
        assert!(gpus <= 64, "partition bitmask supports at most 64 GPUs");
        Self {
            up: (0..gpus).map(|_| Link::new(cpu_latency, bytes_per_cycle)).collect(),
            down: (0..gpus).map(|_| Link::new(cpu_latency, bytes_per_cycle)).collect(),
            peer: (0..gpus).map(|_| Link::new(peer_latency, bytes_per_cycle)).collect(),
            partitions: vec![0; gpus],
            rerouted: 0,
        }
    }

    /// Number of GPUs attached.
    pub fn gpu_count(&self) -> usize {
        self.up.len()
    }

    /// Sends from GPU `gpu` to the host; returns arrival time.
    pub fn send_gpu_to_cpu(&mut self, gpu: usize, now: Cycle, bytes: u64) -> Cycle {
        self.up[gpu].send(now, bytes)
    }

    /// Sends from the host to GPU `gpu`; returns arrival time.
    pub fn send_cpu_to_gpu(&mut self, gpu: usize, now: Cycle, bytes: u64) -> Cycle {
        self.down[gpu].send(now, bytes)
    }

    /// Backlog on the host→GPU link a forward to `gpu` would ride,
    /// relative to `now` — the fabric-side queue-depth signal admission
    /// control consults before forwarding a walk to a remote peer.
    pub fn down_backlog(&self, gpu: usize, now: Cycle) -> Cycle {
        self.down.get(gpu).map_or(0, |l| l.backlog(now))
    }

    /// Backlog on GPU `gpu`'s peer egress port relative to `now`.
    pub fn peer_backlog(&self, gpu: usize, now: Cycle) -> Cycle {
        self.peer.get(gpu).map_or(0, |l| l.backlog(now))
    }

    /// Sends from GPU `src` to GPU `dst`; returns arrival time.
    ///
    /// If the peer path between `src` and `dst` is partitioned (see
    /// [`set_partitioned`](Self::set_partitioned)), the payload is rerouted
    /// over the reliable two-hop host path — serialising on `src`'s uplink
    /// and then `dst`'s downlink, so it queues behind (and applies
    /// backpressure to) ordinary host traffic instead of hanging.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst`.
    pub fn send_gpu_to_gpu(&mut self, src: usize, dst: usize, now: Cycle, bytes: u64) -> Cycle {
        assert_ne!(src, dst, "GPU cannot send to itself");
        if self.is_partitioned(src, dst) {
            self.rerouted += 1;
            let at_host = self.up[src].send(now, bytes);
            return self.down[dst].send(at_host, bytes);
        }
        self.peer[src].send(now, bytes)
    }

    /// Severs (`true`) or heals (`false`) the peer path between `a` and `b`.
    /// Partition state is symmetric.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    pub fn set_partitioned(&mut self, a: usize, b: usize, severed: bool) {
        assert_ne!(a, b, "cannot partition a GPU from itself");
        if severed {
            self.partitions[a] |= 1 << b;
            self.partitions[b] |= 1 << a;
        } else {
            self.partitions[a] &= !(1 << b);
            self.partitions[b] &= !(1 << a);
        }
    }

    /// Whether the peer path between `a` and `b` is currently severed.
    pub fn is_partitioned(&self, a: usize, b: usize) -> bool {
        self.partitions[a] & (1 << b) != 0
    }

    /// Whether any peer path is currently severed.
    pub fn any_partition(&self) -> bool {
        self.partitions.iter().any(|&m| m != 0)
    }

    /// Peer sends rerouted over the host path because of a partition.
    pub fn rerouted_count(&self) -> u64 {
        self.rerouted
    }

    /// Reconfigures the peer-link latency on every port (Fig. 21 sweep).
    pub fn set_peer_latency(&mut self, latency: Cycle) {
        for l in &mut self.peer {
            l.set_latency(latency);
        }
    }

    /// Total bytes moved over CPU links (both directions).
    pub fn cpu_bytes(&self) -> u64 {
        self.up.iter().chain(&self.down).map(Link::byte_count).sum()
    }

    /// Total bytes moved over peer links.
    pub fn peer_bytes(&self) -> u64 {
        self.peer.iter().map(Link::byte_count).sum()
    }

    /// Total messages over all links.
    pub fn message_count(&self) -> u64 {
        self.up
            .iter()
            .chain(&self.down)
            .chain(&self.peer)
            .map(Link::message_count)
            .sum()
    }

    /// A 64-bit digest of the fabric's full state — every `up`/`down`/`peer`
    /// link, the partition masks and the reroute counter — for epoch
    /// checkpoints. Cross-shard traffic serialises on these links, so the
    /// fabric belongs to the epoch digest the same way the page directory
    /// does.
    pub fn state_digest(&self) -> u64 {
        let mut d = StateDigest::new();
        d.mix_all(self.up.iter().map(Link::state_digest))
            .mix_all(self.down.iter().map(Link::state_digest))
            .mix_all(self.peer.iter().map(Link::state_digest))
            .mix_all(self.partitions.iter().copied())
            .mix(self.rerouted);
        d.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncongested_send_is_latency_plus_serialisation() {
        let mut l = Link::new(100, 32);
        assert_eq!(l.send(0, 32), 101);
        // 64 bytes at 32 B/cy = 2 cycles serialisation.
        assert_eq!(l.send(1000, 64), 1102);
    }

    #[test]
    fn back_to_back_sends_queue() {
        let mut l = Link::new(100, 32);
        let a = l.send(0, 3200); // 100 cy serialise
        let b = l.send(0, 3200);
        assert_eq!(a, 200);
        assert_eq!(b, 300);
        assert_eq!(l.busy_cycles(), 200);
    }

    #[test]
    fn idle_gap_resets_queuing() {
        let mut l = Link::new(10, 32);
        l.send(0, 320); // busy until 10
        let arrival = l.send(1000, 32);
        assert_eq!(arrival, 1011);
    }

    #[test]
    fn backlog_tracks_queued_serialisation() {
        let mut l = Link::new(100, 32);
        assert_eq!(l.backlog(0), 0);
        l.send(0, 3200); // 100 cycles of serialisation
        assert_eq!(l.backlog(0), 100);
        assert_eq!(l.backlog(60), 40);
        assert_eq!(l.backlog(500), 0, "past busy_until the backlog is gone");
    }

    #[test]
    fn fabric_backlogs_are_per_port_and_oob_safe() {
        let mut f = Fabric::new(2, 100, 50, 32);
        f.send_cpu_to_gpu(1, 0, 3200);
        assert_eq!(f.down_backlog(1, 0), 100);
        assert_eq!(f.down_backlog(0, 0), 0, "other GPU's downlink untouched");
        f.send_gpu_to_gpu(0, 1, 0, 3200);
        assert_eq!(f.peer_backlog(0, 0), 100);
        assert_eq!(f.down_backlog(99, 0), 0, "out-of-range GPU reads as idle");
    }

    #[test]
    fn sub_word_payload_rounds_up() {
        let mut l = Link::new(0, 32);
        assert_eq!(l.send(0, 1), 1);
    }

    #[test]
    fn stats_accumulate() {
        let mut l = Link::new(5, 16);
        l.send(0, 16);
        l.send(0, 32);
        assert_eq!(l.message_count(), 2);
        assert_eq!(l.byte_count(), 48);
    }

    #[test]
    fn fabric_links_are_independent() {
        let mut f = Fabric::new(2, 150, 150, 32);
        let a = f.send_gpu_to_cpu(0, 0, 3200);
        let b = f.send_gpu_to_cpu(1, 0, 3200);
        assert_eq!(a, b, "different GPUs' links do not interfere");
        let c = f.send_gpu_to_cpu(0, 0, 3200);
        assert!(c > a, "same link queues");
    }

    #[test]
    fn fabric_peer_latency_sweep() {
        let mut f = Fabric::new(2, 150, 150, 32);
        let base = f.send_gpu_to_gpu(0, 1, 0, 32);
        f.set_peer_latency(1200);
        let slow = f.send_gpu_to_gpu(0, 1, 10_000, 32);
        assert_eq!(base, 151);
        assert_eq!(slow, 10_000 + 1 + 1200);
    }

    #[test]
    #[should_panic(expected = "cannot send to itself")]
    fn self_send_panics() {
        Fabric::new(2, 1, 1, 32).send_gpu_to_gpu(1, 1, 0, 32);
    }

    #[test]
    fn partitioned_peer_path_reroutes_via_host() {
        let mut f = Fabric::new(4, 150, 40, 32);
        assert!(!f.any_partition());
        let direct = f.send_gpu_to_gpu(0, 1, 0, 32);
        assert_eq!(direct, 41, "healthy path uses the peer link");

        f.set_partitioned(0, 1, true);
        assert!(f.is_partitioned(0, 1));
        assert!(f.is_partitioned(1, 0), "partition state is symmetric");
        assert!(f.any_partition());

        // Rerouted: serialise on 0's uplink (arrive host at 151), then 1's
        // downlink (151 + 1 + 150) — two real store-and-forward hops.
        let rerouted = f.send_gpu_to_gpu(0, 1, 0, 32);
        assert_eq!(rerouted, 302);
        assert_eq!(f.rerouted_count(), 1);
        assert!(rerouted > direct, "host detour is slower than the peer link");

        // The detour occupies the host links: ordinary host traffic queues
        // behind it (backpressure), and the peer port stays idle.
        let host_after = f.send_cpu_to_gpu(1, 0, 3200);
        assert!(host_after > 151 + 100, "downlink was busy with the detour");
        assert_eq!(f.peer[0].message_count(), 1, "peer port unused while severed");
    }

    #[test]
    fn partition_window_heals() {
        let mut f = Fabric::new(2, 150, 40, 32);
        f.set_partitioned(0, 1, true);
        f.send_gpu_to_gpu(0, 1, 0, 32);
        f.set_partitioned(0, 1, false);
        assert!(!f.is_partitioned(0, 1));
        assert!(!f.any_partition());
        let healed = f.send_gpu_to_gpu(0, 1, 10_000, 32);
        assert_eq!(healed, 10_041, "healed path is direct again");
        assert_eq!(f.rerouted_count(), 1, "only the severed-window send rerouted");
    }

    #[test]
    fn partition_only_affects_named_pair() {
        let mut f = Fabric::new(4, 150, 40, 32);
        f.set_partitioned(1, 2, true);
        assert!(!f.is_partitioned(0, 1));
        assert!(!f.is_partitioned(2, 3));
        let unaffected = f.send_gpu_to_gpu(0, 3, 0, 32);
        assert_eq!(unaffected, 41);
        assert_eq!(f.rerouted_count(), 0);
    }

    #[test]
    #[should_panic(expected = "cannot partition")]
    fn self_partition_panics() {
        Fabric::new(2, 1, 1, 32).set_partitioned(1, 1, true);
    }

    #[test]
    fn fabric_byte_accounting() {
        let mut f = Fabric::new(2, 1, 1, 32);
        f.send_gpu_to_cpu(0, 0, 100);
        f.send_cpu_to_gpu(1, 0, 200);
        f.send_gpu_to_gpu(0, 1, 0, 300);
        assert_eq!(f.cpu_bytes(), 300);
        assert_eq!(f.peer_bytes(), 300);
        assert_eq!(f.message_count(), 3);
    }
}
