//! Bench-harness support crate.
//!
//! The interesting content lives in `benches/`: one `cargo bench` target per
//! paper table/figure (each regenerates the corresponding rows via the
//! `experiments` crate) plus Criterion microbenchmarks for the hot data
//! structures (`micro_structures`).
//!
//! Scale can be reduced for quick runs with the `TRANSFW_BENCH_SCALE`
//! environment variable (default 1.0 = full paper scale) and
//! `TRANSFW_BENCH_SEEDS` (default 2).

use experiments::RunOpts;

/// Builds the bench-wide run options from the environment.
///
/// # Examples
///
/// ```
/// let opts = transfw_bench::bench_opts();
/// assert!(opts.scale > 0.0);
/// ```
pub fn bench_opts() -> RunOpts {
    let scale = std::env::var("TRANSFW_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(1.0);
    let seeds = std::env::var("TRANSFW_BENCH_SEEDS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(2);
    RunOpts {
        scale,
        seeds: (1..=seeds.max(1)).collect(),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn default_opts_are_full_scale() {
        // Runs in the test environment where the variables are unset.
        let opts = super::bench_opts();
        assert!(opts.scale > 0.0);
        assert!(!opts.seeds.is_empty());
    }
}
