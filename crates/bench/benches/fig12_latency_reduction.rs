//! `cargo bench` target regenerating Fig. 12 of the Trans-FW paper.

fn main() {
    let opts = transfw_bench::bench_opts();
    let t0 = std::time::Instant::now();
    println!("{}", experiments::fig12::run(&opts));
    eprintln!("[fig12_latency_reduction] completed in {:.1?} (scale {}, {} seed(s))",
        t0.elapsed(), opts.scale, opts.seeds.len());
}
