//! `cargo bench` target regenerating Fig. 26 of the Trans-FW paper.

fn main() {
    let opts = transfw_bench::bench_opts();
    let t0 = std::time::Instant::now();
    println!("{}", experiments::fig26::run(&opts));
    eprintln!("[fig26_uvm_driver] completed in {:.1?} (scale {}, {} seed(s))",
        t0.elapsed(), opts.scale, opts.seeds.len());
}
