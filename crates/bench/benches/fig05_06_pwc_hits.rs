//! `cargo bench` target regenerating Figs. 5/6 of the Trans-FW paper.

fn main() {
    let opts = transfw_bench::bench_opts();
    let t0 = std::time::Instant::now();
    for r in experiments::fig05_06::run(&opts) {
        println!("{r}");
    }
    eprintln!("[fig05_06_pwc_hits] completed in {:.1?} (scale {}, {} seed(s))",
        t0.elapsed(), opts.scale, opts.seeds.len());
}
