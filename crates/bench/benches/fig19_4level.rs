//! `cargo bench` target regenerating Fig. 19 of the Trans-FW paper.

fn main() {
    let opts = transfw_bench::bench_opts();
    let t0 = std::time::Instant::now();
    println!("{}", experiments::fig19::run(&opts));
    eprintln!("[fig19_4level] completed in {:.1?} (scale {}, {} seed(s))",
        t0.elapsed(), opts.scale, opts.seeds.len());
}
