//! `cargo bench` target regenerating Table III of the Trans-FW paper.

fn main() {
    let opts = transfw_bench::bench_opts();
    let t0 = std::time::Instant::now();
    println!("{}", experiments::table3::run(&opts));
    eprintln!("[table3_apps] completed in {:.1?} (scale {}, {} seed(s))",
        t0.elapsed(), opts.scale, opts.seeds.len());
}
