//! `cargo bench` target regenerating Fig. 2 of the Trans-FW paper.

fn main() {
    let opts = transfw_bench::bench_opts();
    let t0 = std::time::Instant::now();
    for r in experiments::fig02::run(&opts) {
        println!("{r}");
    }
    eprintln!("[fig02_sw_vs_hw] completed in {:.1?} (scale {}, {} seed(s))",
        t0.elapsed(), opts.scale, opts.seeds.len());
}
