//! `cargo bench` target regenerating Fig. 14 of the Trans-FW paper.

fn main() {
    let opts = transfw_bench::bench_opts();
    let t0 = std::time::Instant::now();
    println!("{}", experiments::fig14::run(&opts));
    eprintln!("[fig14_replicated] completed in {:.1?} (scale {}, {} seed(s))",
        t0.elapsed(), opts.scale, opts.seeds.len());
}
