//! Criterion microbenchmarks for the hot data structures on the
//! translation critical path: the Cuckoo-filter PRT/FT, the set-associative
//! TLB, the UTC page-walk cache, the radix page-table walk and the event
//! queue.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use cuckoo::CuckooFilter;
use ptw::{Location, PageTable, Pte, PwCache, Utc};
use sim_core::EventQueue;
use tlb::Tlb;
use transfw::{Ft, Prt, TransFwConfig};

fn bench_cuckoo(c: &mut Criterion) {
    let mut g = c.benchmark_group("cuckoo");
    g.bench_function("insert_remove", |b| {
        b.iter_batched(
            || CuckooFilter::new(125, 4, 13),
            |mut f| {
                for k in 0..400u64 {
                    let _ = f.insert(black_box(k));
                }
                for k in 0..400u64 {
                    f.remove(black_box(k));
                }
                f
            },
            BatchSize::SmallInput,
        );
    });
    let mut filter = CuckooFilter::new(125, 4, 13);
    for k in 0..400u64 {
        let _ = filter.insert(k);
    }
    g.bench_function("contains_hit", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 1) % 400;
            black_box(filter.contains(black_box(k)))
        });
    });
    g.bench_function("contains_miss", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            black_box(filter.contains(black_box(1_000_000 + k)))
        });
    });
    g.finish();
}

fn bench_prt_ft(c: &mut Criterion) {
    let mut g = c.benchmark_group("transfw_tables");
    let mut prt = Prt::new(&TransFwConfig::default());
    for vpn in (0..3200u64).step_by(8) {
        prt.page_arrived(vpn);
    }
    g.bench_function("prt_lookup", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v = (v + 8) % 3200;
            black_box(prt.may_be_local(black_box(v)))
        });
    });
    let mut ft = Ft::new(&TransFwConfig::default(), 4);
    for i in 0..1500u64 {
        ft.page_migrated(i * 8, None, (i % 4) as u16);
    }
    g.bench_function("ft_lookup_4gpus", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v = (v + 8) % 12_000;
            black_box(ft.lookup(black_box(v)))
        });
    });
    g.finish();
}

fn bench_tlb(c: &mut Criterion) {
    let mut g = c.benchmark_group("tlb");
    let mut l2: Tlb<u64> = Tlb::new(512, 16, 10);
    for vpn in 0..512u64 {
        l2.fill(vpn, vpn);
    }
    g.bench_function("l2_lookup_hit", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v = (v + 1) % 512;
            black_box(l2.lookup(black_box(v)).is_some())
        });
    });
    g.bench_function("l2_fill_evict", |b| {
        let mut v = 512u64;
        b.iter(|| {
            v += 1;
            black_box(l2.fill(black_box(v), v))
        });
    });
    g.finish();
}

fn bench_walk(c: &mut Criterion) {
    let mut g = c.benchmark_group("page_table");
    let mut pt = PageTable::new(5);
    for vpn in 0..10_000u64 {
        pt.insert(vpn, Pte::new(vpn, Location::Gpu(0)));
    }
    g.bench_function("walk_mapped", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v = (v + 1) % 10_000;
            black_box(pt.walk(black_box(v), None))
        });
    });
    g.bench_function("walk_unmapped", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v += 1;
            black_box(pt.walk(black_box(1 << 40 | v), None))
        });
    });
    let mut utc = Utc::new(128, 5);
    for vpn in 0..1000u64 {
        utc.insert(vpn, 2);
    }
    g.bench_function("utc_lookup", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v = (v + 1) % 1000;
            black_box(utc.lookup(black_box(v)))
        });
    });
    g.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_1k", |b| {
        b.iter_batched(
            EventQueue::<u64>::new,
            |mut q| {
                for i in 0..1000u64 {
                    q.push((i * 37) % 500, i);
                }
                while let Some(x) = q.pop() {
                    black_box(x);
                }
                q
            },
            BatchSize::SmallInput,
        );
    });
}

criterion_group!(
    benches,
    bench_cuckoo,
    bench_prt_ft,
    bench_tlb,
    bench_walk,
    bench_event_queue
);
criterion_main!(benches);
