//! Statistics primitives for simulation metrics.
//!
//! The paper's figures are built from three kinds of measurements: event
//! counts (e.g. TLB hits), accumulated latencies attributed to named buckets
//! (Fig. 3/12), and distributions (queue depths). [`Counter`],
//! [`LatencyAccumulator`] and [`Histogram`] cover those respectively.

use std::fmt;

use crate::Cycle;

/// A monotonically increasing event counter.
///
/// # Examples
///
/// ```
/// use sim_core::stats::Counter;
///
/// let mut hits = Counter::default();
/// hits.inc();
/// hits.add(2);
/// assert_eq!(hits.get(), 3);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Ratio of two counters, returning 0 for an empty denominator.
///
/// ```
/// assert_eq!(sim_core::stats::ratio(1, 4), 0.25);
/// assert_eq!(sim_core::stats::ratio(1, 0), 0.0);
/// ```
pub fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Accumulates total latency and sample count for one named bucket.
///
/// # Examples
///
/// ```
/// use sim_core::stats::LatencyAccumulator;
///
/// let mut acc = LatencyAccumulator::default();
/// acc.record(100);
/// acc.record(300);
/// assert_eq!(acc.total(), 400);
/// assert_eq!(acc.count(), 2);
/// assert_eq!(acc.mean(), 200.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyAccumulator {
    total: u64,
    count: u64,
    max: u64,
}

impl LatencyAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample.
    #[inline]
    pub fn record(&mut self, latency: Cycle) {
        self.total += latency;
        self.count += 1;
        self.max = self.max.max(latency);
    }

    /// Sum of all samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest sample, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample, or 0 when empty.
    pub fn mean(&self) -> f64 {
        ratio(self.total, self.count)
    }

    /// Folds another accumulator into this one.
    pub fn merge(&mut self, other: &LatencyAccumulator) {
        self.total += other.total;
        self.count += other.count;
        self.max = self.max.max(other.max);
    }
}

/// A power-of-two bucketed histogram for latencies and queue depths.
///
/// Bucket `i` covers `[2^(i-1), 2^i)`; bucket 0 covers the value 0..=1.
///
/// # Examples
///
/// ```
/// use sim_core::stats::Histogram;
///
/// let mut h = Histogram::new();
/// h.record(0);
/// h.record(1);
/// h.record(5);
/// assert_eq!(h.count(), 3);
/// assert!(h.mean() > 0.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    total: u64,
    count: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_of(value: u64) -> usize {
        if value <= 1 {
            0
        } else {
            (64 - (value - 1).leading_zeros()) as usize
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let b = Self::bucket_of(value);
        if self.buckets.len() <= b {
            self.buckets.resize(b + 1, 0);
        }
        self.buckets[b] += 1;
        self.total += value;
        self.count += 1;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        ratio(self.total, self.count)
    }

    /// Fraction of samples at or below `value`.
    pub fn fraction_le(&self, value: u64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let b = Self::bucket_of(value);
        let below: u64 = self.buckets.iter().take(b + 1).sum();
        below as f64 / self.count as f64
    }

    /// Bucket counts, from smallest values upward.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// An upper bound on the `frac` quantile: the inclusive upper edge of
    /// the first bucket whose cumulative count reaches `frac` of all
    /// samples (0 when empty). With power-of-two buckets this is within 2×
    /// of the true quantile — good enough for "p99 stays bounded" checks.
    ///
    /// ```
    /// use sim_core::stats::Histogram;
    ///
    /// let mut h = Histogram::new();
    /// for _ in 0..99 { h.record(10); }
    /// h.record(1_000);
    /// assert!(h.percentile_bound(0.50) <= 16);
    /// assert!(h.percentile_bound(0.999) >= 1_000);
    /// ```
    pub fn percentile_bound(&self, frac: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let need = (frac.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut cum = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= need {
                return 1u64 << i;
            }
        }
        1u64 << self.buckets.len().saturating_sub(1)
    }
}

/// Computes the arithmetic mean of an `f64` slice (0 when empty).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Computes the geometric mean of an `f64` slice (0 when empty).
///
/// # Panics
///
/// Panics if any element is non-positive.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "geomean requires positive inputs, got {x}");
            x.ln()
        })
        .sum();
    (log_sum / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert_eq!(c.to_string(), "10");
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        assert_eq!(ratio(5, 0), 0.0);
        assert_eq!(ratio(2, 8), 0.25);
    }

    #[test]
    fn latency_accumulator_tracks_mean_and_max() {
        let mut a = LatencyAccumulator::new();
        assert_eq!(a.mean(), 0.0);
        a.record(10);
        a.record(30);
        a.record(20);
        assert_eq!(a.total(), 60);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), 30);
        assert_eq!(a.mean(), 20.0);
    }

    #[test]
    fn latency_accumulator_merge() {
        let mut a = LatencyAccumulator::new();
        a.record(10);
        let mut b = LatencyAccumulator::new();
        b.record(50);
        a.merge(&b);
        assert_eq!(a.total(), 60);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 50);
    }

    #[test]
    fn histogram_buckets_are_correct() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 0);
        assert_eq!(Histogram::bucket_of(2), 1);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 2);
        assert_eq!(Histogram::bucket_of(5), 3);
        assert_eq!(Histogram::bucket_of(8), 3);
        assert_eq!(Histogram::bucket_of(9), 4);
    }

    #[test]
    fn histogram_mean_and_fraction() {
        let mut h = Histogram::new();
        for v in [1u64, 1, 1, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert!((h.mean() - 25.75).abs() < 1e-9);
        assert!((h.fraction_le(1) - 0.75).abs() < 1e-9);
        assert_eq!(h.fraction_le(128), 1.0);
    }

    #[test]
    fn geomean_of_equal_values() {
        let g = geomean(&[2.0, 2.0, 2.0]);
        assert!((g - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_mixed() {
        let g = geomean(&[1.0, 4.0]);
        assert!((g - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mean_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(geomean(&[]), 0.0);
    }
}
