//! Page-migration latency events.
//!
//! The placement-policy engine (the `uvm::policy` subsystem) moves pages
//! between memories; each move occupies the inter-GPU fabric and adds
//! latency to the faulting request. This module records those moves as
//! typed events so experiments can attribute time to migration, replication,
//! write-collapse and prefetch traffic separately — the breakdown behind
//! the policy-sweep figures.

use crate::stats::LatencyAccumulator;
use crate::Cycle;

/// What kind of page movement an event describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationKind {
    /// A far fault migrated the page into the faulting GPU.
    FaultMigrate,
    /// A read fault created an additional replica.
    Replicate,
    /// A write collapsed a replicated page back to a single owner.
    Collapse,
    /// An access-counter promotion moved a remote-mapped page off the
    /// critical path.
    Background,
    /// The prefetch policy pulled a neighbouring cold page in alongside a
    /// demand migration.
    Prefetch,
}

impl MigrationKind {
    /// Short lowercase label for logs and JSON.
    pub fn label(self) -> &'static str {
        match self {
            MigrationKind::FaultMigrate => "fault-migrate",
            MigrationKind::Replicate => "replicate",
            MigrationKind::Collapse => "collapse",
            MigrationKind::Background => "background",
            MigrationKind::Prefetch => "prefetch",
        }
    }
}

/// One page movement: what moved, where, and how long the fabric took.
///
/// Sources and destinations are GPU ids; `None` stands for the CPU backing
/// memory (this crate sits below the memory-system crates and cannot name
/// their `Location` type).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationEvent {
    /// The virtual page that moved.
    pub vpn: u64,
    /// Where the data came from (`None` = host memory).
    pub src: Option<u16>,
    /// The GPU that received the page.
    pub dst: u16,
    /// Cycle the movement was issued.
    pub issued: Cycle,
    /// Cycle the movement completed on the fabric.
    pub completed: Cycle,
    /// The kind of movement.
    pub kind: MigrationKind,
}

impl MigrationEvent {
    /// Fabric cycles the movement occupied.
    pub fn latency(&self) -> Cycle {
        self.completed.saturating_sub(self.issued)
    }
}

/// A bounded log of migration events plus an unbounded latency accumulator.
///
/// The log keeps the first `cap` events verbatim (enough for tests and
/// debugging dumps) and counts the rest, so long soaks cannot grow memory
/// without bound while the latency statistics stay exact over every event.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MigrationLog {
    events: Vec<MigrationEvent>,
    cap: usize,
    dropped: u64,
    latency: LatencyAccumulator,
}

impl MigrationLog {
    /// Default retained-event cap.
    pub const DEFAULT_CAP: usize = 4096;

    /// A log retaining up to [`DEFAULT_CAP`](Self::DEFAULT_CAP) events.
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAP)
    }

    /// A log retaining up to `cap` events verbatim.
    pub fn with_capacity(cap: usize) -> Self {
        Self { events: Vec::new(), cap, dropped: 0, latency: LatencyAccumulator::default() }
    }

    /// Records one movement.
    pub fn record(&mut self, event: MigrationEvent) {
        self.latency.record(event.latency());
        if self.events.len() < self.cap {
            self.events.push(event);
        } else {
            self.dropped += 1;
        }
    }

    /// The retained events, in record order.
    pub fn events(&self) -> &[MigrationEvent] {
        &self.events
    }

    /// Events recorded beyond the retention cap (still counted in the
    /// latency statistics).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total movements recorded.
    pub fn total(&self) -> u64 {
        self.events.len() as u64 + self.dropped
    }

    /// Latency statistics over *every* recorded movement.
    pub fn latency(&self) -> LatencyAccumulator {
        self.latency
    }

    /// Movements of one kind among the retained events.
    pub fn count_retained(&self, kind: MigrationKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(vpn: u64, issued: Cycle, completed: Cycle, kind: MigrationKind) -> MigrationEvent {
        MigrationEvent { vpn, src: None, dst: 0, issued, completed, kind }
    }

    #[test]
    fn latency_is_completion_minus_issue() {
        let e = ev(1, 100, 340, MigrationKind::FaultMigrate);
        assert_eq!(e.latency(), 240);
        let degenerate = ev(1, 100, 90, MigrationKind::Prefetch);
        assert_eq!(degenerate.latency(), 0, "clock skew saturates at zero");
    }

    #[test]
    fn log_retains_up_to_cap_and_counts_the_rest() {
        let mut log = MigrationLog::with_capacity(2);
        for i in 0..5u64 {
            log.record(ev(i, 0, 10, MigrationKind::Replicate));
        }
        assert_eq!(log.events().len(), 2);
        assert_eq!(log.dropped(), 3);
        assert_eq!(log.total(), 5);
        assert_eq!(log.latency().count(), 5, "latency stats cover dropped events");
        assert_eq!(log.latency().mean(), 10.0);
    }

    #[test]
    fn count_retained_filters_by_kind() {
        let mut log = MigrationLog::new();
        log.record(ev(1, 0, 5, MigrationKind::FaultMigrate));
        log.record(ev(2, 0, 5, MigrationKind::Prefetch));
        log.record(ev(3, 0, 5, MigrationKind::Prefetch));
        assert_eq!(log.count_retained(MigrationKind::Prefetch), 2);
        assert_eq!(log.count_retained(MigrationKind::Collapse), 0);
    }

    #[test]
    fn kind_labels_are_stable() {
        assert_eq!(MigrationKind::FaultMigrate.label(), "fault-migrate");
        assert_eq!(MigrationKind::Background.label(), "background");
    }
}
