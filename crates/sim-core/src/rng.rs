//! A small, fast, deterministic PRNG.
//!
//! The simulator must be reproducible from a single seed, so we implement
//! xoshiro256** (Blackman & Vigna) seeded through SplitMix64 rather than
//! relying on ambient OS entropy.

/// Deterministic pseudo-random number generator (xoshiro256**).
///
/// # Examples
///
/// ```
/// use sim_core::SimRng;
///
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

/// SplitMix64 step, used for seeding and as a standalone mixer.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }

    /// Returns the next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        // Lemire's multiply-shift rejection method.
        let mut x = self.next_u64();
        let mut m = u128::from(x).wrapping_mul(u128::from(bound));
        let mut lo = m as u64;
        if lo < bound {
            let t = bound.wrapping_neg() % bound;
            while lo < t {
                x = self.next_u64();
                m = u128::from(x).wrapping_mul(u128::from(bound));
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `usize` in `[0, bound)`.
    #[inline]
    pub fn gen_index(&mut self, bound: usize) -> usize {
        self.gen_range(bound as u64) as usize
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Forks an independent stream, e.g. one per simulated compute unit.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        SimRng::new(self.next_u64() ^ stream.wrapping_mul(0xA076_1D64_78BD_642F))
    }

    /// A 64-bit digest of the generator's current state, without advancing
    /// it. Two generators with equal digests will produce identical streams
    /// from here on — used by epoch checkpoints to certify that a restored
    /// run has replayed to the same random state.
    pub fn state_digest(&self) -> u64 {
        let mut acc = 0xC0FF_EE00_0000_0001u64;
        for (i, &w) in self.s.iter().enumerate() {
            let mut sm = w ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            acc ^= splitmix64(&mut sm).rotate_left((i as u32) * 16);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_respects_bound() {
        let mut r = SimRng::new(99);
        for bound in [1u64, 2, 3, 7, 100, 1 << 40] {
            for _ in 0..200 {
                assert!(r.gen_range(bound) < bound);
            }
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn gen_range_zero_panics() {
        SimRng::new(0).gen_range(0);
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = SimRng::new(5);
        for _ in 0..10_000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_f64_roughly_uniform() {
        let mut r = SimRng::new(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.gen_f64()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(21);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "100-element shuffle should not be identity");
    }

    #[test]
    fn state_digest_tracks_stream_position() {
        let mut a = SimRng::new(77);
        let mut b = SimRng::new(77);
        assert_eq!(a.state_digest(), b.state_digest());
        let d0 = a.state_digest();
        a.next_u64();
        assert_ne!(a.state_digest(), d0, "advancing changes the digest");
        assert_eq!(b.state_digest(), d0, "digest does not advance the stream");
        b.next_u64();
        assert_eq!(a.state_digest(), b.state_digest());
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut root = SimRng::new(1234);
        let mut c1 = root.fork(0);
        let mut c2 = root.fork(1);
        let same = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert!(same < 4);
    }
}
