//! Epoch checkpoints for crash-restore with bit-identical replay.
//!
//! The simulator's state is deliberately not deep-cloneable (workload
//! streams and page-walk caches live behind trait objects), so a
//! checkpoint is not a snapshot of the heap: it is a *certificate* — a
//! digest of everything that determines the future of the run (cycle,
//! outstanding work, TLB/PRT/FT occupancy, directory contents, RNG
//! state). Because the whole simulator is deterministic from its seed, a
//! crashed run is restored by replaying from cycle 0 and *verifying* that
//! every epoch digest recorded before the crash is reproduced exactly.
//! Any divergence means the restore is not bit-identical and is reported
//! as a hard error instead of silently continuing from corrupt state.
//!
//! # Examples
//!
//! ```
//! use sim_core::checkpoint::{CheckpointLog, EpochCheckpoint, StateDigest};
//!
//! let mut digest = StateDigest::new();
//! digest.mix(42).mix(7);
//! let mut log = CheckpointLog::new();
//! log.record(EpochCheckpoint { epoch: 0, cycle: 1000, digest: digest.finish() });
//! assert_eq!(log.len(), 1);
//! assert!(log.verify_prefix_of(&log.clone()).is_ok());
//! ```

use crate::{Cycle, SimError};

/// Incremental, order-sensitive 64-bit state digest.
///
/// Built on the same SplitMix64 mixer as the RNG seeding path: each mixed
/// word is diffused and folded into the accumulator with a position-
/// dependent rotation, so permuted inputs produce different digests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateDigest {
    acc: u64,
    count: u64,
}

impl StateDigest {
    /// A fresh digest.
    pub fn new() -> Self {
        Self { acc: 0x7261_6E73_2D46_5721, count: 0 }
    }

    /// Folds one 64-bit word into the digest.
    pub fn mix(&mut self, word: u64) -> &mut Self {
        let mut sm = word ^ self.count.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let z = crate::rng::splitmix64(&mut sm);
        self.acc = self.acc.rotate_left(17) ^ z;
        self.count += 1;
        self
    }

    /// Folds an iterator of words.
    pub fn mix_all<I: IntoIterator<Item = u64>>(&mut self, words: I) -> &mut Self {
        for w in words {
            self.mix(w);
        }
        self
    }

    /// Folds a string (length-delimited, byte-exact) into the digest.
    pub fn mix_str(&mut self, s: &str) -> &mut Self {
        self.mix(s.len() as u64);
        for chunk in s.as_bytes().chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(word));
        }
        self
    }

    /// Finalizes the digest, binding in the word count so that prefixes of
    /// a longer input do not collide with the full input.
    pub fn finish(&self) -> u64 {
        let mut sm = self.acc ^ self.count;
        crate::rng::splitmix64(&mut sm)
    }
}

impl Default for StateDigest {
    fn default() -> Self {
        Self::new()
    }
}

/// One consistent snapshot point of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochCheckpoint {
    /// Ordinal of this checkpoint (0-based).
    pub epoch: u64,
    /// Cycle at which the snapshot was taken.
    pub cycle: Cycle,
    /// Digest of the simulator state at that cycle (queues, TLB/PRT/FT,
    /// directory, RNG, outstanding requests).
    pub digest: u64,
}

/// The ordered sequence of epoch checkpoints a run produced.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckpointLog {
    epochs: Vec<EpochCheckpoint>,
}

impl CheckpointLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a checkpoint; epochs must arrive in order.
    ///
    /// # Panics
    ///
    /// Panics if `cp.epoch` is not the next expected ordinal.
    pub fn record(&mut self, cp: EpochCheckpoint) {
        assert_eq!(
            cp.epoch,
            self.epochs.len() as u64,
            "checkpoint epochs must be recorded in order"
        );
        self.epochs.push(cp);
    }

    /// Number of checkpoints taken.
    pub fn len(&self) -> usize {
        self.epochs.len()
    }

    /// Whether no checkpoint has been taken yet.
    pub fn is_empty(&self) -> bool {
        self.epochs.is_empty()
    }

    /// The last consistent epoch, if any.
    pub fn last(&self) -> Option<&EpochCheckpoint> {
        self.epochs.last()
    }

    /// All recorded checkpoints in order.
    pub fn epochs(&self) -> &[EpochCheckpoint] {
        &self.epochs
    }

    /// Verifies that `self` (the log of a crashed run) is an exact prefix
    /// of `restored` (the log of the replay): same cycles, same digests,
    /// epoch by epoch. This is the bit-identical-restore certificate.
    pub fn verify_prefix_of(&self, restored: &CheckpointLog) -> Result<(), SimError> {
        if restored.epochs.len() < self.epochs.len() {
            return Err(SimError::InvariantViolation(format!(
                "restored run took {} checkpoint(s) but the crashed run had {}",
                restored.epochs.len(),
                self.epochs.len()
            )));
        }
        for (a, b) in self.epochs.iter().zip(&restored.epochs) {
            if a != b {
                return Err(SimError::InvariantViolation(format!(
                    "restore diverged at epoch {}: crashed run was (cycle {}, digest {:#018x}), \
                     replay is (cycle {}, digest {:#018x})",
                    a.epoch, a.cycle, a.digest, b.cycle, b.digest
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_order_sensitive() {
        let mut a = StateDigest::new();
        a.mix(1).mix(2);
        let mut b = StateDigest::new();
        b.mix(2).mix(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn digest_prefix_does_not_collide() {
        let mut a = StateDigest::new();
        a.mix(5);
        let mut b = StateDigest::new();
        b.mix(5).mix(0);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn digest_is_deterministic() {
        let run = || {
            let mut d = StateDigest::new();
            d.mix_all([3, 1, 4, 1, 5, 9, 2, 6]);
            d.finish()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn log_records_in_order() {
        let mut log = CheckpointLog::new();
        assert!(log.is_empty());
        log.record(EpochCheckpoint { epoch: 0, cycle: 100, digest: 1 });
        log.record(EpochCheckpoint { epoch: 1, cycle: 200, digest: 2 });
        assert_eq!(log.len(), 2);
        assert_eq!(log.last().unwrap().cycle, 200);
    }

    #[test]
    #[should_panic(expected = "in order")]
    fn log_rejects_out_of_order_epochs() {
        let mut log = CheckpointLog::new();
        log.record(EpochCheckpoint { epoch: 3, cycle: 100, digest: 1 });
    }

    #[test]
    fn verify_prefix_accepts_identical_and_longer_logs() {
        let mut crashed = CheckpointLog::new();
        crashed.record(EpochCheckpoint { epoch: 0, cycle: 100, digest: 11 });
        crashed.record(EpochCheckpoint { epoch: 1, cycle: 200, digest: 22 });
        let mut restored = crashed.clone();
        assert!(crashed.verify_prefix_of(&restored).is_ok());
        restored.record(EpochCheckpoint { epoch: 2, cycle: 300, digest: 33 });
        assert!(crashed.verify_prefix_of(&restored).is_ok());
    }

    #[test]
    fn verify_prefix_rejects_divergence_and_truncation() {
        let mut crashed = CheckpointLog::new();
        crashed.record(EpochCheckpoint { epoch: 0, cycle: 100, digest: 11 });
        crashed.record(EpochCheckpoint { epoch: 1, cycle: 200, digest: 22 });

        let mut diverged = CheckpointLog::new();
        diverged.record(EpochCheckpoint { epoch: 0, cycle: 100, digest: 11 });
        diverged.record(EpochCheckpoint { epoch: 1, cycle: 200, digest: 99 });
        assert!(crashed.verify_prefix_of(&diverged).is_err());

        let mut short = CheckpointLog::new();
        short.record(EpochCheckpoint { epoch: 0, cycle: 100, digest: 11 });
        assert!(crashed.verify_prefix_of(&short).is_err());
    }
}
