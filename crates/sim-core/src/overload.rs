//! Overload-control primitives: exponential backoff with deterministic
//! jitter, integer token buckets, and watermark hysteresis gates.
//!
//! These are the building blocks the mgpu overload subsystem composes into
//! admission control, retry budgets and circuit breakers. They are kept in
//! `sim-core` because they are pure state machines over `Cycle` arithmetic
//! and the seeded [`SimRng`] — no wall-clock time, no floating-point
//! accumulation in the control path, so every decision replays bit-identically
//! from a seed.

use crate::{Cycle, SimRng};

/// Exponential backoff schedule with deterministic full-ish jitter.
///
/// Attempt `n` draws a delay uniformly from `[raw/2, raw]` where
/// `raw = min(base << n, cap)`. The half-floor keeps retries from
/// synchronising at zero while the jitter (drawn from the caller's
/// [`SimRng`]) de-correlates retry storms across requests.
///
/// # Examples
///
/// ```
/// use sim_core::{ExponentialBackoff, SimRng};
///
/// let b = ExponentialBackoff::new(1_000, 32_000);
/// let mut rng = SimRng::new(7);
/// let d0 = b.delay(0, &mut rng);
/// assert!((500..=1_000).contains(&d0));
/// let d9 = b.delay(9, &mut rng); // capped
/// assert!((16_000..=32_000).contains(&d9));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExponentialBackoff {
    base: Cycle,
    cap: Cycle,
}

impl ExponentialBackoff {
    /// Creates a schedule with first-attempt delay `base` and ceiling `cap`.
    ///
    /// # Panics
    ///
    /// Panics if `base` is zero or `cap < base`.
    pub fn new(base: Cycle, cap: Cycle) -> Self {
        assert!(base > 0, "backoff base must be positive");
        assert!(cap >= base, "backoff cap must be at least the base");
        Self { base, cap }
    }

    /// The jittered delay for retry `attempt` (0-based), in `[raw/2, raw]`.
    pub fn delay(&self, attempt: u32, rng: &mut SimRng) -> Cycle {
        let raw = self.raw_delay(attempt);
        let floor = raw / 2;
        floor + rng.gen_range(raw - floor + 1)
    }

    /// The un-jittered ceiling for retry `attempt` (0-based).
    pub fn raw_delay(&self, attempt: u32) -> Cycle {
        1u64.checked_shl(attempt)
            .and_then(|m| self.base.checked_mul(m))
            .unwrap_or(self.cap)
            .min(self.cap)
    }
}

/// An integer token bucket metering retries against fresh traffic.
///
/// Levels are kept in milli-tokens so a refill of, say, 250‰ per fresh
/// arrival (one retry token per four fresh requests) needs no floating
/// point: `refill()` adds `refill_permille` milli-tokens, `try_take()`
/// spends 1000. The bucket starts full so a cold system can retry
/// immediately; sustained retry demand beyond the refill rate drains it
/// and further retries are denied until fresh traffic re-funds the bucket.
///
/// # Examples
///
/// ```
/// use sim_core::TokenBucket;
///
/// let mut b = TokenBucket::new(2, 500); // 2 tokens, +0.5 per refill
/// assert!(b.try_take());
/// assert!(b.try_take());
/// assert!(!b.try_take()); // empty
/// b.refill();
/// b.refill();
/// assert!(b.try_take()); // two refills = one token
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TokenBucket {
    level_milli: u64,
    capacity_milli: u64,
    refill_permille: u64,
}

impl TokenBucket {
    /// Creates a bucket holding at most `capacity` tokens, starting full,
    /// gaining `refill_permille` milli-tokens per [`TokenBucket::refill`].
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or `refill_permille` exceeds 1000.
    pub fn new(capacity: u64, refill_permille: u64) -> Self {
        assert!(capacity > 0, "token bucket capacity must be positive");
        assert!(
            refill_permille <= 1000,
            "refill rate above one token per arrival defeats the budget"
        );
        Self {
            level_milli: capacity * 1000,
            capacity_milli: capacity * 1000,
            refill_permille,
        }
    }

    /// Credits one fresh-arrival's worth of refill, saturating at capacity.
    #[inline]
    pub fn refill(&mut self) {
        self.level_milli = (self.level_milli + self.refill_permille).min(self.capacity_milli);
    }

    /// Spends one token if available; returns whether it was.
    #[inline]
    pub fn try_take(&mut self) -> bool {
        if self.level_milli >= 1000 {
            self.level_milli -= 1000;
            true
        } else {
            false
        }
    }

    /// Current level in milli-tokens (for digests and diagnostics).
    pub fn level_milli(&self) -> u64 {
        self.level_milli
    }
}

/// A two-watermark hysteresis gate: engages at or above `high`, releases
/// only at or below `low`, so a signal oscillating between the watermarks
/// cannot flap the decision.
///
/// # Examples
///
/// ```
/// use sim_core::Hysteresis;
///
/// let mut g = Hysteresis::new(8, 2);
/// assert!(!g.observe(7)); // below high: stays released
/// assert!(g.observe(8));  // engages
/// assert!(g.observe(5));  // between the watermarks: stays engaged
/// assert!(!g.observe(2)); // at low: releases
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hysteresis {
    high: usize,
    low: usize,
    engaged: bool,
}

impl Hysteresis {
    /// Creates a released gate with the given watermarks.
    ///
    /// # Panics
    ///
    /// Panics if `low > high`.
    pub fn new(high: usize, low: usize) -> Self {
        assert!(low <= high, "hysteresis low watermark must not exceed high");
        Self {
            high,
            low,
            engaged: false,
        }
    }

    /// Feeds one occupancy sample; returns the gate state after it.
    #[inline]
    pub fn observe(&mut self, occupancy: usize) -> bool {
        if occupancy >= self.high {
            self.engaged = true;
        } else if occupancy <= self.low {
            self.engaged = false;
        }
        self.engaged
    }

    /// Whether the gate is currently engaged (shedding).
    pub fn engaged(&self) -> bool {
        self.engaged
    }
}

/// A sliding-window event counter over `Cycle` time: how many events were
/// recorded in the trailing `window` cycles.
///
/// The thrash detector feeds refault events (a fault on a recently evicted
/// page) into one of these and gates on the windowed count, so a burst of
/// refaults engages the gate while ancient history ages out. Events are
/// kept exactly (a deque of timestamps pruned on every operation), which
/// keeps the count deterministic and replayable; memory is bounded by the
/// number of events inside one window.
///
/// # Examples
///
/// ```
/// use sim_core::WindowedCount;
///
/// let mut w = WindowedCount::new(100);
/// w.record(10);
/// w.record(50);
/// assert_eq!(w.count(60), 2);
/// assert_eq!(w.count(111), 1); // the event at 10 aged out
/// assert_eq!(w.count(151), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowedCount {
    window: Cycle,
    events: std::collections::VecDeque<Cycle>,
}

impl WindowedCount {
    /// Creates an empty counter with the given window length in cycles.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: Cycle) -> Self {
        assert!(window > 0, "windowed counter needs a positive window");
        Self {
            window,
            events: std::collections::VecDeque::new(),
        }
    }

    fn prune(&mut self, now: Cycle) {
        let cutoff = now.saturating_sub(self.window);
        while self.events.front().is_some_and(|&t| t <= cutoff) {
            self.events.pop_front();
        }
    }

    /// Records one event at `now`. Events must be fed in non-decreasing
    /// time order (simulation time is monotone).
    pub fn record(&mut self, now: Cycle) {
        debug_assert!(
            self.events.back().is_none_or(|&t| t <= now),
            "windowed counter fed out of order"
        );
        self.prune(now);
        self.events.push_back(now);
    }

    /// Events recorded in `(now - window, now]`, pruning aged-out entries.
    pub fn count(&mut self, now: Cycle) -> usize {
        self.prune(now);
        self.events.len()
    }

    /// The retained event timestamps, oldest first (digests, diagnostics).
    pub fn iter(&self) -> impl Iterator<Item = Cycle> + '_ {
        self.events.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_then_caps() {
        let b = ExponentialBackoff::new(100, 1_000);
        assert_eq!(b.raw_delay(0), 100);
        assert_eq!(b.raw_delay(1), 200);
        assert_eq!(b.raw_delay(3), 800);
        assert_eq!(b.raw_delay(4), 1_000);
        assert_eq!(b.raw_delay(63), 1_000);
        assert_eq!(b.raw_delay(200), 1_000);
    }

    #[test]
    fn backoff_jitter_stays_in_window_and_is_deterministic() {
        let b = ExponentialBackoff::new(1_000, 64_000);
        let mut a = SimRng::new(9);
        let mut c = SimRng::new(9);
        for attempt in 0..8 {
            let raw = b.raw_delay(attempt);
            let d = b.delay(attempt, &mut a);
            assert!(d >= raw / 2 && d <= raw, "attempt {attempt}: {d} vs {raw}");
            assert_eq!(d, b.delay(attempt, &mut c), "same seed, same jitter");
        }
    }

    #[test]
    #[should_panic(expected = "base must be positive")]
    fn backoff_rejects_zero_base() {
        let _ = ExponentialBackoff::new(0, 10);
    }

    #[test]
    fn bucket_starts_full_and_refills_fractionally() {
        let mut b = TokenBucket::new(3, 250);
        assert!(b.try_take());
        assert!(b.try_take());
        assert!(b.try_take());
        assert!(!b.try_take());
        for _ in 0..3 {
            b.refill();
        }
        assert!(!b.try_take(), "750 milli-tokens is not a whole token");
        b.refill();
        assert!(b.try_take(), "four refills at 250 permille fund one retry");
    }

    #[test]
    fn bucket_saturates_at_capacity() {
        let mut b = TokenBucket::new(1, 1000);
        for _ in 0..100 {
            b.refill();
        }
        assert!(b.try_take());
        assert!(!b.try_take(), "capacity caps hoarding at one token");
    }

    #[test]
    fn hysteresis_does_not_flap_between_watermarks() {
        let mut g = Hysteresis::new(10, 4);
        assert!(!g.observe(9));
        assert!(g.observe(10));
        for occ in [9, 5, 8, 6] {
            assert!(g.observe(occ), "must hold while above low ({occ})");
        }
        assert!(!g.observe(4));
        assert!(!g.observe(9), "re-engages only at high");
        assert!(g.observe(11));
    }

    #[test]
    fn hysteresis_equal_watermarks_degenerate_to_threshold() {
        let mut g = Hysteresis::new(5, 5);
        assert!(!g.observe(4));
        assert!(g.observe(5), "high wins the tie");
        assert!(!g.observe(4), "releases strictly below the watermark");
    }

    #[test]
    fn windowed_count_ages_events_out() {
        let mut w = WindowedCount::new(100);
        assert_eq!(w.count(0), 0);
        w.record(10);
        w.record(10);
        w.record(90);
        assert_eq!(w.count(90), 3);
        assert_eq!(w.count(110), 1, "events at 10 aged out at 110");
        assert_eq!(w.iter().collect::<Vec<_>>(), vec![90]);
        assert_eq!(w.count(189), 1, "boundary: 90 is still inside (189-100, 189]");
        assert_eq!(w.count(190), 0, "boundary: 90 falls out of (190-100, 190]");
    }

    #[test]
    fn windowed_count_record_prunes_too() {
        let mut w = WindowedCount::new(10);
        for t in [0u64, 5, 20] {
            w.record(t);
        }
        assert_eq!(w.iter().collect::<Vec<_>>(), vec![20], "record pruned stale");
    }

    #[test]
    #[should_panic(expected = "positive window")]
    fn windowed_count_rejects_zero_window() {
        let _ = WindowedCount::new(0);
    }
}
