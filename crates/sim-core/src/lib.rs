//! Deterministic discrete-event simulation kernel.
//!
//! This crate provides the building blocks shared by every simulated
//! component in the Trans-FW reproduction:
//!
//! * [`Cycle`] — simulation time, measured in GPU core cycles.
//! * [`EventQueue`] — a stable (FIFO-on-tie) binary-heap event calendar.
//! * [`SimRng`] — a small, fast, seedable PRNG (xoshiro256**) so every
//!   simulation run is reproducible from a single `u64` seed.
//! * [`stats`] — counters, mean accumulators and power-of-two histograms used
//!   for the paper's latency-breakdown figures.
//!
//! # Examples
//!
//! ```
//! use sim_core::{EventQueue, Cycle};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Ping, Pong }
//!
//! let mut q = EventQueue::new();
//! q.push(10, Ev::Pong);
//! q.push(5, Ev::Ping);
//! assert_eq!(q.pop(), Some((5, Ev::Ping)));
//! assert_eq!(q.pop(), Some((10, Ev::Pong)));
//! assert!(q.is_empty());
//! ```

pub mod checkpoint;
pub mod counterexample;
pub mod det;
pub mod error;
pub mod fault;
pub mod migration;
pub mod overload;
pub mod queue;
pub mod rng;
pub mod stats;

pub use checkpoint::{CheckpointLog, EpochCheckpoint, StateDigest};
pub use counterexample::Counterexample;
pub use det::{DetMap, DetSet};
pub use error::SimError;
pub use fault::{ComponentEvent, FaultInjector, FaultPlan, InjectStats, MessageFate};
pub use migration::{MigrationEvent, MigrationKind, MigrationLog};
pub use overload::{ExponentialBackoff, Hysteresis, TokenBucket, WindowedCount};
pub use queue::EventQueue;
pub use rng::SimRng;

/// Simulation time in cycles.
///
/// All component latencies in the simulator (TLB lookups, page-table memory
/// accesses, interconnect hops) are expressed in this unit; the baseline
/// clock is the 1.0 GHz CU clock from Table II of the paper.
pub type Cycle = u64;
