//! Seeded, deterministic fault injection.
//!
//! A [`FaultPlan`] declares *what* can go wrong — interconnect message
//! drops/delays/duplication, page-walker stalls, stale PRT/FT filter
//! entries, host-MMU overload bursts — and a [`FaultInjector`] turns the
//! plan into concrete, reproducible decisions. The injector owns its own
//! [`SimRng`] stream (derived from the plan's seed, independent of the
//! simulator's RNG), so enabling a plan never perturbs the fault-free
//! random sequence and two runs with the same plan make identical
//! decisions.
//!
//! An empty ([`FaultPlan::none`]) plan makes the injector inert: it draws
//! no random numbers and injects nothing, which is what keeps fault-free
//! runs bit-identical to a build without the resilience layer.

use crate::{Cycle, SimRng};

/// A scheduled component-level failure: unlike the probabilistic message
/// and walker faults, these fire at a declared cycle and (for the windowed
/// kinds) heal after a declared duration, so a recovery protocol can be
/// exercised deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComponentEvent {
    /// GPU `gpu` drops off the fabric at `at_cycle` and rejoins after
    /// `duration` cycles. Its in-flight walks must be drained or re-issued,
    /// FT entries keyed to it invalidated, page ownership migrated to
    /// survivors, and its PRT flushed; on rejoin the PRT is rebuilt from
    /// the directory.
    GpuOffline {
        /// Index of the failing GPU.
        gpu: usize,
        /// Cycle at which the GPU goes offline.
        at_cycle: Cycle,
        /// Cycles until it rejoins (must be positive: a GPU that never
        /// rejoins would strand the compute work deferred to its rejoin).
        duration: Cycle,
    },
    /// The direct peer link between GPUs `a` and `b` is severed for the
    /// window `[at_cycle, at_cycle + duration)`; traffic between them must
    /// be rerouted via the reliable host path.
    LinkPartition {
        /// One endpoint of the partitioned link.
        a: usize,
        /// The other endpoint.
        b: usize,
        /// Cycle at which the partition starts.
        at_cycle: Cycle,
        /// Length of the partition window (0 = permanent).
        duration: Cycle,
    },
    /// The host MMU stops dispatching walks for `stall` cycles starting at
    /// `at_cycle` (failover to a standby walker complex); arrivals keep
    /// queueing under the bounded admission control of the PW-queue.
    HostMmuFailover {
        /// Cycle at which the host MMU stalls.
        at_cycle: Cycle,
        /// Length of the stall.
        stall: Cycle,
    },
}

impl ComponentEvent {
    /// Cycle at which the event fires.
    pub fn at_cycle(&self) -> Cycle {
        match *self {
            ComponentEvent::GpuOffline { at_cycle, .. }
            | ComponentEvent::LinkPartition { at_cycle, .. }
            | ComponentEvent::HostMmuFailover { at_cycle, .. } => at_cycle,
        }
    }
}

/// Declarative description of the faults to inject into one run.
///
/// All probabilities are per-decision in `[0, 1]`; the default plan is
/// all-zero (no faults).
///
/// # Examples
///
/// ```
/// use sim_core::fault::{FaultPlan, FaultInjector, MessageFate};
///
/// let plan = FaultPlan { message_drop_prob: 1.0, ..FaultPlan::none() };
/// let mut inj = FaultInjector::new(plan);
/// assert!(inj.active());
/// assert_eq!(inj.message_fate(), MessageFate::Drop);
/// assert_eq!(inj.stats().messages_dropped, 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the injector's private RNG stream.
    pub seed: u64,
    /// Probability a protocol message is silently dropped in the fabric.
    pub message_drop_prob: f64,
    /// Probability a protocol message is delayed by [`Self::message_delay_cycles`].
    pub message_delay_prob: f64,
    /// Extra latency applied to delayed messages.
    pub message_delay_cycles: Cycle,
    /// Probability a protocol message is delivered twice.
    pub message_duplicate_prob: f64,
    /// Probability a page-table walk stalls for [`Self::walker_stall_cycles`]
    /// extra cycles (DRAM contention, ECC retries).
    pub walker_stall_prob: f64,
    /// Extra walk latency on a stall.
    pub walker_stall_cycles: Cycle,
    /// Probability a PRT/FT maintenance update (page arrival/departure,
    /// owner change) is lost, leaving a stale filter entry.
    pub table_update_drop_prob: f64,
    /// Garbage fingerprints pre-inserted into each PRT and the FT before
    /// the run: models stale entries accumulated before this run's window
    /// and, when large, forces the Cuckoo-filter overflow stash into play.
    pub table_pollution: usize,
    /// Host-MMU overload bursts: period of the burst cycle (0 disables).
    pub host_burst_period: Cycle,
    /// Length of the overloaded window at the start of each period.
    pub host_burst_len: Cycle,
    /// Extra host-walk latency while inside a burst window.
    pub host_burst_extra: Cycle,
    /// Scheduled component-level failures (GPU offline, link partition,
    /// host-MMU failover). Empty by default.
    pub component_events: Vec<ComponentEvent>,
}

impl FaultPlan {
    /// The empty plan: inject nothing.
    pub fn none() -> Self {
        Self {
            seed: 0xFA_07,
            message_drop_prob: 0.0,
            message_delay_prob: 0.0,
            message_delay_cycles: 0,
            message_duplicate_prob: 0.0,
            walker_stall_prob: 0.0,
            walker_stall_cycles: 0,
            table_update_drop_prob: 0.0,
            table_pollution: 0,
            host_burst_period: 0,
            host_burst_len: 0,
            host_burst_extra: 0,
            component_events: Vec::new(),
        }
    }

    /// A plan whose only faults are the given scheduled component events.
    pub fn components(events: Vec<ComponentEvent>) -> Self {
        Self { component_events: events, ..Self::none() }
    }

    /// A plan that drops `p` of protocol messages (the acceptance scenario:
    /// `FaultPlan::message_loss(seed, 0.01)` loses 1% of remote-lookup and
    /// forwarding traffic).
    pub fn message_loss(seed: u64, p: f64) -> Self {
        Self { seed, message_drop_prob: p, ..Self::none() }
    }

    /// A general interconnect-chaos plan: drop, delay and duplicate.
    pub fn message_chaos(seed: u64, p: f64, delay_cycles: Cycle) -> Self {
        Self {
            seed,
            message_drop_prob: p,
            message_delay_prob: p,
            message_delay_cycles: delay_cycles,
            message_duplicate_prob: p,
            ..Self::none()
        }
    }

    /// Whether any fault can ever be injected under this plan.
    pub fn is_active(&self) -> bool {
        self.message_drop_prob > 0.0
            || self.message_delay_prob > 0.0
            || self.message_duplicate_prob > 0.0
            || self.walker_stall_prob > 0.0
            || self.table_update_drop_prob > 0.0
            || self.table_pollution > 0
            || (self.host_burst_period > 0 && self.host_burst_len > 0 && self.host_burst_extra > 0)
            || !self.component_events.is_empty()
    }

    /// Whether the plan perturbs the PRT/FT filters themselves (stale
    /// entries or pollution) — consumers relax filter-accuracy invariants
    /// when this holds.
    pub fn perturbs_tables(&self) -> bool {
        self.table_update_drop_prob > 0.0 || self.table_pollution > 0
    }

    /// Validates the plan's probabilities and burst geometry.
    pub fn validate(&self) -> Result<(), crate::SimError> {
        for (name, p) in [
            ("message_drop_prob", self.message_drop_prob),
            ("message_delay_prob", self.message_delay_prob),
            ("message_duplicate_prob", self.message_duplicate_prob),
            ("walker_stall_prob", self.walker_stall_prob),
            ("table_update_drop_prob", self.table_update_drop_prob),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(crate::SimError::Config(format!("{name} = {p} not in [0, 1]")));
            }
        }
        if self.host_burst_period > 0 && self.host_burst_len > self.host_burst_period {
            return Err(crate::SimError::Config(format!(
                "host_burst_len {} exceeds host_burst_period {}",
                self.host_burst_len, self.host_burst_period
            )));
        }
        for ev in &self.component_events {
            match *ev {
                ComponentEvent::LinkPartition { a, b, .. } if a == b => {
                    return Err(crate::SimError::Config(format!(
                        "link partition endpoints must differ (got {a}=={b})"
                    )));
                }
                ComponentEvent::GpuOffline { gpu, duration: 0, .. } => {
                    return Err(crate::SimError::Config(format!(
                        "GPU {gpu} offline duration must be positive (it must rejoin)"
                    )));
                }
                ComponentEvent::GpuOffline { .. }
                | ComponentEvent::LinkPartition { .. }
                | ComponentEvent::HostMmuFailover { .. } => {}
            }
        }
        Ok(())
    }

    /// Validates component-event GPU indices against the system's GPU count
    /// (a separate pass because the plan itself does not know the topology).
    pub fn validate_topology(&self, gpu_count: usize) -> Result<(), crate::SimError> {
        for ev in &self.component_events {
            let bad = match *ev {
                ComponentEvent::GpuOffline { gpu, .. } => (gpu >= gpu_count).then_some(gpu),
                ComponentEvent::LinkPartition { a, b, .. } => {
                    [a, b].into_iter().find(|&g| g >= gpu_count)
                }
                ComponentEvent::HostMmuFailover { .. } => None,
            };
            if let Some(g) = bad {
                return Err(crate::SimError::Config(format!(
                    "component event references GPU {g} but the system has {gpu_count} GPU(s)"
                )));
            }
        }
        Ok(())
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

/// What the injector decided to do with one protocol message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessageFate {
    /// Deliver normally.
    Deliver,
    /// Silently drop.
    Drop,
    /// Deliver after the given extra delay.
    Delay(Cycle),
    /// Deliver twice (both copies on time).
    Duplicate,
}

/// Counts of faults actually injected during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectStats {
    /// Protocol messages dropped.
    pub messages_dropped: u64,
    /// Protocol messages delayed.
    pub messages_delayed: u64,
    /// Protocol messages duplicated.
    pub messages_duplicated: u64,
    /// Page-table walks stalled.
    pub walker_stalls: u64,
    /// PRT/FT maintenance updates lost.
    pub table_updates_dropped: u64,
    /// Host walks slowed by an overload burst.
    pub host_burst_walks: u64,
}

impl InjectStats {
    /// Total faults injected.
    pub fn total(&self) -> u64 {
        self.messages_dropped
            .saturating_add(self.messages_delayed)
            .saturating_add(self.messages_duplicated)
            .saturating_add(self.walker_stalls)
            .saturating_add(self.table_updates_dropped)
            .saturating_add(self.host_burst_walks)
    }
}

/// Deterministic fault source driven by a [`FaultPlan`].
///
/// Each decision consumes randomness from a private stream seeded only by
/// the plan, so the same plan yields the same fault schedule regardless of
/// what the simulated system does with its own RNG.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    active: bool,
    rng: SimRng,
    stats: InjectStats,
}

impl FaultInjector {
    /// Builds an injector for `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        let active = plan.is_active();
        let rng = SimRng::new(plan.seed ^ 0x000F_A017_1EC7);
        Self { plan, active, rng, stats: InjectStats::default() }
    }

    /// Whether any fault can ever be injected (false for the empty plan —
    /// in that case no decision consumes randomness).
    pub fn active(&self) -> bool {
        self.active
    }

    /// The plan in force.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Faults injected so far.
    pub fn stats(&self) -> InjectStats {
        self.stats
    }

    /// Decides the fate of one protocol message.
    pub fn message_fate(&mut self) -> MessageFate {
        if !self.active {
            return MessageFate::Deliver;
        }
        let x = self.rng.gen_f64();
        let p_drop = self.plan.message_drop_prob;
        let p_delay = p_drop + self.plan.message_delay_prob;
        let p_dup = p_delay + self.plan.message_duplicate_prob;
        if x < p_drop {
            self.stats.messages_dropped = self.stats.messages_dropped.saturating_add(1);
            MessageFate::Drop
        } else if x < p_delay {
            self.stats.messages_delayed = self.stats.messages_delayed.saturating_add(1);
            MessageFate::Delay(self.plan.message_delay_cycles)
        } else if x < p_dup {
            self.stats.messages_duplicated = self.stats.messages_duplicated.saturating_add(1);
            MessageFate::Duplicate
        } else {
            MessageFate::Deliver
        }
    }

    /// Extra cycles a page-table walk stalls (0 = no stall).
    pub fn walker_stall(&mut self) -> Cycle {
        if self.active
            && self.plan.walker_stall_prob > 0.0
            && self.rng.chance(self.plan.walker_stall_prob)
        {
            self.stats.walker_stalls = self.stats.walker_stalls.saturating_add(1);
            self.plan.walker_stall_cycles
        } else {
            0
        }
    }

    /// Whether to lose one PRT/FT maintenance update (stale-entry fault).
    pub fn drop_table_update(&mut self) -> bool {
        if self.active
            && self.plan.table_update_drop_prob > 0.0
            && self.rng.chance(self.plan.table_update_drop_prob)
        {
            self.stats.table_updates_dropped = self.stats.table_updates_dropped.saturating_add(1);
            true
        } else {
            false
        }
    }

    /// Extra host-walk latency if `now` falls inside an overload burst.
    pub fn host_burst_penalty(&mut self, now: Cycle) -> Cycle {
        let p = self.plan.host_burst_period;
        if self.active && p > 0 && now % p < self.plan.host_burst_len && self.plan.host_burst_extra > 0
        {
            self.stats.host_burst_walks = self.stats.host_burst_walks.saturating_add(1);
            self.plan.host_burst_extra
        } else {
            0
        }
    }

    /// Deterministic garbage keys to pre-insert into a filter (the
    /// `table_pollution` fault). Keys are drawn high above any realistic
    /// workload footprint so they collide with real pages only through
    /// fingerprint aliasing — exactly the stale-entry behaviour under test.
    pub fn pollution_keys(&mut self) -> Vec<u64> {
        let n = self.plan.table_pollution;
        (0..n).map(|_| (1 << 44) + self.rng.gen_range(1 << 40)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_inert() {
        let mut inj = FaultInjector::new(FaultPlan::none());
        assert!(!inj.active());
        let rng_before = format!("{:?}", inj.rng);
        for _ in 0..100 {
            assert_eq!(inj.message_fate(), MessageFate::Deliver);
            assert_eq!(inj.walker_stall(), 0);
            assert!(!inj.drop_table_update());
            assert_eq!(inj.host_burst_penalty(12345), 0);
        }
        assert_eq!(inj.stats(), InjectStats::default());
        assert_eq!(format!("{:?}", inj.rng), rng_before, "inert injector draws no randomness");
    }

    #[test]
    fn same_seed_same_schedule() {
        let plan = FaultPlan::message_chaos(99, 0.2, 500);
        let mut a = FaultInjector::new(plan.clone());
        let mut b = FaultInjector::new(plan);
        for _ in 0..1000 {
            assert_eq!(a.message_fate(), b.message_fate());
        }
        assert_eq!(a.stats(), b.stats());
        assert!(a.stats().total() > 0);
    }

    #[test]
    fn drop_probability_is_roughly_respected() {
        let mut inj = FaultInjector::new(FaultPlan::message_loss(7, 0.1));
        let n = 100_000;
        let dropped = (0..n)
            .filter(|_| inj.message_fate() == MessageFate::Drop)
            .count();
        let rate = dropped as f64 / f64::from(n);
        assert!((rate - 0.1).abs() < 0.01, "drop rate {rate}");
        assert_eq!(inj.stats().messages_dropped, dropped as u64);
    }

    #[test]
    fn fates_partition_probability_mass() {
        let plan = FaultPlan::message_chaos(3, 0.25, 100);
        let mut inj = FaultInjector::new(plan);
        let mut counts = [0u64; 4];
        for _ in 0..40_000 {
            match inj.message_fate() {
                MessageFate::Deliver => counts[0] += 1,
                MessageFate::Drop => counts[1] += 1,
                MessageFate::Delay(c) => {
                    assert_eq!(c, 100);
                    counts[2] += 1;
                }
                MessageFate::Duplicate => counts[3] += 1,
            }
        }
        for (i, &c) in counts.iter().enumerate() {
            let rate = c as f64 / 40_000.0;
            assert!((rate - 0.25).abs() < 0.02, "fate {i} rate {rate}");
        }
    }

    #[test]
    fn walker_stalls_and_table_drops_fire() {
        let plan = FaultPlan {
            walker_stall_prob: 0.5,
            walker_stall_cycles: 200,
            table_update_drop_prob: 0.5,
            ..FaultPlan::none()
        };
        let mut inj = FaultInjector::new(plan);
        let stalls = (0..1000).filter(|_| inj.walker_stall() == 200).count();
        let drops = (0..1000).filter(|_| inj.drop_table_update()).count();
        assert!((400..600).contains(&stalls), "{stalls}");
        assert!((400..600).contains(&drops), "{drops}");
    }

    #[test]
    fn burst_windows_are_periodic() {
        let plan = FaultPlan {
            host_burst_period: 1000,
            host_burst_len: 100,
            host_burst_extra: 50,
            ..FaultPlan::none()
        };
        let mut inj = FaultInjector::new(plan);
        assert_eq!(inj.host_burst_penalty(0), 50);
        assert_eq!(inj.host_burst_penalty(99), 50);
        assert_eq!(inj.host_burst_penalty(100), 0);
        assert_eq!(inj.host_burst_penalty(1005), 50);
        assert_eq!(inj.stats().host_burst_walks, 3);
    }

    #[test]
    fn pollution_keys_are_deterministic_and_high() {
        let plan = FaultPlan { table_pollution: 32, ..FaultPlan::none() };
        let a = FaultInjector::new(plan.clone()).pollution_keys();
        let b = FaultInjector::new(plan).pollution_keys();
        assert_eq!(a, b);
        assert_eq!(a.len(), 32);
        assert!(a.iter().all(|&k| k >= 1 << 44));
    }

    #[test]
    fn validate_rejects_bad_probabilities() {
        let plan = FaultPlan { message_drop_prob: 1.5, ..FaultPlan::none() };
        assert!(plan.validate().is_err());
        let plan = FaultPlan {
            host_burst_period: 10,
            host_burst_len: 20,
            host_burst_extra: 1,
            ..FaultPlan::none()
        };
        assert!(plan.validate().is_err());
        assert!(FaultPlan::none().validate().is_ok());
        assert!(FaultPlan::message_loss(1, 0.01).validate().is_ok());
    }

    #[test]
    fn is_active_covers_every_knob() {
        assert!(!FaultPlan::none().is_active());
        assert!(FaultPlan { message_delay_prob: 0.1, ..FaultPlan::none() }.is_active());
        assert!(FaultPlan { table_pollution: 1, ..FaultPlan::none() }.is_active());
        let burst = FaultPlan {
            host_burst_period: 10,
            host_burst_len: 2,
            host_burst_extra: 5,
            ..FaultPlan::none()
        };
        assert!(burst.is_active());
        assert!(burst.validate().is_ok());
        assert!(!burst.perturbs_tables());
        assert!(FaultPlan { table_update_drop_prob: 0.1, ..FaultPlan::none() }.perturbs_tables());
    }

    #[test]
    fn component_events_activate_but_do_not_perturb_tables() {
        let plan = FaultPlan::components(vec![ComponentEvent::GpuOffline {
            gpu: 1,
            at_cycle: 500,
            duration: 2000,
        }]);
        assert!(plan.is_active());
        assert!(!plan.perturbs_tables(), "recovery must leave tables coherent");
        assert!(plan.validate().is_ok());
        assert_eq!(plan.component_events[0].at_cycle(), 500);
    }

    #[test]
    fn component_event_validation() {
        let degenerate = FaultPlan::components(vec![ComponentEvent::LinkPartition {
            a: 2,
            b: 2,
            at_cycle: 0,
            duration: 10,
        }]);
        assert!(degenerate.validate().is_err());

        let immortal = FaultPlan::components(vec![ComponentEvent::GpuOffline {
            gpu: 0,
            at_cycle: 5,
            duration: 0,
        }]);
        assert!(immortal.validate().is_err(), "offline GPUs must rejoin");

        let plan = FaultPlan::components(vec![
            ComponentEvent::GpuOffline { gpu: 3, at_cycle: 0, duration: 10 },
            ComponentEvent::HostMmuFailover { at_cycle: 5, stall: 100 },
        ]);
        assert!(plan.validate().is_ok());
        assert!(plan.validate_topology(4).is_ok());
        assert!(plan.validate_topology(3).is_err(), "GPU 3 out of range for 3 GPUs");

        let part = FaultPlan::components(vec![ComponentEvent::LinkPartition {
            a: 0,
            b: 5,
            at_cycle: 0,
            duration: 10,
        }]);
        assert!(part.validate_topology(4).is_err());
        assert!(part.validate_topology(6).is_ok());
    }
}
