//! Typed simulation errors.
//!
//! The event loop, protocol handlers and post-run auditors report failures
//! as [`SimError`] values instead of panicking, so a wedged or inconsistent
//! simulation surfaces as a diagnosable `Err` rather than a crash or an
//! infinite spin.

use crate::Cycle;

/// A failure detected while running or auditing a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The configuration is internally inconsistent.
    Config(String),
    /// The liveness watchdog saw outstanding work make no progress for a
    /// whole check interval: the protocol has wedged (e.g. every copy of a
    /// completion message was lost and no fallback fired).
    Livelock {
        /// Cycle at which the watchdog gave up.
        cycle: Cycle,
        /// Translation requests still outstanding.
        outstanding: u64,
    },
    /// The simulation ran past the configured hard cycle cap.
    CycleCapExceeded {
        /// The configured cap.
        cap: Cycle,
        /// Requests still outstanding when the cap was hit.
        outstanding: u64,
    },
    /// A protocol handler observed state that should be unreachable (the
    /// typed replacement for the former `unwrap`/`expect` sites on the hot
    /// path).
    Protocol {
        /// Cycle at which the violation was observed.
        cycle: Cycle,
        /// Human-readable description of the broken expectation.
        what: String,
    },
    /// The post-run invariant auditor found leaked or inconsistent state.
    InvariantViolation(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            SimError::Livelock { cycle, outstanding } => write!(
                f,
                "livelock at cycle {cycle}: {outstanding} outstanding request(s) made no progress"
            ),
            SimError::CycleCapExceeded { cap, outstanding } => write!(
                f,
                "cycle cap {cap} exceeded with {outstanding} outstanding request(s)"
            ),
            SimError::Protocol { cycle, what } => {
                write!(f, "protocol violation at cycle {cycle}: {what}")
            }
            SimError::InvariantViolation(msg) => write!(f, "invariant violation: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::Livelock { cycle: 42, outstanding: 3 };
        let s = e.to_string();
        assert!(s.contains("42") && s.contains("3"), "{s}");
        assert!(SimError::Config("x".into()).to_string().contains('x'));
        assert!(SimError::InvariantViolation("leak".into()).to_string().contains("leak"));
        let p = SimError::Protocol { cycle: 7, what: "no stream".into() };
        assert!(p.to_string().contains("no stream"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&SimError::Config("bad".into()));
    }

    #[test]
    fn eq_and_clone() {
        let a = SimError::CycleCapExceeded { cap: 10, outstanding: 1 };
        assert_eq!(a.clone(), a);
        assert_ne!(a, SimError::Config("bad".into()));
    }
}
