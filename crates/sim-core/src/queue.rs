//! A stable binary-heap event calendar.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::Cycle;

/// An event calendar ordered by firing time.
///
/// Events pushed with the same firing time pop in insertion (FIFO) order,
/// which keeps simulations deterministic regardless of heap internals.
///
/// # Examples
///
/// ```
/// use sim_core::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.push(3, "c");
/// q.push(1, "a");
/// q.push(3, "d"); // same time as "c": FIFO order preserved
/// assert_eq!(q.pop(), Some((1, "a")));
/// assert_eq!(q.pop(), Some((3, "c")));
/// assert_eq!(q.pop(), Some((3, "d")));
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    time: Cycle,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Creates an empty queue with room for `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            heap: BinaryHeap::with_capacity(capacity),
            seq: 0,
        }
    }

    /// Schedules `event` to fire at absolute time `time`.
    pub fn push(&mut self, time: Cycle, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Returns the firing time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the calendar holds no events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Discards all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, 3);
        q.push(10, 1);
        q.push(20, 2);
        assert_eq!(q.pop(), Some((10, 1)));
        assert_eq!(q.pop(), Some((20, 2)));
        assert_eq!(q.pop(), Some((30, 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(7, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((7, i)));
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(5, "x");
        assert_eq!(q.peek_time(), Some(5));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((5, "x")));
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn clear_empties() {
        let mut q = EventQueue::new();
        q.push(1, ());
        q.push(2, ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(10, "b");
        q.push(5, "a");
        assert_eq!(q.pop(), Some((5, "a")));
        q.push(7, "a2");
        q.push(20, "c");
        assert_eq!(q.pop(), Some((7, "a2")));
        assert_eq!(q.pop(), Some((10, "b")));
        assert_eq!(q.pop(), Some((20, "c")));
    }
}
