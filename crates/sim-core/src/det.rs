//! Deterministic collection wrappers for simulator state.
//!
//! `std::collections::HashMap`/`HashSet` randomize their hasher per
//! instance (`RandomState`), so *iteration order* differs between two maps
//! holding identical entries — even inside one process. Any simulator state
//! that iterates such a map (eviction victim selection, draining, digest
//! computation) silently depends on that order and breaks the repo's
//! bit-identical replay guarantees.
//!
//! [`DetMap`] and [`DetSet`] are thin newtypes over `BTreeMap`/`BTreeSet`:
//! iteration order is the key's total order, always, on every run. The
//! `simlint` static-analysis pass (see `crates/simlint` and DESIGN.md,
//! "Static analysis & determinism contract") forbids raw `HashMap`/
//! `HashSet` in sim-state crates; these wrappers are the approved
//! replacement.
//!
//! The API mirrors the `HashMap`/`HashSet` subset the simulator uses, so a
//! migration is a type swap plus (where iteration feeds a decision) an
//! explicit, documented tie-break.
//!
//! # Examples
//!
//! ```
//! use sim_core::det::DetMap;
//!
//! let mut m: DetMap<u64, &str> = DetMap::new();
//! m.insert(3, "c");
//! m.insert(1, "a");
//! // Iteration order is the key order — identical on every run.
//! let keys: Vec<u64> = m.keys().copied().collect();
//! assert_eq!(keys, vec![1, 3]);
//! ```

use std::collections::{btree_map, btree_set, BTreeMap, BTreeSet};

/// A map with deterministic (key-ordered) iteration.
///
/// Drop-in replacement for the `HashMap` subset the simulator uses; keys
/// must be `Ord` instead of `Hash`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetMap<K, V> {
    inner: BTreeMap<K, V>,
}

impl<K: Ord, V> DetMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self { inner: BTreeMap::new() }
    }

    /// Creates an empty map; the capacity hint is accepted for call-site
    /// compatibility with `HashMap::with_capacity` but ignored (B-trees
    /// allocate per node).
    pub fn with_capacity(_capacity: usize) -> Self {
        Self::new()
    }

    /// Inserts `value` at `key`, returning the previous value if present.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        self.inner.insert(key, value)
    }

    /// Returns a reference to the value at `key`.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.inner.get(key)
    }

    /// Returns a mutable reference to the value at `key`.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        self.inner.get_mut(key)
    }

    /// Removes and returns the value at `key`.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        self.inner.remove(key)
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.inner.contains_key(key)
    }

    /// Gets the entry at `key` for in-place manipulation.
    pub fn entry(&mut self, key: K) -> btree_map::Entry<'_, K, V> {
        self.inner.entry(key)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// Key-ordered iterator over entries.
    pub fn iter(&self) -> btree_map::Iter<'_, K, V> {
        self.inner.iter()
    }

    /// Key-ordered iterator with mutable values.
    pub fn iter_mut(&mut self) -> btree_map::IterMut<'_, K, V> {
        self.inner.iter_mut()
    }

    /// Key-ordered iterator over keys.
    pub fn keys(&self) -> btree_map::Keys<'_, K, V> {
        self.inner.keys()
    }

    /// Key-ordered iterator over values.
    pub fn values(&self) -> btree_map::Values<'_, K, V> {
        self.inner.values()
    }

    /// Key-ordered iterator over mutable values.
    pub fn values_mut(&mut self) -> btree_map::ValuesMut<'_, K, V> {
        self.inner.values_mut()
    }

    /// Keeps only the entries for which `f` returns true.
    pub fn retain(&mut self, f: impl FnMut(&K, &mut V) -> bool) {
        self.inner.retain(f);
    }
}

impl<K: Ord, V> Default for DetMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord, V> FromIterator<(K, V)> for DetMap<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        Self { inner: iter.into_iter().collect() }
    }
}

impl<K: Ord, V> IntoIterator for DetMap<K, V> {
    type Item = (K, V);
    type IntoIter = btree_map::IntoIter<K, V>;

    fn into_iter(self) -> Self::IntoIter {
        self.inner.into_iter()
    }
}

impl<'a, K: Ord, V> IntoIterator for &'a DetMap<K, V> {
    type Item = (&'a K, &'a V);
    type IntoIter = btree_map::Iter<'a, K, V>;

    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

/// A set with deterministic (element-ordered) iteration.
///
/// Drop-in replacement for the `HashSet` subset the simulator uses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetSet<T> {
    inner: BTreeSet<T>,
}

impl<T: Ord> DetSet<T> {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self { inner: BTreeSet::new() }
    }

    /// Inserts `value`; returns whether it was newly inserted.
    pub fn insert(&mut self, value: T) -> bool {
        self.inner.insert(value)
    }

    /// Removes `value`; returns whether it was present.
    pub fn remove(&mut self, value: &T) -> bool {
        self.inner.remove(value)
    }

    /// Whether `value` is present.
    pub fn contains(&self, value: &T) -> bool {
        self.inner.contains(value)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Removes every element.
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// Ordered iterator over elements.
    pub fn iter(&self) -> btree_set::Iter<'_, T> {
        self.inner.iter()
    }
}

impl<T: Ord> Default for DetSet<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Ord> FromIterator<T> for DetSet<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        Self { inner: iter.into_iter().collect() }
    }
}

impl<T: Ord> IntoIterator for DetSet<T> {
    type Item = T;
    type IntoIter = btree_set::IntoIter<T>;

    fn into_iter(self) -> Self::IntoIter {
        self.inner.into_iter()
    }
}

impl<'a, T: Ord> IntoIterator for &'a DetSet<T> {
    type Item = &'a T;
    type IntoIter = btree_set::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_iterates_in_key_order() {
        let mut m = DetMap::new();
        for k in [9u64, 2, 7, 1] {
            m.insert(k, k * 10);
        }
        let keys: Vec<u64> = m.keys().copied().collect();
        assert_eq!(keys, vec![1, 2, 7, 9]);
        let vals: Vec<u64> = m.values().copied().collect();
        assert_eq!(vals, vec![10, 20, 70, 90]);
    }

    #[test]
    fn map_basic_ops_mirror_hashmap() {
        let mut m: DetMap<u32, &str> = DetMap::with_capacity(16);
        assert!(m.is_empty());
        assert_eq!(m.insert(1, "a"), None);
        assert_eq!(m.insert(1, "b"), Some("a"));
        assert_eq!(m.get(&1), Some(&"b"));
        *m.entry(2).or_insert("c") = "d";
        assert_eq!(m.len(), 2);
        assert!(m.contains_key(&2));
        assert_eq!(m.remove(&2), Some("d"));
        assert_eq!(m.remove(&2), None);
        m.clear();
        assert!(m.is_empty());
    }

    #[test]
    fn map_retain_and_collect() {
        let m: DetMap<u32, u32> = (0..10).map(|k| (k, k)).collect();
        let mut m = m;
        m.retain(|&k, _| k % 2 == 0);
        assert_eq!(m.len(), 5);
        let pairs: Vec<(u32, u32)> = m.into_iter().collect();
        assert_eq!(pairs[0], (0, 0));
        assert_eq!(pairs[4], (8, 8));
    }

    #[test]
    fn set_is_ordered_and_deduplicates() {
        let mut s = DetSet::new();
        assert!(s.insert(5u64));
        assert!(s.insert(1));
        assert!(!s.insert(5));
        assert!(s.contains(&1));
        let v: Vec<u64> = s.iter().copied().collect();
        assert_eq!(v, vec![1, 5]);
        assert!(s.remove(&1));
        assert!(!s.remove(&1));
        assert_eq!(s.len(), 1);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn two_identically_filled_maps_iterate_identically() {
        // The property HashMap lacks: equal contents => equal order.
        let a: DetMap<u64, u64> = [(3, 0), (1, 0), (2, 0)].into_iter().collect();
        let b: DetMap<u64, u64> = [(2, 0), (3, 0), (1, 0)].into_iter().collect();
        let ka: Vec<u64> = a.keys().copied().collect();
        let kb: Vec<u64> = b.keys().copied().collect();
        assert_eq!(ka, kb);
    }
}
