//! Minimized model-checker counterexamples: a violated invariant plus the
//! linear action trace that reproduces it, in a line-oriented text format
//! stable enough to check into a regression suite and replay
//! deterministically.

use crate::checkpoint::StateDigest;

/// A linear counterexample trace: the invariant it violates and the
/// encoded protocol actions, in order, that reproduce the violation from
/// the initial state of the configuration it was found on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    /// The violated invariant, `tag: detail` (the tag before the first
    /// `:` keys the minimizer and the regression assertions).
    pub invariant: String,
    /// Encoded actions, one step per entry.
    pub steps: Vec<String>,
}

impl Counterexample {
    /// The invariant tag (everything before the first `:`).
    pub fn tag(&self) -> &str {
        self.invariant.split(':').next().unwrap_or("").trim()
    }

    /// Serializes to the line-oriented text format:
    ///
    /// ```text
    /// invariant: <tag: detail>
    /// steps: <n>
    ///   <action token>
    ///   ...
    /// ```
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("invariant: ");
        out.push_str(&self.invariant);
        out.push('\n');
        out.push_str(&format!("steps: {}\n", self.steps.len()));
        for s in &self.steps {
            out.push_str("  ");
            out.push_str(s);
            out.push('\n');
        }
        out
    }

    /// Parses the [`to_text`](Self::to_text) format.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        let invariant = lines
            .next()
            .and_then(|l| l.strip_prefix("invariant: "))
            .ok_or("missing `invariant:` header")?
            .to_string();
        let count: usize = lines
            .next()
            .and_then(|l| l.strip_prefix("steps: "))
            .ok_or("missing `steps:` header")?
            .trim()
            .parse()
            .map_err(|e| format!("bad step count: {e}"))?;
        let steps: Vec<String> = lines
            .filter(|l| !l.trim().is_empty())
            .map(|l| l.trim().to_string())
            .collect();
        if steps.len() != count {
            return Err(format!(
                "step count mismatch: header says {count}, found {}",
                steps.len()
            ));
        }
        Ok(Self { invariant, steps })
    }

    /// A 64-bit digest of the trace (used to assert a replayed trace is
    /// the same trace).
    pub fn digest(&self) -> u64 {
        let mut d = StateDigest::new();
        d.mix_str(&self.invariant);
        for s in &self.steps {
            d.mix_str(s);
        }
        d.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let ce = Counterexample {
            invariant: "retire-exactly-once: req 1 retired 2 times".to_string(),
            steps: vec!["issue 0".into(), "host-arrive 0 fwd=1".into(), "reply 0".into()],
        };
        let text = ce.to_text();
        let back = Counterexample::from_text(&text).expect("parses");
        assert_eq!(back, ce);
        assert_eq!(back.digest(), ce.digest());
        assert_eq!(ce.tag(), "retire-exactly-once");
    }

    #[test]
    fn rejects_malformed() {
        assert!(Counterexample::from_text("nope").is_err());
        assert!(Counterexample::from_text("invariant: x\nsteps: 2\n  issue 0\n").is_err());
    }
}
