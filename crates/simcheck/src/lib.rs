//! simcheck: exhaustive small-scope model checking for the Trans-FW
//! forwarding protocol.
//!
//! The checker explores *every* interleaving of protocol steps on a tiny
//! configuration (2–3 GPUs, 2–4 pages, 1–2 in-flight requests per GPU)
//! of [`mgpu::protocol::model::ProtocolState`] — an abstract model built
//! on the *same* shared transition functions the cycle-accurate simulator
//! executes — and checks the protocol's safety invariants at every step:
//!
//! * **retire-exactly-once** — no interleaving of replies, remote
//!   supplies and failure re-issues retires a request twice;
//! * **stale-translation** — a retired translation is backed by the
//!   directory (resident, or a registered remote map);
//! * **table-agreement** — at quiescence the host PT, the FT owner sets
//!   and the PRT supports all agree with the page directory;
//! * **txn-atomicity** — an ownership commit leaves no stale PTE behind
//!   and never corrupts walker accounting;
//! * **deadlock** (liveness under fairness) — every terminal state has
//!   all requests retired.
//!
//! Exploration is breadth-first with state-digest deduplication and a
//! sound partial-order reduction (pure *absorb* actions — guarded
//! duplicate deliveries that provably commute with everything — are
//! expanded alone). A violation is reported as a minimized linear
//! [`Counterexample`] replayable via [`mgpu::protocol::model::replay`].

use std::collections::VecDeque;

use mgpu::protocol::model::{Action, ModelConfig, ProtocolState};
use sim_core::{Counterexample, DetSet};

/// Exploration budgets.
#[derive(Debug, Clone, Copy)]
pub struct CheckConfig {
    /// Maximum distinct states to visit before giving up.
    pub max_states: usize,
    /// Maximum trace depth (BFS level) before giving up.
    pub max_depth: usize,
}

impl Default for CheckConfig {
    fn default() -> Self {
        Self {
            max_states: 2_000_000,
            max_depth: 512,
        }
    }
}

/// Exploration statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct CheckStats {
    /// Distinct states expanded.
    pub states_explored: usize,
    /// Successor states dropped because their digest was already seen.
    pub states_deduped: usize,
    /// Terminal (no enabled action) states checked for quiescence.
    pub terminal_states: usize,
    /// Successors skipped by the absorb-only partial-order reduction.
    pub por_skipped: usize,
    /// Deepest BFS level reached.
    pub max_depth: usize,
}

/// Result of one exhaustive exploration.
#[derive(Debug, Clone)]
pub enum CheckOutcome {
    /// Every reachable state satisfies every invariant.
    Verified(CheckStats),
    /// An invariant broke; `counterexample` is the minimized trace.
    Violation {
        /// The first violation observed (`tag: detail`).
        invariant: String,
        /// The full (unminimized) trace that first hit the violation.
        trace: Vec<String>,
        /// The greedily minimized trace reproducing the same invariant tag.
        counterexample: Counterexample,
        /// Statistics up to the violation.
        stats: CheckStats,
    },
    /// The state or depth budget ran out before the space was exhausted.
    BudgetExhausted(CheckStats),
}

impl CheckOutcome {
    /// The statistics regardless of verdict.
    pub fn stats(&self) -> &CheckStats {
        match self {
            CheckOutcome::Verified(s) | CheckOutcome::BudgetExhausted(s) => s,
            CheckOutcome::Violation { stats, .. } => stats,
        }
    }

    /// Whether the exploration proved the invariants.
    pub fn is_verified(&self) -> bool {
        matches!(self, CheckOutcome::Verified(_))
    }
}

/// Explores every reachable interleaving of `initial` and checks the
/// safety invariants; on violation, returns a minimized counterexample.
pub fn check(initial: &ProtocolState, cfg: &CheckConfig) -> CheckOutcome {
    let mut stats = CheckStats::default();
    // Parent-pointer node table: id 0 is the root; node id k > 0 records
    // (parent id, action) at nodes[k - 1].
    let mut nodes: Vec<(usize, Action)> = Vec::new();
    let mut visited: DetSet<u64> = DetSet::new();
    visited.insert(initial.digest());
    let mut frontier: VecDeque<(ProtocolState, usize, usize)> = VecDeque::new();
    frontier.push_back((initial.clone(), 0, 0));

    while let Some((st, node, depth)) = frontier.pop_front() {
        stats.states_explored += 1;
        stats.max_depth = stats.max_depth.max(depth);
        let actions = st.enabled_actions();
        if actions.is_empty() {
            stats.terminal_states += 1;
            let mut terminal = st.clone();
            terminal.check_quiescent();
            if let Some(v) = terminal.violations().first() {
                let trace = reconstruct(&nodes, node);
                return violation_outcome(initial, v.clone(), trace, stats);
            }
            continue;
        }
        if depth >= cfg.max_depth {
            return CheckOutcome::BudgetExhausted(stats);
        }
        // Absorb-only POR: when a pure absorb is enabled, expanding it
        // alone is sound (it commutes with every other enabled action and
        // cannot itself violate an invariant — see DESIGN.md).
        let expand: Vec<Action> = match actions.iter().find(|a| st.is_absorbing(a)) {
            Some(&a) => {
                stats.por_skipped += actions.len() - 1;
                vec![a]
            }
            None => actions,
        };
        for a in expand {
            let mut next = st.clone();
            next.apply(&a);
            if let Some(v) = next.violations().first() {
                let mut trace = reconstruct(&nodes, node);
                trace.push(a);
                return violation_outcome(initial, v.clone(), trace, stats);
            }
            if !visited.insert(next.digest()) {
                stats.states_deduped += 1;
                continue;
            }
            if visited.len() > cfg.max_states {
                return CheckOutcome::BudgetExhausted(stats);
            }
            nodes.push((node, a));
            frontier.push_back((next, nodes.len(), depth + 1));
        }
    }
    CheckOutcome::Verified(stats)
}

/// Builds the model for `cfg` and [`check`]s it.
pub fn check_config(cfg: &ModelConfig, check_cfg: &CheckConfig) -> CheckOutcome {
    check(&ProtocolState::new(cfg), check_cfg)
}

fn reconstruct(nodes: &[(usize, Action)], mut id: usize) -> Vec<Action> {
    let mut out = Vec::new();
    while id != 0 {
        let (parent, a) = nodes[id - 1];
        out.push(a);
        id = parent;
    }
    out.reverse();
    out
}

fn violation_outcome(
    initial: &ProtocolState,
    invariant: String,
    trace: Vec<Action>,
    stats: CheckStats,
) -> CheckOutcome {
    let tag = invariant.split(':').next().unwrap_or("").trim().to_string();
    let minimized = minimize(initial, &trace, &tag);
    let counterexample = Counterexample {
        invariant: invariant.clone(),
        steps: minimized.iter().map(Action::encode).collect(),
    };
    CheckOutcome::Violation {
        invariant,
        trace: trace.iter().map(Action::encode).collect(),
        counterexample,
        stats,
    }
}

/// Greedy delta minimization: repeatedly drop single steps as long as the
/// shortened trace still reproduces a violation with the same tag.
pub fn minimize(initial: &ProtocolState, trace: &[Action], tag: &str) -> Vec<Action> {
    let mut cur: Vec<Action> = trace.to_vec();
    loop {
        let mut shrunk = false;
        let mut i = 0;
        while i < cur.len() {
            let mut cand = cur.clone();
            cand.remove(i);
            if reproduces(initial, &cand, tag) {
                cur = cand;
                shrunk = true;
            } else {
                i += 1;
            }
        }
        if !shrunk {
            return cur;
        }
    }
}

/// Whether replaying `actions` from `initial` hits a violation whose tag
/// matches `tag` (checking quiescence if the trace ends terminal).
pub fn reproduces(initial: &ProtocolState, actions: &[Action], tag: &str) -> bool {
    let mut st = initial.clone();
    for a in actions {
        if !st.enabled_actions().contains(a) {
            return false;
        }
        st.apply(a);
        if st.violations().iter().any(|v| v.starts_with(tag)) {
            return true;
        }
    }
    if st.enabled_actions().is_empty() {
        st.check_quiescent();
        return st.violations().iter().any(|v| v.starts_with(tag));
    }
    false
}
