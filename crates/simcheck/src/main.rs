//! CLI for the exhaustive protocol model checker.
//!
//! With no arguments, verifies the standard small-scope certificate: the
//! 2-GPU / 3-VPN / 2-in-flight configuration under all four placement
//! policies, a component-failure configuration (GPU0 may be evicted and
//! rejoin at any interleaving point), and a capacity-eviction
//! configuration (any GPU over one resident page may evict an unpinned
//! victim at any point). Exits non-zero on a violation or an exhausted
//! budget, printing the minimized counterexample.

use std::time::Instant; // simlint::allow(det-wallclock): harness timing only

use mgpu::protocol::model::{ModelConfig, ProtocolState};
use simcheck::{check, CheckConfig, CheckOutcome};
use uvm::PolicyKind;

fn policy_by_name(name: &str) -> Option<PolicyKind> {
    match name {
        "first-touch" => Some(PolicyKind::FirstTouch),
        "delayed-migration" => Some(PolicyKind::DelayedMigration { threshold: 2 }),
        "read-duplicate" => Some(PolicyKind::ReadDuplicate),
        "prefetch" => Some(PolicyKind::PrefetchNeighborhood { radius: 1 }),
        // simlint::allow(protocol-exhaustive): scrutinee is a CLI string
        _ => None,
    }
}

fn policy_name(p: PolicyKind) -> &'static str {
    match p {
        PolicyKind::FirstTouch => "first-touch",
        PolicyKind::DelayedMigration { .. } => "delayed-migration",
        PolicyKind::ReadDuplicate => "read-duplicate",
        PolicyKind::PrefetchNeighborhood { .. } => "prefetch",
    }
}

struct Args {
    gpus: u16,
    vpns: u64,
    inflight: usize,
    policy: Option<PolicyKind>,
    budget: usize,
    failure: Option<u16>,
    capacity: Option<usize>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        gpus: 2,
        vpns: 3,
        inflight: 2,
        policy: None,
        budget: CheckConfig::default().max_states,
        failure: None,
        capacity: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--gpus" => args.gpus = val("--gpus")?.parse().map_err(|e| format!("--gpus: {e}"))?,
            "--vpns" => args.vpns = val("--vpns")?.parse().map_err(|e| format!("--vpns: {e}"))?,
            "--inflight" => {
                args.inflight = val("--inflight")?.parse().map_err(|e| format!("--inflight: {e}"))?;
            }
            "--policy" => {
                let name = val("--policy")?;
                args.policy =
                    Some(policy_by_name(&name).ok_or_else(|| format!("unknown policy {name:?}"))?);
            }
            "--budget" => {
                args.budget = val("--budget")?.parse().map_err(|e| format!("--budget: {e}"))?;
            }
            "--failure" => {
                args.failure =
                    Some(val("--failure")?.parse().map_err(|e| format!("--failure: {e}"))?);
            }
            "--capacity" => {
                args.capacity =
                    Some(val("--capacity")?.parse().map_err(|e| format!("--capacity: {e}"))?);
            }
            "--help" | "-h" => {
                println!(
                    "usage: simcheck [--gpus N] [--vpns N] [--inflight N] \
                     [--policy first-touch|delayed-migration|read-duplicate|prefetch] \
                     [--budget STATES] [--failure GPU] [--capacity PAGES]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

/// Runs one configuration and reports; returns whether it verified.
fn run_one(label: &str, cfg: &ModelConfig, check_cfg: &CheckConfig) -> bool {
    // simlint::allow(det-wallclock): harness timing only
    let start = Instant::now();
    let outcome = check(&ProtocolState::new(cfg), check_cfg);
    let ms = start.elapsed().as_millis();
    let s = outcome.stats();
    match &outcome {
        CheckOutcome::Verified(_) => {
            println!(
                "VERIFIED  {label}: {} states, {} terminal, {} deduped, {} POR-skipped, depth {}, {ms} ms",
                s.states_explored, s.terminal_states, s.states_deduped, s.por_skipped, s.max_depth
            );
            true
        }
        CheckOutcome::Violation {
            invariant,
            counterexample,
            trace,
            ..
        } => {
            println!("VIOLATION {label}: {invariant}");
            println!(
                "  found after {} states ({} full steps, minimized to {}):",
                s.states_explored,
                trace.len(),
                counterexample.steps.len()
            );
            for step in &counterexample.steps {
                println!("    {step}");
            }
            false
        }
        CheckOutcome::BudgetExhausted(_) => {
            println!(
                "BUDGET    {label}: gave up after {} states (budget {}), depth {}",
                s.states_explored, check_cfg.max_states, s.max_depth
            );
            false
        }
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("simcheck: {e}");
            std::process::exit(2);
        }
    };
    let check_cfg = CheckConfig {
        max_states: args.budget,
        ..CheckConfig::default()
    };
    let mut ok = true;
    if let Some(policy) = args.policy {
        let mut cfg = ModelConfig::small(args.gpus, args.vpns, args.inflight, policy);
        if let Some(g) = args.failure {
            cfg = cfg.with_failure(g);
        }
        if let Some(pages) = args.capacity {
            cfg = cfg.with_capacity(pages);
        }
        ok &= run_one(policy_name(policy), &cfg, &check_cfg);
    } else {
        // The standard certificate: all four policies, then the failure
        // dimension (one in-flight request per GPU keeps it tractable).
        for policy in [
            PolicyKind::FirstTouch,
            PolicyKind::DelayedMigration { threshold: 2 },
            PolicyKind::ReadDuplicate,
            PolicyKind::PrefetchNeighborhood { radius: 1 },
        ] {
            let cfg = ModelConfig::small(args.gpus, args.vpns, args.inflight, policy);
            ok &= run_one(policy_name(policy), &cfg, &check_cfg);
        }
        let failure = ModelConfig::small(args.gpus, args.vpns, 1, PolicyKind::FirstTouch)
            .with_failure(args.failure.unwrap_or(0));
        ok &= run_one("first-touch+failure", &failure, &check_cfg);
        // The oversubscription certificate: every GPU over one resident page
        // may shed any unpinned victim at any interleaving point, so the
        // evict-vs-in-flight-forward race is explored exhaustively.
        // (First-touch scope: the exact-count FT model would double-count a
        // replica promoted to home, a benign lossiness in the real filter.)
        let capacity = ModelConfig::small(args.gpus, args.vpns, args.inflight, PolicyKind::FirstTouch)
            .with_capacity(args.capacity.unwrap_or(1));
        ok &= run_one("first-touch+capacity", &capacity, &check_cfg);
    }
    if !ok {
        std::process::exit(1);
    }
}
