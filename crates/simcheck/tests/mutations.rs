//! Mutation self-tests: each deliberate protocol defect must be *found* by
//! the checker within a bounded state budget, produce a minimized
//! counterexample with the expected invariant tag, and that counterexample
//! must reproduce the violation when replayed from scratch.

use mgpu::protocol::model::{Action, ModelConfig, Mutation, ProtocolState};
use simcheck::{check, CheckConfig, CheckOutcome};
use uvm::PolicyKind;

/// Explores the mutated model and asserts the checker finds a violation
/// with tag `expect_tag`, minimized and reproducible.
fn assert_found(cfg: &ModelConfig, m: Mutation, budget: usize, expect_tag: &str) {
    let st = ProtocolState::new(cfg).with_mutation(m);
    let check_cfg = CheckConfig {
        max_states: budget,
        max_depth: 256,
    };
    match check(&st, &check_cfg) {
        CheckOutcome::Violation {
            invariant,
            trace,
            counterexample,
            stats,
        } => {
            assert!(
                invariant.starts_with(expect_tag),
                "{m:?}: expected a `{expect_tag}` violation, got {invariant:?}"
            );
            assert!(
                !counterexample.steps.is_empty(),
                "{m:?}: empty counterexample"
            );
            assert!(
                counterexample.steps.len() <= trace.len(),
                "{m:?}: minimizer grew the trace"
            );
            assert!(
                stats.states_explored <= budget,
                "{m:?}: budget overrun ({} states)",
                stats.states_explored
            );
            // The minimized trace reproduces the same violation class from a
            // fresh mutated state.
            let steps: Vec<Action> = counterexample
                .steps
                .iter()
                .map(|s| Action::decode(s).expect("minimized step decodes"))
                .collect();
            let fresh = ProtocolState::new(cfg).with_mutation(m);
            assert!(
                simcheck::reproduces(&fresh, &steps, expect_tag),
                "{m:?}: minimized counterexample does not reproduce"
            );
        }
        other => panic!("{m:?}: checker did not find the defect: {other:?}"),
    }
}

#[test]
fn skip_ft_invalidate_on_migrate_is_found() {
    // One cross-GPU migration: the old home's FT key survives, so the FT
    // owner set disagrees with directory residency at quiescence.
    let mut cfg = ModelConfig::small(2, 3, 1, PolicyKind::FirstTouch);
    cfg.reqs = vec![(0, 1, false)];
    assert_found(
        &cfg,
        Mutation::SkipFtInvalidateOnMigrate,
        200_000,
        "table-agreement",
    );
}

#[test]
fn drop_prt_flush_on_rejoin_is_found() {
    // The evicted GPU's PRT survives its flushed memory: stale may-be-local
    // keys disagree with the (empty) page table at quiescence.
    let cfg = ModelConfig::small(2, 3, 1, PolicyKind::FirstTouch).with_failure(0);
    assert_found(
        &cfg,
        Mutation::DropPrtFlushOnRejoin,
        500_000,
        "table-agreement",
    );
}

#[test]
fn double_retire_on_duplicate_reply_is_found() {
    // A remote supply retires the request; the raced host reply then skips
    // its idempotence guard and retires it again.
    let mut cfg = ModelConfig::small(2, 3, 1, PolicyKind::FirstTouch);
    cfg.reqs = vec![(0, 1, false)];
    assert_found(
        &cfg,
        Mutation::DoubleRetireOnDuplicateReply,
        200_000,
        "retire-exactly-once",
    );
}

#[test]
fn stale_forward_after_commit_is_found() {
    // The host forwards against a pre-eviction FT snapshot and cancels its
    // own walk optimistically; the forward is refused (owner offline) and
    // the request wedges forever: a liveness violation under fairness.
    let mut cfg = ModelConfig::small(2, 3, 1, PolicyKind::FirstTouch).with_failure(0);
    cfg.reqs = vec![(1, 2, false)];
    assert_found(
        &cfg,
        Mutation::StaleForwardAfterCommit,
        500_000,
        "deadlock",
    );
}

#[test]
fn lost_generation_bump_is_found() {
    // A stale (pre-eviction) walk completion releases a walker from the
    // force-reset pool: the count goes negative.
    let cfg = ModelConfig::small(2, 3, 1, PolicyKind::FirstTouch).with_failure(0);
    assert_found(
        &cfg,
        Mutation::LostGenerationBump,
        200_000,
        "txn-atomicity",
    );
}

#[test]
fn skip_tlb_shootdown_on_evict_is_found() {
    // A capacity eviction that forgets the remote TLB/FT invalidation
    // fan-out: the directory re-homes the evicted page, but the host PT
    // keeps pointing at the evicted copy and the FT keeps naming the
    // evictor as an owner — the tables disagree at quiescence.
    let mut cfg = ModelConfig::small(2, 3, 1, PolicyKind::FirstTouch).with_capacity(1);
    cfg.reqs = vec![(1, 1, false)];
    assert_found(
        &cfg,
        Mutation::SkipTlbShootdownOnEvict,
        200_000,
        "table-agreement",
    );
}

#[test]
fn prefetch_pending_vpn_is_found() {
    // The prefetcher maps a neighbor page the directory declined to hand
    // over (it is homed on a third party): the host PT and the directory
    // immediately disagree about the page's home.
    let mut cfg = ModelConfig::small(2, 2, 1, PolicyKind::PrefetchNeighborhood { radius: 1 });
    cfg.warm = vec![None, Some(0)];
    cfg.reqs = vec![(1, 0, false)];
    assert_found(
        &cfg,
        Mutation::PrefetchPendingVpn,
        200_000,
        "txn-atomicity",
    );
}
