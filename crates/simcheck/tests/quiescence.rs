//! Quiescence-agreement sweep: the unmutated protocol verifies clean —
//! every safety invariant plus deadlock-freedom over every interleaving —
//! under all four placement policies.

use mgpu::protocol::model::ModelConfig;
use simcheck::{check_config, CheckConfig};
use uvm::PolicyKind;

fn assert_verified(cfg: &ModelConfig, label: &str) {
    let outcome = check_config(
        cfg,
        &CheckConfig {
            max_states: 2_000_000,
            max_depth: 256,
        },
    );
    assert!(
        outcome.is_verified(),
        "{label}: expected exhaustive verification, got {outcome:?}"
    );
    assert!(
        outcome.stats().terminal_states > 0,
        "{label}: no terminal state reached — quiescence never checked"
    );
}

#[test]
fn first_touch_verifies() {
    assert_verified(
        &ModelConfig::small(2, 3, 2, PolicyKind::FirstTouch),
        "first-touch 2g/3v/2r",
    );
}

#[test]
fn delayed_migration_verifies() {
    assert_verified(
        &ModelConfig::small(2, 3, 2, PolicyKind::DelayedMigration { threshold: 2 }),
        "delayed-migration 2g/3v/2r",
    );
}

#[test]
fn read_duplicate_verifies() {
    assert_verified(
        &ModelConfig::small(2, 3, 2, PolicyKind::ReadDuplicate),
        "read-duplicate 2g/3v/2r",
    );
}

#[test]
fn prefetch_neighborhood_verifies() {
    // Cross faults onto each other's warm pages: both migrations drag the
    // prefetch neighborhood, contending on every page. (The full 2-in-flight
    // sweep for this policy runs in the release-mode CLI certificate; its
    // state space is too wide for a debug-mode unit test.)
    let mut cfg = ModelConfig::small(2, 3, 1, PolicyKind::PrefetchNeighborhood { radius: 1 });
    cfg.reqs = vec![(0, 1, false), (1, 0, true)];
    assert_verified(&cfg, "prefetch 2g/3v cross-fault");
}

#[test]
fn failure_dimension_verifies() {
    // One request per GPU with GPU0 free to be evicted and rejoin at any
    // point: recovery keeps the tables coherent and nothing deadlocks.
    assert_verified(
        &ModelConfig::small(2, 3, 1, PolicyKind::FirstTouch).with_failure(0),
        "first-touch+failure 2g/3v/1r",
    );
}
