//! Counterexample round-trip and deterministic-replay regression tests:
//! a violation's minimized trace serializes to text, parses back
//! identically, and replays to the same invariant class every time.

use mgpu::protocol::model::{self, Action, ModelConfig, Mutation, ProtocolState};
use sim_core::Counterexample;
use simcheck::{check, CheckConfig, CheckOutcome};
use uvm::PolicyKind;

fn double_retire_counterexample() -> (ModelConfig, Counterexample) {
    let mut cfg = ModelConfig::small(2, 3, 1, PolicyKind::FirstTouch);
    cfg.reqs = vec![(0, 1, false)];
    let st = ProtocolState::new(&cfg).with_mutation(Mutation::DoubleRetireOnDuplicateReply);
    match check(&st, &CheckConfig::default()) {
        CheckOutcome::Violation { counterexample, .. } => (cfg, counterexample),
        other => panic!("expected a violation, got {other:?}"),
    }
}

#[test]
fn counterexample_text_round_trips() {
    let (_, ce) = double_retire_counterexample();
    let text = ce.to_text();
    let back = Counterexample::from_text(&text).expect("serialized counterexample parses");
    assert_eq!(back, ce);
    assert_eq!(back.digest(), ce.digest());
    assert_eq!(back.tag(), "retire-exactly-once");
    // Every step is a decodable action token.
    for step in &back.steps {
        assert!(
            Action::decode(step).is_some(),
            "undecodable step {step:?}"
        );
    }
}

#[test]
fn counterexample_replays_deterministically() {
    let (cfg, ce) = double_retire_counterexample();
    let run = || {
        let st = ProtocolState::new(&cfg).with_mutation(Mutation::DoubleRetireOnDuplicateReply);
        model::replay_on(st, &ce.steps).expect("trace replays")
    };
    let first = run();
    assert!(
        first.iter().any(|v| v.starts_with("retire-exactly-once")),
        "replay did not reproduce the violation: {first:?}"
    );
    assert_eq!(first, run(), "replay is not deterministic");
}

#[test]
fn replay_rejects_disabled_actions() {
    let cfg = ModelConfig::small(2, 3, 1, PolicyKind::FirstTouch);
    // `reply 0` is never enabled at step 0 (the request has not issued).
    let err = model::replay(&cfg, &["reply 0".to_string()]).unwrap_err();
    assert!(err.contains("not enabled"), "unexpected error: {err}");
    let err = model::replay(&cfg, &["gibberish".to_string()]).unwrap_err();
    assert!(err.contains("unparseable"), "unexpected error: {err}");
}

#[test]
fn clean_replay_of_a_full_schedule_reports_no_violations() {
    // Drive one request through the plain host path by hand and replay it:
    // a legal schedule reproduces zero violations, and ends quiescent.
    let cfg = ModelConfig::small(2, 3, 1, PolicyKind::FirstTouch);
    let steps: Vec<String> = [
        "issue 0",
        "local-walk 0", // warm-local: hits and retires
        "issue 1",
        "local-walk 1",
    ]
    .iter()
    .map(|s| (*s).to_string())
    .collect();
    let violations = model::replay(&cfg, &steps).expect("legal schedule");
    assert!(violations.is_empty(), "unexpected violations: {violations:?}");
}
