//! Umbrella crate for the **Trans-FW** reproduction (HPCA 2023).
//!
//! Re-exports every layer of the stack so downstream users can depend on a
//! single crate:
//!
//! * [`transfw`] — the paper's contribution (PRT, FT, forwarding policy);
//! * [`mgpu`] — the multi-GPU address-translation simulator;
//! * [`workloads`] — the Table III applications and ML models;
//! * [`experiments`] — per-figure experiment harnesses;
//! * the substrates: [`sim_core`], [`cuckoo`], [`tlb`], [`ptw`],
//!   [`interconnect`], [`uvm`].
//!
//! # Examples
//!
//! ```
//! use transfw_sim::prelude::*;
//!
//! let app = workloads::app("MT").unwrap().scaled(0.05);
//! let metrics = System::new(SystemConfig::baseline()).run(&app).unwrap();
//! assert!(metrics.total_cycles > 0);
//! ```

pub use cuckoo;
pub use experiments;
pub use interconnect;
pub use mgpu;
pub use ptw;
pub use sim_core;
pub use tlb;
pub use transfw;
pub use uvm;
pub use workloads;

/// The most common imports for driving the simulator.
pub mod prelude {
    pub use mgpu::workload::{Access, AccessStream, Workload};
    pub use mgpu::{
        run_with_restore, ComponentEvent, FaultPlan, OverloadConfig, OverloadStats, OversubConfig,
        OversubStats, RecoveryStats, ResilienceStats, RestoreOutcome, RunMetrics, SimError, System,
        SystemConfig, TransFwKnobs, WatchdogConfig,
    };
    pub use transfw::TransFwConfig;
    pub use workloads;
}
