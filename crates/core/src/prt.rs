//! The Pending Request Table: the GMMU-side short-circuit filter (§IV-B).

use cuckoo::CuckooFilter;

use crate::TransFwConfig;

/// Per-GPU Cuckoo filter over the virtual page numbers resident in local
/// device memory.
///
/// On an L2 TLB miss the GMMU consults the PRT first:
///
/// * **miss** — the page is *definitely* not mapped locally (Cuckoo filters
///   have no false negatives), so the request skips the GMMU PW-queue and
///   PT-walk and goes straight to the host MMU;
/// * **hit** — the translation is *probably* local; walk the local table as
///   usual. A false positive (rate ε ≈ 0.1%) just falls back to the
///   baseline fault path after a wasted walk.
///
/// The table is updated off the critical path when pages migrate in or out.
///
/// # Examples
///
/// ```
/// use transfw::{Prt, TransFwConfig};
///
/// let mut prt = Prt::new(&TransFwConfig::default());
/// prt.page_arrived(100);
/// assert!(prt.may_be_local(100));
/// prt.page_departed(100);
/// assert!(!prt.may_be_local(100));
/// ```
#[derive(Debug, Clone)]
pub struct Prt {
    filter: CuckooFilter,
    mask_bits: u32,
    lookups: u64,
    hits: u64,
}

impl Prt {
    /// Builds a PRT from the Trans-FW configuration. The bucket count is
    /// rounded up when the fingerprint budget does not divide evenly.
    pub fn new(config: &TransFwConfig) -> Self {
        let buckets = config.prt_fingerprints.div_ceil(config.prt_slots);
        Self {
            filter: CuckooFilter::new(buckets, config.prt_slots, config.prt_fp_bits),
            mask_bits: config.vpn_mask_bits,
            lookups: 0,
            hits: 0,
        }
    }

    #[inline]
    fn key(&self, vpn: u64) -> u64 {
        vpn >> self.mask_bits
    }

    /// Records that a page migrated into local memory (or a local PTE was
    /// created). Called off the execution critical path.
    pub fn page_arrived(&mut self, vpn: u64) {
        // Overflow falls back to the filter's stash; membership stays exact
        // on the no-false-negative side either way.
        let _ = self.filter.insert(self.key(vpn));
    }

    /// Records that a page migrated away (local PTE destroyed).
    pub fn page_departed(&mut self, vpn: u64) {
        self.filter.remove(self.key(vpn));
    }

    /// Tests whether the translation *may* be present in the local page
    /// table. `false` is definitive (short-circuit to the host MMU).
    pub fn may_be_local(&mut self, vpn: u64) -> bool {
        self.lookups = self.lookups.saturating_add(1);
        let hit = self.filter.contains(self.key(vpn));
        if hit {
            self.hits = self.hits.saturating_add(1);
        }
        hit
    }

    /// Lookups performed.
    pub fn lookup_count(&self) -> u64 {
        self.lookups
    }

    /// Lookups that answered "maybe local".
    pub fn hit_count(&self) -> u64 {
        self.hits
    }

    /// Fingerprints currently stored.
    pub fn len(&self) -> usize {
        self.filter.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.filter.is_empty()
    }

    /// SRAM bits of the table (for the §IV-E area comparison).
    pub fn storage_bits(&self) -> u64 {
        self.filter.storage_bits()
    }

    /// Insertions that overflowed the hardware table (handled by a stash in
    /// this model; a real design would resize or spill).
    pub fn overflow_count(&self) -> u64 {
        self.filter.overflow_count()
    }

    /// Applies one ownership transaction's worth of membership changes
    /// atomically with respect to the simulation (no lookup can observe a
    /// half-applied migration): departures first — so a VPN moving between
    /// 8-page groups never transiently doubles its fingerprint — then
    /// arrivals. Used by the migration engine and the recovery protocol's
    /// PRT rebuild.
    pub fn apply(&mut self, departed: &[u64], arrived: &[u64]) {
        for &vpn in departed {
            self.page_departed(vpn);
        }
        for &vpn in arrived {
            self.page_arrived(vpn);
        }
    }

    /// Drops every fingerprint while preserving the lookup/hit counters —
    /// the bulk flush a GPU performs when it is taken offline and its local
    /// memory is evicted wholesale. The table is rebuilt from the page
    /// directory on rejoin (see the recovery protocol in DESIGN.md).
    pub fn clear(&mut self) {
        self.filter.clear();
    }

    /// A 64-bit digest of the table's current membership and counters, for
    /// epoch checkpoints. Deterministic across runs with the same history.
    pub fn state_digest(&self) -> u64 {
        let mut sm = self.filter.state_digest()
            ^ (self.lookups << 24)
            ^ (self.hits << 48)
            ^ (u64::from(self.mask_bits) << 8);
        sim_core::rng::splitmix64(&mut sm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prt() -> Prt {
        Prt::new(&TransFwConfig::default())
    }

    #[test]
    fn no_false_negatives_for_resident_pages() {
        let mut p = prt();
        // 8-page granularity: insert aligned groups.
        for vpn in (0..2000u64).step_by(8) {
            p.page_arrived(vpn);
        }
        for vpn in (0..2000u64).step_by(8) {
            assert!(p.may_be_local(vpn), "vpn {vpn}");
        }
    }

    #[test]
    fn eight_page_granularity_shares_fingerprints() {
        let mut p = prt();
        p.page_arrived(0x100);
        // Neighbours in the same 8-page group look local too (by design:
        // the mask trades precision for table size).
        assert!(p.may_be_local(0x101));
        assert!(p.may_be_local(0x107));
        assert!(!p.may_be_local(0x108));
    }

    #[test]
    fn departure_clears_membership() {
        let mut p = prt();
        p.page_arrived(0x500);
        p.page_departed(0x500);
        assert!(!p.may_be_local(0x500));
        assert!(p.is_empty());
    }

    #[test]
    fn false_positive_rate_is_low() {
        let mut p = prt();
        // Fill to ~80%: 400 groups resident.
        for i in 0..400u64 {
            p.page_arrived(i * 8);
        }
        let probes = 100_000u64;
        let fps = (0..probes)
            .filter(|i| p.may_be_local((500_000 + i) * 8))
            .count() as f64;
        let rate = fps / probes as f64;
        assert!(rate < 0.005, "PRT false positive rate {rate}");
    }

    #[test]
    fn stats_count_lookups_and_hits() {
        let mut p = prt();
        p.page_arrived(8);
        p.may_be_local(8);
        p.may_be_local(1 << 30);
        assert_eq!(p.lookup_count(), 2);
        assert_eq!(p.hit_count(), 1);
    }

    #[test]
    fn storage_matches_paper_kb() {
        let p = prt();
        let kb = p.storage_bits() as f64 / 8.0 / 1024.0;
        assert!((kb - 0.79).abs() < 0.01, "PRT is {kb} KB, paper says 0.79");
    }

    #[test]
    fn clear_flushes_membership_but_keeps_counters() {
        let mut p = prt();
        for vpn in (0..400u64).step_by(8) {
            p.page_arrived(vpn);
        }
        p.may_be_local(0);
        p.may_be_local(8);
        let (lookups, hits) = (p.lookup_count(), p.hit_count());
        let digest_before = p.state_digest();
        p.clear();
        assert!(p.is_empty());
        assert!(!p.may_be_local(0), "cleared PRT answers definitively-remote");
        assert_eq!(p.lookup_count(), lookups + 1, "counters survive the clear");
        assert_eq!(p.hit_count(), hits);
        assert_ne!(p.state_digest(), digest_before);
        p.page_arrived(16);
        assert!(p.may_be_local(16), "table usable after clear");
    }

    #[test]
    fn apply_batch_matches_individual_updates() {
        let mut batched = prt();
        let mut stepwise = prt();
        for vpn in [0u64, 8, 16, 24] {
            stepwise.page_arrived(vpn);
        }
        batched.apply(&[], &[0, 8, 16, 24]);
        for vpn in [0u64, 8, 16, 24] {
            assert!(batched.may_be_local(vpn));
        }
        assert_eq!(batched.len(), stepwise.len());
        // A migration: two pages leave, one arrives, in one transaction.
        batched.apply(&[0, 16], &[32]);
        assert!(!batched.may_be_local(0));
        assert!(!batched.may_be_local(16));
        assert!(batched.may_be_local(32));
        assert!(batched.may_be_local(8), "untouched page survives");
    }

    #[test]
    fn apply_departures_before_arrivals() {
        let mut p = prt();
        p.page_arrived(40);
        // Same VPN on both sides: depart-then-arrive must leave exactly one
        // fingerprint, not zero (arrive-then-depart would remove it).
        p.apply(&[40], &[40]);
        assert!(p.may_be_local(40));
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn migration_churn_stays_consistent() {
        let mut p = prt();
        // Simulate pages ping-ponging: arrive, depart, re-arrive.
        for round in 0..3 {
            for vpn in (0..800u64).step_by(8) {
                p.page_arrived(vpn);
            }
            for vpn in (0..800u64).step_by(8) {
                assert!(p.may_be_local(vpn), "round {round} vpn {vpn}");
                p.page_departed(vpn);
            }
        }
        assert!(p.is_empty());
    }
}
