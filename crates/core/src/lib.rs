//! **Trans-FW**: short circuiting page table walks in multi-GPU systems via
//! remote forwarding (Li et al., HPCA 2023).
//!
//! Multi-GPU systems under unified virtual memory suffer three address-
//! translation latency penalties: queuing for page-table-walk threads,
//! page-walk-cache misses, and GPU-local page faults caused by page sharing.
//! Trans-FW attacks all three with two small Cuckoo-filter tables:
//!
//! * the per-GPU [`Prt`] (*Pending Request Table*) tracks which pages are
//!   resident in local memory, so an L2 TLB miss that would fault anyway is
//!   **short-circuited past the GMMU walk** straight to the host MMU;
//! * the host-MMU [`Ft`] (*Forwarding Table*) tracks which GPU owns each
//!   page, so a contended host MMU can **forward the request to the owner
//!   GPU** and borrow its walker and page-walk cache.
//!
//! [`ForwardPolicy`] implements the "when to borrow" decision (§IV-C): only
//! forward when the host PW-queue occupancy exceeds a threshold fraction of
//! the walker count. [`area`] reproduces the §IV-E hardware-overhead math.
//!
//! This crate is simulator-independent; the `mgpu` crate wires it into the
//! full multi-GPU model.
//!
//! # Examples
//!
//! ```
//! use transfw::{Prt, Ft, ForwardPolicy, TransFwConfig};
//!
//! let cfg = TransFwConfig::default();
//! let mut prt = Prt::new(&cfg);
//! let mut ft = Ft::new(&cfg, 4);
//!
//! // Page 0x42 migrates into GPU 1.
//! prt.page_arrived(0x42);
//! ft.page_migrated(0x42, None, 1);
//!
//! // GPU-side: a miss in the PRT short-circuits the GMMU walk.
//! assert!(prt.may_be_local(0x42));
//! assert!(!prt.may_be_local(0x9999_0000));
//!
//! // Host-side: the FT names GPU 1 as a candidate owner.
//! assert_eq!(ft.lookup(0x42), vec![1]);
//!
//! // Forward only under contention.
//! let policy = ForwardPolicy::new(0.5);
//! assert!(!policy.should_forward(2, 16));
//! assert!(policy.should_forward(9, 16));
//! ```

pub mod area;
pub mod ft;
pub mod policy;
pub mod prt;

pub use area::AreaModel;
pub use ft::Ft;
pub use policy::ForwardPolicy;
pub use prt::Prt;

/// Sizing and policy parameters of the Trans-FW hardware (§IV-E defaults).
#[derive(Debug, Clone, PartialEq)]
pub struct TransFwConfig {
    /// PRT fingerprints per GMMU (paper: 500 = 125 buckets × 4 slots).
    pub prt_fingerprints: usize,
    /// PRT fingerprint width in bits (paper: 13, for ε = 0.1%).
    pub prt_fp_bits: u32,
    /// PRT bucket slot count (paper: 4).
    pub prt_slots: usize,
    /// FT fingerprints in the host MMU (paper: 2000 = 1000 buckets × 2).
    pub ft_fingerprints: usize,
    /// FT fingerprint width in bits (paper: 11, for ε = 0.2%).
    pub ft_fp_bits: u32,
    /// FT bucket slot count (paper: 2).
    pub ft_slots: usize,
    /// Low VPN bits masked before fingerprinting, so 2^n consecutive pages
    /// share a fingerprint (paper: 3, "eight pages map to the same
    /// fingerprint").
    pub vpn_mask_bits: u32,
    /// Forwarding threshold as a fraction of host PT-walk threads (§IV-C:
    /// 0.5; swept in Fig. 15).
    pub forward_threshold: f64,
}

impl Default for TransFwConfig {
    fn default() -> Self {
        Self {
            prt_fingerprints: 500,
            prt_fp_bits: 13,
            prt_slots: 4,
            ft_fingerprints: 2000,
            ft_fp_bits: 11,
            ft_slots: 2,
            vpn_mask_bits: 3,
            forward_threshold: 0.5,
        }
    }
}

impl TransFwConfig {
    /// The Fig. 16 "(250, 1000)" small configuration. Halving the tables
    /// doubles the pages mapped onto each fingerprint (the paper: "more
    /// pages are mapping into the same fingerprints with smaller table
    /// sizes, which causes a higher false positive rate").
    pub fn small() -> Self {
        Self {
            prt_fingerprints: 250,
            ft_fingerprints: 1000,
            vpn_mask_bits: 4,
            ..Self::default()
        }
    }

    /// The Fig. 16 "(1000, 4000)" large configuration (finer fingerprint
    /// granularity: four pages per fingerprint).
    pub fn large() -> Self {
        Self {
            prt_fingerprints: 1000,
            ft_fingerprints: 4000,
            vpn_mask_bits: 2,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = TransFwConfig::default();
        assert_eq!(c.prt_fingerprints, 500);
        assert_eq!(c.ft_fingerprints, 2000);
        assert_eq!(c.prt_fp_bits, 13);
        assert_eq!(c.ft_fp_bits, 11);
        assert_eq!(c.forward_threshold, 0.5);
    }

    #[test]
    fn size_variants_scale() {
        assert_eq!(TransFwConfig::small().prt_fingerprints, 250);
        assert_eq!(TransFwConfig::small().ft_fingerprints, 1000);
        assert_eq!(TransFwConfig::large().prt_fingerprints, 1000);
        assert_eq!(TransFwConfig::large().ft_fingerprints, 4000);
    }
}
