//! Hardware-overhead model (§IV-E).
//!
//! The paper sizes the PRT at 0.79 KB and the FT at 2.68 KB, and reports
//! (via CACTI) that they occupy 1.01% and 1.95% of the GPU L2 TLB and host
//! MMU TLB areas respectively. SRAM area is dominated by bit count, so this
//! model compares total storage bits; the TLB entries are modelled with tag
//! + PTE payload bits.

use crate::TransFwConfig;

/// Analytic SRAM-bit area model for the Trans-FW tables versus the TLBs
/// they shadow.
///
/// # Examples
///
/// ```
/// use transfw::{AreaModel, TransFwConfig};
///
/// let a = AreaModel::paper_baseline(&TransFwConfig::default());
/// assert!((a.prt_kb() - 0.79).abs() < 0.01);
/// assert!((a.ft_kb() - 2.68).abs() < 0.01);
/// assert!(a.prt_vs_l2_tlb() < 0.05); // low single percent of the L2 TLB
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaModel {
    prt_bits: u64,
    ft_bits: u64,
    l2_tlb_area: f64,
    host_tlb_area: f64,
}

/// Storage bits of one TLB entry: VPN tag + PPN + permission/state bits.
///
/// With a 57-bit virtual address space (5-level paging), the VPN is 45 bits
/// and a 48-bit physical space leaves a 36-bit PPN; 8 bits cover
/// valid/dirty/permissions/owner.
pub const TLB_ENTRY_BITS: u64 = 45 + 36 + 8;

/// Area multiplier of a set-associative TLB relative to plain SRAM bits:
/// each way adds tag comparators, match lines and mux overhead. Calibrated
/// so the paper's CACTI ratios land in the same low-single-percent regime.
fn assoc_area_factor(assoc: u64) -> f64 {
    1.0 + assoc as f64 / 4.0
}

impl AreaModel {
    /// Builds the model from a Trans-FW configuration and explicit TLB
    /// geometries (`entries`, `assoc`).
    pub fn new(
        config: &TransFwConfig,
        l2_tlb: (u64, u64),
        host_tlb: (u64, u64),
    ) -> Self {
        Self {
            prt_bits: config.prt_fingerprints as u64 * u64::from(config.prt_fp_bits),
            ft_bits: config.ft_fingerprints as u64 * u64::from(config.ft_fp_bits),
            l2_tlb_area: (l2_tlb.0 * TLB_ENTRY_BITS) as f64 * assoc_area_factor(l2_tlb.1),
            host_tlb_area: (host_tlb.0 * TLB_ENTRY_BITS) as f64
                * assoc_area_factor(host_tlb.1),
        }
    }

    /// The paper's baseline: 512-entry 16-way GPU L2 TLB, 2048-entry 64-way
    /// host MMU TLB.
    pub fn paper_baseline(config: &TransFwConfig) -> Self {
        Self::new(config, (512, 16), (2048, 64))
    }

    /// PRT size in kilobytes.
    pub fn prt_kb(&self) -> f64 {
        self.prt_bits as f64 / 8.0 / 1024.0
    }

    /// FT size in kilobytes.
    pub fn ft_kb(&self) -> f64 {
        self.ft_bits as f64 / 8.0 / 1024.0
    }

    /// PRT area as a fraction of the GPU L2 TLB area. The PRT itself is a
    /// small direct-indexed SRAM, so it counts raw bits.
    pub fn prt_vs_l2_tlb(&self) -> f64 {
        self.prt_bits as f64 / self.l2_tlb_area
    }

    /// FT area as a fraction of the host MMU TLB area.
    pub fn ft_vs_host_tlb(&self) -> f64 {
        self.ft_bits as f64 / self.host_tlb_area
    }

    /// How many extra host-TLB entries the combined PRT+FT budget would buy
    /// instead — the paper's argument that the same area spent on TLB
    /// capacity cannot match Trans-FW (§IV-E, §V-B).
    pub fn equivalent_tlb_entries(&self) -> u64 {
        (self.prt_bits + self.ft_bits) / TLB_ENTRY_BITS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sizes_reproduced() {
        let a = AreaModel::paper_baseline(&TransFwConfig::default());
        assert!((a.prt_kb() - 0.79).abs() < 0.01, "PRT {}", a.prt_kb());
        assert!((a.ft_kb() - 2.68).abs() < 0.01, "FT {}", a.ft_kb());
    }

    #[test]
    fn overhead_ratios_are_small() {
        let a = AreaModel::paper_baseline(&TransFwConfig::default());
        // The paper reports 1.01% and 1.95% from CACTI; this analytic model
        // lands in the same low-single-percent regime.
        assert!(a.prt_vs_l2_tlb() < 0.05, "PRT ratio {}", a.prt_vs_l2_tlb());
        assert!(a.ft_vs_host_tlb() < 0.05, "FT ratio {}", a.ft_vs_host_tlb());
        assert!(a.prt_vs_l2_tlb() > 0.001);
        assert!(a.ft_vs_host_tlb() > 0.001);
    }

    #[test]
    fn equivalent_tlb_entries_are_few() {
        let a = AreaModel::paper_baseline(&TransFwConfig::default());
        // The whole Trans-FW budget buys only a few hundred TLB entries —
        // a ~16% bump of the host TLB, far from the FT's reach.
        let extra = a.equivalent_tlb_entries();
        assert!(extra < 400, "equivalent entries {extra}");
    }

    #[test]
    fn larger_config_scales_linearly() {
        let base = AreaModel::paper_baseline(&TransFwConfig::default());
        let big = AreaModel::paper_baseline(&TransFwConfig::large());
        assert!((big.prt_kb() / base.prt_kb() - 2.0).abs() < 1e-9);
        assert!((big.ft_kb() / base.ft_kb() - 2.0).abs() < 1e-9);
    }
}
