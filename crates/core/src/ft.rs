//! The Forwarding Table: the host-MMU-side owner index (§IV-C).

use cuckoo::CuckooFilter;
use ptw::GpuId;

use crate::TransFwConfig;

/// Host-MMU Cuckoo filter mapping pages to candidate owner GPUs.
///
/// The key is the concatenation of the (masked) virtual page number and a
/// GPU id; looking up a page probes every GPU id in parallel (the paper's
/// four-comparator design) and returns the candidates. Because deletions on
/// fingerprint collisions may remove the wrong copy (§IV-C), the table can
/// name several owners — the host forwards to any one of them and treats a
/// failed remote lookup as a discarded false positive.
///
/// # Examples
///
/// ```
/// use transfw::{Ft, TransFwConfig};
///
/// let mut ft = Ft::new(&TransFwConfig::default(), 4);
/// ft.page_migrated(0x77, None, 2);
/// assert_eq!(ft.lookup(0x77), vec![2]);
/// ft.page_migrated(0x77, Some(2), 0);
/// assert_eq!(ft.lookup(0x77), vec![0]);
/// ```
#[derive(Debug, Clone)]
pub struct Ft {
    filter: CuckooFilter,
    mask_bits: u32,
    gpu_count: GpuId,
    lookups: u64,
    hits: u64,
}

impl Ft {
    /// Builds an FT for a system with `gpu_count` GPUs.
    ///
    /// # Panics
    ///
    /// Panics if `gpu_count` is zero.
    pub fn new(config: &TransFwConfig, gpu_count: GpuId) -> Self {
        assert!(gpu_count > 0, "gpu_count must be positive");
        let buckets = config.ft_fingerprints.div_ceil(config.ft_slots);
        Self {
            filter: CuckooFilter::new(buckets, config.ft_slots, config.ft_fp_bits),
            mask_bits: config.vpn_mask_bits,
            gpu_count,
            lookups: 0,
            hits: 0,
        }
    }

    #[inline]
    fn key(&self, vpn: u64, gpu: GpuId) -> u64 {
        // Concatenate the masked VPN with the owner GPU id.
        ((vpn >> self.mask_bits) << 8) | u64::from(gpu)
    }

    /// Updates ownership when a page migrates: the old fingerprint (if any)
    /// is deleted and the new owner's fingerprint inserted.
    pub fn page_migrated(&mut self, vpn: u64, old_owner: Option<GpuId>, new_owner: GpuId) {
        if let Some(old) = old_owner {
            self.filter.remove(self.key(vpn, old));
        }
        let _ = self.filter.insert(self.key(vpn, new_owner));
    }

    /// Registers an additional owner (read replication, §V-D).
    pub fn owner_added(&mut self, vpn: u64, gpu: GpuId) {
        let _ = self.filter.insert(self.key(vpn, gpu));
    }

    /// Removes one owner (replica invalidation or page unmap).
    pub fn owner_removed(&mut self, vpn: u64, gpu: GpuId) {
        self.filter.remove(self.key(vpn, gpu));
    }

    /// Probes every GPU id for `vpn` and returns the candidate owners
    /// (possibly several after collision-induced stale entries, possibly a
    /// false positive; never misses a real owner).
    pub fn lookup(&mut self, vpn: u64) -> Vec<GpuId> {
        self.lookups = self.lookups.saturating_add(1);
        let owners: Vec<GpuId> = (0..self.gpu_count)
            .filter(|&g| self.filter.contains(self.key(vpn, g)))
            .collect();
        if !owners.is_empty() {
            self.hits = self.hits.saturating_add(1);
        }
        owners
    }

    /// Number of GPUs the table indexes.
    pub fn gpu_count(&self) -> GpuId {
        self.gpu_count
    }

    /// Lookups performed.
    pub fn lookup_count(&self) -> u64 {
        self.lookups
    }

    /// Lookups that returned at least one candidate.
    pub fn hit_count(&self) -> u64 {
        self.hits
    }

    /// Fingerprints currently stored.
    pub fn len(&self) -> usize {
        self.filter.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.filter.is_empty()
    }

    /// SRAM bits of the table (for the §IV-E area comparison).
    pub fn storage_bits(&self) -> u64 {
        self.filter.storage_bits()
    }

    /// Insertions that overflowed into the stash.
    pub fn overflow_count(&self) -> u64 {
        self.filter.overflow_count()
    }

    /// Rewrites the owner set of one page in a single transactional step:
    /// stale owner keys are removed first, then the new owners inserted, so
    /// a concurrent-looking lookup sequence can never observe the union of
    /// old and new fingerprints growing without bound. This is the FT half
    /// of an `OwnershipTransaction` (migration: `remove` = old owner ∪
    /// invalidated mappings, `add` = new owner; collapse: `remove` = every
    /// stale replica key).
    pub fn rewrite_owners(&mut self, vpn: u64, remove: &[GpuId], add: &[GpuId]) {
        for &g in remove {
            self.owner_removed(vpn, g);
        }
        for &g in add {
            self.owner_added(vpn, g);
        }
    }

    /// Probes (without counting the probe in the lookup statistics) whether
    /// `gpu` is currently named as a candidate owner of `vpn` — used by the
    /// recovery protocol to invalidate only the entries actually keyed to a
    /// failed GPU.
    pub fn names_owner(&self, vpn: u64, gpu: GpuId) -> bool {
        self.filter.contains(self.key(vpn, gpu))
    }

    /// A 64-bit digest of the table's occupancy and counters, for epoch
    /// checkpoints.
    pub fn state_digest(&self) -> u64 {
        let mut sm = self.filter.len() as u64
            ^ (self.lookups << 24)
            ^ (self.hits << 48)
            ^ (u64::from(self.mask_bits) << 8)
            ^ u64::from(self.gpu_count);
        sim_core::rng::splitmix64(&mut sm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ft() -> Ft {
        Ft::new(&TransFwConfig::default(), 4)
    }

    #[test]
    fn migration_tracks_owner() {
        let mut f = ft();
        f.page_migrated(0x10, None, 3);
        assert_eq!(f.lookup(0x10), vec![3]);
        f.page_migrated(0x10, Some(3), 1);
        assert_eq!(f.lookup(0x10), vec![1]);
    }

    #[test]
    fn unknown_page_has_no_owner() {
        let mut f = ft();
        assert!(f.lookup(0xDEAD_BEEF).is_empty());
        assert_eq!(f.lookup_count(), 1);
        assert_eq!(f.hit_count(), 0);
    }

    #[test]
    fn replication_lists_multiple_owners() {
        let mut f = ft();
        f.page_migrated(0x20, None, 0);
        f.owner_added(0x20, 2);
        let mut owners = f.lookup(0x20);
        owners.sort_unstable();
        assert_eq!(owners, vec![0, 2]);
        f.owner_removed(0x20, 0);
        assert_eq!(f.lookup(0x20), vec![2]);
    }

    #[test]
    fn mask_groups_eight_pages() {
        let mut f = ft();
        f.page_migrated(0x100, None, 1);
        assert_eq!(f.lookup(0x101), vec![1], "same 8-page group");
        assert!(f.lookup(0x108).is_empty(), "next group");
    }

    #[test]
    fn never_misses_true_owner_under_churn() {
        let mut f = ft();
        // 1500 groups migrating round-robin across owners.
        let owners: Vec<GpuId> = (0..1500u64).map(|i| (i % 4) as GpuId).collect();
        for (i, &o) in owners.iter().enumerate() {
            f.page_migrated((i as u64) * 8, None, o);
        }
        for (i, &o) in owners.iter().enumerate() {
            let cands = f.lookup((i as u64) * 8);
            assert!(cands.contains(&o), "group {i} lost owner {o}");
        }
    }

    #[test]
    fn storage_matches_paper_kb() {
        let f = ft();
        let kb = f.storage_bits() as f64 / 8.0 / 1024.0;
        assert!((kb - 2.68).abs() < 0.01, "FT is {kb} KB, paper says 2.68");
    }

    #[test]
    fn false_positive_rate_is_low() {
        let mut f = ft();
        for i in 0..1600u64 {
            f.page_migrated(i * 8, None, (i % 4) as GpuId);
        }
        let probes = 50_000u64;
        let mut fps = 0u64;
        for p in 0..probes {
            if !f.lookup((1_000_000 + p) * 8).is_empty() {
                fps += 1;
            }
        }
        // Probing 4 GPU ids quadruples the per-key rate; still well under 2%.
        let rate = fps as f64 / probes as f64;
        assert!(rate < 0.02, "FT false positive rate {rate}");
    }

    #[test]
    #[should_panic(expected = "gpu_count")]
    fn zero_gpus_panics() {
        let _ = Ft::new(&TransFwConfig::default(), 0);
    }

    #[test]
    fn rewrite_owners_applies_migration_in_one_step() {
        let mut f = ft();
        f.page_migrated(0x40, None, 0);
        f.owner_added(0x40, 1);
        f.owner_added(0x40, 3);
        // Collapse to GPU 2: all three stale keys go, the writer's appears.
        f.rewrite_owners(0x40, &[0, 1, 3], &[2]);
        assert_eq!(f.lookup(0x40), vec![2]);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn rewrite_owners_with_empty_sides_is_noop() {
        let mut f = ft();
        f.page_migrated(0x50, None, 1);
        let len = f.len();
        f.rewrite_owners(0x50, &[], &[]);
        assert_eq!(f.len(), len);
        assert!(f.names_owner(0x50, 1));
    }

    #[test]
    fn names_owner_probes_without_counting() {
        let mut f = ft();
        f.page_migrated(0x30, None, 2);
        assert!(f.names_owner(0x30, 2));
        assert!(!f.names_owner(0x30, 1));
        assert_eq!(f.lookup_count(), 0, "probe does not count as a lookup");
        f.owner_removed(0x30, 2);
        assert!(!f.names_owner(0x30, 2), "invalidation clears the entry");
    }
}
