//! "When to borrow": the forwarding decision (§IV-C).

/// Decides whether a host-MMU request should also be forwarded to a remote
/// GPU, based on host PW-queue contention.
///
/// The paper observes that when fewer than `threshold × walker_count`
/// requests are queued, a host walk is usually faster than a remote lookup
/// (network latency + remote contention), so forwarding only kicks in above
/// that occupancy. The default threshold is 0.5; Fig. 15 sweeps 0, 1 and 2.
///
/// # Examples
///
/// ```
/// use transfw::ForwardPolicy;
///
/// let p = ForwardPolicy::new(0.5);
/// assert!(!p.should_forward(8, 16)); // exactly half: not "more than half"
/// assert!(p.should_forward(9, 16));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForwardPolicy {
    threshold: f64,
}

impl ForwardPolicy {
    /// Creates a policy with the given threshold (fraction of PT-walk
    /// threads).
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is negative or not finite.
    pub fn new(threshold: f64) -> Self {
        assert!(
            threshold.is_finite() && threshold >= 0.0,
            "threshold must be a non-negative finite number"
        );
        Self { threshold }
    }

    /// The configured threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Whether a request arriving with `queued` requests already waiting in
    /// the host PW-queue (served by `walkers` threads) should be forwarded.
    ///
    /// A threshold of 0 forwards whenever no walker is immediately free
    /// (i.e. any request had to queue at all).
    pub fn should_forward(&self, queued: usize, walkers: usize) -> bool {
        (queued as f64) > self.threshold * walkers as f64
    }
}

impl Default for ForwardPolicy {
    fn default() -> Self {
        Self::new(0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn half_threshold_matches_paper_wording() {
        // "more than half of the PT-walk threads" with 16 host walkers.
        let p = ForwardPolicy::new(0.5);
        assert!(!p.should_forward(0, 16));
        assert!(!p.should_forward(8, 16));
        assert!(p.should_forward(9, 16));
        assert!(p.should_forward(64, 16));
    }

    #[test]
    fn zero_threshold_forwards_on_any_queueing() {
        let p = ForwardPolicy::new(0.0);
        assert!(!p.should_forward(0, 16), "empty queue: walker free");
        assert!(p.should_forward(1, 16));
    }

    #[test]
    fn high_thresholds_forward_rarely() {
        let p1 = ForwardPolicy::new(1.0);
        let p2 = ForwardPolicy::new(2.0);
        assert!(!p1.should_forward(16, 16));
        assert!(p1.should_forward(17, 16));
        assert!(!p2.should_forward(32, 16));
        assert!(p2.should_forward(33, 16));
    }

    #[test]
    fn default_is_half() {
        assert_eq!(ForwardPolicy::default().threshold(), 0.5);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_threshold_panics() {
        let _ = ForwardPolicy::new(-1.0);
    }
}
