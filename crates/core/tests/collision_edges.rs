//! Collision and overflow edges of the Trans-FW tables: FT deletions under
//! fingerprint collisions (§IV-C's stale-owner source) and PRT stash
//! overflow (the no-false-negative side of the short-circuit filter).

use ptw::GpuId;
use transfw::{Ft, Prt, TransFwConfig};

/// Finds a page group whose FT key for `gpu` collides with already-stored
/// fingerprints: `lookup` names `gpu` even though the group was never
/// registered. Groups are 8 pages wide (the default VPN mask).
fn find_ft_collider(ft: &mut Ft, gpu: GpuId, from: u64, to: u64) -> Option<u64> {
    (from..to).map(|g| g * 8).find(|&vpn| ft.lookup(vpn).contains(&gpu))
}

/// A deliberately collision-prone FT: few buckets and narrow fingerprints
/// so an aliasing key exists within a small search range. The deletion
/// semantics under test are size-independent.
fn tiny_ft() -> Ft {
    let cfg = TransFwConfig {
        ft_fingerprints: 32,
        ft_fp_bits: 6,
        ft_slots: 2,
        ..TransFwConfig::default()
    };
    Ft::new(&cfg, 4)
}

#[test]
fn ft_colliding_delete_leaves_stale_owner_never_false_negative() {
    let mut ft = tiny_ft();
    let a = 0x40u64; // group 8
    ft.page_migrated(a, None, 0);

    // A group that aliases `a`'s (vpn, gpu 0) fingerprint. The fixed-seed
    // hashes make this search deterministic.
    let b = find_ft_collider(&mut ft, 0, 1000, 200_000)
        .expect("6-bit fingerprints over 200k groups must collide");
    ft.page_migrated(b, None, 0);

    // Page `a` migrates to GPU 1. The delete of (a, gpu 0) may remove
    // either colliding copy; `b` must still resolve to its true owner —
    // the surviving copy vouches for it (no false negative).
    ft.page_migrated(a, Some(0), 1);
    assert!(
        ft.lookup(b).contains(&0),
        "collision delete must not lose b's true owner"
    );
    // `a` may *also* still alias gpu 0 through b's copy: that is the
    // paper's stale multi-owner case, resolved at runtime by a failed
    // remote walk (discarded as a false positive), never by a miss.
    let owners_a = ft.lookup(a);
    assert!(owners_a.contains(&1), "a's migration target lost");
}

#[test]
fn ft_stale_multi_owner_reads_as_candidate_set() {
    // Replication then partial invalidation with a collision in between:
    // the candidate set may over-approximate but must include every live
    // owner.
    let cfg = TransFwConfig::default();
    let mut ft = Ft::new(&cfg, 4);
    let vpn = 0x80u64;
    ft.page_migrated(vpn, None, 2);
    ft.owner_added(vpn, 3); // read replica
    let mut owners = ft.lookup(vpn);
    owners.sort_unstable();
    assert_eq!(owners, vec![2, 3]);
    ft.owner_removed(vpn, 3);
    assert!(ft.lookup(vpn).contains(&2), "primary owner survives");
}

#[test]
fn prt_stash_overflow_has_no_false_negatives() {
    // Default PRT: 500 fingerprint slots. 700 distinct groups overflow the
    // table into the stash; membership must stay exact on the negative side
    // (a false negative would wrongly short-circuit a *local* page to the
    // host, breaking correctness, not just performance).
    let cfg = TransFwConfig::default();
    let mut prt = Prt::new(&cfg);
    let groups: Vec<u64> = (0..700u64).map(|i| i * 8).collect();
    for &vpn in &groups {
        prt.page_arrived(vpn);
    }
    assert!(prt.overflow_count() > 0, "700 groups must overflow 500 slots");
    for &vpn in &groups {
        assert!(prt.may_be_local(vpn), "resident group {vpn} denied");
    }
    // Draining restores an exactly-empty table: stash entries delete too.
    for &vpn in &groups {
        prt.page_departed(vpn);
    }
    assert!(prt.is_empty(), "stash entries must be removable");
    assert!(!prt.may_be_local(0));
}

#[test]
fn prt_overflow_churn_keeps_departures_exact() {
    // Arrive/depart cycles past capacity: no phantom residency accumulates.
    let cfg = TransFwConfig::default();
    let mut prt = Prt::new(&cfg);
    for round in 0..3u64 {
        let base = round * 100_000;
        for i in 0..600u64 {
            prt.page_arrived(base + i * 8);
        }
        for i in 0..600u64 {
            assert!(prt.may_be_local(base + i * 8), "round {round} lost {i}");
            prt.page_departed(base + i * 8);
        }
        assert!(prt.is_empty(), "round {round} left residue");
    }
}
