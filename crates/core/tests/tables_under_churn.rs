//! PRT/FT consistency under realistic page-migration churn, mirroring how
//! the simulator drives them.

use sim_core::SimRng;
use transfw::{ForwardPolicy, Ft, Prt, TransFwConfig};

/// A reference model of page residency: page -> owner GPU.
fn churn(rounds: usize, gpus: u16, pages: u64) -> (Vec<u16>, Prt, Ft) {
    let cfg = TransFwConfig::default();
    let mut owners: Vec<u16> = (0..pages).map(|p| (p % u64::from(gpus)) as u16).collect();
    let mut prts: Vec<Prt> = (0..gpus).map(|_| Prt::new(&cfg)).collect();
    let mut ft = Ft::new(&cfg, gpus);
    // Pages are spaced one per 8-page fingerprint group so the mask does
    // not conflate distinct pages' owners.
    for (p, &o) in owners.iter().enumerate() {
        prts[o as usize].page_arrived(p as u64 * 8);
        ft.page_migrated(p as u64 * 8, None, o);
    }
    let mut rng = SimRng::new(7);
    for _ in 0..rounds {
        let p = rng.gen_range(pages);
        let old = owners[p as usize];
        let new = rng.gen_range(u64::from(gpus)) as u16;
        if new == old {
            continue;
        }
        prts[old as usize].page_departed(p * 8);
        prts[new as usize].page_arrived(p * 8);
        ft.page_migrated(p * 8, Some(old), new);
        owners[p as usize] = new;
    }
    // Merge: return owner model, PRT of GPU 0, FT.
    let prt0 = prts.swap_remove(0);
    (owners, prt0, ft)
}

#[test]
fn ft_never_loses_the_true_owner() {
    let (owners, _, mut ft) = churn(20_000, 4, 2000);
    let mut misses = 0;
    for (p, &o) in owners.iter().enumerate() {
        if !ft.lookup(p as u64 * 8).contains(&o) {
            misses += 1;
        }
    }
    // Collision deletes can lose entries only when two distinct keys share
    // fingerprint AND buckets — essentially never at these sizes.
    assert!(
        misses <= owners.len() / 200,
        "FT lost {misses}/{} owners",
        owners.len()
    );
}

#[test]
fn ft_stale_owner_rate_is_bounded() {
    let (owners, _, mut ft) = churn(20_000, 4, 2000);
    let mut extra = 0usize;
    let mut total = 0usize;
    for (p, _) in owners.iter().enumerate() {
        let cands = ft.lookup(p as u64 * 8);
        total += 1;
        extra += cands.len().saturating_sub(1);
    }
    // Multi-owner responses exist (the paper's stale-fingerprint case) but
    // must stay rare relative to lookups.
    assert!(
        (extra as f64) < total as f64 * 0.25,
        "too many stale owners: {extra}/{total}"
    );
}

#[test]
fn prt_tracks_gpu0_residency_exactly() {
    let (owners, mut prt0, _) = churn(20_000, 4, 2000);
    let mut false_neg = 0;
    for (p, &o) in owners.iter().enumerate() {
        if o == 0 && !prt0.may_be_local(p as u64 * 8) {
            false_neg += 1;
        }
    }
    assert!(false_neg <= 5, "PRT false negatives: {false_neg}");
}

#[test]
fn forwarding_policy_combines_with_ft() {
    // End-to-end decision logic: forward only when contended AND an owner
    // (other than the requester) exists.
    let cfg = TransFwConfig::default();
    let mut ft = Ft::new(&cfg, 4);
    ft.page_migrated(0x10, None, 2);
    let policy = ForwardPolicy::default();
    let decide = |ft: &mut Ft, vpn: u64, requester: u16, queued: usize| -> Option<u16> {
        let owners: Vec<u16> = ft.lookup(vpn).into_iter().filter(|&o| o != requester).collect();
        if !owners.is_empty() && policy.should_forward(queued, 16) {
            Some(owners[0])
        } else {
            None
        }
    };
    assert_eq!(decide(&mut ft, 0x10, 0, 2), None, "not contended");
    assert_eq!(decide(&mut ft, 0x10, 0, 12), Some(2), "contended + owner");
    assert_eq!(decide(&mut ft, 0x10, 2, 12), None, "owner is the requester");
    assert_eq!(decide(&mut ft, 0x999, 0, 12), None, "unknown page");
}

#[test]
fn area_stays_fixed_under_churn() {
    let cfg = TransFwConfig::default();
    let prt = Prt::new(&cfg);
    let ft = Ft::new(&cfg, 4);
    // Hardware structures: storage is static regardless of content.
    assert_eq!(prt.storage_bits(), 500 * 13);
    assert_eq!(ft.storage_bits(), 2000 * 11);
}
