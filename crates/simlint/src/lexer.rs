//! A minimal Rust lexer: just enough structure for the simlint passes.
//!
//! The workspace builds fully offline, so a real parser (`syn`) is not an
//! option; instead the lints operate on a token stream with comments,
//! string/char literals and lifetimes stripped. That is exactly the level
//! the lints need — every rule is about *which identifiers appear where*,
//! never about expression structure beyond bracket matching.
//!
//! Two extras ride along with tokenisation:
//!
//! * `simlint::allow(<lint>)` directives are harvested from comments (the
//!   inline waiver mechanism — see DESIGN.md);
//! * every token carries its 1-based source line, so violations point at
//!   real locations and `#[cfg(test)]` regions can be expressed as line
//!   ranges.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// What the token is.
    pub kind: TokKind,
    /// 1-based source line the token starts on.
    pub line: usize,
}

/// Token payload: the lints distinguish identifiers (including keywords),
/// numeric literals (the RNG-stream pass compares seed literals) and
/// punctuation; string/char literals and comments are dropped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword.
    Ident(String),
    /// A numeric literal, verbatim (`0xC0C0_0F11`, `1u64`, `0.5`).
    Num(String),
    /// A single punctuation character (`::` arrives as two `:` tokens).
    Punct(char),
}

impl Tok {
    /// The identifier text, if this token is one.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s),
            TokKind::Num(_) | TokKind::Punct(_) => None,
        }
    }

    /// The numeric literal text, if this token is one.
    pub fn num(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Num(s) => Some(s),
            TokKind::Ident(_) | TokKind::Punct(_) => None,
        }
    }

    /// Whether this token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }

    /// Whether this token is the given identifier.
    pub fn is_ident(&self, s: &str) -> bool {
        self.ident() == Some(s)
    }
}

/// An inline waiver harvested from a comment: `simlint::allow(lint-name)`
/// waives violations of that lint on the same or the following line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowDirective {
    /// 1-based line the directive appears on.
    pub line: usize,
    /// The waived lint's name (e.g. `det-wallclock`).
    pub lint: String,
}

/// Lexer output: the token stream plus any inline allow directives.
#[derive(Debug, Clone, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub tokens: Vec<Tok>,
    /// Inline waivers found in comments.
    pub allows: Vec<AllowDirective>,
}

/// Lexes `src`, stripping comments, literals and lifetimes.
///
/// Malformed input (unterminated strings or comments) does not error: the
/// lexer consumes to end-of-file, which is the forgiving behaviour a linter
/// wants — the compiler is the authority on well-formedness.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0;
    let mut line = 1;
    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if chars.get(i + 1) == Some(&'/') => {
                let start = i;
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
                harvest_allows(&chars[start..i], line, &mut out.allows);
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                let start = i;
                let start_line = line;
                let mut depth = 1;
                i += 2;
                while i < chars.len() && depth > 0 {
                    if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if chars[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                harvest_allows(&chars[start..i], start_line, &mut out.allows);
            }
            '"' => {
                i = skip_string(&chars, i, &mut line);
            }
            '\'' => {
                i = skip_char_or_lifetime(&chars, i, &mut line);
            }
            c if c.is_ascii_digit() => {
                // Numeric literal: digits, alphanumeric suffixes, `_`, and
                // a `.` only when followed by a digit (so `0..10` stops).
                let start = i;
                i += 1;
                while i < chars.len() {
                    let d = chars[i];
                    let continues = d.is_ascii_alphanumeric()
                        || d == '_'
                        || (d == '.'
                            && chars.get(i + 1).is_some_and(char::is_ascii_digit));
                    if continues {
                        i += 1;
                    } else {
                        break;
                    }
                }
                let lit: String = chars[start..i].iter().collect();
                out.tokens.push(Tok { kind: TokKind::Num(lit), line });
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let word: String = chars[start..i].iter().collect();
                // Raw string literals (no escapes): r".."/r#".."#, their
                // byte (br, rb) and C-string (cr) forms.
                let raw_prefix = matches!(word.as_str(), "r" | "br" | "rb" | "cr");
                // Escaped string literals with a prefix: b"..", c"..".
                let esc_prefix = matches!(word.as_str(), "b" | "c");
                if raw_prefix && matches!(chars.get(i), Some('"') | Some('#')) {
                    i = skip_raw_string(&chars, i, &mut line);
                } else if esc_prefix && chars.get(i) == Some(&'"') {
                    i = skip_string(&chars, i, &mut line);
                } else if word == "b" && chars.get(i) == Some(&'\'') {
                    i = skip_char_or_lifetime(&chars, i, &mut line);
                } else {
                    out.tokens.push(Tok { kind: TokKind::Ident(word), line });
                }
            }
            p => {
                out.tokens.push(Tok { kind: TokKind::Punct(p), line });
                i += 1;
            }
        }
    }
    out
}

/// Consumes a `"…"` string starting at `i` (the opening quote), returning
/// the index past the closing quote.
fn skip_string(chars: &[char], mut i: usize, line: &mut usize) -> usize {
    i += 1; // opening quote
    while i < chars.len() {
        match chars[i] {
            '\\' => {
                // An escaped newline (line-continuation) still ends a
                // source line; skipping it without counting would shift
                // every later violation's line number.
                if chars.get(i + 1) == Some(&'\n') {
                    *line += 1;
                }
                i += 2;
            }
            '"' => return i + 1,
            c => {
                if c == '\n' {
                    *line += 1;
                }
                i += 1;
            }
        }
    }
    i
}

/// Consumes a raw string whose `#`/`"` sequence starts at `i` (the prefix
/// ident was already consumed), returning the index past the close.
fn skip_raw_string(chars: &[char], mut i: usize, line: &mut usize) -> usize {
    let mut hashes = 0;
    while chars.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    if chars.get(i) != Some(&'"') {
        return i; // `r#` in `r#keyword` raw identifiers: not a string
    }
    i += 1;
    while i < chars.len() {
        if chars[i] == '"' {
            let mut j = i + 1;
            let mut seen = 0;
            while seen < hashes && chars.get(j) == Some(&'#') {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return j;
            }
        }
        if chars[i] == '\n' {
            *line += 1;
        }
        i += 1;
    }
    i
}

/// Consumes either a lifetime (`'a`) or a char literal (`'x'`, `'\n'`)
/// starting at the `'` at `i`, returning the index past it.
fn skip_char_or_lifetime(chars: &[char], mut i: usize, line: &mut usize) -> usize {
    let at = if chars.get(i) == Some(&'b') { i + 1 } else { i };
    debug_assert_eq!(chars.get(at), Some(&'\''));
    let mut j = at + 1;
    // Lifetime: `'` + ident not closed by another `'`.
    if chars
        .get(j)
        .is_some_and(|c| c.is_alphabetic() || *c == '_')
    {
        let mut k = j;
        while chars.get(k).is_some_and(|c| c.is_alphanumeric() || *c == '_') {
            k += 1;
        }
        if chars.get(k) != Some(&'\'') {
            return k; // lifetime, e.g. `&'a str`
        }
    }
    // Char literal: consume to the closing quote, honouring escapes.
    while j < chars.len() {
        match chars[j] {
            '\\' => {
                if chars.get(j + 1) == Some(&'\n') {
                    *line += 1;
                }
                j += 2;
            }
            '\'' => return j + 1,
            c => {
                if c == '\n' {
                    *line += 1;
                }
                j += 1;
            }
        }
    }
    i = j;
    i
}

/// Extracts `simlint::allow(name[, name…])` directives from one comment.
///
/// `start_line` is the comment's first line; a directive inside a
/// multi-line block comment is attributed to the line it actually appears
/// on, so the same-line-or-next-line waiver rule keeps working.
fn harvest_allows(comment: &[char], start_line: usize, out: &mut Vec<AllowDirective>) {
    const NEEDLE: &str = "simlint::allow(";
    let text: String = comment.iter().collect();
    let mut from = 0;
    while let Some(pos) = text[from..].find(NEEDLE) {
        let abs = from + pos;
        let line = start_line + text[..abs].matches('\n').count();
        let after = &text[abs + NEEDLE.len()..];
        let Some(close) = after.find(')') else {
            return;
        };
        for name in after[..close].split(',') {
            let name = name.trim();
            if !name.is_empty() {
                out.push(AllowDirective { line, lint: name.to_string() });
            }
        }
        from = abs + NEEDLE.len() + close;
    }
}

/// Line ranges (1-based, inclusive) of test-gated code: items annotated
/// `#[cfg(test)]` or `#[test]`, including everything inside their braces.
///
/// The check is attribute-based, not semantic: an attribute gates the next
/// item if it contains the `test` ident and no `not` (so `#[cfg(not(test))]`
/// correctly does *not* mark a region).
pub fn test_regions(tokens: &[Tok]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let attr_start_line = tokens[i].line;
            let (attr_end, is_test) = scan_attr(tokens, i + 1);
            if is_test {
                // Skip any further attributes, then find the item's body.
                let mut j = attr_end;
                while j < tokens.len()
                    && tokens[j].is_punct('#')
                    && tokens.get(j + 1).is_some_and(|t| t.is_punct('['))
                {
                    let (next_end, _) = scan_attr(tokens, j + 1);
                    j = next_end;
                }
                if let Some((_, end_line)) = item_body_span(tokens, j) {
                    regions.push((attr_start_line, end_line));
                }
            }
            i = attr_end;
        } else {
            i += 1;
        }
    }
    regions
}

/// Scans the attribute whose `[` is at `open`; returns (index past the
/// closing `]`, whether the attribute test-gates the next item).
fn scan_attr(tokens: &[Tok], open: usize) -> (usize, bool) {
    let mut depth = 0;
    let mut has_test = false;
    let mut has_not = false;
    let mut i = open;
    while i < tokens.len() {
        match &tokens[i].kind {
            TokKind::Punct('[') => depth += 1,
            TokKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return (i + 1, has_test && !has_not);
                }
            }
            TokKind::Ident(s) if s == "test" => has_test = true,
            TokKind::Ident(s) if s == "not" => has_not = true,
            _ => {}
        }
        i += 1;
    }
    (i, false)
}

/// From `start` (just past an item's attributes), finds the item's brace
/// body and returns `(index past closing brace, line of closing brace)`.
/// Returns `None` for bodyless items (`mod foo;`, `fn f();`).
fn item_body_span(tokens: &[Tok], start: usize) -> Option<(usize, usize)> {
    let mut i = start;
    // Find the opening `{` of the item, stopping at `;` (bodyless item).
    let mut depth = 0i32; // () and [] nesting, e.g. fn args, where clauses
    while i < tokens.len() {
        match &tokens[i].kind {
            TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
            TokKind::Punct(';') if depth == 0 => return None,
            TokKind::Punct('{') if depth == 0 => break,
            _ => {}
        }
        i += 1;
    }
    if i >= tokens.len() {
        return None;
    }
    // Match braces to the item body's end.
    let mut brace_depth = 0;
    while i < tokens.len() {
        match &tokens[i].kind {
            TokKind::Punct('{') => brace_depth += 1,
            TokKind::Punct('}') => {
                brace_depth -= 1;
                if brace_depth == 0 {
                    return Some((i + 1, tokens[i].line));
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Whether `line` falls inside any of `regions`.
pub fn in_regions(regions: &[(usize, usize)], line: usize) -> bool {
    regions.iter().any(|&(a, b)| line >= a && line <= b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn strips_comments_and_strings() {
        let src = r##"
            // HashMap in a comment
            /* HashMap in /* nested */ block */
            let s = "HashMap in a string";
            let r = r#"HashMap raw "quoted" here"#;
            let c = 'H';
            fn real_ident() {}
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()), "{ids:?}");
        assert!(ids.contains(&"real_ident".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x } let y = 'z';";
        let ids = idents(src);
        assert!(ids.contains(&"str".to_string()));
        // The lifetime ident `a` is dropped; lexing continued correctly.
        assert!(ids.contains(&"f".to_string()));
        assert!(ids.contains(&"y".to_string()));
    }

    #[test]
    fn numeric_range_does_not_eat_dots() {
        let src = "for i in 0..10 { x[i]; }";
        let lexed = lex(src);
        let dots = lexed.tokens.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2);
    }

    #[test]
    fn harvest_allow_directive() {
        let src = "let t = now(); // simlint::allow(det-wallclock) harness timing\n";
        let lexed = lex(src);
        assert_eq!(lexed.allows.len(), 1);
        assert_eq!(lexed.allows[0].lint, "det-wallclock");
        assert_eq!(lexed.allows[0].line, 1);
    }

    #[test]
    fn cfg_test_region_covers_module() {
        let src = "\
fn live() {}\n\
#[cfg(test)]\n\
mod tests {\n\
    fn helper() {}\n\
}\n\
fn also_live() {}\n";
        let lexed = lex(src);
        let regions = test_regions(&lexed.tokens);
        assert_eq!(regions, vec![(2, 5)]);
        assert!(in_regions(&regions, 4));
        assert!(!in_regions(&regions, 1));
        assert!(!in_regions(&regions, 6));
    }

    #[test]
    fn cfg_not_test_is_not_a_region() {
        let src = "#[cfg(not(test))]\nmod real { fn f() {} }\n";
        let lexed = lex(src);
        assert!(test_regions(&lexed.tokens).is_empty());
    }

    #[test]
    fn test_attr_with_following_attrs() {
        let src = "#[test]\n#[should_panic]\nfn boom() {\n  x();\n}\n";
        let lexed = lex(src);
        assert_eq!(test_regions(&lexed.tokens), vec![(1, 5)]);
    }

    #[test]
    fn numeric_literals_are_tokens() {
        let src = "let s = SimRng::new(0xC0C0_0F11); let f = 0.5; let n = 7u64;";
        let nums: Vec<String> = lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.num().map(str::to_string))
            .collect();
        assert_eq!(nums, ["0xC0C0_0F11", "0.5", "7u64"]);
    }

    #[test]
    fn c_strings_are_stripped() {
        let src = r##"let a = c"HashMap"; let b = cr#"HashMap "x""#; real();"##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()), "{ids:?}");
        assert!(ids.contains(&"real".to_string()));
    }

    #[test]
    fn byte_string_escaped_quote_does_not_derail() {
        let src = "let a = b\"x\\\"y\"; after();";
        let ids = idents(src);
        assert!(ids.contains(&"after".to_string()), "{ids:?}");
        assert!(!ids.contains(&"x".to_string()));
    }

    #[test]
    fn escaped_newline_in_string_counts_the_line() {
        let src = "let s = \"a\\\nb\";\nmarker();\n";
        let lexed = lex(src);
        let marker = lexed
            .tokens
            .iter()
            .find(|t| t.is_ident("marker"))
            .expect("marker lexed");
        assert_eq!(marker.line, 3, "line after a \\-continued string");
    }

    #[test]
    fn allow_in_multiline_block_comment_uses_its_own_line() {
        let src = "/* intro\n   simlint::allow(panic-freedom) here\n*/\nx.unwrap();\n";
        let lexed = lex(src);
        assert_eq!(lexed.allows.len(), 1);
        assert_eq!(lexed.allows[0].line, 2, "directive sits on comment line 2");
    }

    #[test]
    fn two_allows_in_one_comment_both_harvested() {
        let src = "// simlint::allow(det-wallclock) and simlint::allow(panic-freedom)\n";
        let lexed = lex(src);
        let names: Vec<&str> = lexed.allows.iter().map(|a| a.lint.as_str()).collect();
        assert_eq!(names, ["det-wallclock", "panic-freedom"]);
    }
}
