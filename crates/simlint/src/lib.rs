//! `simlint` — the workspace determinism & protocol linter.
//!
//! The simulator's headline guarantees (golden bit-identity runs,
//! checkpoint/restore replay, fault-plan-invariant placement) all rest on
//! the code being deterministic and the protocol being handled
//! exhaustively. This crate makes those invariants *statically checkable*:
//! a token-level pass over every workspace crate enforces
//!
//! * **`det-collections`** — no `std::collections::HashMap`/`HashSet` in
//!   sim-state crates; use `sim_core::det::{DetMap, DetSet}` (key-ordered,
//!   identical iteration on every run) instead.
//! * **`det-wallclock`** — no `Instant`/`SystemTime`/`thread_rng`/
//!   `rand::random` anywhere outside the bench harness: simulation time is
//!   [`Cycle`]s and randomness is the seeded `SimRng`, full stop.
//! * **`panic-freedom`** — no `.unwrap()`/`.expect()`/direct indexing in
//!   the event-loop hot paths (`mgpu::{system, recovery, placement,
//!   host}`) outside `#[cfg(test)]`.
//! * **`protocol-exhaustive`** — no wildcard `_ =>` arms in matches over
//!   the protocol enums (`Event`, `MessageFate`, `ComponentEvent`,
//!   `PolicyKind`), so a new variant is a compile error at every handler.
//! * **`protocol-transition`** — no `match` over `ProtocolEvent` outside
//!   `crates/mgpu/src/protocol`: transition semantics live in exactly one
//!   module, the one the simulator *and* the `simcheck` model checker both
//!   execute, so they can never drift apart.
//! * **`metrics-complete`** — every public `RunMetrics` field must appear
//!   in the `run_json` serializer, so counters cannot silently vanish from
//!   published results.
//!
//! On top of the token lints sits a flow-aware layer ([`hir`] parses
//! items, [`symbols`] builds the workspace symbol table and call graph,
//! [`passes`] runs the analyses):
//!
//! * **`digest-complete`** — every field of a digest-bearing sim-state
//!   struct must flow into its crate's `StateDigest` path (the digest
//!   methods plus everything they transitively call); derived/cache-only
//!   fields carry inline waivers.
//! * **`rng-stream-discipline`** — every `SimRng` stream is salted per
//!   subsystem, literal seeds are unique, and raw streams never cross a
//!   public boundary outside `sim-core`.
//! * **`counter-saturation`** — `u64` counters of `RunMetrics`/`*Stats`
//!   structs are bumped with `saturating_add`, never raw `+`.
//! * **`panic-reach`** — no `.unwrap()`/`.expect()` in any function the
//!   protected mgpu hot paths can transitively reach, cross-crate
//!   included.
//!
//! Violations are diffed against a checked-in ratchet file
//! (`simlint.baseline.toml`, entries carry written justifications; new
//! violations fail) and can be waived inline with a
//! `// simlint::allow(<lint>): why` comment on or directly above the
//! offending line. See DESIGN.md, "Static analysis & determinism
//! contract".
//!
//! [`Cycle`]: https://docs.rs/sim-core
//!
//! # Examples
//!
//! ```
//! use simlint::{lint_file, Config, FileCtx};
//!
//! let cfg = Config::trans_fw();
//! let ctx = FileCtx::new("crates/tlb/src/lib.rs");
//! let v = lint_file(&ctx, "use std::collections::HashMap;", &cfg);
//! assert_eq!(v.len(), 1);
//! assert_eq!(v[0].lint.name(), "det-collections");
//! ```

pub mod baseline;
pub mod hir;
pub mod lexer;
pub mod lints;
pub mod passes;
pub mod shard;
pub mod symbols;

use std::fmt;
use std::path::{Path, PathBuf};

pub use baseline::{Baseline, BaselineEntry, Diff};
pub use lints::{lint_file, lint_metrics};

/// The lint classes simlint enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Lint {
    /// Raw `HashMap`/`HashSet` in a sim-state crate.
    DetCollections,
    /// Wall-clock or ambient randomness outside the bench harness.
    DetWallclock,
    /// `unwrap`/`expect`/indexing in an event-loop hot path.
    PanicFreedom,
    /// Wildcard arm in a match over a protocol enum.
    ProtocolExhaustive,
    /// A match over `ProtocolEvent` outside the shared transition module.
    ProtocolTransition,
    /// A `RunMetrics` field missing from the `run_json` serializer.
    MetricsComplete,
    /// A sim-state struct field that never reaches its digest path.
    DigestComplete,
    /// An unsalted, shared, or boundary-crossing `SimRng` stream.
    RngStream,
    /// A raw `+` on a `u64` counter field of a metrics/stats struct.
    CounterSaturation,
    /// A panic site reachable from the protected mgpu hot paths.
    PanicReach,
    /// A fn touching per-GPU component state keyed by more than one (or
    /// no) `GpuId`, outside the designated boundary modules.
    ShardConfinement,
    /// A struct reachable through the epoch `StateDigest` with a field
    /// that never flows into any digest path.
    EpochDigestCoverage,
    /// A `DetMap`/`DetSet` iteration closure mutating captured sim state
    /// outside the iterated map.
    OrderDependentIteration,
}

impl Lint {
    /// The lint's stable name, as used in baselines and allow directives.
    pub fn name(self) -> &'static str {
        match self {
            Lint::DetCollections => "det-collections",
            Lint::DetWallclock => "det-wallclock",
            Lint::PanicFreedom => "panic-freedom",
            Lint::ProtocolExhaustive => "protocol-exhaustive",
            Lint::ProtocolTransition => "protocol-transition",
            Lint::MetricsComplete => "metrics-complete",
            Lint::DigestComplete => "digest-complete",
            Lint::RngStream => "rng-stream-discipline",
            Lint::CounterSaturation => "counter-saturation",
            Lint::PanicReach => "panic-reach",
            Lint::ShardConfinement => "shard-confinement",
            Lint::EpochDigestCoverage => "epoch-digest-coverage",
            Lint::OrderDependentIteration => "order-dependent-iteration",
        }
    }

    /// Parses a lint name.
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "det-collections" => Lint::DetCollections,
            "det-wallclock" => Lint::DetWallclock,
            "panic-freedom" => Lint::PanicFreedom,
            "protocol-exhaustive" => Lint::ProtocolExhaustive,
            "protocol-transition" => Lint::ProtocolTransition,
            "metrics-complete" => Lint::MetricsComplete,
            "digest-complete" => Lint::DigestComplete,
            "rng-stream-discipline" => Lint::RngStream,
            "counter-saturation" => Lint::CounterSaturation,
            "panic-reach" => Lint::PanicReach,
            "shard-confinement" => Lint::ShardConfinement,
            "epoch-digest-coverage" => Lint::EpochDigestCoverage,
            "order-dependent-iteration" => Lint::OrderDependentIteration,
            _ => return None,
        })
    }

    /// Whether the lint guards determinism (the class the acceptance
    /// criteria require a zero-entry baseline for). The shard-safety
    /// classes belong here: an unconfined cross-shard access or an
    /// uncovered epoch field breaks bit-identity under the parallel
    /// engine just as surely as a raw `HashMap` does sequentially.
    pub fn is_determinism_class(self) -> bool {
        matches!(
            self,
            Lint::DetCollections
                | Lint::DetWallclock
                | Lint::DigestComplete
                | Lint::RngStream
                | Lint::ShardConfinement
                | Lint::EpochDigestCoverage
                | Lint::OrderDependentIteration
        )
    }

    /// Every lint, for `--list`-style output.
    pub fn all() -> [Lint; 13] {
        [
            Lint::DetCollections,
            Lint::DetWallclock,
            Lint::PanicFreedom,
            Lint::ProtocolExhaustive,
            Lint::ProtocolTransition,
            Lint::MetricsComplete,
            Lint::DigestComplete,
            Lint::RngStream,
            Lint::CounterSaturation,
            Lint::PanicReach,
            Lint::ShardConfinement,
            Lint::EpochDigestCoverage,
            Lint::OrderDependentIteration,
        ]
    }
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which lint fired.
    pub lint: Lint,
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Stable grouping key for baseline matching (e.g. `HashMap`,
    /// `unwrap`, `index`, `wildcard-arm(Event)`) — deliberately *not* the
    /// line number, so baselines survive unrelated edits.
    pub key: String,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.lint, self.message
        )
    }
}

/// Per-file lint context: where the file sits in the workspace.
#[derive(Debug, Clone)]
pub struct FileCtx {
    /// Workspace-relative path, `/`-separated.
    pub rel_path: String,
    /// The crate directory prefix (`crates/ptw`), empty for root files.
    pub crate_dir: String,
    /// Whether the whole file is test code (an integration-test dir or a
    /// `*_tests.rs` module included under `#[cfg(test)]`).
    pub is_test_file: bool,
}

impl FileCtx {
    /// Builds a context from a workspace-relative path.
    pub fn new(rel_path: &str) -> Self {
        let rel_path = rel_path.replace('\\', "/");
        let crate_dir = rel_path
            .strip_prefix("crates/")
            .and_then(|rest| rest.split('/').next())
            .map(|name| format!("crates/{name}"))
            .unwrap_or_default();
        let is_test_file = rel_path.split('/').any(|seg| seg == "tests")
            || rel_path.ends_with("_tests.rs");
        Self { rel_path, crate_dir, is_test_file }
    }
}

/// What the linter enforces where. [`Config::trans_fw`] is this repo's
/// contract; tests construct narrower ones.
#[derive(Debug, Clone)]
pub struct Config {
    /// Crate dirs whose non-test code models simulator state: raw hash
    /// collections are forbidden here.
    pub sim_state_crates: Vec<String>,
    /// Crate dirs exempt from every lint (the bench harness).
    pub exempt_crates: Vec<String>,
    /// Hot-path files under the panic-freedom lint.
    pub hot_path_files: Vec<String>,
    /// Protocol enums whose matches must be exhaustive.
    pub protocol_enums: Vec<String>,
    /// The shared-transition event enum: matching over it is confined to
    /// [`Config::transition_home`].
    pub transition_enum: String,
    /// Path prefix where `transition_enum` matches are allowed — the one
    /// module the simulator and the model checker both execute.
    pub transition_home: String,
    /// `(file, struct)` holding the run metrics.
    pub metrics_struct: (String, String),
    /// `(file, fn)` serializing the run metrics.
    pub metrics_serializer: (String, String),
    /// Crate dirs under the digest-completeness audit: any struct here
    /// with a digest method must mix every field (or waive it inline).
    pub digest_crates: Vec<String>,
    /// Method names that count as digest entry points.
    pub digest_fn_names: Vec<String>,
    /// Crate dirs under the RNG-stream discipline lint.
    pub rng_crates: Vec<String>,
    /// The one file allowed to construct raw `SimRng` streams: the
    /// generator's own home, where forking/salting is implemented.
    pub rng_home: String,
    /// Crate dirs the panic-reach call graph spans.
    pub reach_crates: Vec<String>,
    /// Names of containers indexed by GPU id (`self.<name>[g]` or
    /// `.get(g)`): accesses into these are what shard confinement tracks.
    pub per_gpu_containers: Vec<String>,
    /// Crate dirs under the shard-confinement analysis.
    pub shard_crates: Vec<String>,
    /// Path prefixes where cross-shard access is legal (the forwarding
    /// protocol, recovery, placement, the fabric, and the epoch layer).
    pub shard_boundary_modules: Vec<String>,
    /// `(file, fn)` of the epoch digest root the transitive coverage
    /// audit starts from.
    pub epoch_root: (String, String),
    /// Types the epoch coverage audit treats as opaque (config,
    /// metrics/accounting, injection plumbing — behavior-neutral by
    /// construction or audited by their own lint).
    pub epoch_exempt_types: Vec<String>,
}

impl Config {
    /// The Trans-FW workspace contract.
    pub fn trans_fw() -> Self {
        let c = |s: &str| format!("crates/{s}");
        Self {
            sim_state_crates: [
                "core", "cuckoo", "tlb", "ptw", "uvm", "mgpu", "sim-core", "scn", "scnd",
            ]
            .iter()
            .map(|s| c(s))
            .collect(),
            exempt_crates: vec![c("bench")],
            hot_path_files: ["system", "recovery", "placement", "host"]
                .iter()
                .map(|s| format!("crates/mgpu/src/{s}.rs"))
                .collect(),
            protocol_enums: ["Event", "MessageFate", "ComponentEvent", "PolicyKind"]
                .iter()
                .map(|s| (*s).to_string())
                .collect(),
            transition_enum: "ProtocolEvent".into(),
            transition_home: c("mgpu/src/protocol"),
            metrics_struct: (c("mgpu/src/metrics.rs"), "RunMetrics".into()),
            metrics_serializer: (c("experiments/src/runner.rs"), "run_json".into()),
            digest_crates: [
                "core", "cuckoo", "tlb", "ptw", "uvm", "mgpu", "sim-core", "interconnect",
            ]
            .iter()
            .map(|s| c(s))
            .collect(),
            digest_fn_names: ["digest", "state_digest", "digest_into", "epoch_digest"]
                .iter()
                .map(|s| (*s).to_string())
                .collect(),
            rng_crates: [
                "core", "cuckoo", "tlb", "ptw", "uvm", "mgpu", "sim-core", "workloads",
            ]
            .iter()
            .map(|s| c(s))
            .collect(),
            rng_home: c("sim-core/src/rng.rs"),
            // scn/scnd deliberately excluded: their generic `run`/`parse`
            // helper names would pollute name-based call resolution.
            reach_crates: [
                "core",
                "cuckoo",
                "tlb",
                "ptw",
                "uvm",
                "mgpu",
                "sim-core",
                "interconnect",
                "workloads",
            ]
            .iter()
            .map(|s| c(s))
            .collect(),
            per_gpu_containers: [
                "gpus",
                "offline_until",
                "retry",
                "gpu_queue_gates",
                "mshr_gates",
                "breakers",
                "gates",
                "refaults",
                "recently_evicted",
                "resident",
            ]
            .iter()
            .map(|s| (*s).to_string())
            .collect(),
            shard_crates: ["core", "tlb", "ptw", "uvm", "mgpu", "interconnect"]
                .iter()
                .map(|s| c(s))
                .collect(),
            shard_boundary_modules: [
                "mgpu/src/protocol",
                "mgpu/src/recovery.rs",
                "mgpu/src/placement.rs",
                "mgpu/src/system.rs",
                "interconnect/src",
            ]
            .iter()
            .map(|s| c(s))
            .collect(),
            epoch_root: (c("mgpu/src/recovery.rs"), "state_digest".into()),
            epoch_exempt_types: [
                // Behavior-neutral by construction, or audited elsewhere.
                "SystemConfig",
                "RunMetrics",
                "FaultInjector",
                "CheckpointLog",
                "MigrationLog",
                "ForwardPolicy",
                // Deterministic plumbing: ordered by construction, its
                // contents are digested at the call sites that drain it.
                "DetMap",
                "DetSet",
                "EventQueue",
                "Entry",
                // Derived accounting (histograms, latency attribution).
                "Histogram",
                "LatencyAccumulator",
                "LatencyBreakdown",
                // Microarchitectural warm state: summary counters are mixed
                // at every call site (`hits()`/`misses()`/`len()`/`busy()`)
                // and replay-restore rebuilds contents from cycle zero.
                "Tlb",
                "Way",
                "Mshr",
                "PwQueue",
                "WalkerPool",
                // Overload-control primitives: their live state reaches the
                // digest through `OverloadControl::digest` via
                // `level_milli()`/`engaged()` summaries.
                "ExponentialBackoff",
                "Hysteresis",
                "TokenBucket",
                "WindowedCount",
            ]
            .iter()
            .map(|s| (*s).to_string())
            .collect(),
        }
    }
}

/// Outcome of a workspace run: every violation, already split by the
/// inline-allow mechanism.
#[derive(Debug, Default)]
pub struct Report {
    /// Violations not waived inline (baseline diffing applies to these).
    pub violations: Vec<Violation>,
    /// Violations waived by a `simlint::allow` directive.
    pub waived: Vec<Violation>,
    /// Every cross-shard access site with its disposition — the shard
    /// boundary contract (`shard_boundary.json`) the parallel engine
    /// builds against. Sorted by (file, line, kind, what).
    pub shard_sites: Vec<shard::ShardSite>,
    /// Files scanned.
    pub files_scanned: usize,
}

/// Lints the workspace rooted at `root`.
///
/// # Errors
///
/// Returns a message when the workspace cannot be read (missing root, or
/// an unreadable source file).
pub fn run_workspace(root: &Path, cfg: &Config) -> Result<Report, String> {
    let files = workspace_rs_files(root, cfg)?;
    let mut sources = Vec::with_capacity(files.len());
    for rel in &files {
        let abs = root.join(rel);
        let src = std::fs::read_to_string(&abs)
            .map_err(|e| format!("read {}: {e}", abs.display()))?;
        sources.push((FileCtx::new(rel), src));
    }
    Ok(run_sources(&sources, cfg))
}

/// Lints a set of in-memory sources: the per-file token lints, the
/// metrics-completeness pass (when both its files are present), and the
/// flow-aware workspace passes from [`passes`]. This is the shared core of
/// [`run_workspace`] and the multi-file fixture tests.
pub fn run_sources(sources: &[(FileCtx, String)], cfg: &Config) -> Report {
    let mut report = Report {
        files_scanned: sources.len(),
        ..Report::default()
    };
    for (ctx, src) in sources {
        for v in lints::lint_file_with_allows(ctx, src, cfg) {
            match v {
                lints::Outcome::Fires(v) => report.violations.push(v),
                lints::Outcome::Waived(v) => report.waived.push(v),
            }
        }
    }
    // Metrics completeness needs both the struct and serializer files.
    let find = |path: &str| sources.iter().find(|(c, _)| c.rel_path == path);
    if let (Some((_, metrics_src)), Some((_, ser_src))) =
        (find(&cfg.metrics_struct.0), find(&cfg.metrics_serializer.0))
    {
        report
            .violations
            .extend(lint_metrics(metrics_src, ser_src, cfg));
    }
    // Flow-aware passes over the whole workspace, then the same
    // same-line-or-line-above inline-waiver rule as the token lints.
    let ws = symbols::Workspace::build(sources);
    let is_waived = |v: &Violation| {
        ws.units
            .iter()
            .find(|u| u.ctx.rel_path == v.file)
            .is_some_and(|u| {
                u.lexed.allows.iter().any(|a| {
                    a.lint == v.lint.name() && (a.line == v.line || a.line + 1 == v.line)
                })
            })
    };
    for v in passes::run(&ws, cfg) {
        if is_waived(&v) {
            report.waived.push(v);
        } else {
            report.violations.push(v);
        }
    }
    // Shard-safety layer: confinement, epoch coverage, iteration order.
    // Waived confinement findings still land in the boundary report (as
    // disposition `waived`) so the contract stays complete.
    let shard_out = shard::analyze(&ws, cfg);
    report.shard_sites = shard_out.sites;
    for v in shard_out.violations {
        if is_waived(&v) {
            if v.lint == Lint::ShardConfinement {
                report.shard_sites.push(shard::ShardSite::waived_from(&v));
            }
            report.waived.push(v);
        } else {
            report.violations.push(v);
        }
    }
    // Deterministic output order, whatever the directory walk produced —
    // violations, waived findings and the boundary contract alike, so
    // archived CI reports diff cleanly across runs.
    let by_site =
        |a: &Violation, b: &Violation| (&a.file, a.line, a.lint, &a.key).cmp(&(&b.file, b.line, b.lint, &b.key));
    report.violations.sort_by(by_site);
    report.waived.sort_by(by_site);
    report
        .shard_sites
        .sort_by(|a, b| (&a.file, a.line, &a.kind, &a.what).cmp(&(&b.file, b.line, &b.kind, &b.what)));
    report
}

/// Collects the workspace-relative paths of every `.rs` file the linter
/// scans: `crates/*/{src,tests,examples,benches}` plus the repository-root
/// `tests/` and `examples/` (mounted into the facade crate), skipping
/// exempt crates and lint-test fixture dirs.
pub fn workspace_rs_files(root: &Path, cfg: &Config) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    let entries = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("read {}: {e}", crates_dir.display()))?;
    let mut crate_dirs: Vec<PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let rel_crate = rel_to(root, &dir);
        if cfg.exempt_crates.contains(&rel_crate) {
            continue;
        }
        for sub in ["src", "tests", "examples", "benches"] {
            collect_rs(root, &dir.join(sub), &mut out);
        }
    }
    for top in ["tests", "examples"] {
        collect_rs(root, &root.join(top), &mut out);
    }
    out.sort();
    Ok(out)
}

fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<String>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return; // absent subdir: nothing to scan
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(Result::ok).map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        let name = p.file_name().and_then(|n| n.to_str()).unwrap_or_default();
        if p.is_dir() {
            // Fixture dirs hold deliberate violations for simlint's own
            // tests; `target` never holds first-party sources.
            if name != "fixtures" && name != "target" {
                collect_rs(root, &p, out);
            }
        } else if name.ends_with(".rs") {
            out.push(rel_to(root, &p));
        }
    }
}

fn rel_to(root: &Path, p: &Path) -> String {
    p.strip_prefix(root)
        .unwrap_or(p)
        .to_string_lossy()
        .replace('\\', "/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_ctx_classifies_paths() {
        let c = FileCtx::new("crates/ptw/src/pwc.rs");
        assert_eq!(c.crate_dir, "crates/ptw");
        assert!(!c.is_test_file);
        assert!(FileCtx::new("crates/cuckoo/tests/stress.rs").is_test_file);
        assert!(FileCtx::new("tests/resilience.rs").is_test_file);
        assert!(FileCtx::new("crates/mgpu/src/system_tests.rs").is_test_file);
        assert_eq!(FileCtx::new("examples/quickstart.rs").crate_dir, "");
    }

    #[test]
    fn lint_names_round_trip() {
        for lint in Lint::all() {
            assert_eq!(Lint::from_name(lint.name()), Some(lint));
        }
        assert_eq!(Lint::from_name("nope"), None);
    }

    #[test]
    fn determinism_class_covers_det_digest_rng_and_shard() {
        assert!(Lint::DetCollections.is_determinism_class());
        assert!(Lint::DetWallclock.is_determinism_class());
        assert!(Lint::DigestComplete.is_determinism_class());
        assert!(Lint::RngStream.is_determinism_class());
        assert!(Lint::ShardConfinement.is_determinism_class());
        assert!(Lint::EpochDigestCoverage.is_determinism_class());
        assert!(Lint::OrderDependentIteration.is_determinism_class());
        assert!(!Lint::PanicFreedom.is_determinism_class());
        assert!(!Lint::ProtocolExhaustive.is_determinism_class());
        assert!(!Lint::MetricsComplete.is_determinism_class());
        assert!(!Lint::CounterSaturation.is_determinism_class());
        assert!(!Lint::PanicReach.is_determinism_class());
    }
}
