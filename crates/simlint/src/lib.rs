//! `simlint` — the workspace determinism & protocol linter.
//!
//! The simulator's headline guarantees (golden bit-identity runs,
//! checkpoint/restore replay, fault-plan-invariant placement) all rest on
//! the code being deterministic and the protocol being handled
//! exhaustively. This crate makes those invariants *statically checkable*:
//! a token-level pass over every workspace crate enforces
//!
//! * **`det-collections`** — no `std::collections::HashMap`/`HashSet` in
//!   sim-state crates; use `sim_core::det::{DetMap, DetSet}` (key-ordered,
//!   identical iteration on every run) instead.
//! * **`det-wallclock`** — no `Instant`/`SystemTime`/`thread_rng`/
//!   `rand::random` anywhere outside the bench harness: simulation time is
//!   [`Cycle`]s and randomness is the seeded `SimRng`, full stop.
//! * **`panic-freedom`** — no `.unwrap()`/`.expect()`/direct indexing in
//!   the event-loop hot paths (`mgpu::{system, recovery, placement,
//!   host}`) outside `#[cfg(test)]`.
//! * **`protocol-exhaustive`** — no wildcard `_ =>` arms in matches over
//!   the protocol enums (`Event`, `MessageFate`, `ComponentEvent`,
//!   `PolicyKind`), so a new variant is a compile error at every handler.
//! * **`protocol-transition`** — no `match` over `ProtocolEvent` outside
//!   `crates/mgpu/src/protocol`: transition semantics live in exactly one
//!   module, the one the simulator *and* the `simcheck` model checker both
//!   execute, so they can never drift apart.
//! * **`metrics-complete`** — every public `RunMetrics` field must appear
//!   in the `run_json` serializer, so counters cannot silently vanish from
//!   published results.
//!
//! Violations are diffed against a checked-in ratchet file
//! (`simlint.baseline.toml`, entries carry written justifications; new
//! violations fail) and can be waived inline with a
//! `// simlint::allow(<lint>): why` comment on or directly above the
//! offending line. See DESIGN.md, "Static analysis & determinism
//! contract".
//!
//! [`Cycle`]: https://docs.rs/sim-core
//!
//! # Examples
//!
//! ```
//! use simlint::{lint_file, Config, FileCtx};
//!
//! let cfg = Config::trans_fw();
//! let ctx = FileCtx::new("crates/tlb/src/lib.rs");
//! let v = lint_file(&ctx, "use std::collections::HashMap;", &cfg);
//! assert_eq!(v.len(), 1);
//! assert_eq!(v[0].lint.name(), "det-collections");
//! ```

pub mod baseline;
pub mod lexer;
pub mod lints;

use std::fmt;
use std::path::{Path, PathBuf};

pub use baseline::{Baseline, BaselineEntry, Diff};
pub use lints::{lint_file, lint_metrics};

/// The lint classes simlint enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Lint {
    /// Raw `HashMap`/`HashSet` in a sim-state crate.
    DetCollections,
    /// Wall-clock or ambient randomness outside the bench harness.
    DetWallclock,
    /// `unwrap`/`expect`/indexing in an event-loop hot path.
    PanicFreedom,
    /// Wildcard arm in a match over a protocol enum.
    ProtocolExhaustive,
    /// A match over `ProtocolEvent` outside the shared transition module.
    ProtocolTransition,
    /// A `RunMetrics` field missing from the `run_json` serializer.
    MetricsComplete,
}

impl Lint {
    /// The lint's stable name, as used in baselines and allow directives.
    pub fn name(self) -> &'static str {
        match self {
            Lint::DetCollections => "det-collections",
            Lint::DetWallclock => "det-wallclock",
            Lint::PanicFreedom => "panic-freedom",
            Lint::ProtocolExhaustive => "protocol-exhaustive",
            Lint::ProtocolTransition => "protocol-transition",
            Lint::MetricsComplete => "metrics-complete",
        }
    }

    /// Parses a lint name.
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "det-collections" => Lint::DetCollections,
            "det-wallclock" => Lint::DetWallclock,
            "panic-freedom" => Lint::PanicFreedom,
            "protocol-exhaustive" => Lint::ProtocolExhaustive,
            "protocol-transition" => Lint::ProtocolTransition,
            "metrics-complete" => Lint::MetricsComplete,
            _ => return None,
        })
    }

    /// Whether the lint guards determinism (the class the acceptance
    /// criteria require a zero-entry baseline for).
    pub fn is_determinism_class(self) -> bool {
        matches!(self, Lint::DetCollections | Lint::DetWallclock)
    }

    /// Every lint, for `--list`-style output.
    pub fn all() -> [Lint; 6] {
        [
            Lint::DetCollections,
            Lint::DetWallclock,
            Lint::PanicFreedom,
            Lint::ProtocolExhaustive,
            Lint::ProtocolTransition,
            Lint::MetricsComplete,
        ]
    }
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which lint fired.
    pub lint: Lint,
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Stable grouping key for baseline matching (e.g. `HashMap`,
    /// `unwrap`, `index`, `wildcard-arm(Event)`) — deliberately *not* the
    /// line number, so baselines survive unrelated edits.
    pub key: String,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.lint, self.message
        )
    }
}

/// Per-file lint context: where the file sits in the workspace.
#[derive(Debug, Clone)]
pub struct FileCtx {
    /// Workspace-relative path, `/`-separated.
    pub rel_path: String,
    /// The crate directory prefix (`crates/ptw`), empty for root files.
    pub crate_dir: String,
    /// Whether the whole file is test code (an integration-test dir or a
    /// `*_tests.rs` module included under `#[cfg(test)]`).
    pub is_test_file: bool,
}

impl FileCtx {
    /// Builds a context from a workspace-relative path.
    pub fn new(rel_path: &str) -> Self {
        let rel_path = rel_path.replace('\\', "/");
        let crate_dir = rel_path
            .strip_prefix("crates/")
            .and_then(|rest| rest.split('/').next())
            .map(|name| format!("crates/{name}"))
            .unwrap_or_default();
        let is_test_file = rel_path.split('/').any(|seg| seg == "tests")
            || rel_path.ends_with("_tests.rs");
        Self { rel_path, crate_dir, is_test_file }
    }
}

/// What the linter enforces where. [`Config::trans_fw`] is this repo's
/// contract; tests construct narrower ones.
#[derive(Debug, Clone)]
pub struct Config {
    /// Crate dirs whose non-test code models simulator state: raw hash
    /// collections are forbidden here.
    pub sim_state_crates: Vec<String>,
    /// Crate dirs exempt from every lint (the bench harness).
    pub exempt_crates: Vec<String>,
    /// Hot-path files under the panic-freedom lint.
    pub hot_path_files: Vec<String>,
    /// Protocol enums whose matches must be exhaustive.
    pub protocol_enums: Vec<String>,
    /// The shared-transition event enum: matching over it is confined to
    /// [`Config::transition_home`].
    pub transition_enum: String,
    /// Path prefix where `transition_enum` matches are allowed — the one
    /// module the simulator and the model checker both execute.
    pub transition_home: String,
    /// `(file, struct)` holding the run metrics.
    pub metrics_struct: (String, String),
    /// `(file, fn)` serializing the run metrics.
    pub metrics_serializer: (String, String),
}

impl Config {
    /// The Trans-FW workspace contract.
    pub fn trans_fw() -> Self {
        let c = |s: &str| format!("crates/{s}");
        Self {
            sim_state_crates: [
                "core", "cuckoo", "tlb", "ptw", "uvm", "mgpu", "sim-core", "scn", "scnd",
            ]
            .iter()
            .map(|s| c(s))
            .collect(),
            exempt_crates: vec![c("bench")],
            hot_path_files: ["system", "recovery", "placement", "host"]
                .iter()
                .map(|s| format!("crates/mgpu/src/{s}.rs"))
                .collect(),
            protocol_enums: ["Event", "MessageFate", "ComponentEvent", "PolicyKind"]
                .iter()
                .map(|s| (*s).to_string())
                .collect(),
            transition_enum: "ProtocolEvent".into(),
            transition_home: c("mgpu/src/protocol"),
            metrics_struct: (c("mgpu/src/metrics.rs"), "RunMetrics".into()),
            metrics_serializer: (c("experiments/src/runner.rs"), "run_json".into()),
        }
    }
}

/// Outcome of a workspace run: every violation, already split by the
/// inline-allow mechanism.
#[derive(Debug, Default)]
pub struct Report {
    /// Violations not waived inline (baseline diffing applies to these).
    pub violations: Vec<Violation>,
    /// Violations waived by a `simlint::allow` directive.
    pub waived: Vec<Violation>,
    /// Files scanned.
    pub files_scanned: usize,
}

/// Lints the workspace rooted at `root`.
///
/// # Errors
///
/// Returns a message when the workspace cannot be read (missing root, or
/// an unreadable metrics/serializer file).
pub fn run_workspace(root: &Path, cfg: &Config) -> Result<Report, String> {
    let mut report = Report::default();
    let files = workspace_rs_files(root, cfg)?;
    for rel in &files {
        let abs = root.join(rel);
        let src = std::fs::read_to_string(&abs)
            .map_err(|e| format!("read {}: {e}", abs.display()))?;
        let ctx = FileCtx::new(rel);
        report.files_scanned += 1;
        for v in lints::lint_file_with_allows(&ctx, &src, cfg) {
            match v {
                lints::Outcome::Fires(v) => report.violations.push(v),
                lints::Outcome::Waived(v) => report.waived.push(v),
            }
        }
    }
    // Workspace-level pass: metrics completeness.
    let (metrics_file, _) = &cfg.metrics_struct;
    let (ser_file, _) = &cfg.metrics_serializer;
    let metrics_src = std::fs::read_to_string(root.join(metrics_file))
        .map_err(|e| format!("read {metrics_file}: {e}"))?;
    let ser_src = std::fs::read_to_string(root.join(ser_file))
        .map_err(|e| format!("read {ser_file}: {e}"))?;
    report
        .violations
        .extend(lint_metrics(&metrics_src, &ser_src, cfg));
    // Deterministic output order, whatever the directory walk produced.
    report.violations.sort_by(|a, b| {
        (&a.file, a.line, a.lint, &a.key).cmp(&(&b.file, b.line, b.lint, &b.key))
    });
    Ok(report)
}

/// Collects the workspace-relative paths of every `.rs` file the linter
/// scans: `crates/*/{src,tests,examples,benches}` plus the repository-root
/// `tests/` and `examples/` (mounted into the facade crate), skipping
/// exempt crates and lint-test fixture dirs.
pub fn workspace_rs_files(root: &Path, cfg: &Config) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    let entries = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("read {}: {e}", crates_dir.display()))?;
    let mut crate_dirs: Vec<PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let rel_crate = rel_to(root, &dir);
        if cfg.exempt_crates.contains(&rel_crate) {
            continue;
        }
        for sub in ["src", "tests", "examples", "benches"] {
            collect_rs(root, &dir.join(sub), &mut out);
        }
    }
    for top in ["tests", "examples"] {
        collect_rs(root, &root.join(top), &mut out);
    }
    out.sort();
    Ok(out)
}

fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<String>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return; // absent subdir: nothing to scan
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(Result::ok).map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        let name = p.file_name().and_then(|n| n.to_str()).unwrap_or_default();
        if p.is_dir() {
            // Fixture dirs hold deliberate violations for simlint's own
            // tests; `target` never holds first-party sources.
            if name != "fixtures" && name != "target" {
                collect_rs(root, &p, out);
            }
        } else if name.ends_with(".rs") {
            out.push(rel_to(root, &p));
        }
    }
}

fn rel_to(root: &Path, p: &Path) -> String {
    p.strip_prefix(root)
        .unwrap_or(p)
        .to_string_lossy()
        .replace('\\', "/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_ctx_classifies_paths() {
        let c = FileCtx::new("crates/ptw/src/pwc.rs");
        assert_eq!(c.crate_dir, "crates/ptw");
        assert!(!c.is_test_file);
        assert!(FileCtx::new("crates/cuckoo/tests/stress.rs").is_test_file);
        assert!(FileCtx::new("tests/resilience.rs").is_test_file);
        assert!(FileCtx::new("crates/mgpu/src/system_tests.rs").is_test_file);
        assert_eq!(FileCtx::new("examples/quickstart.rs").crate_dir, "");
    }

    #[test]
    fn lint_names_round_trip() {
        for lint in Lint::all() {
            assert_eq!(Lint::from_name(lint.name()), Some(lint));
        }
        assert_eq!(Lint::from_name("nope"), None);
    }

    #[test]
    fn determinism_class_is_the_two_det_lints() {
        assert!(Lint::DetCollections.is_determinism_class());
        assert!(Lint::DetWallclock.is_determinism_class());
        assert!(!Lint::PanicFreedom.is_determinism_class());
        assert!(!Lint::ProtocolExhaustive.is_determinism_class());
        assert!(!Lint::MetricsComplete.is_determinism_class());
    }
}
