//! The six lint passes, operating on [`crate::lexer`] token streams.
//!
//! Each pass is a pure function from tokens to [`Violation`]s; the inline
//! `simlint::allow` waiver mechanism is applied uniformly on top by
//! [`lint_file_with_allows`]. Keys are chosen to be stable under unrelated
//! edits (identifier names, enum names), never line numbers.

use crate::lexer::{self, Lexed, Tok, TokKind};
use crate::{Config, FileCtx, Lint, Violation};

/// A violation after waiver resolution.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// Counts against the baseline.
    Fires(Violation),
    /// Waived by an inline `simlint::allow` directive.
    Waived(Violation),
}

/// Lints one file, ignoring inline waivers (the fixture-test entry point).
pub fn lint_file(ctx: &FileCtx, src: &str, cfg: &Config) -> Vec<Violation> {
    lint_file_with_allows(ctx, src, cfg)
        .into_iter()
        .map(|o| match o {
            Outcome::Fires(v) | Outcome::Waived(v) => v,
        })
        .collect()
}

/// Lints one file and resolves inline waivers: a `simlint::allow(<lint>)`
/// comment waives that lint's violations on the same line or the line
/// directly below (for directives placed on their own comment line).
pub fn lint_file_with_allows(ctx: &FileCtx, src: &str, cfg: &Config) -> Vec<Outcome> {
    if cfg.exempt_crates.contains(&ctx.crate_dir) {
        return Vec::new();
    }
    let lexed = lexer::lex(src);
    let regions = lexer::test_regions(&lexed.tokens);
    let mut violations = Vec::new();
    det_collections(ctx, &lexed, &regions, cfg, &mut violations);
    det_wallclock(ctx, &lexed, cfg, &mut violations);
    panic_freedom(ctx, &lexed, &regions, cfg, &mut violations);
    protocol_exhaustive(ctx, &lexed, &regions, cfg, &mut violations);
    protocol_transition(ctx, &lexed, &regions, cfg, &mut violations);
    violations
        .into_iter()
        .map(|v| {
            let waived = lexed.allows.iter().any(|a| {
                a.lint == v.lint.name() && (a.line == v.line || a.line + 1 == v.line)
            });
            if waived {
                Outcome::Waived(v)
            } else {
                Outcome::Fires(v)
            }
        })
        .collect()
}

/// `det-collections`: raw `HashMap`/`HashSet` in non-test code of a
/// sim-state crate. Hash collections iterate in a per-process-random
/// order (`RandomState`), so any state they back can replay differently
/// run to run; `DetMap`/`DetSet` are the drop-in ordered replacements.
fn det_collections(
    ctx: &FileCtx,
    lexed: &Lexed,
    test_regions: &[(usize, usize)],
    cfg: &Config,
    out: &mut Vec<Violation>,
) {
    if !cfg.sim_state_crates.contains(&ctx.crate_dir) || ctx.is_test_file {
        return;
    }
    for tok in &lexed.tokens {
        let Some(name) = tok.ident() else { continue };
        if (name == "HashMap" || name == "HashSet")
            && !lexer::in_regions(test_regions, tok.line)
        {
            out.push(Violation {
                lint: Lint::DetCollections,
                file: ctx.rel_path.clone(),
                line: tok.line,
                key: name.to_string(),
                message: format!(
                    "raw `{name}` in sim-state crate {}; use `sim_core::det::{}` \
                     so iteration order is identical on every run",
                    ctx.crate_dir,
                    if name == "HashMap" { "DetMap" } else { "DetSet" },
                ),
            });
        }
    }
}

/// `det-wallclock`: wall-clock time or ambient randomness anywhere in the
/// simulator (test code included — a test that consults the host clock is
/// a flaky test). Simulated time is `Cycle`s; randomness is the seeded
/// `SimRng`.
fn det_wallclock(ctx: &FileCtx, lexed: &Lexed, _cfg: &Config, out: &mut Vec<Violation>) {
    for (i, tok) in lexed.tokens.iter().enumerate() {
        let Some(name) = tok.ident() else { continue };
        let key = match name {
            "Instant" | "SystemTime" | "thread_rng" => name.to_string(),
            "random" => {
                // Only the ambient `rand::random` path form; a method or
                // field named `random` on the seeded RNG is fine.
                let is_path = i >= 3
                    && lexed.tokens[i - 1].is_punct(':')
                    && lexed.tokens[i - 2].is_punct(':')
                    && lexed.tokens[i - 3].is_ident("rand");
                if !is_path {
                    continue;
                }
                "rand::random".to_string()
            }
            _ => continue,
        };
        out.push(Violation {
            lint: Lint::DetWallclock,
            file: ctx.rel_path.clone(),
            line: tok.line,
            key: key.clone(),
            message: format!(
                "`{key}` is nondeterministic; simulated time is `Cycle`s and \
                 randomness comes from the seeded `SimRng`"
            ),
        });
    }
}

/// Rust keywords that may legitimately precede a `[` without the bracket
/// being an index expression (slice patterns, attribute positions, etc.).
const NON_INDEX_PRECEDERS: &[&str] = &[
    "let", "mut", "ref", "in", "if", "else", "match", "return", "for", "while",
    "loop", "move", "dyn", "as", "break", "continue", "where", "impl", "fn",
    "pub", "use", "crate", "super", "const", "static", "type", "struct", "enum",
    "mod", "trait", "unsafe", "async", "await", "yield", "box",
];

/// `panic-freedom`: `.unwrap()`, `.expect(` and direct `container[index]`
/// expressions in the event-loop hot paths, outside test code. A panic
/// mid-event tears down the run and loses the checkpoint window; hot-path
/// code must degrade through `Result`/`Option` instead.
fn panic_freedom(
    ctx: &FileCtx,
    lexed: &Lexed,
    test_regions: &[(usize, usize)],
    cfg: &Config,
    out: &mut Vec<Violation>,
) {
    if !cfg.hot_path_files.contains(&ctx.rel_path) || ctx.is_test_file {
        return;
    }
    let toks = &lexed.tokens;
    for (i, tok) in toks.iter().enumerate() {
        if lexer::in_regions(test_regions, tok.line) {
            continue;
        }
        match &tok.kind {
            TokKind::Ident(name) if name == "unwrap" || name == "expect" => {
                let is_method_call = i >= 1
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).is_some_and(|t| t.is_punct('('));
                if is_method_call {
                    out.push(Violation {
                        lint: Lint::PanicFreedom,
                        file: ctx.rel_path.clone(),
                        line: tok.line,
                        key: name.clone(),
                        message: format!(
                            "`.{name}()` can panic mid-event; hot-path code must \
                             handle the failure (or recover, e.g. \
                             `unwrap_or_else(PoisonError::into_inner)`)"
                        ),
                    });
                }
            }
            TokKind::Punct('[') => {
                // An index expression's `[` directly follows the indexed
                // expression: an identifier, `)`, or `]`. Anything else
                // (slice literals, patterns, attributes, `vec![`) does not.
                let is_index = i >= 1
                    && match &toks[i - 1].kind {
                        TokKind::Ident(prev) => {
                            !NON_INDEX_PRECEDERS.contains(&prev.as_str())
                        }
                        TokKind::Punct(')') | TokKind::Punct(']') => true,
                        TokKind::Punct(_) | TokKind::Num(_) => false,
                    };
                if is_index {
                    out.push(Violation {
                        lint: Lint::PanicFreedom,
                        file: ctx.rel_path.clone(),
                        line: tok.line,
                        key: "index".to_string(),
                        message: "direct indexing panics on out-of-bounds; use \
                                  `.get()` or justify in the baseline"
                            .to_string(),
                    });
                }
            }
            _ => {}
        }
    }
}

/// `protocol-exhaustive`: a `_ =>` arm in a match whose arms name one of
/// the protocol enums. Wildcards silently swallow future variants; every
/// protocol handler must fail to compile when the protocol grows.
fn protocol_exhaustive(
    ctx: &FileCtx,
    lexed: &Lexed,
    test_regions: &[(usize, usize)],
    cfg: &Config,
    out: &mut Vec<Violation>,
) {
    if ctx.is_test_file {
        return;
    }
    let toks = &lexed.tokens;
    let bodies = match_bodies(toks);
    for &(kw, body_start, body_end) in &bodies {
        if lexer::in_regions(test_regions, toks[kw].line) {
            continue;
        }
        // Direct tokens of this match's arms: exclude any nested match
        // bodies (they are linted as their own entries in `bodies`).
        let nested: Vec<(usize, usize)> = bodies
            .iter()
            .filter(|&&(_, s, e)| s > body_start && e <= body_end)
            .map(|&(_, s, e)| (s, e))
            .collect();
        let direct = |idx: usize| !nested.iter().any(|&(s, e)| idx > s && idx < e);

        // Which protocol enum (if any) the arms name: `Enum::Variant`.
        let mut enum_name: Option<&str> = None;
        for i in body_start + 1..body_end {
            if !direct(i) {
                continue;
            }
            if let TokKind::Ident(name) = &toks[i].kind {
                if cfg.protocol_enums.iter().any(|e| e == name)
                    && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                    && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
                {
                    enum_name = Some(name);
                    break;
                }
            }
        }
        let Some(enum_name) = enum_name else { continue };
        for i in body_start + 1..body_end {
            if direct(i)
                && toks[i].is_ident("_")
                && toks.get(i + 1).is_some_and(|t| t.is_punct('='))
                && toks.get(i + 2).is_some_and(|t| t.is_punct('>'))
            {
                out.push(Violation {
                    lint: Lint::ProtocolExhaustive,
                    file: ctx.rel_path.clone(),
                    line: toks[i].line,
                    key: format!("wildcard-arm({enum_name})"),
                    message: format!(
                        "`_ =>` in a match over `{enum_name}` silently swallows \
                         future protocol variants; list every variant explicitly"
                    ),
                });
            }
        }
    }
}

/// `protocol-transition`: a `match` whose scrutinee or arms name
/// `ProtocolEvent`, outside `crates/mgpu/src/protocol`. Transition
/// semantics must live in the one module the simulator and the `simcheck`
/// model checker both execute; a handler elsewhere would let the two drift
/// apart, and the checker would silently verify something the simulator no
/// longer does.
fn protocol_transition(
    ctx: &FileCtx,
    lexed: &Lexed,
    test_regions: &[(usize, usize)],
    cfg: &Config,
    out: &mut Vec<Violation>,
) {
    if ctx.rel_path.starts_with(&cfg.transition_home) || ctx.is_test_file {
        return;
    }
    let toks = &lexed.tokens;
    let bodies = match_bodies(toks);
    for &(kw, body_start, body_end) in &bodies {
        if lexer::in_regions(test_regions, toks[kw].line) {
            continue;
        }
        // Exclude nested match bodies: they are their own entries.
        let nested: Vec<(usize, usize)> = bodies
            .iter()
            .filter(|&&(_, s, e)| s > body_start && e <= body_end)
            .map(|&(_, s, e)| (s, e))
            .collect();
        let names_enum = (kw + 1..body_end).any(|i| {
            let direct = !nested.iter().any(|&(s, e)| i > s && i < e);
            direct && toks[i].is_ident(&cfg.transition_enum)
        });
        if names_enum {
            out.push(Violation {
                lint: Lint::ProtocolTransition,
                file: ctx.rel_path.clone(),
                line: toks[kw].line,
                key: format!("match({})", cfg.transition_enum),
                message: format!(
                    "`match` over `{}` outside `{}`; transition logic must \
                     stay in the shared module the simulator and the model \
                     checker both execute",
                    cfg.transition_enum, cfg.transition_home
                ),
            });
        }
    }
}

/// Finds every `match` expression: returns `(match keyword index,
/// body-open-brace index, body-close-brace index)` for each, including
/// nested matches.
fn match_bodies(toks: &[Tok]) -> Vec<(usize, usize, usize)> {
    let mut out = Vec::new();
    for (i, tok) in toks.iter().enumerate() {
        if !tok.is_ident("match") {
            continue;
        }
        // `match` used as a path segment or macro name is impossible (it
        // is a keyword); scan the scrutinee for the body `{` at zero
        // paren/bracket depth.
        let mut depth = 0i32;
        let mut j = i + 1;
        let mut open = None;
        while j < toks.len() {
            match &toks[j].kind {
                TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
                TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
                TokKind::Punct('{') if depth == 0 => {
                    open = Some(j);
                    break;
                }
                TokKind::Punct(';') if depth == 0 => break, // malformed
                _ => {}
            }
            j += 1;
        }
        let Some(open) = open else { continue };
        let mut brace = 0i32;
        let mut k = open;
        while k < toks.len() {
            match &toks[k].kind {
                TokKind::Punct('{') => brace += 1,
                TokKind::Punct('}') => {
                    brace -= 1;
                    if brace == 0 {
                        out.push((i, open, k));
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
    }
    out
}

/// `metrics-complete`: every `pub` field of the metrics struct must appear
/// by name inside the serializer function. Destructuring the struct (the
/// idiom `run_json` uses) makes a missing field a compile error *only* if
/// no `..` rest pattern is used — this lint closes that hole and also
/// catches a field being destructured but dropped.
pub fn lint_metrics(metrics_src: &str, serializer_src: &str, cfg: &Config) -> Vec<Violation> {
    let (metrics_file, struct_name) = &cfg.metrics_struct;
    let (ser_file, fn_name) = &cfg.metrics_serializer;
    let mut out = Vec::new();

    let fields = pub_struct_fields(&lexer::lex(metrics_src).tokens, struct_name);
    if fields.is_empty() {
        out.push(Violation {
            lint: Lint::MetricsComplete,
            file: metrics_file.clone(),
            line: 1,
            key: format!("struct-not-found({struct_name})"),
            message: format!("could not locate `struct {struct_name}` (or it has no pub fields)"),
        });
        return out;
    }
    let ser_toks = lexer::lex(serializer_src).tokens;
    let Some((fn_line, body)) = fn_body_idents(&ser_toks, fn_name) else {
        out.push(Violation {
            lint: Lint::MetricsComplete,
            file: ser_file.clone(),
            line: 1,
            key: format!("fn-not-found({fn_name})"),
            message: format!("could not locate `fn {fn_name}`"),
        });
        return out;
    };
    for field in fields {
        if !body.contains(&field) {
            out.push(Violation {
                lint: Lint::MetricsComplete,
                file: ser_file.clone(),
                line: fn_line,
                key: format!("missing-field({field})"),
                message: format!(
                    "`{struct_name}.{field}` is public but never appears in \
                     `{fn_name}`; every metric must be serialized"
                ),
            });
        }
    }
    out
}

/// Collects the `pub` field names of `struct name { ... }`.
fn pub_struct_fields(toks: &[Tok], name: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i + 1 < toks.len() {
        if toks[i].is_ident("struct") && toks[i + 1].is_ident(name) {
            // Find the body `{`, then scan depth-1 `pub field:` patterns.
            let mut j = i + 2;
            while j < toks.len() && !toks[j].is_punct('{') {
                if toks[j].is_punct(';') {
                    return fields; // unit/tuple struct
                }
                j += 1;
            }
            let mut depth = 0i32;
            while j < toks.len() {
                match &toks[j].kind {
                    TokKind::Punct('{') => depth += 1,
                    TokKind::Punct('}') => {
                        depth -= 1;
                        if depth == 0 {
                            return fields;
                        }
                    }
                    TokKind::Ident(id)
                        if id == "pub"
                            && depth == 1
                            && toks.get(j + 1).and_then(Tok::ident).is_some()
                            && toks.get(j + 2).is_some_and(|t| t.is_punct(':')) =>
                    {
                        if let Some(field) = toks[j + 1].ident() {
                            fields.push(field.to_string());
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        i += 1;
    }
    fields
}

/// Finds `fn name` and returns its line plus every identifier in its body.
fn fn_body_idents(toks: &[Tok], name: &str) -> Option<(usize, Vec<String>)> {
    let mut i = 0;
    while i + 1 < toks.len() {
        if toks[i].is_ident("fn") && toks[i + 1].is_ident(name) {
            let fn_line = toks[i].line;
            let mut j = i + 2;
            while j < toks.len() && !toks[j].is_punct('{') {
                j += 1;
            }
            let mut depth = 0i32;
            let mut idents = Vec::new();
            while j < toks.len() {
                match &toks[j].kind {
                    TokKind::Punct('{') => depth += 1,
                    TokKind::Punct('}') => {
                        depth -= 1;
                        if depth == 0 {
                            return Some((fn_line, idents));
                        }
                    }
                    TokKind::Ident(id) => idents.push(id.clone()),
                    _ => {}
                }
                j += 1;
            }
            return Some((fn_line, idents));
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> Config {
        Config::trans_fw()
    }

    fn lint(path: &str, src: &str) -> Vec<Violation> {
        lint_file(&FileCtx::new(path), src, &cfg())
    }

    #[test]
    fn hashmap_flagged_in_sim_state_crate_only() {
        let src = "use std::collections::HashMap;\nstruct S { m: HashMap<u32, u32> }\n";
        let v = lint("crates/tlb/src/lib.rs", src);
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|v| v.lint == Lint::DetCollections));
        // experiments is not a sim-state crate
        assert!(lint("crates/experiments/src/runner.rs", src).is_empty());
    }

    #[test]
    fn hashmap_in_cfg_test_is_fine() {
        let src = "struct S;\n#[cfg(test)]\nmod tests {\n    use std::collections::HashSet;\n}\n";
        assert!(lint("crates/cuckoo/src/lib.rs", src).is_empty());
    }

    #[test]
    fn wallclock_flagged_everywhere_but_waivable() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        let v = lint("crates/experiments/src/bin/repro.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].key, "Instant");
        let waived = "// simlint::allow(det-wallclock): harness timing\nfn f() { let t = std::time::Instant::now(); }\n";
        let outs = lint_file_with_allows(
            &FileCtx::new("crates/experiments/src/bin/repro.rs"),
            waived,
            &cfg(),
        );
        assert!(matches!(outs.as_slice(), [Outcome::Waived(_)]));
    }

    #[test]
    fn rand_random_needs_the_path_form() {
        let flagged = "fn f() { let x: u8 = rand::random(); }\n";
        assert_eq!(lint("crates/mgpu/src/policy.rs", flagged).len(), 1);
        let fine = "fn f(rng: &mut SimRng) { let x = rng.random(); }\n";
        assert!(lint("crates/mgpu/src/policy.rs", fine).is_empty());
    }

    #[test]
    fn unwrap_and_indexing_in_hot_path() {
        let src = "fn f(v: &[u32], m: M) { let a = v[0]; m.get().unwrap(); }\n";
        let v = lint("crates/mgpu/src/system.rs", src);
        let keys: Vec<&str> = v.iter().map(|v| v.key.as_str()).collect();
        assert_eq!(keys, ["index", "unwrap"]);
        // Same code outside a hot-path file is not flagged.
        assert!(lint("crates/mgpu/src/policy.rs", src).is_empty());
    }

    #[test]
    fn slice_patterns_attrs_and_macros_are_not_indexing() {
        let src = "\
#[derive(Debug)]\n\
struct S;\n\
fn f() { let [a, b] = pair(); let v = vec![1, 2]; let w: [u8; 4] = make(); }\n";
        assert!(lint("crates/mgpu/src/system.rs", src).is_empty());
    }

    #[test]
    fn wildcard_over_protocol_enum_flagged() {
        let src = "\
fn f(e: Event) {\n\
    match e {\n\
        Event::Tick => go(),\n\
        _ => {}\n\
    }\n\
}\n";
        let v = lint("crates/mgpu/src/policy.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].key, "wildcard-arm(Event)");
        assert_eq!(v[0].line, 4);
    }

    #[test]
    fn wildcard_over_other_enum_is_fine() {
        let src = "fn f(k: TxnKind) { match k { TxnKind::Read => r(), _ => w() } }\n";
        assert!(lint("crates/mgpu/src/policy.rs", src).is_empty());
    }

    #[test]
    fn nested_match_wildcards_attribute_to_the_inner_match() {
        // Outer match over Event is exhaustive; inner match over a plain
        // enum uses a wildcard — no violation. And vice versa.
        let fine = "\
fn f(e: Event) {\n\
    match e {\n\
        Event::Tick => match mode { Mode::A => a(), _ => b() },\n\
        Event::Stop => s(),\n\
    }\n\
}\n";
        assert!(lint("crates/mgpu/src/policy.rs", fine).is_empty());
        let bad = "\
fn f(m: Mode) {\n\
    match m {\n\
        Mode::A => match e { Event::Tick => t(), _ => u() },\n\
        _ => b(),\n\
    }\n\
}\n";
        let v = lint("crates/mgpu/src/policy.rs", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn protocol_event_match_outside_the_transition_module_flagged() {
        let src = "\
fn apply(e: &ProtocolEvent) {\n\
    match e {\n\
        ProtocolEvent::Map { .. } => m(),\n\
        ProtocolEvent::Unmap { .. } => u(),\n\
    }\n\
}\n";
        let v = lint("crates/mgpu/src/host.rs", src);
        let transition: Vec<_> = v
            .iter()
            .filter(|v| v.lint == Lint::ProtocolTransition)
            .collect();
        assert_eq!(transition.len(), 1, "{v:?}");
        assert_eq!(transition[0].key, "match(ProtocolEvent)");
        assert_eq!(transition[0].line, 2);
        // The same match inside the shared transition module is the point.
        assert!(lint("crates/mgpu/src/protocol/mod.rs", src).is_empty());
        assert!(lint("crates/mgpu/src/protocol/model.rs", src).is_empty());
    }

    #[test]
    fn constructing_or_passing_protocol_events_elsewhere_is_fine() {
        // Only *matching* centralises transition logic; building events and
        // handing them to `protocol::step` is exactly the intended idiom.
        let src = "\
fn send(gpu: u32, vpn: u64) {\n\
    let e = ProtocolEvent::Unmap { gpu, vpn };\n\
    protocol::step(self, &e);\n\
    match color { Color::Red => r(), Color::Blue => b() }\n\
}\n";
        assert!(lint("crates/mgpu/src/policy.rs", src).is_empty());
    }

    #[test]
    fn metrics_lint_catches_missing_field() {
        let metrics = "pub struct RunMetrics { pub app: String, pub total_cycles: u64 }\n";
        let ser_ok = "pub fn run_json(m: &RunMetrics) -> String { fmt(m.app, m.total_cycles) }\n";
        assert!(lint_metrics(metrics, ser_ok, &cfg()).is_empty());
        let ser_bad = "pub fn run_json(m: &RunMetrics) -> String { fmt(m.app) }\n";
        let v = lint_metrics(metrics, ser_bad, &cfg());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].key, "missing-field(total_cycles)");
    }

    #[test]
    fn bench_crate_is_exempt() {
        let src = "use std::time::Instant;\nfn f() { Instant::now(); }\n";
        let outs = lint_file_with_allows(&FileCtx::new("crates/bench/src/lib.rs"), src, &cfg());
        assert!(outs.is_empty());
    }
}
