//! A small item-level HIR over the [`crate::lexer`] token stream.
//!
//! The flow-aware passes (digest-completeness, RNG-stream discipline,
//! counter saturation, panic reachability) need more structure than a flat
//! token stream: which struct has which fields, which `impl` a function
//! belongs to, and what each function body calls. This module recovers
//! exactly that much — structs with typed field lists, enums with variant
//! names, and functions with their `impl` self type, signature identifiers,
//! body identifiers and callee names — without attempting expression-level
//! parsing. The parser is forgiving by design (a linter must never reject a
//! file the compiler accepts): anything it cannot classify is skipped, which
//! only ever costs recall, never soundness of the build.

use crate::lexer::{self, Tok, TokKind};

/// One named struct field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// 1-based line of the field's declaration.
    pub line: usize,
    /// Identifiers appearing in the field's type (`u64`, `DetMap`, …).
    pub ty: Vec<String>,
}

/// A struct definition with its named fields (tuple/unit structs parse to
/// an empty field list).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructDef {
    /// Type name.
    pub name: String,
    /// 1-based line of the `struct` keyword.
    pub line: usize,
    /// Named fields, in declaration order.
    pub fields: Vec<Field>,
    /// Whether the definition sits in test-gated code.
    pub in_test: bool,
}

/// An enum definition and its variant names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnumDef {
    /// Type name.
    pub name: String,
    /// 1-based line of the `enum` keyword.
    pub line: usize,
    /// Variant names, in declaration order.
    pub variants: Vec<String>,
    /// Whether the definition sits in test-gated code.
    pub in_test: bool,
}

/// A function definition: enough of its shape for symbol-table and
/// call-graph construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// `Some(Type)` when the fn sits inside `impl Type` (or
    /// `impl Trait for Type`).
    pub self_ty: Option<String>,
    /// Whether the fn carries any `pub` visibility.
    pub is_pub: bool,
    /// Identifiers in the parameter list and return type.
    pub sig_idents: Vec<String>,
    /// Names bound by the parameter list itself (idents at paren depth 1
    /// directly followed by `:`) — the roots a shard-confined fn may key
    /// per-GPU accesses off.
    pub param_names: Vec<String>,
    /// `let`/`for` bindings in the body: `(bound names, rhs idents)`.
    /// RHS idents record field/method accesses with a leading `.` (so a
    /// flow analysis can distinguish `self.reqs` the receiver from `reqs`
    /// the root); path tails after `::` are dropped.
    pub lets: Vec<(Vec<String>, Vec<String>)>,
    /// Token range of the body between (exclusive of) its braces —
    /// `(0, 0)` for bodyless trait fns. Indexes into the owning file's
    /// token stream, for passes that need punctuation context.
    pub body: (usize, usize),
    /// Every identifier in the body, with its line.
    pub body_idents: Vec<(String, usize)>,
    /// Names this fn calls — free calls `name(…)` and method calls
    /// `.name(…)` alike; resolution is the call graph's job.
    pub callees: Vec<String>,
    /// `.unwrap()` / `.expect(` sites in the body: (method, line).
    pub panics: Vec<(String, usize)>,
    /// Whether the definition sits in test-gated code.
    pub in_test: bool,
}

/// The HIR of one source file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FileHir {
    /// Struct definitions, in source order.
    pub structs: Vec<StructDef>,
    /// Enum definitions, in source order.
    pub enums: Vec<EnumDef>,
    /// Function definitions, in source order (trait/impl methods included).
    pub fns: Vec<FnDef>,
}

/// Keywords that look like a call when followed by `(` but never are.
const CALL_KEYWORDS: &[&str] = &[
    "if", "match", "while", "for", "loop", "return", "let", "in", "move",
    "else", "unsafe", "await", "yield", "box", "as", "ref", "mut",
];

/// Parses one file's token stream into its item-level HIR.
///
/// `test_regions` come from [`lexer::test_regions`]; `file_is_test` marks
/// whole-file test code (integration tests, `*_tests.rs` modules).
pub fn parse(toks: &[Tok], test_regions: &[(usize, usize)], file_is_test: bool) -> FileHir {
    let mut hir = FileHir::default();
    parse_items(toks, 0, toks.len(), None, test_regions, file_is_test, &mut hir);
    hir
}

#[allow(clippy::too_many_arguments)]
fn parse_items(
    toks: &[Tok],
    mut i: usize,
    end: usize,
    self_ty: Option<&str>,
    regions: &[(usize, usize)],
    file_is_test: bool,
    out: &mut FileHir,
) {
    while i < end {
        let Some(word) = toks[i].ident() else {
            i += 1;
            continue;
        };
        match word {
            "struct" => i = parse_struct(toks, i, end, regions, file_is_test, out),
            "enum" => i = parse_enum(toks, i, end, regions, file_is_test, out),
            "fn" => i = parse_fn(toks, i, end, self_ty, regions, file_is_test, out),
            "impl" | "trait" => {
                let (ty, body) = impl_header(toks, i + 1, end);
                match body {
                    Some((open, close)) => {
                        let inner_ty = if word == "impl" { ty.as_deref() } else { None };
                        parse_items(toks, open + 1, close, inner_ty, regions, file_is_test, out);
                        i = close + 1;
                    }
                    None => i += 1,
                }
            }
            "mod" => {
                // `mod name { … }`: recurse; `mod name;`: skip.
                let mut j = i + 1;
                while j < end && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
                    j += 1;
                }
                if j < end && toks[j].is_punct('{') {
                    match matching_brace(toks, j, end) {
                        Some(close) => {
                            parse_items(toks, j + 1, close, None, regions, file_is_test, out);
                            i = close + 1;
                        }
                        None => i = end,
                    }
                } else {
                    i = j + 1;
                }
            }
            "macro_rules" => {
                // `macro_rules! name { … }`: the body is token soup that
                // would confuse the item scanner — skip it whole.
                let mut j = i + 1;
                while j < end && !toks[j].is_punct('{') {
                    j += 1;
                }
                i = match matching_brace(toks, j, end) {
                    Some(close) => close + 1,
                    None => end,
                };
            }
            _ => i += 1,
        }
    }
}

/// Scans an `impl`/`trait` header starting just past the keyword: returns
/// the self type (for `impl Trait for Type`, the type after `for`) and the
/// body's `{`/`}` token indices.
fn impl_header(toks: &[Tok], start: usize, end: usize) -> (Option<String>, Option<(usize, usize)>) {
    let mut angle = 0i32;
    let mut first_ty: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut saw_for = false;
    let mut i = start;
    while i < end {
        match &toks[i].kind {
            TokKind::Punct('<') => angle += 1,
            // `->` in an associated-fn-pointer bound is not a close.
            TokKind::Punct('>') if i == 0 || !toks[i - 1].is_punct('-') => {
                angle = (angle - 1).max(0);
            }
            TokKind::Punct('{') if angle == 0 => {
                let ty = if saw_for { after_for } else { first_ty };
                return match matching_brace(toks, i, end) {
                    Some(close) => (ty, Some((i, close))),
                    None => (ty, None),
                };
            }
            TokKind::Punct(';') if angle == 0 => return (None, None),
            TokKind::Ident(id) if angle == 0 => {
                if id == "for" {
                    saw_for = true;
                } else if id == "where" {
                    // Bounds follow; the types are already captured.
                } else if saw_for {
                    if after_for.is_none() {
                        after_for = Some(id.clone());
                    }
                } else if first_ty.is_none() && id != "dyn" && id != "const" && id != "unsafe" {
                    first_ty = Some(id.clone());
                }
            }
            _ => {}
        }
        i += 1;
    }
    (None, None)
}

/// Index of the `}` matching the `{` at `open`, or `None` if unbalanced.
fn matching_brace(toks: &[Tok], open: usize, end: usize) -> Option<usize> {
    if open >= end || !toks[open].is_punct('{') {
        return None;
    }
    let mut depth = 0i32;
    let mut i = open;
    while i < end {
        if toks[i].is_punct('{') {
            depth += 1;
        } else if toks[i].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
        i += 1;
    }
    None
}

fn parse_struct(
    toks: &[Tok],
    kw: usize,
    end: usize,
    regions: &[(usize, usize)],
    file_is_test: bool,
    out: &mut FileHir,
) -> usize {
    let Some(name) = toks.get(kw + 1).and_then(Tok::ident) else {
        return kw + 1;
    };
    let line = toks[kw].line;
    let in_test = file_is_test || lexer::in_regions(regions, line);
    // Skip generics to the body `{`, a tuple `(`, or a unit `;`.
    let mut angle = 0i32;
    let mut i = kw + 2;
    while i < end {
        match &toks[i].kind {
            TokKind::Punct('<') => angle += 1,
            TokKind::Punct('>') => angle = (angle - 1).max(0),
            TokKind::Punct(';') if angle == 0 => {
                out.structs.push(StructDef { name: name.into(), line, fields: Vec::new(), in_test });
                return i + 1;
            }
            TokKind::Punct('(') if angle == 0 => {
                // Tuple struct: no named fields; skip to the closing `;`.
                let mut depth = 0i32;
                while i < end {
                    if toks[i].is_punct('(') {
                        depth += 1;
                    } else if toks[i].is_punct(')') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    i += 1;
                }
                out.structs.push(StructDef { name: name.into(), line, fields: Vec::new(), in_test });
                return (i + 1).min(end);
            }
            TokKind::Punct('{') if angle == 0 => break,
            _ => {}
        }
        i += 1;
    }
    let Some(close) = matching_brace(toks, i, end) else {
        return end;
    };
    let fields = parse_fields(toks, i + 1, close);
    out.structs.push(StructDef { name: name.into(), line, fields, in_test });
    close + 1
}

/// Parses the named fields between a struct body's braces.
fn parse_fields(toks: &[Tok], start: usize, end: usize) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut i = start;
    while i < end {
        // Skip attributes and doc metadata.
        while i + 1 < end && toks[i].is_punct('#') && toks[i + 1].is_punct('[') {
            let mut depth = 0i32;
            let mut j = i + 1;
            while j < end {
                if toks[j].is_punct('[') {
                    depth += 1;
                } else if toks[j].is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            i = (j + 1).min(end);
        }
        // Skip visibility: `pub`, `pub(crate)`, `pub(in path)`.
        if i < end && toks[i].is_ident("pub") {
            i += 1;
            if i < end && toks[i].is_punct('(') {
                while i < end && !toks[i].is_punct(')') {
                    i += 1;
                }
                i += 1;
            }
        }
        // Field: `name :` then type tokens to the `,` at depth 0.
        if i + 1 < end
            && toks[i].ident().is_some()
            && toks[i + 1].is_punct(':')
        {
            let name = toks[i].ident().unwrap_or_default().to_string();
            let line = toks[i].line;
            let mut ty = Vec::new();
            let mut depth = 0i32; // (), [], {}
            let mut angle = 0i32;
            let mut j = i + 2;
            while j < end {
                match &toks[j].kind {
                    TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => depth += 1,
                    TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => depth -= 1,
                    TokKind::Punct('<') => angle += 1,
                    TokKind::Punct('>') if !toks[j - 1].is_punct('-') => {
                        angle = (angle - 1).max(0);
                    }
                    TokKind::Punct(',') if depth == 0 && angle == 0 => break,
                    TokKind::Ident(id) => ty.push(id.clone()),
                    _ => {}
                }
                j += 1;
            }
            fields.push(Field { name, line, ty });
            i = (j + 1).min(end);
        } else {
            // Not a field start (trailing comma, malformed): advance.
            i += 1;
        }
    }
    fields
}

fn parse_enum(
    toks: &[Tok],
    kw: usize,
    end: usize,
    regions: &[(usize, usize)],
    file_is_test: bool,
    out: &mut FileHir,
) -> usize {
    let Some(name) = toks.get(kw + 1).and_then(Tok::ident) else {
        return kw + 1;
    };
    let line = toks[kw].line;
    let in_test = file_is_test || lexer::in_regions(regions, line);
    let mut i = kw + 2;
    while i < end && !toks[i].is_punct('{') && !toks[i].is_punct(';') {
        i += 1;
    }
    if i >= end || toks[i].is_punct(';') {
        return (i + 1).min(end);
    }
    let Some(close) = matching_brace(toks, i, end) else {
        return end;
    };
    // Variants: identifiers at depth 1 followed by `,` `(` `{` `=` or `}`.
    let mut variants = Vec::new();
    let mut depth = 0i32;
    let mut j = i;
    while j <= close {
        match &toks[j].kind {
            TokKind::Punct('{') | TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
            TokKind::Punct('}') | TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
            TokKind::Ident(id) if depth == 1 => {
                let next_ok = toks.get(j + 1).is_some_and(|t| {
                    t.is_punct(',') || t.is_punct('(') || t.is_punct('{') || t.is_punct('=') || t.is_punct('}')
                });
                // Attributes contribute idents at depth 1 too; require the
                // previous token to be `{` `,` or `]` (end of an attribute).
                let prev_ok = j > i
                    && (toks[j - 1].is_punct('{') || toks[j - 1].is_punct(',') || toks[j - 1].is_punct(']'));
                if next_ok && prev_ok {
                    variants.push(id.clone());
                }
            }
            _ => {}
        }
        j += 1;
    }
    out.enums.push(EnumDef { name: name.into(), line, variants, in_test });
    close + 1
}

#[allow(clippy::too_many_arguments)]
fn parse_fn(
    toks: &[Tok],
    kw: usize,
    end: usize,
    self_ty: Option<&str>,
    regions: &[(usize, usize)],
    file_is_test: bool,
    out: &mut FileHir,
) -> usize {
    // `fn` in type position (`fn(u32) -> u32`) has no name ident.
    let Some(name) = toks.get(kw + 1).and_then(Tok::ident) else {
        return kw + 1;
    };
    let line = toks[kw].line;
    let in_test = file_is_test || lexer::in_regions(regions, line);
    let is_pub = fn_is_pub(toks, kw);
    // Generics, then the parameter list.
    let mut angle = 0i32;
    let mut i = kw + 2;
    while i < end {
        match &toks[i].kind {
            TokKind::Punct('<') => angle += 1,
            TokKind::Punct('>') if !toks[i - 1].is_punct('-') => {
                angle = (angle - 1).max(0);
            }
            TokKind::Punct('(') if angle == 0 => break,
            TokKind::Punct('{') | TokKind::Punct(';') if angle == 0 => return i, // malformed
            _ => {}
        }
        i += 1;
    }
    if i >= end {
        return end;
    }
    let mut sig_idents = Vec::new();
    let mut param_names = Vec::new();
    let mut depth = 0i32;
    let params_end = {
        let mut j = i;
        loop {
            if j >= end {
                break j;
            }
            match &toks[j].kind {
                TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
                TokKind::Punct(')') | TokKind::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        break j;
                    }
                }
                TokKind::Ident(id) => {
                    sig_idents.push(id.clone());
                    // `name :` at depth 1 is a parameter binding (idents
                    // inside types sit after the `:` or behind `::`).
                    if depth == 1
                        && toks.get(j + 1).is_some_and(|t| t.is_punct(':'))
                        && !toks.get(j + 2).is_some_and(|t| t.is_punct(':'))
                        && !toks[j - 1].is_punct(':')
                    {
                        param_names.push(id.clone());
                    }
                }
                _ => {}
            }
            j += 1;
        }
    };
    // Return type / where clause up to the body `{` or a bodyless `;`.
    let mut j = params_end + 1;
    let mut depth = 0i32;
    while j < end {
        match &toks[j].kind {
            TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
            TokKind::Punct(';') if depth == 0 => {
                out.fns.push(FnDef {
                    name: name.into(),
                    line,
                    self_ty: self_ty.map(str::to_string),
                    is_pub,
                    sig_idents,
                    param_names,
                    lets: Vec::new(),
                    body: (0, 0),
                    body_idents: Vec::new(),
                    callees: Vec::new(),
                    panics: Vec::new(),
                    in_test,
                });
                return j + 1;
            }
            TokKind::Punct('{') if depth == 0 => break,
            TokKind::Ident(id) => sig_idents.push(id.clone()),
            _ => {}
        }
        j += 1;
    }
    let Some(close) = matching_brace(toks, j, end) else {
        return end;
    };
    let mut body_idents = Vec::new();
    let mut callees = Vec::new();
    let mut panics = Vec::new();
    for k in j + 1..close {
        let TokKind::Ident(id) = &toks[k].kind else { continue };
        body_idents.push((id.clone(), toks[k].line));
        let next_is_open = toks.get(k + 1).is_some_and(|t| t.is_punct('('));
        if next_is_open && !CALL_KEYWORDS.contains(&id.as_str()) {
            callees.push(id.clone());
            if (id == "unwrap" || id == "expect") && k > 0 && toks[k - 1].is_punct('.') {
                panics.push((id.clone(), toks[k].line));
            }
        }
    }
    out.fns.push(FnDef {
        name: name.into(),
        line,
        self_ty: self_ty.map(str::to_string),
        is_pub,
        sig_idents,
        param_names,
        lets: collect_lets(toks, j + 1, close),
        body: (j + 1, close),
        body_idents,
        callees,
        panics,
        in_test,
    });
    close + 1
}

/// Collects `let`/`for` bindings in a body token range.
///
/// For each binding the first vec holds the pattern's bound names
/// (lowercase-initial idents before any `:` type annotation) and the second
/// the initializer's identifiers up to the statement's end — with field and
/// method accesses prefixed by `.` and `::` path tails dropped, so a flow
/// pass can tell `self.gpus` the container from `gpus` a local root.
/// Pattern structs (`let Req { gpu, .. } = r`) and closure parameters are
/// deliberately not modeled; missing a binding only costs recall.
fn collect_lets(toks: &[Tok], start: usize, end: usize) -> Vec<(Vec<String>, Vec<String>)> {
    let mut lets = Vec::new();
    let mut i = start;
    while i < end {
        let Some(word) = toks[i].ident() else {
            i += 1;
            continue;
        };
        let is_let = word == "let";
        if !is_let && word != "for" {
            i += 1;
            continue;
        }
        // Pattern: bound names up to `=` (for `let`; not `==`/`=>`) or the
        // `in` keyword (for `for`). A `;`/`{`/`}` first means there is no
        // initializer to record — skip the binding.
        let mut names = Vec::new();
        let mut in_type = false;
        let mut found = false;
        let mut j = i + 1;
        while j < end {
            match &toks[j].kind {
                TokKind::Punct('=')
                    if is_let
                        && !toks.get(j + 1).is_some_and(|t| t.is_punct('=') || t.is_punct('>')) =>
                {
                    found = true;
                    break;
                }
                TokKind::Punct(';') | TokKind::Punct('{') | TokKind::Punct('}') => break,
                TokKind::Punct(':')
                    if !toks.get(j + 1).is_some_and(|t| t.is_punct(':'))
                        && !toks[j - 1].is_punct(':') =>
                {
                    in_type = true;
                }
                TokKind::Ident(id) if !is_let && id == "in" => {
                    found = true;
                    break;
                }
                TokKind::Ident(id) if !in_type => {
                    let binds = id.chars().next().is_some_and(char::is_lowercase)
                        && !matches!(id.as_str(), "mut" | "ref" | "box");
                    if binds {
                        names.push(id.clone());
                    }
                }
                _ => {}
            }
            j += 1;
        }
        if !found || names.is_empty() {
            i = j.max(i + 1);
            continue;
        }
        // Initializer: idents to the `;` / block `{` / `else` at depth 0.
        let mut rhs = Vec::new();
        let mut depth = 0i32;
        let mut k = j + 1;
        while k < end {
            match &toks[k].kind {
                TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
                TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
                TokKind::Punct(';') | TokKind::Punct('{') if depth <= 0 => break,
                TokKind::Ident(id) => {
                    if id == "else" && depth <= 0 {
                        break;
                    }
                    if toks[k - 1].is_punct(':') {
                        // `path::tail` — the path root is already recorded.
                    } else if toks[k - 1].is_punct('.') {
                        rhs.push(format!(".{id}"));
                    } else {
                        rhs.push(id.clone());
                    }
                }
                _ => {}
            }
            k += 1;
        }
        lets.push((names, rhs));
        i = k;
    }
    lets
}

/// Whether the fn at `kw` carries a `pub` visibility, scanning back over
/// `const`/`unsafe`/`async`/`extern` qualifiers and a `pub(…)` group.
fn fn_is_pub(toks: &[Tok], kw: usize) -> bool {
    let mut j = kw;
    while j > 0 {
        let prev = &toks[j - 1];
        match &prev.kind {
            TokKind::Ident(id)
                if matches!(id.as_str(), "const" | "unsafe" | "async" | "extern") =>
            {
                j -= 1;
            }
            TokKind::Punct(')') => {
                // Walk back over a `pub(crate)`-style group.
                let mut depth = 0i32;
                while j > 0 {
                    if toks[j - 1].is_punct(')') {
                        depth += 1;
                    } else if toks[j - 1].is_punct('(') {
                        depth -= 1;
                        if depth == 0 {
                            j -= 1;
                            break;
                        }
                    }
                    j -= 1;
                }
            }
            TokKind::Ident(id) if id == "pub" => return true,
            _ => return false,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn hir_of(src: &str) -> FileHir {
        let lexed = lex(src);
        let regions = lexer::test_regions(&lexed.tokens);
        parse(&lexed.tokens, &regions, false)
    }

    #[test]
    fn struct_fields_with_types() {
        let src = "\
pub struct Gate {\n\
    pub level: u64,\n\
    pub(crate) map: DetMap<u64, Vec<(u32, u64)>>,\n\
    engaged: bool,\n\
}\n";
        let h = hir_of(src);
        assert_eq!(h.structs.len(), 1);
        let s = &h.structs[0];
        assert_eq!(s.name, "Gate");
        let names: Vec<&str> = s.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["level", "map", "engaged"]);
        assert!(s.fields[0].ty.contains(&"u64".to_string()));
        assert!(s.fields[1].ty.contains(&"DetMap".to_string()));
        assert_eq!(s.fields[1].line, 3);
    }

    #[test]
    fn tuple_and_unit_structs_have_no_fields() {
        let h = hir_of("struct A(u32, u64);\nstruct B;\nstruct C { x: u8 }\n");
        assert_eq!(h.structs.len(), 3);
        assert!(h.structs[0].fields.is_empty());
        assert!(h.structs[1].fields.is_empty());
        assert_eq!(h.structs[2].fields.len(), 1);
    }

    #[test]
    fn impl_methods_carry_self_ty() {
        let src = "\
impl Gate {\n\
    pub fn observe(&mut self, occ: usize) -> bool { self.check(occ) }\n\
    fn check(&self, occ: usize) -> bool { occ > self.level }\n\
}\n\
impl Display for Gate {\n\
    fn fmt(&self, f: &mut Formatter<'_>) -> Result { write(f) }\n\
}\n\
fn free() { helper(); }\n";
        let h = hir_of(src);
        let names: Vec<(&str, Option<&str>, bool)> = h
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.self_ty.as_deref(), f.is_pub))
            .collect();
        assert_eq!(
            names,
            [
                ("observe", Some("Gate"), true),
                ("check", Some("Gate"), false),
                ("fmt", Some("Gate"), false),
                ("free", None, false),
            ]
        );
        assert_eq!(h.fns[0].callees, ["check"]);
        assert_eq!(h.fns[3].callees, ["helper"]);
    }

    #[test]
    fn generic_impl_resolves_self_ty() {
        let src = "impl<T: Clone> Driver<T> { fn poll(&mut self) { tick(); } }\n";
        let h = hir_of(src);
        assert_eq!(h.fns[0].self_ty.as_deref(), Some("Driver"));
    }

    #[test]
    fn panic_sites_and_method_callees() {
        let src = "fn f(m: &M) { m.get(k).unwrap(); other.expect(\"boom\"); }\n";
        let h = hir_of(src);
        let f = &h.fns[0];
        assert_eq!(f.panics, [("unwrap".to_string(), 1), ("expect".to_string(), 1)]);
        assert!(f.callees.contains(&"get".to_string()));
    }

    #[test]
    fn enum_variants() {
        let src = "\
pub enum Fate {\n\
    Deliver,\n\
    Delay(Cycle),\n\
    Dup { n: u32 },\n\
}\n";
        let h = hir_of(src);
        assert_eq!(h.enums.len(), 1);
        assert_eq!(h.enums[0].variants, ["Deliver", "Delay", "Dup"]);
    }

    #[test]
    fn test_gated_items_are_marked() {
        let src = "\
fn live() {}\n\
#[cfg(test)]\n\
mod tests {\n\
    struct Harness { x: u32 }\n\
    fn helper() {}\n\
}\n";
        let h = hir_of(src);
        let live = h.fns.iter().find(|f| f.name == "live").unwrap();
        let helper = h.fns.iter().find(|f| f.name == "helper").unwrap();
        assert!(!live.in_test);
        assert!(helper.in_test);
        assert!(h.structs[0].in_test);
    }

    #[test]
    fn bodyless_trait_fns_parse() {
        let src = "trait Cache { fn lookup(&mut self, vpn: u64) -> Option<u64>; fn evict(&mut self) { self.drop_one(); } }\n";
        let h = hir_of(src);
        assert_eq!(h.fns.len(), 2);
        assert!(h.fns[0].body_idents.is_empty());
        assert!(h.fns[1].callees.contains(&"drop_one".to_string()));
    }

    #[test]
    fn param_names_bind_only_value_parameters() {
        let src = "fn walk(&mut self, gpu: u16, vpn: u64, map: &DetMap<u64, Meta>) -> Option<u64> { probe(gpu, vpn) }\n";
        let h = hir_of(src);
        assert_eq!(h.fns[0].param_names, ["gpu", "vpn", "map"]);
        // Type idents (DetMap, u64, Meta) never leak into param_names.
        assert!(!h.fns[0].param_names.contains(&"u64".to_string()));
    }

    #[test]
    fn lets_capture_bindings_and_dotted_rhs() {
        let src = "\
fn f(&mut self, g: u16) {\n\
    let gi = g as usize;\n\
    let occ: usize = self.gpus[gi].queue.len();\n\
    for req in &self.inflight {\n\
        touch(req);\n\
    }\n\
}\n";
        let h = hir_of(src);
        let lets = &h.fns[0].lets;
        assert_eq!(lets.len(), 3);
        assert_eq!(lets[0].0, ["gi"]);
        assert!(lets[0].1.contains(&"g".to_string()));
        // The type annotation `usize` binds nothing; dotted accesses keep
        // their `.` so `self.gpus` is distinguishable from a root `gpus`.
        assert_eq!(lets[1].0, ["occ"]);
        assert!(lets[1].1.contains(&".gpus".to_string()));
        assert!(lets[1].1.contains(&"gi".to_string()));
        assert_eq!(lets[2].0, ["req"]);
        assert!(lets[2].1.contains(&".inflight".to_string()));
    }

    #[test]
    fn let_else_and_if_let_record_initializers() {
        let src = "\
fn f(&mut self, id: ReqId) {\n\
    let Some(r) = self.reqs.get(id) else { return; };\n\
    if let Some(w) = r.walker { use_it(w); }\n\
}\n";
        let h = hir_of(src);
        let lets = &h.fns[0].lets;
        assert_eq!(lets.len(), 2);
        assert_eq!(lets[0].0, ["r"]);
        assert!(lets[0].1.contains(&".reqs".to_string()));
        assert!(lets[0].1.contains(&"id".to_string()));
        // The `else` block's `return` must not bleed into the rhs.
        assert!(!lets[0].1.contains(&"return".to_string()));
        assert_eq!(lets[1].0, ["w"]);
        assert!(lets[1].1.contains(&".walker".to_string()));
    }

    #[test]
    fn body_range_brackets_the_braces() {
        let src = "trait T { fn sig(&self) -> u64; fn done(&self) { fin(); } }\n";
        let h = hir_of(src);
        assert_eq!(h.fns[0].body, (0, 0));
        let (lo, hi) = h.fns[1].body;
        assert!(lo < hi);
    }

    #[test]
    fn nested_match_in_body_does_not_break_item_scan() {
        let src = "\
fn a() { match x { Y(v) => { f(v) } _ => {} } }\n\
struct After { z: u8 }\n";
        let h = hir_of(src);
        assert_eq!(h.fns.len(), 1);
        assert_eq!(h.structs.len(), 1);
        assert_eq!(h.structs[0].name, "After");
    }
}
