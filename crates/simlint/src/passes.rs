//! The four flow-aware workspace passes, built on [`crate::symbols`].
//!
//! Unlike the token lints in [`crate::lints`], these passes see the whole
//! workspace at once: struct field tables, the per-crate digest call
//! graph, and cross-crate call reachability.
//!
//! * **`digest-complete`** — every field of a digest-bearing struct (one
//!   with a `digest`/`state_digest`/`digest_into`/`epoch_digest` method)
//!   in a digest-audited crate must be mentioned somewhere in that
//!   struct's digest path: the digest methods themselves plus every
//!   same-crate function they transitively call. A field that never
//!   appears cannot be mixed into the epoch digest, which is exactly the
//!   silent-nondeterminism hole `run_with_restore` and the scnd result
//!   cache cannot tolerate. Derived/cache-only state is waived inline at
//!   the field declaration.
//! * **`rng-stream-discipline`** — every `SimRng::new(expr)` stream in
//!   sim code must be salted (`seed ^ SUBSYSTEM_SALT`) so no two
//!   subsystems share a stream; literal-only seeds must be unique across
//!   the workspace; and no public function outside `sim-core` may pass a
//!   raw `SimRng` across its boundary.
//! * **`counter-saturation`** — `u64` counter fields of `RunMetrics` and
//!   `*Stats` structs must be bumped with `saturating_add`, never raw
//!   `+`/`+=`: release builds do not overflow-check, and a silently
//!   wrapped counter poisons published results and digests.
//! * **`panic-reach`** — call-graph reachability from the protected mgpu
//!   hot paths: a `.unwrap()`/`.expect()` in *any* function a hot path can
//!   transitively reach (one crate over included) is a finding, closing
//!   the gap the purely syntactic `panic-freedom` lint leaves open.

use std::collections::{BTreeMap, BTreeSet};

use crate::symbols::{CallGraph, FnNode, Workspace};
use crate::lexer::TokKind;
use crate::{Config, Lint, Violation};

/// Runs every workspace pass over `ws`.
pub fn run(ws: &Workspace, cfg: &Config) -> Vec<Violation> {
    let mut out = Vec::new();
    digest_complete(ws, cfg, &mut out);
    rng_stream(ws, cfg, &mut out);
    counter_saturation(ws, cfg, &mut out);
    panic_reach(ws, cfg, &mut out);
    out
}

/// `digest-complete`: see module docs. One violation per undigested field,
/// reported at the field's declaration so the waiver lives next to it.
fn digest_complete(ws: &Workspace, cfg: &Config, out: &mut Vec<Violation>) {
    for crate_dir in &cfg.digest_crates {
        let unit_ids = ws.units_in(std::slice::from_ref(crate_dir));
        if unit_ids.is_empty() {
            continue;
        }
        let graph = CallGraph::build(ws, &unit_ids);
        // Digest roots per self type: fns named like a digest entry point.
        let mut roots_by_ty: BTreeMap<&str, Vec<FnNode>> = BTreeMap::new();
        for &ui in &unit_ids {
            for (fi, f) in ws.units[ui].hir.fns.iter().enumerate() {
                if f.in_test || !cfg.digest_fn_names.contains(&f.name) {
                    continue;
                }
                if let Some(ty) = f.self_ty.as_deref() {
                    roots_by_ty.entry(ty).or_default().push((ui, fi));
                }
            }
        }
        for &ui in &unit_ids {
            let unit = &ws.units[ui];
            for s in &unit.hir.structs {
                if s.in_test {
                    continue;
                }
                let Some(roots) = roots_by_ty.get(s.name.as_str()) else {
                    continue; // not digest-bearing: out of the lint's scope
                };
                let reach = graph.reachable(roots, false);
                let mut mentions: BTreeSet<&str> = BTreeSet::new();
                for &node in &reach {
                    let f = ws.fn_def(node);
                    mentions.extend(f.sig_idents.iter().map(String::as_str));
                    mentions.extend(f.body_idents.iter().map(|(id, _)| id.as_str()));
                }
                for field in &s.fields {
                    if !mentions.contains(field.name.as_str()) {
                        out.push(Violation {
                            lint: Lint::DigestComplete,
                            file: unit.ctx.rel_path.clone(),
                            line: field.line,
                            key: format!("undigested({}.{})", s.name, field.name),
                            message: format!(
                                "`{}.{}` never flows into `{}`'s digest path; mix it \
                                 (or waive it as derived/cache-only state) — an \
                                 undigested field is silent nondeterminism under \
                                 checkpoint/restore",
                                s.name, field.name, s.name
                            ),
                        });
                    }
                }
            }
        }
    }
}

/// `rng-stream-discipline`: see module docs.
fn rng_stream(ws: &Workspace, cfg: &Config, out: &mut Vec<Violation>) {
    // Literal seed → every (unit, line) using it, for uniqueness checking.
    let mut literal_seeds: BTreeMap<String, Vec<(usize, usize)>> = BTreeMap::new();
    for (ui, unit) in ws.units.iter().enumerate() {
        if !cfg.rng_crates.contains(&unit.ctx.crate_dir)
            || unit.ctx.is_test_file
            || !unit.ctx.rel_path.contains("/src/")
            || unit.ctx.rel_path == cfg.rng_home
        {
            continue;
        }
        let toks = &unit.lexed.tokens;
        for i in 0..toks.len() {
            let is_ctor = toks[i].is_ident("SimRng")
                && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 3).is_some_and(|t| t.is_ident("new"))
                && toks.get(i + 4).is_some_and(|t| t.is_punct('('));
            if !is_ctor || crate::lexer::in_regions(&unit.regions, toks[i].line) {
                continue;
            }
            // The constructor's argument tokens, to the matching `)`.
            let mut depth = 0i32;
            let mut j = i + 4;
            let mut has_ident = false;
            let mut has_xor = false;
            let mut lone_literal: Option<String> = None;
            let mut arg_toks = 0usize;
            while j < toks.len() {
                match &toks[j].kind {
                    TokKind::Punct('(') => depth += 1,
                    TokKind::Punct(')') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    TokKind::Punct('^') => has_xor = true,
                    TokKind::Ident(_) => {
                        has_ident = true;
                        arg_toks += 1;
                    }
                    TokKind::Num(n) => {
                        lone_literal = Some(n.replace('_', "").to_ascii_lowercase());
                        arg_toks += 1;
                    }
                    TokKind::Punct(_) => {}
                }
                j += 1;
            }
            let line = toks[i].line;
            if has_ident && !has_xor {
                out.push(Violation {
                    lint: Lint::RngStream,
                    file: unit.ctx.rel_path.clone(),
                    line,
                    key: "unsalted-stream".to_string(),
                    message: "`SimRng::new` over a shared seed without a subsystem \
                              salt (`seed ^ SUBSYSTEM_SALT`): two subsystems drawing \
                              from one stream entangle their replay"
                        .to_string(),
                });
            } else if !has_ident && arg_toks == 1 {
                if let Some(lit) = lone_literal {
                    literal_seeds.entry(lit).or_default().push((ui, line));
                }
            }
        }
        // Boundary check: a pub fn outside sim-core with `SimRng` in its
        // signature hands a raw stream across a module boundary.
        if unit.ctx.crate_dir != "crates/sim-core" {
            for f in &unit.hir.fns {
                if f.in_test || !f.is_pub {
                    continue;
                }
                if f.sig_idents.iter().any(|id| id == "SimRng") {
                    out.push(Violation {
                        lint: Lint::RngStream,
                        file: unit.ctx.rel_path.clone(),
                        line: f.line,
                        key: "rng-across-boundary".to_string(),
                        message: format!(
                            "`{}` passes a raw `SimRng` across a public boundary; \
                             fork a salted stream (`SimRng::new(seed ^ SALT)`) or \
                             take a seed instead",
                            f.name
                        ),
                    });
                }
            }
        }
    }
    for (lit, sites) in &literal_seeds {
        if sites.len() > 1 {
            for &(ui, line) in sites {
                out.push(Violation {
                    lint: Lint::RngStream,
                    file: ws.units[ui].ctx.rel_path.clone(),
                    line,
                    key: "shared-stream-seed".to_string(),
                    message: format!(
                        "literal seed `{lit}` constructs more than one `SimRng` \
                         stream; identical streams make independent subsystems \
                         draw correlated randomness"
                    ),
                });
            }
        }
    }
}

/// `counter-saturation`: see module docs.
fn counter_saturation(ws: &Workspace, cfg: &Config, out: &mut Vec<Violation>) {
    // The counter-field name set: u64 fields of RunMetrics / *Stats
    // structs anywhere in the sim-state crates.
    let mut counters: BTreeSet<&str> = BTreeSet::new();
    for unit in &ws.units {
        if !cfg.sim_state_crates.contains(&unit.ctx.crate_dir) {
            continue;
        }
        for s in &unit.hir.structs {
            if s.in_test || !(s.name == "RunMetrics" || s.name.ends_with("Stats")) {
                continue;
            }
            for f in &s.fields {
                if f.ty.iter().any(|t| t == "u64") {
                    counters.insert(f.name.as_str());
                }
            }
        }
    }
    if counters.is_empty() {
        return;
    }
    for unit in &ws.units {
        if !cfg.sim_state_crates.contains(&unit.ctx.crate_dir) || unit.ctx.is_test_file {
            continue;
        }
        let toks = &unit.lexed.tokens;
        for i in 1..toks.len() {
            let TokKind::Ident(name) = &toks[i].kind else { continue };
            let is_counter_add = toks[i - 1].is_punct('.')
                && counters.contains(name.as_str())
                && toks.get(i + 1).is_some_and(|t| t.is_punct('+'))
                && !crate::lexer::in_regions(&unit.regions, toks[i].line);
            if is_counter_add {
                out.push(Violation {
                    lint: Lint::CounterSaturation,
                    file: unit.ctx.rel_path.clone(),
                    line: toks[i].line,
                    key: format!("raw-add({name})"),
                    message: format!(
                        "raw `+` on counter field `{name}`; release builds do not \
                         overflow-check — use `saturating_add` so a hot counter \
                         can never wrap into a wrong published result"
                    ),
                });
            }
        }
    }
}

/// `panic-reach`: see module docs.
fn panic_reach(ws: &Workspace, cfg: &Config, out: &mut Vec<Violation>) {
    let unit_ids = ws.units_in(&cfg.reach_crates);
    if unit_ids.is_empty() {
        return;
    }
    let graph = CallGraph::build(ws, &unit_ids);
    let mut roots: Vec<FnNode> = Vec::new();
    for &ui in &unit_ids {
        let unit = &ws.units[ui];
        if !cfg.hot_path_files.contains(&unit.ctx.rel_path) {
            continue;
        }
        for (fi, f) in unit.hir.fns.iter().enumerate() {
            if !f.in_test {
                roots.push((ui, fi));
            }
        }
    }
    if roots.is_empty() {
        return;
    }
    for node in graph.reachable(&roots, true) {
        let unit = &ws.units[node.0];
        // The hot-path files themselves are the syntactic panic-freedom
        // lint's territory; this pass covers everything they can reach.
        if cfg.hot_path_files.contains(&unit.ctx.rel_path) {
            continue;
        }
        let f = ws.fn_def(node);
        for (kind, line) in &f.panics {
            out.push(Violation {
                lint: Lint::PanicReach,
                file: unit.ctx.rel_path.clone(),
                line: *line,
                key: format!("reach({}.{kind})", f.name),
                message: format!(
                    "`.{kind}()` in `{}` is reachable from the protected mgpu \
                     event loop via the call graph; a panic here tears down the \
                     run mid-event — degrade through `Result`/`Option` instead",
                    f.name
                ),
            });
        }
    }
}
