//! The baseline ratchet: known, justified violations checked into
//! `simlint.baseline.toml`.
//!
//! The baseline is the one-way valve that lets simlint gate CI from day
//! one without demanding a big-bang cleanup: every grandfathered finding
//! is an `[[allow]]` entry carrying a written justification, new findings
//! fail the build, and entries that stop matching are reported as stale so
//! the file only ever shrinks.
//!
//! The file format is a small TOML subset (array-of-tables with string /
//! integer values) parsed and rendered here — the workspace builds fully
//! offline, so no toml crate.

use crate::Violation;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One grandfathered finding: up to `count` violations of `lint` in
/// `file` with grouping key `key` are tolerated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Lint name (e.g. `panic-freedom`).
    pub lint: String,
    /// Workspace-relative file the violations live in.
    pub file: String,
    /// The violations' grouping key (e.g. `index`).
    pub key: String,
    /// How many occurrences are tolerated.
    pub count: usize,
    /// Why this is acceptable — mandatory, so the ratchet never silences
    /// anything without a recorded reason.
    pub justification: String,
}

/// A parsed baseline file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// The grandfathered findings.
    pub entries: Vec<BaselineEntry>,
}

/// Result of diffing a run's violations against the baseline.
#[derive(Debug, Default)]
pub struct Diff {
    /// Violations not covered by any entry (or exceeding an entry's
    /// count) — these fail the run.
    pub new: Vec<Violation>,
    /// Entries whose (lint, file, key) matched nothing, or matched fewer
    /// occurrences than `count` — the ratchet should be tightened.
    pub stale: Vec<BaselineEntry>,
}

impl Baseline {
    /// Parses the baseline file contents.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line for anything outside
    /// the supported subset, unknown keys, or entries missing a field.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries = Vec::new();
        let mut current: Option<BaselineEntry> = None;
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[allow]]" {
                if let Some(e) = current.take() {
                    entries.push(finish(e, lineno)?);
                }
                current = Some(BaselineEntry {
                    lint: String::new(),
                    file: String::new(),
                    key: String::new(),
                    count: 0,
                    justification: String::new(),
                });
                continue;
            }
            let Some((k, v)) = line.split_once('=') else {
                return Err(format!("line {lineno}: expected `key = value` or `[[allow]]`"));
            };
            let Some(entry) = current.as_mut() else {
                return Err(format!("line {lineno}: `{k}` outside an [[allow]] table"));
            };
            let k = k.trim();
            let v = v.trim();
            match k {
                "lint" => entry.lint = unquote(v, lineno)?,
                "file" => entry.file = unquote(v, lineno)?,
                "key" => entry.key = unquote(v, lineno)?,
                "justification" => entry.justification = unquote(v, lineno)?,
                "count" => {
                    entry.count = v
                        .parse()
                        .map_err(|_| format!("line {lineno}: count must be an integer"))?;
                }
                other => return Err(format!("line {lineno}: unknown key `{other}`")),
            }
        }
        if let Some(e) = current.take() {
            entries.push(finish(e, text.lines().count())?);
        }
        Ok(Baseline { entries })
    }

    /// Renders the baseline back to its file format.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# simlint baseline — grandfathered findings, one [[allow]] per\n\
             # (lint, file, key) group. New violations FAIL; entries here only\n\
             # ever shrink. Every entry must carry a justification.\n",
        );
        for e in &self.entries {
            let _ = write!(
                out,
                "\n[[allow]]\nlint = \"{}\"\nfile = \"{}\"\nkey = \"{}\"\ncount = {}\njustification = \"{}\"\n",
                e.lint, e.file, e.key, e.count, e.justification
            );
        }
        out
    }

    /// Builds a baseline that exactly covers `violations` (the
    /// `--write-baseline` path). Justifications are stamped `TODO` so a
    /// human must fill them in before the file passes review.
    pub fn covering(violations: &[Violation]) -> Self {
        let mut groups: BTreeMap<(String, String, String), usize> = BTreeMap::new();
        for v in violations {
            *groups
                .entry((v.lint.name().to_string(), v.file.clone(), v.key.clone()))
                .or_insert(0) += 1;
        }
        Baseline {
            entries: groups
                .into_iter()
                .map(|((lint, file, key), count)| BaselineEntry {
                    lint,
                    file,
                    key,
                    count,
                    justification: "TODO: justify or fix".to_string(),
                })
                .collect(),
        }
    }

    /// Diffs a run's violations against this baseline.
    pub fn diff(&self, violations: &[Violation]) -> Diff {
        let mut groups: BTreeMap<(String, String, String), Vec<&Violation>> = BTreeMap::new();
        for v in violations {
            groups
                .entry((v.lint.name().to_string(), v.file.clone(), v.key.clone()))
                .or_default()
                .push(v);
        }
        let mut diff = Diff::default();
        let mut matched: BTreeMap<(String, String, String), usize> = BTreeMap::new();
        for e in &self.entries {
            matched.insert((e.lint.clone(), e.file.clone(), e.key.clone()), e.count);
        }
        for ((lint, file, key), vs) in &groups {
            let allowed = matched
                .get(&(lint.clone(), file.clone(), key.clone()))
                .copied()
                .unwrap_or(0);
            if vs.len() > allowed {
                diff.new
                    .extend(vs[allowed..].iter().map(|v| (*v).clone()));
            }
        }
        for e in &self.entries {
            let seen = groups
                .get(&(e.lint.clone(), e.file.clone(), e.key.clone()))
                .map_or(0, Vec::len);
            if seen < e.count {
                diff.stale.push(e.clone());
            }
        }
        diff
    }
}

fn finish(e: BaselineEntry, lineno: usize) -> Result<BaselineEntry, String> {
    if e.lint.is_empty() || e.file.is_empty() || e.key.is_empty() {
        return Err(format!(
            "entry ending near line {lineno}: lint, file and key are required"
        ));
    }
    if e.count == 0 {
        return Err(format!(
            "entry ending near line {lineno}: count must be >= 1 (delete the entry instead)"
        ));
    }
    if e.justification.trim().is_empty() {
        return Err(format!(
            "entry ending near line {lineno}: a justification is mandatory"
        ));
    }
    Ok(e)
}

fn unquote(v: &str, lineno: usize) -> Result<String, String> {
    let v = v.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Ok(v[1..v.len() - 1].to_string())
    } else {
        Err(format!("line {lineno}: expected a double-quoted string"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Lint;

    fn v(lint: Lint, file: &str, key: &str, line: usize) -> Violation {
        Violation {
            lint,
            file: file.to_string(),
            line,
            key: key.to_string(),
            message: String::new(),
        }
    }

    #[test]
    fn parse_render_round_trips() {
        let b = Baseline {
            entries: vec![BaselineEntry {
                lint: "panic-freedom".into(),
                file: "crates/mgpu/src/system.rs".into(),
                key: "index".into(),
                count: 3,
                justification: "arena ids are allocation-checked".into(),
            }],
        };
        let parsed = Baseline::parse(&b.render()).unwrap();
        assert_eq!(parsed, b);
    }

    #[test]
    fn missing_justification_is_an_error() {
        let text = "[[allow]]\nlint = \"panic-freedom\"\nfile = \"f.rs\"\nkey = \"unwrap\"\ncount = 1\n";
        assert!(Baseline::parse(text).is_err());
    }

    #[test]
    fn diff_flags_excess_and_stale() {
        let b = Baseline {
            entries: vec![
                BaselineEntry {
                    lint: "panic-freedom".into(),
                    file: "a.rs".into(),
                    key: "index".into(),
                    count: 2,
                    justification: "j".into(),
                },
                BaselineEntry {
                    lint: "panic-freedom".into(),
                    file: "gone.rs".into(),
                    key: "unwrap".into(),
                    count: 1,
                    justification: "j".into(),
                },
            ],
        };
        let violations = vec![
            v(Lint::PanicFreedom, "a.rs", "index", 10),
            v(Lint::PanicFreedom, "a.rs", "index", 20),
            v(Lint::PanicFreedom, "a.rs", "index", 30), // one over budget
            v(Lint::DetCollections, "b.rs", "HashMap", 5), // uncovered
        ];
        let d = b.diff(&violations);
        assert_eq!(d.new.len(), 2);
        assert!(d.new.iter().any(|v| v.file == "b.rs"));
        assert!(d.new.iter().any(|v| v.line == 30));
        assert_eq!(d.stale.len(), 1);
        assert_eq!(d.stale[0].file, "gone.rs");
    }

    #[test]
    fn covering_groups_by_lint_file_key() {
        let violations = vec![
            v(Lint::PanicFreedom, "a.rs", "index", 10),
            v(Lint::PanicFreedom, "a.rs", "index", 20),
            v(Lint::PanicFreedom, "a.rs", "unwrap", 5),
        ];
        let b = Baseline::covering(&violations);
        assert_eq!(b.entries.len(), 2);
        assert_eq!(b.entries[0].count, 2);
        let d = b.diff(&violations);
        assert!(d.new.is_empty() && d.stale.is_empty());
    }

    #[test]
    fn empty_baseline_parses() {
        let b = Baseline::parse("# nothing grandfathered\n").unwrap();
        assert!(b.entries.is_empty());
        assert!(b.diff(&[]).new.is_empty());
    }
}
